#include "common/status.h"

namespace diablo {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kRestrictionViolation:
      return "RestrictionViolation";
    case StatusCode::kTranslationError:
      return "TranslationError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kTaskLost:
      return "TaskLost";
    case StatusCode::kDistError:
      return "DistError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace diablo
