#ifndef DIABLO_COMMON_STATUS_H_
#define DIABLO_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace diablo {

/// Error categories used throughout the DIABLO pipeline.
enum class StatusCode {
  kOk = 0,
  /// Lexical or syntactic error in the loop-language source.
  kParseError,
  /// The program violates the parallelization restrictions of
  /// Definition 3.1 (recurrences, non-affine destinations, ...).
  kRestrictionViolation,
  /// A semantic error found during translation (unknown variable, arity
  /// mismatch, ...).
  kTranslationError,
  /// A runtime error during plan or program evaluation (type mismatch,
  /// division by zero, ...).
  kRuntimeError,
  /// A malformed request against the public API.
  kInvalidArgument,
  /// The requested feature exists in the paper but was explicitly out of
  /// scope for a component (e.g. baseline translators on complex loops).
  kUnsupported,
  /// A simulated fault injected by the runtime fault injector (killed
  /// task attempt, corrupted shuffle payload). Retryable: the engine's
  /// task scheduler re-runs the attempt instead of aborting the job, so
  /// this code never escapes a healthy run. See runtime/fault.h.
  kTaskLost,
  /// A failure of the real multi-process distributed backend that
  /// recovery could not absorb (all workers dead with respawn budget
  /// exhausted, a task past its real-retry budget, a corrupt frame from
  /// a live peer). See src/dist/.
  kDistError,
};

/// Returns a human-readable name for a status code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail; carries a code and a message.
///
/// DIABLO follows the RocksDB/Arrow convention of returning Status values
/// rather than throwing exceptions across library boundaries. A Status is
/// cheap to copy when OK (no allocation happens for the OK singleton
/// message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status RestrictionViolation(std::string msg) {
    return Status(StatusCode::kRestrictionViolation, std::move(msg));
  }
  static Status TranslationError(std::string msg) {
    return Status(StatusCode::kTranslationError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status TaskLost(std::string msg) {
    return Status(StatusCode::kTaskLost, std::move(msg));
  }
  static Status DistError(std::string msg) {
    return Status(StatusCode::kDistError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr / arrow::Result.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from an error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Implicit construction from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the current function.
#define DIABLO_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::diablo::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// moves the value into `lhs`.
#define DIABLO_ASSIGN_OR_RETURN(lhs, expr)      \
  auto DIABLO_CONCAT_(_sor_, __LINE__) = (expr);               \
  if (!DIABLO_CONCAT_(_sor_, __LINE__).ok())                   \
    return DIABLO_CONCAT_(_sor_, __LINE__).status();           \
  lhs = std::move(DIABLO_CONCAT_(_sor_, __LINE__)).value()

#define DIABLO_CONCAT_IMPL_(a, b) a##b
#define DIABLO_CONCAT_(a, b) DIABLO_CONCAT_IMPL_(a, b)

}  // namespace diablo

#endif  // DIABLO_COMMON_STATUS_H_
