#ifndef DIABLO_COMMON_STRINGS_H_
#define DIABLO_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace diablo {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// A position in a source file, 1-based.
struct SourceLocation {
  int line = 1;
  int column = 1;
};

/// Formats a location as "line L, column C".
std::string LocationString(const SourceLocation& loc);

}  // namespace diablo

#endif  // DIABLO_COMMON_STRINGS_H_
