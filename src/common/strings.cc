#include "common/strings.h"

namespace diablo {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string LocationString(const SourceLocation& loc) {
  return StrCat("line ", loc.line, ", column ", loc.column);
}

}  // namespace diablo
