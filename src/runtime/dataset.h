#ifndef DIABLO_RUNTIME_DATASET_H_
#define DIABLO_RUNTIME_DATASET_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "runtime/operators.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// One node of a dataset's lineage graph — the recipe for rebuilding a
/// lost partition from its ancestors, the way Spark recovers RDD
/// partitions after an executor death. The engine attaches a node to
/// every dataset it produces; `recompute` re-derives one partition from
/// the (materialized) parent datasets captured in its closure and must
/// reproduce the original computation bit-for-bit, evaluation order
/// included, so recovered runs equal fault-free runs exactly.
struct LineageNode {
  /// Recomputes partition `p`, adding the rows scanned to `*work` (the
  /// cost model prices recovery from it).
  using RecomputeFn = std::function<StatusOr<ValueVec>(int p, int64_t* work)>;

  /// Recomputes several lost partitions in ONE pass over the ancestor
  /// data: `parts` lists the lost partition ids (ascending) and
  /// `rebuilt[i]` receives the rows of `parts[i]`. Shuffle-producing
  /// operators install this instead of RecomputeFn so recovery scans
  /// each source row once, hashes it once, and keeps only rows whose
  /// destination is lost — not once per lost destination.
  using RecomputeManyFn = std::function<Status(
      const std::vector<int>& parts, std::vector<ValueVec>* rebuilt,
      int64_t* work)>;

  /// Operator kind: "source", "checkpoint", "map", "fused", "shuffle", ...
  std::string kind;
  /// The stage label of the operator that produced the dataset.
  std::string label;
  /// Durable data (job input or checkpoint): partitions can be re-read
  /// from stable storage, no recomputation needed. Depth is 0.
  bool durable = false;
  std::vector<std::shared_ptr<const LineageNode>> parents;
  /// Null for durable nodes, and for every node when the engine runs
  /// without fault injection (no recovery can be asked, so no closures
  /// — and no ancestor datasets — are retained).
  RecomputeFn recompute;
  /// Preferred over `recompute` when set: single-pass multi-partition
  /// recovery (see RecomputeManyFn). Same retention rules.
  RecomputeManyFn recompute_many;
  /// Length of the longest chain of non-durable ancestors, this node
  /// included. Checkpoint() resets it to 0; iterative loops use it to
  /// decide when lineage has grown long enough to truncate. Fused
  /// narrow chains count every pending operator toward the depth.
  int depth = 0;
};

/// Vectorizable description of a narrow operator: the closure is known
/// to be `row ⊕ operand` (map/filter) or `value ⊕ operand` over (k,v)
/// pair rows (mapValues / value filter) for a built-in BinOp and a
/// constant right operand. The closure stays the semantic truth — the
/// kernel is an equivalent, engine-visible form that a columnar fused
/// wave can run vectorized (runtime/column_batch.h).
struct ColumnKernel {
  BinOp op = BinOp::kAdd;
  Value operand;
  /// True: applies to the value of (k,v) pair rows (mapValues /
  /// FilterValues). False: applies to the whole row.
  bool on_value = false;
};

/// One deferred narrow operator in a fused chain. The callbacks mirror
/// Engine::MapFn/PredFn/FlatMapFn; which one is set depends on `kind`.
struct FusedOp {
  enum class Kind { kMap, kMapValues, kFilter, kFlatMap };

  Kind kind = Kind::kMap;
  /// Stage-label fragment; fused stages join these with '+'.
  std::string label;
  /// Set for kMap and kMapValues.
  std::function<StatusOr<Value>(const Value&)> map;
  /// Set for kFilter.
  std::function<StatusOr<bool>(const Value&)> pred;
  /// Set for kFlatMap.
  std::function<StatusOr<ValueVec>(const Value&)> flat;
  /// Set when the operator was built from a BinOp + constant operand
  /// (the kernel-carrying Engine overloads); lets a columnar Force run
  /// the whole chain vectorized. Never required for correctness.
  std::optional<ColumnKernel> kernel;
};

/// An unexecuted pipeline of narrow operators, applied element-by-element
/// on top of a dataset's materialized source partitions.
using FusedChain = std::vector<FusedOp>;

/// An immutable, partitioned collection of Values — the analogue of a
/// Spark RDD. Datasets are cheap to copy (the partition payload is
/// shared) and are only created through Engine operations, which record
/// execution statistics for the cluster cost model and attach the
/// lineage node used for fault recovery.
///
/// A dataset may be *lazy*: the stored partitions are the source rows
/// and `chain()` holds narrow operators (map / mapValues / filter /
/// flatMap) not yet applied. The engine runs the whole chain
/// element-by-element inside the next stage boundary (shuffle, reduce,
/// collect, checkpoint, Force) with no intermediate materialization.
/// TotalRows()/TotalBytes()/partition() observe the SOURCE rows of a
/// lazy dataset; call Engine::Force (or any action) first when the
/// logical rows are needed.
class Dataset {
 public:
  /// An empty dataset with zero partitions.
  Dataset()
      : partitions_(std::make_shared<const std::vector<ValueVec>>()),
        lineage_(SourceLineage()) {}

  /// A source dataset (durable lineage), e.g. parallelized job input.
  explicit Dataset(std::vector<ValueVec> partitions)
      : Dataset(std::move(partitions), SourceLineage()) {}

  /// A derived dataset with an explicit lineage node.
  Dataset(std::vector<ValueVec> partitions,
          std::shared_ptr<const LineageNode> lineage)
      : partitions_(std::make_shared<const std::vector<ValueVec>>(
            std::move(partitions))),
        lineage_(std::move(lineage)) {}

  /// A derived dataset carrying a pending fused chain over `partitions`.
  Dataset(std::vector<ValueVec> partitions,
          std::shared_ptr<const LineageNode> lineage,
          std::shared_ptr<const FusedChain> chain)
      : partitions_(std::make_shared<const std::vector<ValueVec>>(
            std::move(partitions))),
        lineage_(std::move(lineage)),
        chain_(std::move(chain)) {}

  /// Shares `base`'s partitions under a new lineage node (used by
  /// Checkpoint() to truncate lineage without copying data). Drops any
  /// pending chain — callers must have folded it into the new node.
  Dataset(const Dataset& base, std::shared_ptr<const LineageNode> lineage)
      : partitions_(base.partitions_), lineage_(std::move(lineage)) {}

  int num_partitions() const {
    return static_cast<int>(partitions_->size());
  }
  const ValueVec& partition(int i) const { return (*partitions_)[i]; }
  const std::vector<ValueVec>& partitions() const { return *partitions_; }

  const std::shared_ptr<const LineageNode>& lineage() const {
    return lineage_;
  }
  /// Convenience: lineage depth (0 for sources and checkpoints). Every
  /// pending fused operator counts, so loop checkpointing sees the true
  /// recovery-chain length even while stages are deferred.
  int lineage_depth() const {
    int base = lineage_ == nullptr ? 0 : lineage_->depth;
    return base + static_cast<int>(chain().size());
  }

  /// True when no narrow operators are pending: partition() et al.
  /// observe the dataset's logical rows directly.
  bool materialized() const { return chain_ == nullptr || chain_->empty(); }

  /// The pending narrow-operator chain (empty when materialized).
  const FusedChain& chain() const {
    static const FusedChain kEmpty;
    return chain_ == nullptr ? kEmpty : *chain_;
  }
  const std::shared_ptr<const FusedChain>& chain_ptr() const { return chain_; }

  /// A lazy dataset sharing this one's source partitions and lineage
  /// with `op` appended to the pending chain.
  Dataset WithOp(FusedOp op) const {
    auto extended = std::make_shared<FusedChain>(chain());
    extended->push_back(std::move(op));
    Dataset out;
    out.partitions_ = partitions_;
    out.lineage_ = lineage_;
    out.chain_ = std::move(extended);
    return out;
  }

  /// Total number of rows across all (source) partitions.
  int64_t TotalRows() const;

  /// Approximate serialized size of all rows, for workload reporting.
  int64_t TotalBytes() const;

  /// The shared lineage node of durable source data.
  static const std::shared_ptr<const LineageNode>& SourceLineage();

 private:
  std::shared_ptr<const std::vector<ValueVec>> partitions_;
  std::shared_ptr<const LineageNode> lineage_;
  /// Pending narrow operators; null or empty when materialized.
  std::shared_ptr<const FusedChain> chain_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_DATASET_H_
