#ifndef DIABLO_RUNTIME_DATASET_H_
#define DIABLO_RUNTIME_DATASET_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// One node of a dataset's lineage graph — the recipe for rebuilding a
/// lost partition from its ancestors, the way Spark recovers RDD
/// partitions after an executor death. The engine attaches a node to
/// every dataset it produces; `recompute` re-derives one partition from
/// the (materialized) parent datasets captured in its closure and must
/// reproduce the original computation bit-for-bit, evaluation order
/// included, so recovered runs equal fault-free runs exactly.
struct LineageNode {
  /// Recomputes partition `p`, adding the rows scanned to `*work` (the
  /// cost model prices recovery from it).
  using RecomputeFn = std::function<StatusOr<ValueVec>(int p, int64_t* work)>;

  /// Operator kind: "source", "checkpoint", "map", "shuffle", ...
  std::string kind;
  /// The stage label of the operator that produced the dataset.
  std::string label;
  /// Durable data (job input or checkpoint): partitions can be re-read
  /// from stable storage, no recomputation needed. Depth is 0.
  bool durable = false;
  std::vector<std::shared_ptr<const LineageNode>> parents;
  /// Null for durable nodes, and for every node when the engine runs
  /// without fault injection (no recovery can be asked, so no closures
  /// — and no ancestor datasets — are retained).
  RecomputeFn recompute;
  /// Length of the longest chain of non-durable ancestors, this node
  /// included. Checkpoint() resets it to 0; iterative loops use it to
  /// decide when lineage has grown long enough to truncate.
  int depth = 0;
};

/// An immutable, partitioned collection of Values — the analogue of a
/// Spark RDD. Datasets are cheap to copy (the partition payload is
/// shared) and are only created through Engine operations, which record
/// execution statistics for the cluster cost model and attach the
/// lineage node used for fault recovery.
class Dataset {
 public:
  /// An empty dataset with zero partitions.
  Dataset()
      : partitions_(std::make_shared<const std::vector<ValueVec>>()),
        lineage_(SourceLineage()) {}

  /// A source dataset (durable lineage), e.g. parallelized job input.
  explicit Dataset(std::vector<ValueVec> partitions)
      : Dataset(std::move(partitions), SourceLineage()) {}

  /// A derived dataset with an explicit lineage node.
  Dataset(std::vector<ValueVec> partitions,
          std::shared_ptr<const LineageNode> lineage)
      : partitions_(std::make_shared<const std::vector<ValueVec>>(
            std::move(partitions))),
        lineage_(std::move(lineage)) {}

  /// Shares `base`'s partitions under a new lineage node (used by
  /// Checkpoint() to truncate lineage without copying data).
  Dataset(const Dataset& base, std::shared_ptr<const LineageNode> lineage)
      : partitions_(base.partitions_), lineage_(std::move(lineage)) {}

  int num_partitions() const {
    return static_cast<int>(partitions_->size());
  }
  const ValueVec& partition(int i) const { return (*partitions_)[i]; }
  const std::vector<ValueVec>& partitions() const { return *partitions_; }

  const std::shared_ptr<const LineageNode>& lineage() const {
    return lineage_;
  }
  /// Convenience: lineage depth (0 for sources and checkpoints).
  int lineage_depth() const { return lineage_ == nullptr ? 0 : lineage_->depth; }

  /// Total number of rows across all partitions.
  int64_t TotalRows() const;

  /// Approximate serialized size of all rows, for workload reporting.
  int64_t TotalBytes() const;

  /// The shared lineage node of durable source data.
  static const std::shared_ptr<const LineageNode>& SourceLineage();

 private:
  std::shared_ptr<const std::vector<ValueVec>> partitions_;
  std::shared_ptr<const LineageNode> lineage_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_DATASET_H_
