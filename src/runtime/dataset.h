#ifndef DIABLO_RUNTIME_DATASET_H_
#define DIABLO_RUNTIME_DATASET_H_

#include <memory>
#include <vector>

#include "runtime/value.h"

namespace diablo::runtime {

/// An immutable, partitioned collection of Values — the analogue of a
/// Spark RDD. Datasets are cheap to copy (the partition payload is
/// shared) and are only created through Engine operations, which record
/// execution statistics for the cluster cost model.
class Dataset {
 public:
  /// An empty dataset with zero partitions.
  Dataset() : partitions_(std::make_shared<const std::vector<ValueVec>>()) {}

  explicit Dataset(std::vector<ValueVec> partitions)
      : partitions_(std::make_shared<const std::vector<ValueVec>>(
            std::move(partitions))) {}

  int num_partitions() const {
    return static_cast<int>(partitions_->size());
  }
  const ValueVec& partition(int i) const { return (*partitions_)[i]; }
  const std::vector<ValueVec>& partitions() const { return *partitions_; }

  /// Total number of rows across all partitions.
  int64_t TotalRows() const;

  /// Approximate serialized size of all rows, for workload reporting.
  int64_t TotalBytes() const;

 private:
  std::shared_ptr<const std::vector<ValueVec>> partitions_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_DATASET_H_
