#include "runtime/worker_pool.h"

#include <atomic>
#include <climits>
#include <utility>

#include "runtime/trace.h"

namespace diablo::runtime {

namespace {

constexpr uint64_t PackRange(uint32_t begin, uint32_t end) {
  return (static_cast<uint64_t>(begin) << 32) | end;
}
constexpr uint32_t RangeBegin(uint64_t bits) {
  return static_cast<uint32_t>(bits >> 32);
}
constexpr uint32_t RangeEnd(uint64_t bits) {
  return static_cast<uint32_t>(bits & 0xffffffffu);
}

/// Claims the front index of `range`, or -1 when empty.
int PopFront(std::atomic<uint64_t>& range) {
  uint64_t cur = range.load();
  for (;;) {
    const uint32_t begin = RangeBegin(cur), end = RangeEnd(cur);
    if (begin >= end) return -1;
    if (range.compare_exchange_weak(cur, PackRange(begin + 1, end))) {
      return static_cast<int>(begin);
    }
  }
}

/// Moves the back half of `victim`'s range into `mine` (which must be
/// empty — only its owner refills it). Returns false when the victim
/// has nothing to steal.
bool StealInto(std::atomic<uint64_t>& victim, std::atomic<uint64_t>& mine) {
  uint64_t cur = victim.load();
  for (;;) {
    const uint32_t begin = RangeBegin(cur), end = RangeEnd(cur);
    if (begin >= end) return false;
    const uint32_t take = (end - begin + 1) / 2;
    if (victim.compare_exchange_weak(cur, PackRange(begin, end - take))) {
      mine.store(PackRange(end - take, end));
      return true;
    }
  }
}

}  // namespace

struct WorkerPool::Wave {
  explicit Wave(int workers) : ranges(workers) {}

  int n = 0;
  const std::function<Status(int)>* fn = nullptr;
  /// One packed [begin, end) index range per worker.
  std::vector<std::atomic<uint64_t>> ranges;
  /// Indices not yet executed-or-skipped; 0 completes the wave.
  std::atomic<int> remaining{0};
  /// Lowest failing index seen so far; tasks above it are skipped.
  std::atomic<int> error_bound{INT_MAX};
  std::mutex err_mu;
  int err_index = INT_MAX;
  Status error;
  /// Back-pointers for completion signalling.
  std::mutex* pool_mu = nullptr;
  std::condition_variable* done_cv = nullptr;
};

WorkerPool::WorkerPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerPool::WorkerLoop(int self) {
  SetCurrentTraceWorker(self + 1);
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Wave> wave;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      wave = wave_;
    }
    // A worker that slept through an entire wave picks up the finished
    // wave here and finds every range empty — harmless.
    if (wave != nullptr) WorkOn(*wave, self);
  }
}

void WorkerPool::RunTask(Wave& wave, int index) {
  // Skip indices above a known failure: they cannot beat it for the
  // lowest-index report and the wave aborts regardless. Indices BELOW
  // it always run — one of them may fail with a lower number.
  if (index < wave.error_bound.load()) {
    Status st = (*wave.fn)(index);
    if (!st.ok()) {
      int cur = wave.error_bound.load();
      while (index < cur &&
             !wave.error_bound.compare_exchange_weak(cur, index)) {
      }
      std::lock_guard<std::mutex> lock(wave.err_mu);
      if (index < wave.err_index) {
        wave.err_index = index;
        wave.error = std::move(st);
      }
    }
  }
  if (wave.remaining.fetch_sub(1) == 1) {
    // Last index done: wake Run(). Lock the pool mutex so the notify
    // cannot slip between Run's predicate check and its sleep.
    std::lock_guard<std::mutex> lock(*wave.pool_mu);
    wave.done_cv->notify_all();
  }
}

void WorkerPool::WorkOn(Wave& wave, int self) {
  const int workers = static_cast<int>(wave.ranges.size());
  for (;;) {
    const int index = PopFront(wave.ranges[self]);
    if (index >= 0) {
      RunTask(wave, index);
      continue;
    }
    bool stole = false;
    for (int off = 1; off < workers; ++off) {
      if (StealInto(wave.ranges[(self + off) % workers], wave.ranges[self])) {
        stole = true;
        break;
      }
    }
    // Ranges only ever shrink or move between workers, so one full scan
    // finding nothing means no work will ever appear again.
    if (!stole) return;
  }
}

Status WorkerPool::Run(int n, const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  const int workers = threads();
  auto wave = std::make_shared<Wave>(workers);
  wave->n = n;
  wave->fn = &fn;
  wave->remaining.store(n);
  wave->pool_mu = &mu_;
  wave->done_cv = &done_cv_;
  for (int w = 0; w < workers; ++w) {
    const uint32_t begin = static_cast<uint32_t>(
        static_cast<int64_t>(n) * w / workers);
    const uint32_t end = static_cast<uint32_t>(
        static_cast<int64_t>(n) * (w + 1) / workers);
    wave->ranges[w].store(PackRange(begin, end));
  }
  std::unique_lock<std::mutex> lock(mu_);
  wave_ = wave;
  ++generation_;
  wake_cv_.notify_all();
  done_cv_.wait(lock, [&] { return wave->remaining.load() == 0; });
  std::lock_guard<std::mutex> err_lock(wave->err_mu);
  return wave->error;
}

}  // namespace diablo::runtime
