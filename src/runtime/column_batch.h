#ifndef DIABLO_RUNTIME_COLUMN_BATCH_H_
#define DIABLO_RUNTIME_COLUMN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "runtime/keyed_accumulator.h"
#include "runtime/operators.h"
#include "runtime/value.h"

/// Typed columnar (SoA) partition batches and the vectorized kernels the
/// engine's hot operators run over them (EngineConfig::columnar).
///
/// The contract with the boxed path is absolute: every kernel reproduces
/// the boxed element-at-a-time semantics bit for bit — the same
/// Value::Hash bits, the same IEEE operation order, the same int64
/// expressions, the same output ordering — so a columnar run is
/// byte-identical to a boxed run (enforced by tests/columnar_test.cc).
/// Anything a kernel cannot reproduce exactly is not vectorized: the
/// column demotes to boxed Values (a spill column) or the caller falls
/// back to the per-row path, and the engine counts the fallback
/// (StageStats::columnar_rows_fallback).

namespace diablo::runtime {

/// Scalar type of one column. Inferred at plan time from the static
/// types the translator preserves (plan/schema.h) or detected at
/// batch-build time from the first row.
enum class ColumnTag : uint8_t {
  kUnknown = 0,  ///< no rows seen / plan can't tell
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,  ///< dictionary-encoded
  kBoxed = 5,   ///< spill: heterogeneous or non-scalar rows, kept as Values
};

const char* ColumnTagName(ColumnTag tag);

/// Plan-time schema of the (key, value) pairs flowing into a keyed
/// operator. kUnknown means "try, detect from data"; a definite
/// non-columnarizable type lets the engine skip the typed attempt.
struct ColumnSchema {
  ColumnTag key = ColumnTag::kUnknown;
  ColumnTag value = ColumnTag::kUnknown;

  std::string ToString() const;
};

/// Dictionary for a string column: distinct entries in first-occurrence
/// order. Each entry's Value::Hash is computed exactly once per batch
/// and cached — rows carry 4-byte codes and hashing a row is an array
/// load (see HashColumn), instead of re-walking the string bytes per row.
class StringDictionary {
 public:
  /// Interns a kString value, returning its code. The Value's string
  /// payload is shared, not copied.
  uint32_t Intern(const Value& v);

  size_t size() const { return values_.size(); }
  const Value& value(uint32_t code) const { return values_[code]; }
  const std::string& str(uint32_t code) const {
    return values_[code].AsString();
  }
  /// The cached Value::Hash of entry `code`.
  size_t hash(uint32_t code) const { return hashes_[code]; }

 private:
  std::vector<Value> values_;
  std::vector<size_t> hashes_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// One SoA column. The tag is pinned by the first appended value; a
/// later value of a different kind (or any non-scalar) demotes the whole
/// column to boxed, migrating the already-appended entries.
class Column {
 public:
  ColumnTag tag() const { return tag_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Append(const Value& v);

  /// Rebuilds row `i` as a boxed Value (string rows share the dictionary
  /// entry's payload).
  Value ValueAt(size_t i) const;

  /// Migrates every typed entry into `boxed` and pins the tag there.
  void DemoteToBoxed();

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const StringDictionary& dict() const { return dict_; }
  const ValueVec& boxed() const { return boxed_; }

  std::vector<int64_t>& mutable_ints() { return ints_; }
  std::vector<double>& mutable_doubles() { return doubles_; }
  ValueVec& mutable_boxed() { return boxed_; }
  StringDictionary& mutable_dict() { return dict_; }
  std::vector<uint32_t>& mutable_codes() { return codes_; }
  std::vector<uint8_t>& mutable_bools() { return bools_; }
  void set_tag(ColumnTag tag) { tag_ = tag; }
  void set_size(size_t n) { size_ = n; }

  /// Converts an int64 column to double in place (x -> (double)x), the
  /// promotion NumericOp applies when the other operand is a double.
  void PromoteToDouble();

 private:
  ColumnTag tag_ = ColumnTag::kUnknown;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<uint32_t> codes_;
  StringDictionary dict_;
  ValueVec boxed_;
};

/// A batch of rows in columnar form. Two shapes:
///  - pair rows (keyed operators): `keys` holds the key of every row
///    (boxed — keys are routed and compared, not transformed) and
///    `values` holds the value column;
///  - scalar rows: `keys` is empty and `values` holds the whole row.
/// Batches are what a columnar fused wave ships across the dist wire
/// (serialize.h SerializeColumnBatch, wave_io col_batches slot).
struct ColumnBatch {
  bool pairs = false;
  ValueVec keys;
  Column values;

  size_t size() const { return values.size(); }
  /// Rebuilds row `i` as a boxed Value.
  Value RowAt(size_t i) const;
  /// Appends every row as boxed Values to `out`.
  void EmitRows(ValueVec* out) const;
  /// Drops rows with `live[i] == 0` in place, preserving the order of
  /// the survivors (`live.size()` must equal `size()`). Typed payloads
  /// compact without boxing; a string column keeps its dictionary.
  void Compact(const std::vector<uint8_t>& live);
};

/// Vectorized Value::Hash over a column: `(*out)[i]` equals
/// `col.ValueAt(i).Hash()` bit for bit. String rows read the hash cached
/// at intern time — one Value::Hash per distinct entry per batch.
void HashColumn(const Column& col, std::vector<size_t>* out);

/// Ops the vectorized kernels cover. Anything else (kDiv/kMod with their
/// divide-by-zero errors, kAnd/kOr, kArgmin) stays on the boxed path.
bool IsColumnarMapOp(BinOp op);     ///< {+, -, *, min, max}
bool IsColumnarCmpOp(BinOp op);     ///< {==, !=, <, <=, >, >=}
bool IsColumnarReduceOp(BinOp op);  ///< {+, *, min, max}

/// Applies `row ⊕ operand` to every row of `col` with `live[i] != 0`,
/// reproducing NumericOp exactly (int64 expressions when both sides are
/// ints, double promotion otherwise). Returns false — column untouched —
/// when the combination is not covered (non-numeric column or operand,
/// op not in IsColumnarMapOp); the caller must fall back to per-row
/// evaluation.
bool ApplyMapKernel(BinOp op, const Value& operand,
                    const std::vector<uint8_t>& live, Column* col);

/// Clears `(*live)[i]` for rows failing `row ⊕ operand`, reproducing
/// EvalBinOp comparison semantics exactly (numeric via double compare,
/// strings via std::string::compare with the verdict computed once per
/// dictionary entry). Returns false — mask untouched — when not covered.
bool ApplyFilterKernel(BinOp op, const Value& operand, const Column& col,
                       std::vector<uint8_t>* live);

/// Key/payload shapes the typed reduce path pins on first sight.
enum class TypedKeyMode : uint8_t { kNone, kBool, kInt64, kDouble, kString };
enum class TypedPayloadMode : uint8_t { kNone, kInt64, kDouble };

/// Map-side combine output kept typed across the shuffle: parallel
/// arrays of cached key hashes, raw 64-bit key patterns (int64 value,
/// double bits, bool 0/1, string dictionary code) and numeric payloads
/// (pay_ints or pay_doubles by payload_mode). Entries stand for sorted
/// (key, payload) pair rows that are never boxed. For string keys
/// (key_mode == kString) each key_bits entry is a code into this
/// batch's own dict_values/dict_hashes tables; the shuffle re-interns
/// codes into a per-destination dictionary when it concatenates
/// batches, so string keys stay typed end-to-end.
struct TypedRows {
  TypedKeyMode key_mode = TypedKeyMode::kNone;
  TypedPayloadMode payload_mode = TypedPayloadMode::kNone;
  std::vector<size_t> hashes;
  std::vector<int64_t> key_bits;
  std::vector<int64_t> pay_ints;
  std::vector<double> pay_doubles;
  /// String-key dictionary: distinct key Values (payloads shared, not
  /// copied) and their cached Value::Hash, indexed by code. Empty unless
  /// key_mode == kString.
  std::vector<Value> dict_values;
  std::vector<size_t> dict_hashes;

  size_t size() const { return hashes.size(); }
  /// Wire bytes of the boxed pair row an entry stands for —
  /// Value::SerializedBytes of (key, payload): tuple header, key, 8.
  int64_t EntryBytes() const {
    return 4 + (key_mode == TypedKeyMode::kBool ? 1 : 8) + 8;
  }
  /// EntryBytes for entry `i`: string keys serialize as 4 + strlen, so
  /// their wire size is per-entry, not per-batch.
  int64_t EntryBytesAt(size_t i) const {
    if (key_mode != TypedKeyMode::kString) return EntryBytes();
    return 4 + 4 +
           static_cast<int64_t>(
               dict_values[static_cast<size_t>(key_bits[i])]
                   .AsString()
                   .size()) +
           8;
  }
  /// Boxes the entries back into HashedRow pairs, appending to `out` in
  /// entry order — the fallback when a sibling partition could not stay
  /// typed and the whole shuffle drops to boxed rows.
  void EmitHashed(HashedVec* out) const;
};

/// Streaming typed reduceByKey combine: (key, value) pair rows with key
/// and value kinds pinned by the first row, accumulated with native
/// int64/double arithmetic in arrival order (the boxed fold order, so
/// float results are bit-identical). A row that deviates — non-pair,
/// key/value kind change, unsupported kind — makes Add() return false
/// WITHOUT consuming the row; the caller then spills the accumulated
/// state into a boxed KeyedAccumulator<Value> (SpillTo preserves entry
/// order, cached hashes and payloads exactly) and continues boxed from
/// that row, byte-identical to having run boxed all along.
class TypedReduceAccumulator {
 public:
  TypedReduceAccumulator(BinOp op, size_t expected_keys);

  static bool SupportsOp(BinOp op) { return IsColumnarReduceOp(op); }

  /// Consumes one pair row, hashing the key (bit-identical to
  /// Value::Hash; string keys hash once per distinct entry).
  bool Add(const Value& row);
  /// Same, trusting `hash` (reduce side: the hash crossed the shuffle).
  bool AddHashed(size_t hash, const Value& row);

  size_t size() const;          ///< distinct keys
  size_t rows() const { return rows_; }  ///< rows accepted

  /// Replays the accumulated state into `acc` in insertion order.
  void SpillTo(KeyedAccumulator<Value>* acc) const;

  /// Emits entries sorted by key (Value::Compare order) as
  /// HashedRow{cached hash, (key, payload)} — the combine-side output.
  void EmitSortedHashed(HashedVec* out) const;
  /// Emits entries sorted by key as plain (key, payload) rows — the
  /// reduce-side output.
  void EmitSortedRows(ValueVec* out) const;
  /// Emits entries sorted by key as typed arrays — the combine-side
  /// output of the typed shuffle, no boxed row ever built. String keys
  /// copy the dictionary into the batch's dict tables; each emitted
  /// key_bits entry is its dictionary code.
  bool EmitSortedTyped(TypedRows* out) const;

  /// Opens the typed fast lane for AddHashedBits: pins the key and
  /// payload modes up front. For kString the caller must pass the
  /// shuffled batch's dictionary in `dict`; AddHashedBits key_bits are
  /// then codes into it (the shuffle's per-destination re-intern makes
  /// code equality coincide with key equality). Returns false when
  /// kString arrives without a dictionary or the modes conflict with
  /// rows already accumulated.
  bool BeginTyped(TypedKeyMode kmode, TypedPayloadMode pmode,
                  const std::vector<Value>* dict = nullptr);
  /// Folds one typed entry (the reduce side of the typed shuffle). The
  /// caller guarantees the entry matches the BeginTyped modes; the
  /// unused payload argument is ignored.
  void AddHashedBits(size_t hash, int64_t key_bits, int64_t pay_int,
                     double pay_double);

  /// Estimated footprint of the typed table (probe slots, hashes, key
  /// bits, payload columns — capacities, since the reservation is the
  /// cost). Mirrors KeyedAccumulator::MemoryBytes for the telemetry
  /// watermark; dictionary string storage is not chased.
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(uint32_t) +
           hashes_.capacity() * sizeof(size_t) +
           key_bits_.capacity() * sizeof(int64_t) +
           pay_ints_.capacity() * sizeof(int64_t) +
           pay_doubles_.capacity() * sizeof(double);
  }

 private:
  using KeyMode = TypedKeyMode;
  using PayloadMode = TypedPayloadMode;

  bool AddInternal(const Value& row, bool trusted_hash, size_t hash);
  bool AccumulateAt(size_t entry, const Value& val, bool inserted);
  /// Entry index for the key (creating it), or SIZE_MAX on kind change.
  size_t FindOrCreateNumeric(size_t hash, int64_t bits);
  Value KeyValueAt(size_t i) const;
  Value PayloadValueAt(size_t i) const;
  std::vector<uint32_t> SortedOrder() const;
  void Grow();

  BinOp op_;
  KeyMode key_mode_ = KeyMode::kNone;
  PayloadMode payload_mode_ = PayloadMode::kNone;
  size_t rows_ = 0;

  // Numeric/bool keys: open addressing over the raw 64-bit key pattern
  // (int64 value, double bits, bool 0/1) with the cached Value::Hash.
  // Equality follows Value::operator==: ints by value, doubles by ==
  // (so +0.0 and -0.0 merge, NaN never matches — exactly the boxed
  // behavior), bools by value.
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
  std::vector<size_t> hashes_;
  std::vector<int64_t> key_bits_;

  // String keys: the dictionary is the key table; entry index == code.
  StringDictionary dict_;
  // Reduce-side string keys (BeginTyped with a dictionary): keys live
  // in the caller's table, key_bits_ holds its codes, and
  // FindOrCreateNumeric dedupes on the code (exact: the shuffle's
  // per-destination re-intern made codes unique per string).
  const std::vector<Value>* ext_dict_ = nullptr;

  // Payloads, parallel to entries.
  std::vector<int64_t> pay_ints_;
  std::vector<double> pay_doubles_;
};

/// Streaming typed scalar fold for Engine::Reduce over a native BinOp:
/// acc = acc ⊕ row in arrival order. Add() returns false without
/// consuming the row on a kind change; the caller converts Result() to a
/// boxed accumulator and continues with EvalBinOp.
class TypedFold {
 public:
  explicit TypedFold(BinOp op) : op_(op) {}

  static bool SupportsOp(BinOp op) { return IsColumnarReduceOp(op); }

  bool Add(const Value& v);
  bool empty() const { return mode_ == Mode::kNone; }
  size_t rows() const { return rows_; }
  Value Result() const;

 private:
  enum class Mode : uint8_t { kNone, kInt64, kDouble };
  BinOp op_;
  Mode mode_ = Mode::kNone;
  size_t rows_ = 0;
  int64_t int_acc_ = 0;
  double double_acc_ = 0;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_COLUMN_BATCH_H_
