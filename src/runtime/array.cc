#include "runtime/array.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace diablo::runtime {

namespace {

Status CheckPair(const Value& row) {
  if (!row.is_tuple() || row.tuple().size() != 2) {
    return Status::RuntimeError(
        StrCat("sparse array row is not a (key,value) pair: ",
               row.ToString()));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ValueVec> ArrayMergeLocal(const ValueVec& x, const ValueVec& y) {
  std::map<Value, Value> merged;
  for (const Value& row : x) {
    DIABLO_RETURN_IF_ERROR(CheckPair(row));
    merged.insert_or_assign(row.tuple()[0], row.tuple()[1]);
  }
  for (const Value& row : y) {
    DIABLO_RETURN_IF_ERROR(CheckPair(row));
    merged.insert_or_assign(row.tuple()[0], row.tuple()[1]);
  }
  ValueVec out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) out.push_back(Value::MakePair(k, v));
  return out;
}

StatusOr<Dataset> ArrayMerge(Engine& engine, const Dataset& x,
                             const Dataset& y, const std::string& label) {
  DIABLO_ASSIGN_OR_RETURN(Dataset grouped, engine.CoGroup(x, y, label));
  // For every key: choose the last y value when present, else the last x
  // value (right bias of ⊳).
  return engine.FlatMap(
      grouped,
      [](const Value& row) -> StatusOr<ValueVec> {
        const Value& key = row.tuple()[0];
        const Value& sides = row.tuple()[1];
        const ValueVec& xs = sides.tuple()[0].bag();
        const ValueVec& ys = sides.tuple()[1].bag();
        ValueVec out;
        if (!ys.empty()) {
          out.push_back(Value::MakePair(key, ys.back()));
        } else if (!xs.empty()) {
          out.push_back(Value::MakePair(key, xs.back()));
        }
        return out;
      },
      label + ".choose");
}

Value ArrayIndexLocal(const ValueVec& array, const Value& key) {
  for (const Value& row : array) {
    if (row.is_tuple() && row.tuple().size() == 2 && row.tuple()[0] == key) {
      return Value::SingletonBag(row.tuple()[1]);
    }
  }
  return Value::EmptyBag();
}

ValueVec DenseToSparseVector(const std::vector<double>& values) {
  ValueVec out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(Value::MakePair(Value::MakeInt(static_cast<int64_t>(i)),
                                  Value::MakeDouble(values[i])));
  }
  return out;
}

ValueVec DenseToSparseMatrix(const std::vector<std::vector<double>>& rows) {
  ValueVec out;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) {
      out.push_back(Value::MakePair(
          MatrixKey(static_cast<int64_t>(i), static_cast<int64_t>(j)),
          Value::MakeDouble(rows[i][j])));
    }
  }
  return out;
}

Value MatrixKey(int64_t i, int64_t j) {
  return Value::MakePair(Value::MakeInt(i), Value::MakeInt(j));
}

}  // namespace diablo::runtime
