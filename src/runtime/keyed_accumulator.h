#ifndef DIABLO_RUNTIME_KEYED_ACCUMULATOR_H_
#define DIABLO_RUNTIME_KEYED_ACCUMULATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/value.h"

namespace diablo::runtime {

/// A row crossing a shuffle boundary, carrying the memoized hash of its
/// key. The scatter computes Value::Hash() exactly once per produced
/// row; the combine and merge sides, and any recovery replay, reuse the
/// carried hash instead of re-walking the (possibly deeply nested) key.
struct HashedRow {
  size_t hash = 0;
  Value row;
};
using HashedVec = std::vector<HashedRow>;

/// Open-addressing hash table keyed by (cached hash, Value), the
/// aggregation workhorse of the wide operators (groupByKey, reduceByKey,
/// join build side, coGroup, distinct).
///
/// Design constraints, in order:
///  - keys hash ONCE: every probe compares the cached 64-bit hash before
///    falling back to structural Value equality, and growing the table
///    never rehashes a key;
///  - deterministic output: entries are kept in insertion order (a flat
///    vector) and the probe table only stores indices into it, so
///    iteration never depends on hash order. SortByKey() canonicalizes
///    terminal output by Value::Compare, which makes results
///    byte-identical to the ordered-map (std::map<Value, ...>) path this
///    table replaced;
///  - single pass, no per-node allocation: linear probing over a
///    power-of-two slot array of uint32 entry indices.
///
/// Not thread-safe; each partition task owns its own accumulator.
template <typename Payload>
class KeyedAccumulator {
 public:
  struct Entry {
    size_t hash;
    Value key;
    Payload payload;
  };
  /// Result of FindOrCreate: the payload slot plus whether it is new.
  struct Ref {
    Payload& payload;
    bool inserted;
  };

  /// `expected_keys` pre-sizes the table so the common case (keys known
  /// to be at most the row count) never rehashes mid-build.
  explicit KeyedAccumulator(size_t expected_keys = 0) {
    slots_.assign(TableSizeFor(expected_keys), 0);
    mask_ = slots_.size() - 1;
    entries_.reserve(expected_keys);
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries in insertion order (or key order after SortByKey).
  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The payload for `key`, default-constructed on first sight. `hash`
  /// MUST equal key.Hash(); it is trusted, never recomputed.
  Ref FindOrCreate(size_t hash, const Value& key) {
    if ((entries_.size() + 1) * 4 > slots_.size() * 3) Grow();
    size_t i = hash & mask_;
    for (;;) {
      const uint32_t s = slots_[i];
      if (s == 0) {
        entries_.push_back(Entry{hash, key, Payload{}});
        slots_[i] = static_cast<uint32_t>(entries_.size());
        return Ref{entries_.back().payload, true};
      }
      Entry& e = entries_[s - 1];
      if (e.hash == hash && e.key == key) return Ref{e.payload, false};
      i = (i + 1) & mask_;
    }
  }

  /// The payload for `key`, or nullptr when absent (join probe side).
  Payload* Find(size_t hash, const Value& key) {
    size_t i = hash & mask_;
    for (;;) {
      const uint32_t s = slots_[i];
      if (s == 0) return nullptr;
      Entry& e = entries_[s - 1];
      if (e.hash == hash && e.key == key) return &e.payload;
      i = (i + 1) & mask_;
    }
  }

  /// Estimated footprint of the table itself: probe slots plus the entry
  /// vector (capacities, not sizes — the reservation is the cost). Does
  /// not chase heap payloads behind Value keys, so it is a lower bound;
  /// the telemetry watermark only needs a consistent, cheap estimate.
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(uint32_t) +
           entries_.capacity() * sizeof(Entry);
  }

  /// Reorders entries by Value::Compare on the key, canonicalizing the
  /// output of a terminal aggregation. The probe table is rebuilt from
  /// the cached hashes, so the accumulator stays usable (keys are
  /// unique, so the sort needs no stability).
  void SortByKey() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    RebuildSlots();
  }

 private:
  static size_t TableSizeFor(size_t expected_keys) {
    // Capacity for `expected_keys` at < 3/4 load, rounded to a power of
    // two, never below 16 slots.
    size_t want = expected_keys + expected_keys / 3 + 1;
    size_t size = 16;
    while (size < want) size <<= 1;
    return size;
  }

  void Grow() {
    slots_.assign(slots_.size() * 2, 0);
    mask_ = slots_.size() - 1;
    ReinsertAll();
  }

  void RebuildSlots() {
    std::fill(slots_.begin(), slots_.end(), 0);
    ReinsertAll();
  }

  void ReinsertAll() {
    for (size_t idx = 0; idx < entries_.size(); ++idx) {
      size_t i = entries_[idx].hash & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<uint32_t>(idx + 1);
    }
  }

  /// Entry index + 1 per slot; 0 marks an empty slot.
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_KEYED_ACCUMULATOR_H_
