#ifndef DIABLO_RUNTIME_FAULT_H_
#define DIABLO_RUNTIME_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace diablo::runtime {

/// Deterministic fault injection for the simulated cluster engine.
///
/// A real DISC framework owes half its value to surviving machine
/// failures; the engine reproduces that story with a seeded injector the
/// scheduler consults at every decision point. Every draw is a pure
/// function of (seed, stage, partition, attempt, ...), so a run with a
/// fixed seed is bit-reproducible regardless of host_threads or thread
/// interleaving, and two runs with the same seed observe the exact same
/// faults, retries, and recoveries. Injected faults never change
/// results: any run that completes produces the same output as the
/// fault-free run (asserted in fault_tolerance_test.cc).
///
/// Stages here are the engine's internal task waves, numbered from 0 in
/// execution order. Under narrow-stage fusion (EngineConfig::fuse_narrow,
/// the default) deferred narrow operators consume NO stage ids — the
/// whole pending chain runs inside the wave of the next stage boundary
/// (Force, shuffle, combine, reduce, checkpoint, collect). A wide
/// operator spends one wave per internal phase (e.g. combine/shuffle/
/// reduce). With fusion off, every narrow operator is one wave of its
/// own. Directive coordinates therefore depend on the fusion setting.

/// One-shot directive: the task for `partition` of stage `stage` dies on
/// its first attempt (the scheduler retries it on the next attempt).
struct KillTask {
  int stage = 0;
  int partition = 0;
};

/// One-shot directive: when stage `stage` starts, the materialized
/// partition `partition` of its input number `input_index` (0 = first /
/// only input, 1 = right side of a join) has been lost with its worker
/// and must be recomputed from lineage before the stage can run.
struct LosePartition {
  int stage = 0;
  int partition = 0;
  int input_index = 0;
};

/// Fault-model knobs, part of EngineConfig. All rates are per-draw
/// probabilities in [0, 1]; 0 disables that fault class.
struct FaultConfig {
  /// Seed of the deterministic injector. Two runs with equal seeds (and
  /// equal programs/configs) observe identical faults.
  uint64_t seed = 0;
  /// Probability that a task attempt is killed before it runs.
  double task_failure_rate = 0.0;
  /// Probability that a successful task attempt straggles; its runtime
  /// is multiplied by `straggler_multiplier` in the cost model.
  double straggler_rate = 0.0;
  double straggler_multiplier = 4.0;
  /// Probability that one shuffled row's wire payload is corrupted in
  /// flight (only effective with EngineConfig::serialize_shuffles): the
  /// simulated checksum detects it and the fetch task retries.
  double corrupt_shuffle_rate = 0.0;
  /// Retry budget per task. When a task fails this many attempts the
  /// job aborts with a descriptive RuntimeError.
  int max_task_attempts = 4;
  /// Simulated scheduler backoff charged before retry k: base * 2^k.
  double retry_backoff_seconds = 0.05;
  /// TargetExecutor checkpoints a loop-carried array when its lineage
  /// depth reaches this many operators (0 disables auto-checkpointing).
  int lineage_checkpoint_depth = 16;
  /// One-shot kill / partition-loss directives (see structs above).
  std::vector<KillTask> kill_tasks;
  std::vector<LosePartition> lose_partitions;
  /// Keep lineage recompute closures alive even with every simulated
  /// fault class disarmed. The distributed backend (src/dist/) sets
  /// this: a real SIGKILL can lose partitions at any moment, and
  /// recovery needs the recompute path that enabled() otherwise prunes.
  bool retain_lineage = false;

  /// True when any fault class can fire. When false the engine skips
  /// all fault bookkeeping (and builds no recompute closures).
  bool enabled() const;
};

/// Stateless oracle answering "does fault X hit here?" from pure hashes
/// of the seed and the coordinates. Thread-safe by construction.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Should this task attempt be killed before running?
  bool TaskAttemptFails(int stage, int partition, int attempt) const;

  /// Runtime multiplier of a completed attempt (1.0 = no straggling).
  double StragglerMultiplier(int stage, int partition, int attempt) const;

  /// Should row `row` of shuffle-map task `partition` be corrupted in
  /// flight on this attempt?
  bool CorruptShuffleRow(int stage, int partition, int attempt,
                         int64_t row) const;

  /// Which byte of a `size`-byte wire payload the corruption flips.
  size_t CorruptByteIndex(int stage, int partition, int64_t row,
                          size_t size) const;

  /// Input partitions of (stage, input_index) lost to directives, in
  /// directive order. Out-of-range partitions are ignored.
  std::vector<int> LostPartitions(int stage, int input_index,
                                  int num_partitions) const;

 private:
  /// Uniform draw in [0, 1) keyed by a stream tag and coordinates.
  double Uniform(uint64_t stream, uint64_t a, uint64_t b, uint64_t c) const;

  FaultConfig config_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_FAULT_H_
