#include "runtime/operators.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace diablo::runtime {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
    case BinOp::kArgmin: return "argmin";
  }
  return "?";
}

const char* UnOpName(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kNot: return "!";
  }
  return "?";
}

bool IsCommutativeMonoid(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kMul:
    case BinOp::kAnd:
    case BinOp::kOr:
    case BinOp::kMin:
    case BinOp::kMax:
    case BinOp::kArgmin:
      return true;
    default:
      return false;
  }
}

Value MonoidIdentity(BinOp op, const Value& sample) {
  // Elementwise monoids (tuple + / min / max) have elementwise identities.
  if (sample.is_tuple() && op != BinOp::kArgmin) {
    ValueVec elems;
    elems.reserve(sample.tuple().size());
    for (const Value& v : sample.tuple()) {
      elems.push_back(MonoidIdentity(op, v));
    }
    return Value::MakeTuple(std::move(elems));
  }
  const bool dbl = sample.is_double();
  switch (op) {
    case BinOp::kAdd:
      return dbl ? Value::MakeDouble(0.0) : Value::MakeInt(0);
    case BinOp::kMul:
      return dbl ? Value::MakeDouble(1.0) : Value::MakeInt(1);
    case BinOp::kAnd:
      return Value::MakeBool(true);
    case BinOp::kOr:
      return Value::MakeBool(false);
    case BinOp::kMin:
      return dbl ? Value::MakeDouble(std::numeric_limits<double>::infinity())
                 : Value::MakeInt(std::numeric_limits<int64_t>::max());
    case BinOp::kMax:
      return dbl ? Value::MakeDouble(-std::numeric_limits<double>::infinity())
                 : Value::MakeInt(std::numeric_limits<int64_t>::min());
    case BinOp::kArgmin:
      return Value::MakePair(
          Value::MakeDouble(std::numeric_limits<double>::infinity()),
          Value::MakeUnit());
    default:
      return Value::MakeUnit();
  }
}

namespace {

Status KindMismatch(BinOp op, const Value& a, const Value& b) {
  return Status::RuntimeError(
      StrCat("operator '", BinOpName(op), "' applied to ", KindName(a.kind()),
             " and ", KindName(b.kind())));
}

StatusOr<Value> NumericOp(BinOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return KindMismatch(op, a, b);
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case BinOp::kAdd: return Value::MakeInt(x + y);
      case BinOp::kSub: return Value::MakeInt(x - y);
      case BinOp::kMul: return Value::MakeInt(x * y);
      case BinOp::kDiv:
        if (y == 0) return Status::RuntimeError("integer division by zero");
        return Value::MakeInt(x / y);
      case BinOp::kMod:
        if (y == 0) return Status::RuntimeError("integer modulo by zero");
        return Value::MakeInt(x % y);
      case BinOp::kMin: return Value::MakeInt(std::min(x, y));
      case BinOp::kMax: return Value::MakeInt(std::max(x, y));
      default: break;
    }
  }
  double x = a.ToDouble(), y = b.ToDouble();
  switch (op) {
    case BinOp::kAdd: return Value::MakeDouble(x + y);
    case BinOp::kSub: return Value::MakeDouble(x - y);
    case BinOp::kMul: return Value::MakeDouble(x * y);
    case BinOp::kDiv: return Value::MakeDouble(x / y);
    case BinOp::kMod: return Value::MakeDouble(std::fmod(x, y));
    case BinOp::kMin: return Value::MakeDouble(std::min(x, y));
    case BinOp::kMax: return Value::MakeDouble(std::max(x, y));
    default: break;
  }
  return KindMismatch(op, a, b);
}

}  // namespace

StatusOr<Value> EvalBinOp(BinOp op, const Value& a, const Value& b) {
  // Elementwise lifting: + / min / max apply componentwise to tuples of
  // equal arity. This gives the paper's composite monoids (e.g. KMeans'
  // Avg = pairwise (sum, count) addition) without user-defined classes.
  if ((op == BinOp::kAdd || op == BinOp::kMin || op == BinOp::kMax) &&
      a.is_tuple() && b.is_tuple()) {
    if (a.tuple().size() != b.tuple().size()) {
      return Status::RuntimeError(
          StrCat("elementwise '", BinOpName(op), "' on tuples of arity ",
                 a.tuple().size(), " and ", b.tuple().size()));
    }
    ValueVec out;
    out.reserve(a.tuple().size());
    for (size_t i = 0; i < a.tuple().size(); ++i) {
      DIABLO_ASSIGN_OR_RETURN(Value v,
                              EvalBinOp(op, a.tuple()[i], b.tuple()[i]));
      out.push_back(std::move(v));
    }
    return Value::MakeTuple(std::move(out));
  }
  if (op == BinOp::kArgmin) {
    // (score, payload...) tuples; the identity pair (inf, ()) loses to
    // any real operand.
    if (!a.is_tuple() || !b.is_tuple() || a.tuple().empty() ||
        b.tuple().empty() || !a.tuple()[0].is_numeric() ||
        !b.tuple()[0].is_numeric()) {
      return Status::RuntimeError(
          StrCat("argmin expects (score, ...) tuples, got ", a.ToString(),
                 " and ", b.ToString()));
    }
    return a.tuple()[0].ToDouble() <= b.tuple()[0].ToDouble() ? a : b;
  }
  switch (op) {
    case BinOp::kAdd:
      // String concatenation shares the + operator.
      if (a.is_string() && b.is_string())
        return Value::MakeString(a.AsString() + b.AsString());
      [[fallthrough]];
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod:
    case BinOp::kMin:
    case BinOp::kMax:
      return NumericOp(op, a, b);
    case BinOp::kEq:
      // Equality is structural but numeric kinds compare by value so that
      // `1 == 1.0` holds, matching the untyped surface language.
      if (a.is_numeric() && b.is_numeric())
        return Value::MakeBool(a.ToDouble() == b.ToDouble());
      return Value::MakeBool(a == b);
    case BinOp::kNe: {
      DIABLO_ASSIGN_OR_RETURN(Value eq, EvalBinOp(BinOp::kEq, a, b));
      return Value::MakeBool(!eq.AsBool());
    }
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      int cmp;
      if (a.is_numeric() && b.is_numeric()) {
        double x = a.ToDouble(), y = b.ToDouble();
        cmp = x == y ? 0 : (x < y ? -1 : 1);
      } else if (a.is_string() && b.is_string()) {
        cmp = a.AsString().compare(b.AsString());
      } else {
        return KindMismatch(op, a, b);
      }
      switch (op) {
        case BinOp::kLt: return Value::MakeBool(cmp < 0);
        case BinOp::kLe: return Value::MakeBool(cmp <= 0);
        case BinOp::kGt: return Value::MakeBool(cmp > 0);
        default: return Value::MakeBool(cmp >= 0);
      }
    }
    case BinOp::kAnd:
    case BinOp::kOr: {
      if (!a.is_bool() || !b.is_bool()) return KindMismatch(op, a, b);
      bool r = op == BinOp::kAnd ? (a.AsBool() && b.AsBool())
                                 : (a.AsBool() || b.AsBool());
      return Value::MakeBool(r);
    }
    case BinOp::kArgmin:
      break;  // handled above
  }
  return KindMismatch(op, a, b);
}

StatusOr<Value> EvalUnOp(UnOp op, const Value& v) {
  switch (op) {
    case UnOp::kNeg:
      if (v.is_int()) return Value::MakeInt(-v.AsInt());
      if (v.is_double()) return Value::MakeDouble(-v.AsDouble());
      return Status::RuntimeError(
          StrCat("unary '-' applied to ", KindName(v.kind())));
    case UnOp::kNot:
      if (v.is_bool()) return Value::MakeBool(!v.AsBool());
      return Status::RuntimeError(
          StrCat("unary '!' applied to ", KindName(v.kind())));
  }
  return Status::RuntimeError("unknown unary operator");
}

StatusOr<Value> ReduceBag(BinOp op, const ValueVec& elems) {
  if (elems.empty()) return MonoidIdentity(op, Value::MakeInt(0));
  Value acc = elems[0];
  for (size_t i = 1; i < elems.size(); ++i) {
    DIABLO_ASSIGN_OR_RETURN(acc, EvalBinOp(op, acc, elems[i]));
  }
  return acc;
}

bool BagEquals(const Value& a, const Value& b) {
  if (!a.is_bag() || !b.is_bag()) return false;
  if (a.bag().size() != b.bag().size()) return false;
  ValueVec x = a.bag(), y = b.bag();
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  for (size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] == y[i])) return false;
  }
  return true;
}

bool AlmostEquals(const Value& a, const Value& b, double eps) {
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.ToDouble(), y = b.ToDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= eps * scale;
  }
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Value::Kind::kTuple: {
      if (a.tuple().size() != b.tuple().size()) return false;
      for (size_t i = 0; i < a.tuple().size(); ++i) {
        if (!AlmostEquals(a.tuple()[i], b.tuple()[i], eps)) return false;
      }
      return true;
    }
    case Value::Kind::kRecord: {
      if (a.fields().size() != b.fields().size()) return false;
      for (size_t i = 0; i < a.fields().size(); ++i) {
        if (a.fields()[i].first != b.fields()[i].first) return false;
        if (!AlmostEquals(a.fields()[i].second, b.fields()[i].second, eps))
          return false;
      }
      return true;
    }
    case Value::Kind::kBag:
      return BagAlmostEquals(a, b, eps);
    default:
      return a == b;
  }
}

bool BagAlmostEquals(const Value& a, const Value& b, double eps) {
  if (!a.is_bag() || !b.is_bag()) return false;
  if (a.bag().size() != b.bag().size()) return false;
  ValueVec x = a.bag(), y = b.bag();
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  for (size_t i = 0; i < x.size(); ++i) {
    if (!AlmostEquals(x[i], y[i], eps)) return false;
  }
  return true;
}

}  // namespace diablo::runtime
