#ifndef DIABLO_RUNTIME_SERIALIZE_H_
#define DIABLO_RUNTIME_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "runtime/column_batch.h"
#include "runtime/keyed_accumulator.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// Binary serialization of Values — the wire format rows take across a
/// shuffle. Format: one tag byte per node, little-endian fixed-width
/// scalars, varint-free u32 lengths for strings and sequences.
/// Deterministic: equal values serialize to equal bytes.
///
/// The engine can be configured (EngineConfig::serialize_shuffles) to
/// round-trip every shuffled row through this codec, validating it under
/// load and making SerializedBytes() an exact figure rather than an
/// estimate. The distributed backend (src/dist/) ships these bytes over
/// real sockets, so every decoder below must reject truncated, oversized
/// and bit-flipped input with a Status — never UB.

/// Little-endian fixed-width primitives shared by every layer of the
/// wire format (values, HashedRow batches, dist/ frame payloads).
void PutWireU32(uint32_t v, std::string* out);
void PutWireU64(uint64_t v, std::string* out);
StatusOr<uint32_t> GetWireU32(const std::string& data, size_t* offset);
StatusOr<uint64_t> GetWireU64(const std::string& data, size_t* offset);

/// Appends the encoding of `v` to `out`.
void SerializeValue(const Value& v, std::string* out);

/// Convenience: the encoding of `v`.
std::string Serialize(const Value& v);

/// Decodes one value from `data` starting at `*offset`, advancing it.
/// Errors on truncated or corrupt input.
StatusOr<Value> DeserializeValue(const std::string& data, size_t* offset);

/// Decodes a buffer that contains exactly one value.
StatusOr<Value> Deserialize(const std::string& data);

/// Shuffle rows cross the network with their memoized key hash so the
/// receive side never rehashes: u64 hash, then the encoded row.
void SerializeHashedRow(const HashedRow& hr, std::string* out);
StatusOr<HashedRow> DeserializeHashedRow(const std::string& data,
                                         size_t* offset);

/// A length-prefixed batch of hashed rows (u32 count, then each row).
/// The decoder bounds the declared count against the remaining bytes,
/// so an oversized length prefix fails fast instead of reserving.
void SerializeHashedVec(const HashedVec& rows, std::string* out);
StatusOr<HashedVec> DeserializeHashedVec(const std::string& data,
                                         size_t* offset);

/// A columnar partition batch (runtime/column_batch.h): u32 row count,
/// pairs flag, the boxed keys when paired, then the value column as a
/// tag byte + typed payload (int64/double as u64 patterns, bools as
/// validated 0/1 bytes, strings as a deduplicated dictionary + u32
/// codes, boxed spill columns as encoded values). The decoder bounds
/// every count, validates codes against the dictionary and rejects
/// duplicate dictionary entries, so corrupt bytes fail with a Status.
void SerializeColumnBatch(const ColumnBatch& batch, std::string* out);
StatusOr<ColumnBatch> DeserializeColumnBatch(const std::string& data,
                                             size_t* offset);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_SERIALIZE_H_
