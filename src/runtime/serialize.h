#ifndef DIABLO_RUNTIME_SERIALIZE_H_
#define DIABLO_RUNTIME_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// Binary serialization of Values — the wire format rows would take
/// across a real shuffle. Format: one tag byte per node, little-endian
/// fixed-width scalars, varint-free u32 lengths for strings and
/// sequences. Deterministic: equal values serialize to equal bytes.
///
/// The engine can be configured (EngineConfig::serialize_shuffles) to
/// round-trip every shuffled row through this codec, validating it under
/// load and making SerializedBytes() an exact figure rather than an
/// estimate.

/// Appends the encoding of `v` to `out`.
void SerializeValue(const Value& v, std::string* out);

/// Convenience: the encoding of `v`.
std::string Serialize(const Value& v);

/// Decodes one value from `data` starting at `*offset`, advancing it.
/// Errors on truncated or corrupt input.
StatusOr<Value> DeserializeValue(const std::string& data, size_t* offset);

/// Decodes a buffer that contains exactly one value.
StatusOr<Value> Deserialize(const std::string& data);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_SERIALIZE_H_
