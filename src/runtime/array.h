#ifndef DIABLO_RUNTIME_ARRAY_H_
#define DIABLO_RUNTIME_ARRAY_H_

#include "common/status.h"
#include "runtime/dataset.h"
#include "runtime/engine.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// Sparse-array helpers (paper §3.4).
///
/// A sparse array is a bag of (index, value) pairs: a vector has integer
/// keys, a matrix has (i,j) tuple keys. These helpers implement the array
/// merging operator X ⊳ Y — the union of X and Y where Y wins on
/// conflicting keys — both on local bags and on distributed datasets.

/// Local ⊳: rows of `x` and `y` are (key, value) pairs; on duplicate keys
/// the value from `y` is chosen. When `y` itself contains several values
/// for one key, the last one wins (the paper's update sequencing).
/// The result is sorted by key for determinism.
StatusOr<ValueVec> ArrayMergeLocal(const ValueVec& x, const ValueVec& y);

/// Distributed ⊳, implemented as a coGroup (as the paper notes for Spark).
StatusOr<Dataset> ArrayMerge(Engine& engine, const Dataset& x,
                             const Dataset& y,
                             const std::string& label = "arrayMerge");

/// Looks up the value at `key` in a local sparse array; returns the
/// singleton bag {v} when present, the empty bag otherwise (the lifted
/// indexing semantics of §3.4).
Value ArrayIndexLocal(const ValueVec& array, const Value& key);

/// Builds a sparse vector {(i, values[i])} from dense data.
ValueVec DenseToSparseVector(const std::vector<double>& values);

/// Builds a sparse matrix {((i,j), v)} from row-major dense data.
ValueVec DenseToSparseMatrix(const std::vector<std::vector<double>>& rows);

/// Key helpers.
Value MatrixKey(int64_t i, int64_t j);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_ARRAY_H_
