#include "runtime/column_batch.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <numeric>
#include <utility>

#include "common/strings.h"

namespace diablo::runtime {

namespace {

/// Must stay bit-identical to the combiner in value.cc: HashColumn and
/// the typed accumulators promise the exact Value::Hash bits.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

inline size_t KindSeed(Value::Kind kind) {
  return static_cast<size_t>(kind) * 0x9e3779b9u;
}

inline size_t HashInt64(int64_t x) {
  return HashCombine(KindSeed(Value::Kind::kInt), std::hash<int64_t>()(x));
}

inline size_t HashDoubleBits(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return HashCombine(KindSeed(Value::Kind::kDouble), std::hash<double>()(d));
}

inline size_t HashBoolBits(int64_t bits) {
  return HashCombine(KindSeed(Value::Kind::kBool), bits != 0 ? 1u : 0u);
}

inline int64_t DoubleToBits(double d) {
  int64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

inline double BitsToDouble(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

ColumnTag ScalarTagOf(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kBool:
      return ColumnTag::kBool;
    case Value::Kind::kInt:
      return ColumnTag::kInt64;
    case Value::Kind::kDouble:
      return ColumnTag::kDouble;
    case Value::Kind::kString:
      return ColumnTag::kString;
    default:
      return ColumnTag::kBoxed;
  }
}

}  // namespace

const char* ColumnTagName(ColumnTag tag) {
  switch (tag) {
    case ColumnTag::kUnknown: return "unknown";
    case ColumnTag::kBool: return "bool";
    case ColumnTag::kInt64: return "int64";
    case ColumnTag::kDouble: return "double";
    case ColumnTag::kString: return "string";
    case ColumnTag::kBoxed: return "boxed";
  }
  return "?";
}

std::string ColumnSchema::ToString() const {
  return StrCat("(", ColumnTagName(key), ", ", ColumnTagName(value), ")");
}

// StringDictionary -----------------------------------------------------------

uint32_t StringDictionary::Intern(const Value& v) {
  auto [it, inserted] =
      index_.emplace(v.AsString(), static_cast<uint32_t>(values_.size()));
  if (inserted) {
    values_.push_back(v);
    hashes_.push_back(v.Hash());
  }
  return it->second;
}

// Column ---------------------------------------------------------------------

void Column::Append(const Value& v) {
  const ColumnTag vtag = ScalarTagOf(v);
  if (tag_ == ColumnTag::kUnknown) tag_ = vtag;
  if (vtag != tag_ && tag_ != ColumnTag::kBoxed) DemoteToBoxed();
  switch (tag_) {
    case ColumnTag::kBool:
      bools_.push_back(v.AsBool() ? 1 : 0);
      break;
    case ColumnTag::kInt64:
      ints_.push_back(v.AsInt());
      break;
    case ColumnTag::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case ColumnTag::kString:
      codes_.push_back(dict_.Intern(v));
      break;
    default:
      boxed_.push_back(v);
      break;
  }
  ++size_;
}

Value Column::ValueAt(size_t i) const {
  switch (tag_) {
    case ColumnTag::kBool:
      return Value::MakeBool(bools_[i] != 0);
    case ColumnTag::kInt64:
      return Value::MakeInt(ints_[i]);
    case ColumnTag::kDouble:
      return Value::MakeDouble(doubles_[i]);
    case ColumnTag::kString:
      return dict_.value(codes_[i]);
    default:
      return boxed_[i];
  }
}

void Column::DemoteToBoxed() {
  if (tag_ == ColumnTag::kBoxed) return;
  ValueVec migrated;
  migrated.reserve(size_);
  for (size_t i = 0; i < size_; ++i) migrated.push_back(ValueAt(i));
  boxed_ = std::move(migrated);
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  codes_.clear();
  tag_ = ColumnTag::kBoxed;
}

void Column::PromoteToDouble() {
  doubles_.reserve(ints_.size());
  for (int64_t x : ints_) doubles_.push_back(static_cast<double>(x));
  ints_.clear();
  tag_ = ColumnTag::kDouble;
}

// ColumnBatch ----------------------------------------------------------------

Value ColumnBatch::RowAt(size_t i) const {
  if (pairs) return Value::MakePair(keys[i], values.ValueAt(i));
  return values.ValueAt(i);
}

void ColumnBatch::EmitRows(ValueVec* out) const {
  out->reserve(out->size() + size());
  for (size_t i = 0; i < size(); ++i) out->push_back(RowAt(i));
}

namespace {

template <typename Vec>
void CompactVec(const std::vector<uint8_t>& live, Vec* vec) {
  size_t w = 0;
  for (size_t i = 0; i < vec->size(); ++i) {
    if (!live[i]) continue;
    if (w != i) (*vec)[w] = std::move((*vec)[i]);
    ++w;
  }
  vec->resize(w);
}

}  // namespace

void ColumnBatch::Compact(const std::vector<uint8_t>& live) {
  if (pairs) CompactVec(live, &keys);
  switch (values.tag()) {
    case ColumnTag::kBool:
      CompactVec(live, &values.mutable_bools());
      break;
    case ColumnTag::kInt64:
      CompactVec(live, &values.mutable_ints());
      break;
    case ColumnTag::kDouble:
      CompactVec(live, &values.mutable_doubles());
      break;
    case ColumnTag::kString:
      // Codes compact; the dictionary may keep entries no surviving row
      // references — harmless, and cheaper than re-interning.
      CompactVec(live, &values.mutable_codes());
      break;
    default:
      CompactVec(live, &values.mutable_boxed());
      break;
  }
  size_t alive = 0;
  for (uint8_t l : live) alive += l != 0 ? 1 : 0;
  values.set_size(alive);
}

// HashColumn -----------------------------------------------------------------

void HashColumn(const Column& col, std::vector<size_t>* out) {
  const size_t n = col.size();
  out->resize(n);
  switch (col.tag()) {
    case ColumnTag::kBool: {
      const auto& xs = col.bools();
      for (size_t i = 0; i < n; ++i) (*out)[i] = HashBoolBits(xs[i]);
      break;
    }
    case ColumnTag::kInt64: {
      const auto& xs = col.ints();
      const std::hash<int64_t> h;
      const size_t seed = KindSeed(Value::Kind::kInt);
      for (size_t i = 0; i < n; ++i) (*out)[i] = HashCombine(seed, h(xs[i]));
      break;
    }
    case ColumnTag::kDouble: {
      const auto& xs = col.doubles();
      const std::hash<double> h;
      const size_t seed = KindSeed(Value::Kind::kDouble);
      for (size_t i = 0; i < n; ++i) (*out)[i] = HashCombine(seed, h(xs[i]));
      break;
    }
    case ColumnTag::kString: {
      // The satellite win: one Value::Hash per distinct entry (cached at
      // intern time), an array load per row.
      const auto& codes = col.codes();
      const StringDictionary& dict = col.dict();
      for (size_t i = 0; i < n; ++i) (*out)[i] = dict.hash(codes[i]);
      break;
    }
    default: {
      const ValueVec& xs = col.boxed();
      for (size_t i = 0; i < n; ++i) (*out)[i] = xs[i].Hash();
      break;
    }
  }
}

// Kernel eligibility ---------------------------------------------------------

bool IsColumnarMapOp(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kMin:
    case BinOp::kMax:
      return true;
    default:
      return false;
  }
}

bool IsColumnarCmpOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsColumnarReduceOp(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kMul:
    case BinOp::kMin:
    case BinOp::kMax:
      return true;
    default:
      return false;
  }
}

// Map kernel -----------------------------------------------------------------

namespace {

template <typename T>
void MapLoop(BinOp op, T y, const std::vector<uint8_t>& live,
             std::vector<T>* xs) {
  // Same expressions as NumericOp: x ⊕ y with x the row, y the operand.
  // Only live rows are touched, so a filtered-out row can never trip
  // arithmetic the boxed path would not have evaluated.
  const size_t n = xs->size();
  T* x = xs->data();
  switch (op) {
    case BinOp::kAdd:
      for (size_t i = 0; i < n; ++i)
        if (live[i]) x[i] = x[i] + y;
      break;
    case BinOp::kSub:
      for (size_t i = 0; i < n; ++i)
        if (live[i]) x[i] = x[i] - y;
      break;
    case BinOp::kMul:
      for (size_t i = 0; i < n; ++i)
        if (live[i]) x[i] = x[i] * y;
      break;
    case BinOp::kMin:
      for (size_t i = 0; i < n; ++i)
        if (live[i]) x[i] = std::min(x[i], y);
      break;
    default:  // kMax (callers pre-check IsColumnarMapOp)
      for (size_t i = 0; i < n; ++i)
        if (live[i]) x[i] = std::max(x[i], y);
      break;
  }
}

}  // namespace

bool ApplyMapKernel(BinOp op, const Value& operand,
                    const std::vector<uint8_t>& live, Column* col) {
  if (!IsColumnarMapOp(op)) return false;
  if (col->tag() == ColumnTag::kString) {
    // String concatenation shares '+': transform each dictionary entry
    // once; codes are untouched (distinct entries stay distinct under a
    // common suffix).
    if (op != BinOp::kAdd || !operand.is_string()) return false;
    StringDictionary next;
    for (uint32_t c = 0; c < col->dict().size(); ++c) {
      next.Intern(Value::MakeString(col->dict().str(c) + operand.AsString()));
    }
    col->mutable_dict() = std::move(next);
    return true;
  }
  if (!operand.is_numeric()) return false;
  if (col->tag() == ColumnTag::kInt64) {
    if (operand.is_int()) {
      MapLoop<int64_t>(op, operand.AsInt(), live, &col->mutable_ints());
      return true;
    }
    col->PromoteToDouble();  // int ⊕ double promotes, like NumericOp
  }
  if (col->tag() != ColumnTag::kDouble) return false;
  MapLoop<double>(op, operand.ToDouble(), live, &col->mutable_doubles());
  return true;
}

// Filter kernel --------------------------------------------------------------

namespace {

bool CmpVerdict(BinOp op, int cmp) {
  switch (op) {
    case BinOp::kLt: return cmp < 0;
    case BinOp::kLe: return cmp <= 0;
    case BinOp::kGt: return cmp > 0;
    default: return cmp >= 0;  // kGe
  }
}

template <typename Get>
void FilterNumericLoop(BinOp op, double y, size_t n, Get get,
                       std::vector<uint8_t>* live) {
  uint8_t* keep = live->data();
  if (op == BinOp::kEq || op == BinOp::kNe) {
    const bool want = op == BinOp::kEq;
    for (size_t i = 0; i < n; ++i)
      if (keep[i]) keep[i] = (get(i) == y) == want ? 1 : 0;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    // Exactly EvalBinOp's comparison: a three-way via doubles, so NaN
    // rows land on cmp=1 (">"-side), not on a direct operator.
    const double x = get(i);
    const int cmp = x == y ? 0 : (x < y ? -1 : 1);
    keep[i] = CmpVerdict(op, cmp) ? 1 : 0;
  }
}

}  // namespace

bool ApplyFilterKernel(BinOp op, const Value& operand, const Column& col,
                       std::vector<uint8_t>* live) {
  if (!IsColumnarCmpOp(op)) return false;
  const size_t n = col.size();
  switch (col.tag()) {
    case ColumnTag::kInt64:
      if (!operand.is_numeric()) return false;
      FilterNumericLoop(
          op, operand.ToDouble(), n,
          [&](size_t i) { return static_cast<double>(col.ints()[i]); }, live);
      return true;
    case ColumnTag::kDouble:
      if (!operand.is_numeric()) return false;
      FilterNumericLoop(
          op, operand.ToDouble(), n, [&](size_t i) { return col.doubles()[i]; },
          live);
      return true;
    case ColumnTag::kString: {
      if (!operand.is_string()) return false;
      // One verdict per dictionary entry, an array load per row.
      const StringDictionary& dict = col.dict();
      std::vector<uint8_t> verdict(dict.size());
      for (uint32_t c = 0; c < dict.size(); ++c) {
        const int cmp = dict.str(c).compare(operand.AsString());
        const bool keep = op == BinOp::kEq   ? cmp == 0
                          : op == BinOp::kNe ? cmp != 0
                                             : CmpVerdict(op, cmp);
        verdict[c] = keep ? 1 : 0;
      }
      uint8_t* keep = live->data();
      const auto& codes = col.codes();
      for (size_t i = 0; i < n; ++i)
        if (keep[i]) keep[i] = verdict[codes[i]];
      return true;
    }
    case ColumnTag::kBool: {
      // Structural equality only; ordering bools is a boxed-path error.
      if ((op != BinOp::kEq && op != BinOp::kNe) || !operand.is_bool()) {
        return false;
      }
      const uint8_t y = operand.AsBool() ? 1 : 0;
      const bool want = op == BinOp::kEq;
      uint8_t* keep = live->data();
      const auto& xs = col.bools();
      for (size_t i = 0; i < n; ++i)
        if (keep[i]) keep[i] = ((xs[i] != 0) == (y != 0)) == want ? 1 : 0;
      return true;
    }
    default:
      return false;
  }
}

// TypedReduceAccumulator -----------------------------------------------------

namespace {

size_t TableSizeFor(size_t expected_keys) {
  size_t want = expected_keys + expected_keys / 3 + 1;
  size_t size = 16;
  while (size < want) size <<= 1;
  return size;
}

template <typename T>
T FoldStep(BinOp op, T acc, T v) {
  switch (op) {
    case BinOp::kAdd: return acc + v;
    case BinOp::kMul: return acc * v;
    case BinOp::kMin: return std::min(acc, v);
    default: return std::max(acc, v);  // kMax
  }
}

}  // namespace

TypedReduceAccumulator::TypedReduceAccumulator(BinOp op, size_t expected_keys)
    : op_(op) {
  slots_.assign(TableSizeFor(expected_keys), 0);
  mask_ = slots_.size() - 1;
}

size_t TypedReduceAccumulator::size() const {
  return payload_mode_ == PayloadMode::kInt64 ? pay_ints_.size()
                                              : pay_doubles_.size();
}

bool TypedReduceAccumulator::Add(const Value& row) {
  return AddInternal(row, /*trusted_hash=*/false, 0);
}

bool TypedReduceAccumulator::AddHashed(size_t hash, const Value& row) {
  return AddInternal(row, /*trusted_hash=*/true, hash);
}

bool TypedReduceAccumulator::AddInternal(const Value& row, bool trusted_hash,
                                         size_t hash) {
  if (!row.is_tuple() || row.tuple().size() != 2) return false;
  const Value& key = row.tuple()[0];
  const Value& val = row.tuple()[1];

  // Pin key and payload kinds on first sight; any deviation bounces the
  // row back to the caller un-consumed (it spills and continues boxed).
  KeyMode kmode;
  switch (key.kind()) {
    case Value::Kind::kBool: kmode = KeyMode::kBool; break;
    case Value::Kind::kInt: kmode = KeyMode::kInt64; break;
    case Value::Kind::kDouble: kmode = KeyMode::kDouble; break;
    case Value::Kind::kString: kmode = KeyMode::kString; break;
    default: return false;
  }
  PayloadMode pmode;
  switch (val.kind()) {
    case Value::Kind::kInt: pmode = PayloadMode::kInt64; break;
    case Value::Kind::kDouble: pmode = PayloadMode::kDouble; break;
    default: return false;
  }
  if (key_mode_ == KeyMode::kNone) {
    key_mode_ = kmode;
    payload_mode_ = pmode;
  } else if (kmode != key_mode_ || pmode != payload_mode_) {
    return false;
  }

  size_t entry;
  bool inserted;
  if (key_mode_ == KeyMode::kString) {
    const uint32_t code = dict_.Intern(key);
    entry = code;
    inserted = entry == size();
    if (inserted) {
      hashes_.push_back(trusted_hash ? hash : dict_.hash(code));
    }
  } else {
    int64_t bits;
    switch (key_mode_) {
      case KeyMode::kBool: bits = key.AsBool() ? 1 : 0; break;
      case KeyMode::kInt64: bits = key.AsInt(); break;
      default: bits = DoubleToBits(key.AsDouble()); break;
    }
    if (!trusted_hash) {
      switch (key_mode_) {
        case KeyMode::kBool: hash = HashBoolBits(bits); break;
        case KeyMode::kInt64: hash = HashInt64(bits); break;
        default: hash = HashDoubleBits(bits); break;
      }
    }
    const size_t before = hashes_.size();
    entry = FindOrCreateNumeric(hash, bits);
    inserted = hashes_.size() != before;
  }
  if (!AccumulateAt(entry, val, inserted)) return false;
  ++rows_;
  return true;
}

size_t TypedReduceAccumulator::FindOrCreateNumeric(size_t hash, int64_t bits) {
  if ((hashes_.size() + 1) * 4 > slots_.size() * 3) Grow();
  size_t i = hash & mask_;
  for (;;) {
    const uint32_t s = slots_[i];
    if (s == 0) {
      hashes_.push_back(hash);
      key_bits_.push_back(bits);
      slots_[i] = static_cast<uint32_t>(hashes_.size());
      return hashes_.size() - 1;
    }
    const size_t e = s - 1;
    if (hashes_[e] == hash) {
      // Equality follows Value::operator==: doubles compare by value
      // (+0.0 merges with -0.0, NaN matches nothing), ints and bools by
      // bits.
      const bool eq = key_mode_ == KeyMode::kDouble
                          ? BitsToDouble(key_bits_[e]) == BitsToDouble(bits)
                          : key_bits_[e] == bits;
      if (eq) return e;
    }
    i = (i + 1) & mask_;
  }
}

void TypedReduceAccumulator::Grow() {
  slots_.assign(slots_.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (size_t idx = 0; idx < hashes_.size(); ++idx) {
    size_t i = hashes_[idx] & mask_;
    while (slots_[i] != 0) i = (i + 1) & mask_;
    slots_[i] = static_cast<uint32_t>(idx + 1);
  }
}

bool TypedReduceAccumulator::AccumulateAt(size_t entry, const Value& val,
                                          bool inserted) {
  if (payload_mode_ == PayloadMode::kInt64) {
    if (inserted) {
      pay_ints_.push_back(val.AsInt());
    } else {
      pay_ints_[entry] = FoldStep<int64_t>(op_, pay_ints_[entry], val.AsInt());
    }
  } else {
    if (inserted) {
      pay_doubles_.push_back(val.AsDouble());
    } else {
      pay_doubles_[entry] =
          FoldStep<double>(op_, pay_doubles_[entry], val.AsDouble());
    }
  }
  return true;
}

Value TypedReduceAccumulator::KeyValueAt(size_t i) const {
  switch (key_mode_) {
    case KeyMode::kBool:
      return Value::MakeBool(key_bits_[i] != 0);
    case KeyMode::kInt64:
      return Value::MakeInt(key_bits_[i]);
    case KeyMode::kDouble:
      return Value::MakeDouble(BitsToDouble(key_bits_[i]));
    default:
      // String key: either this accumulator interned it (entry index ==
      // code) or it arrived as a code into the caller's dictionary
      // (BeginTyped reduce side).
      if (ext_dict_ != nullptr) {
        return (*ext_dict_)[static_cast<size_t>(key_bits_[i])];
      }
      return dict_.value(static_cast<uint32_t>(i));
  }
}

Value TypedReduceAccumulator::PayloadValueAt(size_t i) const {
  return payload_mode_ == PayloadMode::kInt64
             ? Value::MakeInt(pay_ints_[i])
             : Value::MakeDouble(pay_doubles_[i]);
}

std::vector<uint32_t> TypedReduceAccumulator::SortedOrder() const {
  std::vector<uint32_t> order(size());
  std::iota(order.begin(), order.end(), 0u);
  switch (key_mode_) {
    case KeyMode::kString:
      if (ext_dict_ != nullptr) {
        std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
          return (*ext_dict_)[static_cast<size_t>(key_bits_[a])]
                     .AsString()
                     .compare(
                         (*ext_dict_)[static_cast<size_t>(key_bits_[b])]
                             .AsString()) < 0;
        });
        break;
      }
      std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
        return dict_.str(a).compare(dict_.str(b)) < 0;
      });
      break;
    case KeyMode::kDouble:
      std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
        return BitsToDouble(key_bits_[a]) < BitsToDouble(key_bits_[b]);
      });
      break;
    default:
      std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
        return key_bits_[a] < key_bits_[b];
      });
      break;
  }
  return order;
}

void TypedReduceAccumulator::SpillTo(KeyedAccumulator<Value>* acc) const {
  for (size_t i = 0; i < size(); ++i) {
    auto ref = acc->FindOrCreate(hashes_[i], KeyValueAt(i));
    ref.payload = PayloadValueAt(i);
  }
}

void TypedReduceAccumulator::EmitSortedHashed(HashedVec* out) const {
  const std::vector<uint32_t> order = SortedOrder();
  out->reserve(out->size() + order.size());
  for (uint32_t i : order) {
    out->push_back(
        HashedRow{hashes_[i], Value::MakePair(KeyValueAt(i),
                                              PayloadValueAt(i))});
  }
}

void TypedReduceAccumulator::EmitSortedRows(ValueVec* out) const {
  const std::vector<uint32_t> order = SortedOrder();
  out->reserve(out->size() + order.size());
  for (uint32_t i : order) {
    out->push_back(Value::MakePair(KeyValueAt(i), PayloadValueAt(i)));
  }
}

void TypedRows::EmitHashed(HashedVec* out) const {
  out->reserve(out->size() + size());
  for (size_t i = 0; i < size(); ++i) {
    Value key;
    switch (key_mode) {
      case TypedKeyMode::kBool:
        key = Value::MakeBool(key_bits[i] != 0);
        break;
      case TypedKeyMode::kInt64:
        key = Value::MakeInt(key_bits[i]);
        break;
      case TypedKeyMode::kString:
        key = dict_values[static_cast<size_t>(key_bits[i])];
        break;
      default:
        key = Value::MakeDouble(BitsToDouble(key_bits[i]));
        break;
    }
    Value pay = payload_mode == TypedPayloadMode::kInt64
                    ? Value::MakeInt(pay_ints[i])
                    : Value::MakeDouble(pay_doubles[i]);
    out->push_back(
        HashedRow{hashes[i], Value::MakePair(std::move(key), std::move(pay))});
  }
}

bool TypedReduceAccumulator::EmitSortedTyped(TypedRows* out) const {
  // Externally-dictionaried accumulators (BeginTyped reduce side) emit
  // boxed rows; only self-interned state serializes back to TypedRows.
  if (key_mode_ == KeyMode::kString && ext_dict_ != nullptr) return false;
  const std::vector<uint32_t> order = SortedOrder();
  out->key_mode = key_mode_;
  out->payload_mode = payload_mode_;
  out->hashes.reserve(order.size());
  out->key_bits.reserve(order.size());
  if (payload_mode_ == PayloadMode::kInt64) {
    out->pay_ints.reserve(order.size());
  } else if (payload_mode_ == PayloadMode::kDouble) {
    out->pay_doubles.reserve(order.size());
  }
  if (key_mode_ == KeyMode::kString) {
    // The dictionary travels with the batch: entry index == code, so
    // the rows' key_bits below are codes into this copy. Value payloads
    // are shared, not deep-copied.
    out->dict_values.reserve(size());
    out->dict_hashes.reserve(size());
    for (uint32_t c = 0; c < size(); ++c) {
      out->dict_values.push_back(dict_.value(c));
      out->dict_hashes.push_back(dict_.hash(c));
    }
  }
  for (uint32_t i : order) {
    out->hashes.push_back(hashes_[i]);
    if (key_mode_ == KeyMode::kString) {
      out->key_bits.push_back(static_cast<int64_t>(i));
    } else {
      out->key_bits.push_back(key_bits_[i]);
    }
    if (payload_mode_ == PayloadMode::kInt64) {
      out->pay_ints.push_back(pay_ints_[i]);
    } else {
      out->pay_doubles.push_back(pay_doubles_[i]);
    }
  }
  return true;
}

bool TypedReduceAccumulator::BeginTyped(TypedKeyMode kmode,
                                        TypedPayloadMode pmode,
                                        const std::vector<Value>* dict) {
  if (kmode == KeyMode::kString) {
    if (dict == nullptr) return false;
    ext_dict_ = dict;
  }
  if (key_mode_ == KeyMode::kNone && kmode != KeyMode::kNone) {
    key_mode_ = kmode;
    payload_mode_ = pmode;
    return true;
  }
  return key_mode_ == kmode && payload_mode_ == pmode;
}

void TypedReduceAccumulator::AddHashedBits(size_t hash, int64_t key_bits,
                                           int64_t pay_int,
                                           double pay_double) {
  const size_t before = hashes_.size();
  const size_t entry = FindOrCreateNumeric(hash, key_bits);
  const bool inserted = hashes_.size() != before;
  if (payload_mode_ == PayloadMode::kInt64) {
    if (inserted) {
      pay_ints_.push_back(pay_int);
    } else {
      pay_ints_[entry] = FoldStep<int64_t>(op_, pay_ints_[entry], pay_int);
    }
  } else {
    if (inserted) {
      pay_doubles_.push_back(pay_double);
    } else {
      pay_doubles_[entry] = FoldStep<double>(op_, pay_doubles_[entry],
                                             pay_double);
    }
  }
  ++rows_;
}

// TypedFold ------------------------------------------------------------------

bool TypedFold::Add(const Value& v) {
  if (!v.is_numeric()) return false;
  ++rows_;
  if (mode_ == Mode::kNone) {
    if (v.is_int()) {
      mode_ = Mode::kInt64;
      int_acc_ = v.AsInt();
    } else {
      mode_ = Mode::kDouble;
      double_acc_ = v.AsDouble();
    }
    return true;
  }
  if (mode_ == Mode::kInt64 && v.is_int()) {
    int_acc_ = FoldStep<int64_t>(op_, int_acc_, v.AsInt());
    return true;
  }
  // Mixed int/double folds promote to double, exactly like NumericOp.
  if (mode_ == Mode::kInt64) {
    double_acc_ = static_cast<double>(int_acc_);
    mode_ = Mode::kDouble;
  }
  double_acc_ = FoldStep<double>(op_, double_acc_, v.ToDouble());
  return true;
}

Value TypedFold::Result() const {
  return mode_ == Mode::kInt64 ? Value::MakeInt(int_acc_)
                               : Value::MakeDouble(double_acc_);
}

}  // namespace diablo::runtime
