#ifndef DIABLO_RUNTIME_VALUE_H_
#define DIABLO_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace diablo::runtime {

class Value;

/// The element container shared by tuples and bags. Bags and tuples are
/// immutable once constructed, so the payload is shared between copies of a
/// Value — copying a Value is always O(1).
using ValueVec = std::vector<Value>;
using SharedValues = std::shared_ptr<const ValueVec>;

/// A field list for record values: name/value pairs in declaration order.
using FieldVec = std::vector<std::pair<std::string, Value>>;
using SharedFields = std::shared_ptr<const FieldVec>;

/// A dynamically-typed runtime value.
///
/// This is the single value representation used across the whole system:
/// the reference interpreter of the loop language, the comprehension plan
/// evaluator, and the distributed dataset engine. The paper's sparse arrays
/// `{(K,T)}` are bags of (key, value) tuples of Values.
///
/// Supported kinds:
///  - Unit           the empty tuple `()`, used as the trivial group-by key
///  - Bool, Int (64-bit), Double, String
///  - Tuple          fixed-arity heterogeneous sequence
///  - Record         named fields, `<A = 1, B = "x">`
///  - Bag            an unordered multiset (represented as a vector)
class Value {
 public:
  enum class Kind { kUnit, kBool, kInt, kDouble, kString, kTuple, kRecord, kBag };

  /// Constructs the unit value.
  Value() : rep_(Unit{}) {}

  static Value MakeUnit() { return Value(); }
  static Value MakeBool(bool b) { return Value(Rep(b)); }
  static Value MakeInt(int64_t i) { return Value(Rep(i)); }
  static Value MakeDouble(double d) { return Value(Rep(d)); }
  static Value MakeString(std::string s) {
    return Value(Rep(std::make_shared<const std::string>(std::move(s))));
  }
  static Value MakeTuple(ValueVec elems) {
    return Value(Rep(TupleRep{std::make_shared<const ValueVec>(std::move(elems))}));
  }
  static Value MakePair(Value a, Value b) {
    ValueVec v;
    v.reserve(2);
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return MakeTuple(std::move(v));
  }
  static Value MakeRecord(FieldVec fields) {
    return Value(Rep(RecordRep{std::make_shared<const FieldVec>(std::move(fields))}));
  }
  static Value MakeBag(ValueVec elems) {
    return Value(Rep(BagRep{std::make_shared<const ValueVec>(std::move(elems))}));
  }
  static Value EmptyBag() { return MakeBag({}); }
  /// The singleton bag {v}.
  static Value SingletonBag(Value v) {
    ValueVec e;
    e.push_back(std::move(v));
    return MakeBag(std::move(e));
  }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }

  bool is_unit() const { return kind() == Kind::kUnit; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_tuple() const { return kind() == Kind::kTuple; }
  bool is_record() const { return kind() == Kind::kRecord; }
  bool is_bag() const { return kind() == Kind::kBag; }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const {
    return *std::get<std::shared_ptr<const std::string>>(rep_);
  }
  /// Numeric value widened to double; requires is_numeric().
  double ToDouble() const { return is_int() ? static_cast<double>(AsInt()) : AsDouble(); }

  /// Tuple elements; requires is_tuple().
  const ValueVec& tuple() const { return *std::get<TupleRep>(rep_).elems; }
  /// Record fields; requires is_record().
  const FieldVec& fields() const { return *std::get<RecordRep>(rep_).fields; }
  /// Bag elements; requires is_bag().
  const ValueVec& bag() const { return *std::get<BagRep>(rep_).elems; }

  /// Looks up a record field by name; nullptr if absent.
  const Value* FindField(const std::string& name) const;

  /// Structural equality. Int and Double compare equal only to the same
  /// kind; bags compare as *sequences* here (multiset comparison is
  /// provided by BagEquals in operators.h).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// A deterministic total order across all kinds (kind index first, then
  /// value; sequences lexicographically). Used for stable output ordering.
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  int Compare(const Value& other) const;

  /// A stable hash suitable for partitioning and hash joins.
  size_t Hash() const;

  /// Approximate serialized size in bytes, used by the engine's shuffle
  /// accounting (mirrors the paper's Java-serialization size estimates).
  int64_t SerializedBytes() const;

  /// Renders the value in comprehension-literal syntax, e.g.
  /// `((3,4),1.5)` or `{(1,10),(2,20)}`.
  std::string ToString() const;

 private:
  struct Unit {};
  struct TupleRep { SharedValues elems; };
  struct RecordRep { SharedFields fields; };
  struct BagRep { SharedValues elems; };

  using Rep = std::variant<Unit, bool, int64_t, double,
                           std::shared_ptr<const std::string>, TupleRep,
                           RecordRep, BagRep>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Hash functor so Values can key std::unordered_map.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Convenience: the name of a value kind, for error messages.
const char* KindName(Value::Kind kind);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_VALUE_H_
