#ifndef DIABLO_RUNTIME_WAVE_IO_H_
#define DIABLO_RUNTIME_WAVE_IO_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/column_batch.h"
#include "runtime/keyed_accumulator.h"
#include "runtime/metrics.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// Per-task tally of the intermediates a fused chain streamed through
/// instead of materializing: rows produced at each operator boundary,
/// with bytes estimated from the first row crossing that boundary (a
/// full per-row SerializedBytes() walk would cost more than the
/// materialization it measures).
struct ChainTally {
  std::vector<int64_t> rows;
  std::vector<int64_t> sample_bytes;
  /// Columnar accounting for the task (StageStats::columnar_batches /
  /// columnar_rows_fallback). Carried on the tally because it is
  /// per-task state that must cross the dist wire with the other
  /// per-task outputs.
  int64_t columnar_batches = 0;
  int64_t columnar_rows_fallback = 0;
  /// Peak estimated bytes of the task's keyed accumulator
  /// (KeyedAccumulator / TypedReduceAccumulator MemoryBytes() sampled
  /// after the fold). Crosses the dist wire so worker-side memory
  /// reaches StageStats::accumulator_bytes_peak.
  int64_t accumulator_bytes = 0;

  /// Restartable: called at the top of every task attempt.
  void Reset(size_t boundaries) {
    rows.assign(boundaries, 0);
    sample_bytes.assign(boundaries, 0);
    columnar_batches = 0;
    columnar_rows_fallback = 0;
    accumulator_bytes = 0;
  }
  void Record(size_t boundary, const Value& v) {
    if (boundary >= rows.size()) return;
    if (rows[boundary]++ == 0) sample_bytes[boundary] = v.SerializedBytes();
  }
  void MergeInto(StageStats* stats) const {
    for (size_t i = 0; i < rows.size(); ++i) {
      stats->rows_not_materialized += rows[i];
      stats->bytes_not_materialized += rows[i] * sample_bytes[i];
    }
    stats->columnar_batches += columnar_batches;
    stats->columnar_rows_fallback += columnar_rows_fallback;
    stats->accumulator_bytes_peak =
        std::max(stats->accumulator_bytes_peak, accumulator_bytes);
  }
};

/// The driver-side output slots a task wave writes. Every engine wave
/// writes only per-task slots (out[p], buckets[p], partials[p], ...), so
/// one struct of nullable pointers describes the outputs of all of them.
/// In single-process mode tasks write the slots directly; under the
/// distributed backend (src/dist/) the worker process runs the task,
/// encodes slot index p with EncodeTaskSlots, and the coordinator
/// installs the bytes into the driver's slots with DecodeTaskSlots —
/// same contract, the bytes just cross a socket.
struct WaveSlots {
  /// Plain output rows per task.
  std::vector<ValueVec>* rows = nullptr;
  /// Hashed output rows per task (map-side combine output).
  std::vector<HashedVec>* hashed = nullptr;
  /// Scatter buckets per task: buckets[p][dst] (shuffle waves).
  std::vector<std::vector<HashedVec>>* buckets = nullptr;
  /// Per-task partial aggregate (Reduce).
  std::vector<std::optional<Value>>* partials = nullptr;
  /// One per-task counter (moved bytes, written bytes, reduce work).
  std::vector<int64_t>* nums = nullptr;
  /// Per-task counter vector (per-destination shuffle bytes).
  std::vector<std::vector<int64_t>>* num_vecs = nullptr;
  /// Fused-chain materialization tallies per task.
  std::vector<ChainTally>* tallies = nullptr;
  /// Columnar batch output per task (columnar fused waves under the
  /// distributed backend ship the batch itself — typed payloads and
  /// string dictionaries — instead of boxed rows).
  std::vector<ColumnBatch>* col_batches = nullptr;
};

/// Encodes every present slot of task `task` as length-prefixed wire
/// bytes (runtime/serialize.h primitives). Fails when `task` is out of
/// range of a present slot vector.
StatusOr<std::string> EncodeTaskSlots(const WaveSlots& slots, int task);

/// Decodes `bytes` into task `task`'s slots. Strict: the payload must
/// contain exactly the slots present in `slots` (both sides of the wire
/// hold the same wave closure, so any mismatch means corruption), every
/// length prefix is bounded against the remaining bytes, and trailing
/// bytes are rejected.
Status DecodeTaskSlots(const WaveSlots& slots, int task,
                       const std::string& bytes);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_WAVE_IO_H_
