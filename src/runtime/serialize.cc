#include "runtime/serialize.h"

#include <cstring>

#include "common/strings.h"

namespace diablo::runtime {

namespace {

enum Tag : char {
  kTagUnit = 'u',
  kTagBool = 'b',
  kTagInt = 'i',
  kTagDouble = 'd',
  kTagString = 's',
  kTagTuple = 't',
  kTagRecord = 'r',
  kTagBag = 'g',
};

Status Truncated() {
  return Status::RuntimeError("truncated serialized value");
}

/// Nesting bound for the decoder. Honest encodings never come close
/// (engine rows are pairs of scalars/bags, depth < 10); a corrupted or
/// adversarial buffer full of nested tuple headers must fail with a
/// Status instead of overflowing the stack.
constexpr int kMaxDeserializeDepth = 64;

}  // namespace

void PutWireU32(uint32_t v, std::string* out) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutWireU64(uint64_t v, std::string* out) {
  PutWireU32(static_cast<uint32_t>(v & 0xffffffffu), out);
  PutWireU32(static_cast<uint32_t>(v >> 32), out);
}

StatusOr<uint32_t> GetWireU32(const std::string& data, size_t* offset) {
  if (*offset + 4 > data.size()) return Truncated();
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[*offset + static_cast<size_t>(i)]);
  }
  *offset += 4;
  return v;
}

StatusOr<uint64_t> GetWireU64(const std::string& data, size_t* offset) {
  DIABLO_ASSIGN_OR_RETURN(uint32_t lo, GetWireU32(data, offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t hi, GetWireU32(data, offset));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

namespace {

// Local aliases keep the value codec below unchanged.
void PutU32(uint32_t v, std::string* out) { PutWireU32(v, out); }
void PutU64(uint64_t v, std::string* out) { PutWireU64(v, out); }
StatusOr<uint32_t> GetU32(const std::string& data, size_t* offset) {
  return GetWireU32(data, offset);
}
StatusOr<uint64_t> GetU64(const std::string& data, size_t* offset) {
  return GetWireU64(data, offset);
}

}  // namespace

void SerializeValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kUnit:
      out->push_back(kTagUnit);
      return;
    case Value::Kind::kBool:
      out->push_back(kTagBool);
      out->push_back(v.AsBool() ? 1 : 0);
      return;
    case Value::Kind::kInt:
      out->push_back(kTagInt);
      PutU64(static_cast<uint64_t>(v.AsInt()), out);
      return;
    case Value::Kind::kDouble: {
      out->push_back(kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits, out);
      return;
    }
    case Value::Kind::kString:
      out->push_back(kTagString);
      PutU32(static_cast<uint32_t>(v.AsString().size()), out);
      out->append(v.AsString());
      return;
    case Value::Kind::kTuple:
      out->push_back(kTagTuple);
      PutU32(static_cast<uint32_t>(v.tuple().size()), out);
      for (const Value& elem : v.tuple()) SerializeValue(elem, out);
      return;
    case Value::Kind::kRecord:
      out->push_back(kTagRecord);
      PutU32(static_cast<uint32_t>(v.fields().size()), out);
      for (const auto& [name, field] : v.fields()) {
        PutU32(static_cast<uint32_t>(name.size()), out);
        out->append(name);
        SerializeValue(field, out);
      }
      return;
    case Value::Kind::kBag:
      out->push_back(kTagBag);
      PutU32(static_cast<uint32_t>(v.bag().size()), out);
      for (const Value& elem : v.bag()) SerializeValue(elem, out);
      return;
  }
}

std::string Serialize(const Value& v) {
  std::string out;
  SerializeValue(v, &out);
  return out;
}

namespace {

StatusOr<Value> DeserializeValueAtDepth(const std::string& data, size_t* offset,
                                        int depth) {
  if (depth > kMaxDeserializeDepth) {
    return Status::RuntimeError("serialized value nested too deeply");
  }
  if (*offset >= data.size()) return Truncated();
  char tag = data[(*offset)++];
  switch (tag) {
    case kTagUnit:
      return Value::MakeUnit();
    case kTagBool: {
      if (*offset >= data.size()) return Truncated();
      char b = data[(*offset)++];
      if (b != 0 && b != 1) {
        return Status::RuntimeError("corrupt bool in serialized value");
      }
      return Value::MakeBool(b == 1);
    }
    case kTagInt: {
      DIABLO_ASSIGN_OR_RETURN(uint64_t bits, GetU64(data, offset));
      return Value::MakeInt(static_cast<int64_t>(bits));
    }
    case kTagDouble: {
      DIABLO_ASSIGN_OR_RETURN(uint64_t bits, GetU64(data, offset));
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::MakeDouble(d);
    }
    case kTagString: {
      DIABLO_ASSIGN_OR_RETURN(uint32_t len, GetU32(data, offset));
      if (*offset + len > data.size()) return Truncated();
      std::string s = data.substr(*offset, len);
      *offset += len;
      return Value::MakeString(std::move(s));
    }
    case kTagTuple:
    case kTagBag: {
      DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetU32(data, offset));
      if (static_cast<size_t>(n) > data.size() - *offset) {
        return Truncated();  // cheap sanity bound: >=1 byte per element
      }
      ValueVec elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DIABLO_ASSIGN_OR_RETURN(
            Value v, DeserializeValueAtDepth(data, offset, depth + 1));
        elems.push_back(std::move(v));
      }
      return tag == kTagTuple ? Value::MakeTuple(std::move(elems))
                              : Value::MakeBag(std::move(elems));
    }
    case kTagRecord: {
      DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetU32(data, offset));
      if (static_cast<size_t>(n) > data.size() - *offset) return Truncated();
      FieldVec fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DIABLO_ASSIGN_OR_RETURN(uint32_t len, GetU32(data, offset));
        if (*offset + len > data.size()) return Truncated();
        std::string name = data.substr(*offset, len);
        *offset += len;
        DIABLO_ASSIGN_OR_RETURN(
            Value v, DeserializeValueAtDepth(data, offset, depth + 1));
        fields.emplace_back(std::move(name), std::move(v));
      }
      return Value::MakeRecord(std::move(fields));
    }
    default:
      return Status::RuntimeError(
          StrCat("unknown tag '", std::string(1, tag),
                 "' in serialized value"));
  }
}

}  // namespace

StatusOr<Value> DeserializeValue(const std::string& data, size_t* offset) {
  return DeserializeValueAtDepth(data, offset, 0);
}

StatusOr<Value> Deserialize(const std::string& data) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(Value v, DeserializeValue(data, &offset));
  if (offset != data.size()) {
    return Status::RuntimeError("trailing bytes after serialized value");
  }
  return v;
}

namespace {

/// Shared bound for the column-batch decoder: every element of a typed
/// payload costs at least one byte, so a count prefix larger than the
/// remaining buffer is corrupt and must fail before any reserve().
Status CheckBatchCount(uint32_t n, const std::string& data, size_t offset,
                       const char* what) {
  if (static_cast<size_t>(n) > data.size() - offset) {
    return Status::RuntimeError(
        StrCat("oversized ", what, " count in column batch"));
  }
  return Status::OK();
}

}  // namespace

void SerializeColumnBatch(const ColumnBatch& batch, std::string* out) {
  const Column& col = batch.values;
  PutWireU32(static_cast<uint32_t>(col.size()), out);
  out->push_back(batch.pairs ? 1 : 0);
  if (batch.pairs) {
    for (const Value& k : batch.keys) SerializeValue(k, out);
  }
  out->push_back(static_cast<char>(col.tag()));
  switch (col.tag()) {
    case ColumnTag::kUnknown:
      break;  // empty column, no payload
    case ColumnTag::kBool:
      for (uint8_t b : col.bools()) out->push_back(b ? 1 : 0);
      break;
    case ColumnTag::kInt64:
      for (int64_t x : col.ints()) {
        PutWireU64(static_cast<uint64_t>(x), out);
      }
      break;
    case ColumnTag::kDouble:
      for (double d : col.doubles()) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        PutWireU64(bits, out);
      }
      break;
    case ColumnTag::kString: {
      const StringDictionary& dict = col.dict();
      PutWireU32(static_cast<uint32_t>(dict.size()), out);
      for (uint32_t c = 0; c < dict.size(); ++c) {
        const std::string& s = dict.str(c);
        PutWireU32(static_cast<uint32_t>(s.size()), out);
        out->append(s);
      }
      for (uint32_t code : col.codes()) PutWireU32(code, out);
      break;
    }
    case ColumnTag::kBoxed:
      for (const Value& v : col.boxed()) SerializeValue(v, out);
      break;
  }
}

StatusOr<ColumnBatch> DeserializeColumnBatch(const std::string& data,
                                             size_t* offset) {
  DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetWireU32(data, offset));
  DIABLO_RETURN_IF_ERROR(CheckBatchCount(n, data, *offset, "row"));
  if (*offset >= data.size()) return Truncated();
  char pairs_flag = data[(*offset)++];
  if (pairs_flag != 0 && pairs_flag != 1) {
    return Status::RuntimeError("corrupt pairs flag in column batch");
  }
  ColumnBatch batch;
  batch.pairs = pairs_flag == 1;
  if (batch.pairs) {
    batch.keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      DIABLO_ASSIGN_OR_RETURN(Value k, DeserializeValue(data, offset));
      batch.keys.push_back(std::move(k));
    }
  }
  if (*offset >= data.size()) return Truncated();
  uint8_t tag_byte = static_cast<uint8_t>(data[(*offset)++]);
  if (tag_byte > static_cast<uint8_t>(ColumnTag::kBoxed)) {
    return Status::RuntimeError(
        StrCat("unknown column tag ", static_cast<int>(tag_byte),
               " in column batch"));
  }
  ColumnTag tag = static_cast<ColumnTag>(tag_byte);
  Column& col = batch.values;
  if (tag == ColumnTag::kUnknown && n != 0) {
    return Status::RuntimeError("untagged non-empty column in column batch");
  }
  switch (tag) {
    case ColumnTag::kUnknown:
      break;
    case ColumnTag::kBool: {
      auto& bools = col.mutable_bools();
      bools.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (*offset >= data.size()) return Truncated();
        char b = data[(*offset)++];
        if (b != 0 && b != 1) {
          return Status::RuntimeError("corrupt bool in column batch");
        }
        bools.push_back(static_cast<uint8_t>(b));
      }
      break;
    }
    case ColumnTag::kInt64: {
      auto& ints = col.mutable_ints();
      ints.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DIABLO_ASSIGN_OR_RETURN(uint64_t bits, GetWireU64(data, offset));
        ints.push_back(static_cast<int64_t>(bits));
      }
      break;
    }
    case ColumnTag::kDouble: {
      auto& doubles = col.mutable_doubles();
      doubles.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DIABLO_ASSIGN_OR_RETURN(uint64_t bits, GetWireU64(data, offset));
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        doubles.push_back(d);
      }
      break;
    }
    case ColumnTag::kString: {
      DIABLO_ASSIGN_OR_RETURN(uint32_t dict_size, GetWireU32(data, offset));
      DIABLO_RETURN_IF_ERROR(
          CheckBatchCount(dict_size, data, *offset, "dictionary"));
      StringDictionary& dict = col.mutable_dict();
      for (uint32_t c = 0; c < dict_size; ++c) {
        DIABLO_ASSIGN_OR_RETURN(uint32_t len, GetWireU32(data, offset));
        if (*offset + len > data.size()) return Truncated();
        uint32_t code =
            dict.Intern(Value::MakeString(data.substr(*offset, len)));
        *offset += len;
        // A duplicate entry re-interns to an earlier code; codes pointing
        // at it would decode to a batch whose dictionary disagrees with
        // the encoder's, so reject the buffer as corrupt.
        if (code != c) {
          return Status::RuntimeError(
              "duplicate dictionary entry in column batch");
        }
      }
      auto& codes = col.mutable_codes();
      codes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DIABLO_ASSIGN_OR_RETURN(uint32_t code, GetWireU32(data, offset));
        if (code >= dict_size) {
          return Status::RuntimeError(
              "dictionary code out of range in column batch");
        }
        codes.push_back(code);
      }
      break;
    }
    case ColumnTag::kBoxed: {
      auto& boxed = col.mutable_boxed();
      boxed.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DIABLO_ASSIGN_OR_RETURN(Value v, DeserializeValue(data, offset));
        boxed.push_back(std::move(v));
      }
      break;
    }
  }
  col.set_tag(tag);
  col.set_size(n);
  return batch;
}

void SerializeHashedRow(const HashedRow& hr, std::string* out) {
  PutWireU64(static_cast<uint64_t>(hr.hash), out);
  SerializeValue(hr.row, out);
}

StatusOr<HashedRow> DeserializeHashedRow(const std::string& data,
                                         size_t* offset) {
  DIABLO_ASSIGN_OR_RETURN(uint64_t hash, GetWireU64(data, offset));
  DIABLO_ASSIGN_OR_RETURN(Value row, DeserializeValue(data, offset));
  return HashedRow{static_cast<size_t>(hash), std::move(row)};
}

void SerializeHashedVec(const HashedVec& rows, std::string* out) {
  PutWireU32(static_cast<uint32_t>(rows.size()), out);
  for (const HashedRow& hr : rows) SerializeHashedRow(hr, out);
}

StatusOr<HashedVec> DeserializeHashedVec(const std::string& data,
                                         size_t* offset) {
  DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetWireU32(data, offset));
  // Every row is at least 9 bytes (u64 hash + one tag); a length prefix
  // promising more rows than the buffer could hold is corrupt, and must
  // fail before any reserve() trusts it.
  if (static_cast<size_t>(n) > (data.size() - *offset) / 9) {
    return Status::RuntimeError(
        "oversized length prefix in hashed-row batch");
  }
  HashedVec rows;
  rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DIABLO_ASSIGN_OR_RETURN(HashedRow hr, DeserializeHashedRow(data, offset));
    rows.push_back(std::move(hr));
  }
  return rows;
}

}  // namespace diablo::runtime
