#ifndef DIABLO_RUNTIME_EVENTS_H_
#define DIABLO_RUNTIME_EVENTS_H_

// Structured event log for cluster telemetry (DESIGN.md §18).
//
// Execution emits discrete, machine-readable events — the things a trace
// span cannot express as an interval: a task retry, a worker SIGKILL, a
// lineage recomputation, a skew-salting decision. `diablo_run
// --events-out` writes them as schema-versioned JSONL (one event per
// line), each stamped with a monotonic timestamp and, where known, the
// source provenance (`file:line:col`) and engine stage id.
//
// Stable event catalog (names are part of the schema; validated by
// tools/check_events.py and documented in docs/distributed.md):
//
//   statement         target executor entered a program statement
//   task_retry        a task attempt failed and will be retried
//   lineage_recovery  lost input partitions recomputed from lineage
//   skew_salting      a hot partition was split into salted sub-tasks
//   cost_decision     a plan choice consulted a prior-run profile
//   chaos_kill        the chaos schedule SIGKILLed a worker process
//   worker_lost       a worker was declared dead (any reason)
//   heartbeat_loss    the death reason was a heartbeat timeout
//   worker_respawn    a dead worker was re-forked
//
// Emission never changes engine behavior: the log is append-only under a
// mutex, and every emission site is gated on a null-pointer test, so
// runs with and without an event log stay byte-identical.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace diablo::runtime {

/// One event, before timestamping. `ints` and `strs` carry the
/// event-specific payload (e.g. {"worker", 1} for chaos_kill) and are
/// rendered as top-level JSON fields in order.
struct Event {
  std::string name;
  int stage_id = -1;  ///< engine stage id; -1 when not stage-scoped
  /// Source provenance; src_line == 0 means unknown.
  std::string src_file;
  int src_line = 0;
  int src_column = 0;
  std::vector<std::pair<std::string, int64_t>> ints;
  std::vector<std::pair<std::string, std::string>> strs;
};

/// An event as recorded: payload plus microseconds since the log's
/// construction (monotonic, nondecreasing in log order).
struct StampedEvent {
  double ts_us = 0;
  Event event;
};

/// Thread-safe append-only event log. Timestamps are taken under the
/// append lock, so the JSONL output is sorted by ts_us by construction.
class EventLog {
 public:
  /// Bumped when the JSONL line shape or the event catalog changes
  /// incompatibly.
  static constexpr int kSchemaVersion = 1;

  EventLog();

  void Emit(Event event);

  std::vector<StampedEvent> Snapshot() const;
  int64_t size() const;
  /// Number of recorded events with the given catalog name.
  int64_t CountOf(const std::string& name) const;

  /// One JSON object per line:
  /// {"schema_version":1,"event":"...","ts_us":...,"stage":...,
  ///  "location":{...}|null, <ints...>, <strs...>}
  void WriteJsonl(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  double epoch_us_ = 0;
  std::vector<StampedEvent> events_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_EVENTS_H_
