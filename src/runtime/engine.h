#ifndef DIABLO_RUNTIME_ENGINE_H_
#define DIABLO_RUNTIME_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/column_batch.h"
#include "runtime/dataset.h"
#include "runtime/events.h"
#include "runtime/fault.h"
#include "runtime/keyed_accumulator.h"
#include "runtime/metrics.h"
#include "runtime/operators.h"
#include "runtime/trace.h"
#include "runtime/value.h"
#include "runtime/wave_io.h"

namespace diablo::runtime {

class WorkerPool;
class RemoteExecutor;
class MetricsRegistry;

/// Runtime skew mitigation (DESIGN.md §17). When one task of a combine
/// or reduce wave would receive far more rows than its peers — a hot
/// key, a key-clustered input layout, or many keys hashed together —
/// the engine "salts" that task: it is split into sub-tasks that run in
/// parallel, and a final un-salt merge reassembles the task's output
/// byte-identically to the unmitigated run. Three mechanisms, chosen by
/// operator so exactness never depends on luck:
///  - groupByKey reduce tasks split into contiguous row CHUNKS (a key's
///    bag is its values in arrival order, and concatenating per-chunk
///    bags in chunk order IS arrival order — exact for every type);
///  - reduceByKey reduce tasks split into hash STRIPES (remixed key
///    hash modulo fanout): no key is ever split across sub-tasks, so
///    any reduce function stays exact, and the merge is a disjoint
///    sorted merge;
///  - reduceByKey combine tasks over provably bit-associative folds
///    (native {+, *, min, max} on int64 payloads) split into contiguous
///    row chunks whose partials re-merge in the normal reduce stage.
struct SkewConfig {
  /// Master switch (diablo_run --no-skew; the AB10 ablation baseline).
  bool mitigate = true;
  /// A task is hot when its rows exceed `ratio` times the wave mean...
  double ratio = 4.0;
  /// ...and it carries at least this many rows. Small waves — every
  /// tier-1 test — never salt, so their stage accounting is untouched.
  int64_t min_rows = 64 * 1024;
  /// Most sub-tasks one hot task may be split into.
  int max_fanout = 8;
};

/// Configuration of the simulated cluster engine.
struct EngineConfig {
  /// Number of partitions newly parallelized datasets are split into.
  int num_partitions = 8;
  /// Real host threads used to execute partition tasks. 1 = run inline.
  /// Any value works on any host; this only affects wall-clock execution,
  /// never results or the cost model.
  int host_threads = 1;
  /// Parameters of the deterministic cluster cost model (see metrics.h).
  ClusterModel cluster;
  /// Extension (paper §7 future work): when > 0, the comprehension
  /// planner turns a distributed hash join whose array side is at most
  /// this many bytes into a broadcast hash join — the array ships to
  /// every worker once and the probe side never shuffles. 0 keeps the
  /// paper-faithful shuffle joins.
  int64_t broadcast_join_threshold_bytes = 0;
  /// When true, every shuffled row round-trips through the binary codec
  /// (runtime/serialize.h), exactly as it would cross a real network:
  /// validates the wire format under load and makes the accounted
  /// shuffle bytes the exact encoded size. Off by default (the
  /// SerializedBytes() estimate is used instead).
  bool serialize_shuffles = false;
  /// When true (the default), narrow operators (map / mapValues /
  /// filter / flatMap) are lazy: they append to the dataset's fused
  /// chain and execute element-by-element inside the next stage
  /// boundary (shuffle, reduce, collect, checkpoint, Force) with no
  /// intermediate ValueVec ever built. False restores the eager
  /// one-operator-one-stage engine — same results byte-for-byte, used
  /// by the AB6 ablation and the fusion property tests.
  bool fuse_narrow = true;
  /// When true (the default), wide operators aggregate through the
  /// open-addressing KeyedAccumulator keyed by (cached hash, key): the
  /// key hash is computed once at the shuffle scatter and carried with
  /// the row, and each output partition is sorted once at the end.
  /// False restores the ordered-map (std::map<Value, ...>) aggregation
  /// path — same results byte-for-byte, kept as the AB7 baseline.
  bool hash_aggregation = true;
  /// When true (the default), partition tasks run on a persistent
  /// work-stealing worker pool owned by the engine, so a multi-stage
  /// plan reuses host_threads workers across all stages and task waves.
  /// False spawns a fresh std::thread vector per wave (AB7 baseline).
  /// Either way, a failing stage reports the error of the
  /// lowest-indexed failing partition, for every host_threads setting.
  bool persistent_pool = true;
  /// When true (the default), the hot operators run typed columnar fast
  /// paths (runtime/column_batch.h): reduceByKey combines through a
  /// typed accumulator with native int64/double arithmetic and cached
  /// key hashes, shuffle scatters hash whole key columns at once
  /// (string keys hash once per distinct dictionary entry), Reduce over
  /// a built-in operator folds natively, and fully-kernelized fused
  /// chains execute as column batches. Rows that don't columnarize
  /// (heterogeneous kinds, non-scalar keys, closure-only operators)
  /// fall back to the boxed per-row path mid-stream — results are
  /// byte-identical either way (tests/columnar_test.cc), and
  /// StageStats::columnar_batches / columnar_rows_fallback make the
  /// split observable. False restores the pure boxed engine, kept as
  /// the AB9 ablation baseline. Building with
  /// -DDIABLO_NO_COLUMNAR_DEFAULT flips the default off (the CI
  /// boxed-matrix legs).
#ifdef DIABLO_NO_COLUMNAR_DEFAULT
  bool columnar = false;
#else
  bool columnar = true;
#endif
  /// Runtime skew mitigation thresholds (see SkewConfig above). On by
  /// default; outputs are byte-identical with or without it
  /// (tests/skew_test.cc), only wall-clock and task accounting change.
  SkewConfig skew;
  /// Deterministic fault injection and recovery policy (runtime/fault.h).
  /// Off by default: with no fault class enabled the engine skips all
  /// fault bookkeeping and retains no lineage closures.
  FaultConfig faults;
  /// When true (the default), the engine records wall-clock trace spans
  /// (run > statement > stage > wave > task, plus recovery spans) into a
  /// TraceRecorder reachable via Engine::trace() — see runtime/trace.h
  /// and DESIGN.md §13. Tracing never changes stage numbering, fault
  /// coordinates, or any program output byte (asserted in trace_test).
  /// False makes every hook a single null-pointer test; defining
  /// DIABLO_DISABLE_TRACING compiles the hooks out entirely.
  bool tracing = true;
  /// When set, every task wave executes on this remote backend (the
  /// multi-process coordinator of src/dist/) instead of in-process
  /// threads: workers run the task closures against their forked
  /// copy-on-write snapshot and results come back over the wire
  /// (runtime/wave_io.h). The engine then forces host_threads = 1 and
  /// persistent_pool = false — the driver must be single-threaded at
  /// fork time. Not owned.
  RemoteExecutor* remote = nullptr;
  /// With `remote`: treat a real worker death as a partition loss and
  /// route the dead worker's partitions through the lineage
  /// recompute_many path at the next stage boundary (forces
  /// FaultConfig::retain_lineage so the closures exist). The rebuilt
  /// partitions are bit-identical — PR 1's fault-injection invariant is
  /// the correctness oracle for real SIGKILLs.
  bool dist_lose_on_kill = false;
  /// Cluster telemetry sinks (DESIGN.md §18), both nullable and not
  /// owned. `registry` receives named counters/gauges/histograms
  /// (per-stage peak RSS, accumulator watermarks, task durations) for
  /// --metrics-out; `events` receives the structured event stream
  /// (task_retry, lineage_recovery, skew_salting, cost_decision, plus
  /// the dist backend's worker-lifecycle events) for --events-out.
  /// Null sinks cost one pointer test per site and change no output.
  MetricsRegistry* registry = nullptr;
  EventLog* events = nullptr;
};

/// Source provenance the engine stamps into every finished stage (and
/// its trace span): the statement of the source program currently
/// executing. Installed by the target executor / plan evaluator around
/// each statement via Engine::SwapProvenance; `line == 0` means "no
/// statement scope is active".
struct EngineProvenance {
  std::string file;       ///< source program path ("" = unknown)
  int line = 0;
  int column = 0;
  std::string statement;  ///< short statement label, e.g. "assign P"
};

/// Per-stage fault-handling tallies, merged into the recorded StageStats.
struct StageRecovery {
  int64_t attempts = 0;
  int64_t recomputed_partitions = 0;
  double recovery_seconds = 0;
  /// Distributed-backend tallies (zero unless EngineConfig::remote).
  int64_t dist_tasks = 0;
  int64_t dist_retries = 0;
  int64_t dist_workers_lost = 0;
};

/// The DIABLO execution substrate: a from-scratch, in-process
/// data-parallel engine with the Spark RDD operator vocabulary.
///
/// Datasets are hash-partitioned; narrow operators (map/filter/flatMap)
/// transform partitions in place, wide operators (groupByKey, reduceByKey,
/// join, coGroup) redistribute rows by key hash — a shuffle. Every stage
/// records a StageStats entry in metrics(), from which the cluster cost
/// model computes a simulated distributed run time (DESIGN.md §3 explains
/// why this substitution preserves the paper's comparisons).
///
/// With EngineConfig::fuse_narrow (the default), narrow operators defer:
/// they return a lazy Dataset whose pending chain runs fused inside the
/// next stage boundary, one element at a time — the Spark pipelining
/// model. A fused stage's label joins the chain's labels with '+'
/// ("flatMap+filter+map"), and StageStats::fused_ops /
/// rows_not_materialized / bytes_not_materialized make the saved
/// intermediates observable.
///
/// Rows of keyed datasets are pair tuples (key, value); the key may be any
/// Value (ints, tuples of ints, strings, ...).
///
/// Fault tolerance (DESIGN.md §"Fault model"): when EngineConfig::faults
/// enables injection, every partition task runs under a bounded retry
/// budget; injected failures (killed attempts, corrupted shuffle
/// payloads) are retried with deterministic simulated backoff, and lost
/// input partitions are recomputed from dataset lineage — Checkpoint()
/// truncates lineage inside iterative loops. A failed attempt restarts
/// the whole fused chain for its partition. All recovery work is
/// charged to StageStats::recovery_seconds. The invariant: a run that
/// completes under injection produces bit-identical results to the
/// fault-free run.
///
/// All operator callbacks may fail; a genuine callback error is never
/// retried — the first one aborts the stage and is returned. Under
/// fusion an error surfaces at the stage boundary that executes the
/// chain, not at the deferring call. Callbacks must be thread-safe when
/// host_threads > 1 and must be restartable (they may run more than
/// once for the same partition under retries).
class Engine {
 public:
  using MapFn = std::function<StatusOr<Value>(const Value&)>;
  using FlatMapFn = std::function<StatusOr<ValueVec>(const Value&)>;
  using PredFn = std::function<StatusOr<bool>(const Value&)>;
  using ReduceFn = std::function<StatusOr<Value>(const Value&, const Value&)>;

  explicit Engine(EngineConfig config = EngineConfig());
  ~Engine();

  const EngineConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// The engine's trace recorder, or null when tracing is off — the
  /// null test IS the tracing-off fast path, and every trace hook in
  /// the engine folds away when DIABLO_DISABLE_TRACING is defined.
  TraceRecorder* trace() const {
#ifdef DIABLO_DISABLE_TRACING
    return nullptr;
#else
    return trace_.get();
#endif
  }

  /// Installs the source provenance stamped into subsequently finished
  /// stages, returning the previous value so callers can nest scopes
  /// and restore on exit (While bodies re-enter statement scopes).
  EngineProvenance SwapProvenance(EngineProvenance p) {
    std::swap(p, provenance_);
    return p;
  }
  const EngineProvenance& provenance() const { return provenance_; }

  /// Records a driver-side synthetic stage produced outside the normal
  /// operator paths (the planner's broadcast-join ship / cartesian
  /// product accounting), stamped with provenance and traced like any
  /// other stage.
  void RecordPlannerStage(StageStats stats);

  /// Counts one profile-informed plan decision (broadcast-vs-hash join,
  /// partition count chosen from --profile-in evidence); drained into
  /// the next finished stage's StageStats::cost_decisions, mirroring
  /// how pool task tallies are attributed.
  void RecordCostDecision() {
    ++cost_decisions_pending_;
    if (config_.events != nullptr) {
      Event e;
      e.name = "cost_decision";
      e.src_file = provenance_.file;
      e.src_line = provenance_.line;
      e.src_column = provenance_.column;
      config_.events->Emit(std::move(e));
    }
  }

  /// Clears recorded metrics and restarts stage numbering, so a fresh
  /// run on this engine sees the same fault schedule as the previous one
  /// (stage ids are the injector's coordinates). Trace spans recorded so
  /// far are dropped with them (span stage indexes point into metrics).
  void ResetRunState() {
    metrics_.Clear();
    next_stage_id_ = 0;
    pool_tasks_pending_ = 0;
    cost_decisions_pending_ = 0;
    worker_rss_pending_ = 0;
    if (TraceRecorder* t = trace()) t->Clear();
  }

  /// Splits `rows` into num_partitions contiguous chunks. No stage is
  /// recorded: loading input data is not charged to any plan.
  Dataset Parallelize(ValueVec rows) const;
  Dataset Parallelize(ValueVec rows, int num_partitions) const;

  /// The integer range [lo, hi] (inclusive, as in the paper's `range`),
  /// split into contiguous partitions.
  Dataset Range(int64_t lo, int64_t hi) const;

  /// Narrow: applies `fn` to every row. Lazy under fuse_narrow.
  StatusOr<Dataset> Map(const Dataset& in, const MapFn& fn,
                        const std::string& label = "map");

  /// Narrow: applies `fn` to the value of every (k,v) pair row, keeping
  /// the key — Spark's mapValues. Lazy under fuse_narrow.
  StatusOr<Dataset> MapValues(const Dataset& in, const MapFn& fn,
                              const std::string& label = "mapValues");

  /// Narrow: keeps rows satisfying `pred`. Lazy under fuse_narrow.
  StatusOr<Dataset> Filter(const Dataset& in, const PredFn& pred,
                           const std::string& label = "filter");

  /// Kernel-carrying narrow operators: `row ⊕ operand` (or the pair
  /// value / a comparison predicate) expressed as a built-in BinOp
  /// against a constant. Semantically identical to the closure forms —
  /// EvalBinOp defines the result — but the op is visible to the engine,
  /// so a fully-kernelized fused chain executes vectorized over column
  /// batches under EngineConfig::columnar.
  StatusOr<Dataset> Map(const Dataset& in, BinOp op, const Value& operand,
                        const std::string& label = "map");
  StatusOr<Dataset> MapValues(const Dataset& in, BinOp op,
                              const Value& operand,
                              const std::string& label = "mapValues");
  StatusOr<Dataset> Filter(const Dataset& in, BinOp op, const Value& operand,
                           const std::string& label = "filter");
  /// Filter on the value of (k,v) pair rows: keeps rows with
  /// `v ⊕ operand` true. Errors on non-pair rows, like MapValues.
  StatusOr<Dataset> FilterValues(const Dataset& in, BinOp op,
                                 const Value& operand,
                                 const std::string& label = "filter");

  /// Narrow: maps every row to a bag of rows and concatenates. Lazy
  /// under fuse_narrow.
  StatusOr<Dataset> FlatMap(const Dataset& in, const FlatMapFn& fn,
                            const std::string& label = "flatMap");

  /// Materializes any pending fused chain as ONE task wave (the stage
  /// label joins the chain's labels with '+'). No-op for materialized
  /// datasets. Use before reading partitions()/TotalRows() directly.
  StatusOr<Dataset> Force(const Dataset& in);

  /// Wide: groups (k,v) rows by k; result rows are (k, Bag-of-v), sorted
  /// by key within each partition (for determinism).
  StatusOr<Dataset> GroupByKey(const Dataset& in,
                               const std::string& label = "groupByKey");

  /// Wide: combines values of equal keys with `fn`. Performs a map-side
  /// combine before shuffling, like Spark's reduceByKey.
  StatusOr<Dataset> ReduceByKey(const Dataset& in, const ReduceFn& fn,
                                const std::string& label = "reduceByKey");
  /// ReduceByKey with a built-in commutative operator. Under
  /// EngineConfig::columnar the combine and reduce sides run through the
  /// typed accumulator when the op and the observed key/value kinds
  /// allow it; `schema` is the plan-time hint (kUnknown fields mean
  /// "detect from the data") that lets the engine skip the typed attempt
  /// when the planner already knows the value type can't columnarize.
  StatusOr<Dataset> ReduceByKey(const Dataset& in, BinOp op,
                                const std::string& label = "reduceByKey",
                                const ColumnSchema& schema = ColumnSchema());

  /// Wide: inner equi-join of (k,a) with (k,b); result rows (k,(a,b)).
  StatusOr<Dataset> Join(const Dataset& left, const Dataset& right,
                         const std::string& label = "join");

  /// Wide: full cogroup of (k,a) with (k,b); result rows
  /// (k,(Bag-of-a, Bag-of-b)) for every key present on either side.
  StatusOr<Dataset> CoGroup(const Dataset& left, const Dataset& right,
                            const std::string& label = "coGroup");

  /// Narrow: bag union (concatenation) of the two datasets. Metadata
  /// only (like Spark's union): no tasks run beyond forcing any pending
  /// chains of the inputs, so no faults can hit the union itself.
  StatusOr<Dataset> Union(const Dataset& a, const Dataset& b);

  /// Wide: removes duplicate rows.
  StatusOr<Dataset> Distinct(const Dataset& in,
                             const std::string& label = "distinct");

  /// Writes the dataset to (simulated) stable storage and truncates its
  /// lineage: the result is durable, so recoveries stop here instead of
  /// walking further back. Use inside iterative loops (PageRank,
  /// K-means) to bound both recovery cost and lineage depth. Any
  /// pending fused chain executes inside the write wave; the write is
  /// charged as a narrow stage whose shuffle_bytes are the serialized
  /// dataset size.
  StatusOr<Dataset> Checkpoint(const Dataset& in,
                               const std::string& label = "checkpoint");

  /// Action: combines all rows with `fn`; nullopt for an empty dataset.
  StatusOr<std::optional<Value>> Reduce(const Dataset& in, const ReduceFn& fn,
                                        const std::string& label = "reduce");
  /// Reduce with a built-in operator: per-partition partials fold with
  /// native int64/double arithmetic (same arrival order, bit-identical
  /// results) under EngineConfig::columnar.
  StatusOr<std::optional<Value>> Reduce(const Dataset& in, BinOp op,
                                        const std::string& label = "reduce");

  /// Action: gathers all rows to the driver, in partition order (forcing
  /// any pending chain first).
  StatusOr<ValueVec> Collect(const Dataset& in);

  /// Action: the first row in partition order; error when empty.
  StatusOr<Value> First(const Dataset& in);

  /// Action: number of rows (charged as a narrow scan).
  StatusOr<int64_t> Count(const Dataset& in);

 private:
  /// Emits one shuffled row: (memoized key hash, row).
  using EmitFn = std::function<Status(size_t, const Value&)>;

  /// Runs fn(0..n-1), using up to config_.host_threads threads (the
  /// persistent pool by default). All partitions that could fail with a
  /// lower index than the lowest known failure are executed, and the
  /// error of the lowest-indexed failing partition is returned — so
  /// failures are reproducible across host_threads settings.
  Status RunPerPartition(int n, const std::function<Status(int)>& fn) const;

  /// Allocates the next task-wave id (the injector's stage coordinate).
  int NextStageId() { return next_stage_id_++; }

  /// Runs one wave of tasks (one per entry of `task_work`) under the
  /// fault model: injected kills and TaskLost results are retried up to
  /// the budget with simulated backoff charged to `rec`; genuine errors
  /// abort immediately. `fn(partition, attempt)` must be restartable.
  /// `slots` describes the per-task output slots `fn` writes; when
  /// EngineConfig::remote is set the wave runs on the remote backend,
  /// which marshals exactly those slots back from the workers.
  Status RunTaskWave(const std::string& label, int stage,
                     const std::vector<int64_t>& task_work,
                     const std::function<Status(int, int)>& fn,
                     StageRecovery* rec, const WaveSlots* slots = nullptr);

  /// Remote dispatch of one task wave via EngineConfig::remote: builds
  /// the RemoteTaskWave closure bundle (worker-side run/encode,
  /// coordinator-side install, the engine-owned simulated-fault hooks,
  /// and trace/recovery hooks) and merges the backend's counters into
  /// `rec` in task-index order for deterministic accounting.
  Status RunTaskWaveRemote(const std::string& label, int stage,
                           const std::vector<int64_t>& task_work,
                           const std::function<Status(int, int)>& fn,
                           StageRecovery* rec, const WaveSlots& slots,
                           TraceRecorder* tr, int64_t wave_span_id);

  /// Applies any one-shot lost-partition directives targeting
  /// (stage, input_index): rebuilds the lost partitions from `in`'s
  /// lineage — in ONE source pass via LineageNode::recompute_many when
  /// the node provides it — charging the recomputation to `rec`. The
  /// returned dataset keeps `in`'s pending fused chain. Returns `in`
  /// unchanged when nothing was lost.
  StatusOr<Dataset> RecoverInput(const Dataset& in, int stage,
                                 int input_index, StageRecovery* rec);

  /// Shared scatter core of the shuffle waves: `produce(p, emit)` emits
  /// every (key hash, row) of source partition p; the core routes each
  /// row to hash % num_partitions (with optional wire-format round-trip
  /// and payload corruption injection), returning per-destination rows
  /// that CARRY the memoized key hash and the number of bytes moved.
  /// When `dest_bytes` is non-null the bytes received per destination
  /// partition are ACCUMULATED into it (the per-partition byte
  /// histogram of the profile export).
  /// `tallies` (nullable) are the per-source-task fused-chain tallies
  /// the producer writes; listed here so the remote backend marshals
  /// them back with the buckets.
  StatusOr<std::vector<HashedVec>> ShuffleCore(
      int stage, const std::vector<int64_t>& task_work,
      const std::function<Status(int, const EmitFn&)>& produce,
      int64_t* shuffle_bytes, std::vector<int64_t>* dest_bytes,
      std::vector<ChainTally>* tallies, StageRecovery* rec);

  /// Hash-partitions keyed rows of `in` into num_partitions buckets as
  /// one task wave: a single-pass scatter that applies `in`'s pending
  /// fused chain element-by-element and hashes each produced row's key
  /// ONCE into its destination buffer; the reduce side reuses the
  /// carried hash instead of rehashing.
  StatusOr<std::vector<HashedVec>> ShuffleWave(const Dataset& in, int stage,
                                               int64_t* shuffle_bytes,
                                               StageRecovery* rec,
                                               StageStats* stats);

  /// ShuffleWave over rows whose key hashes are already memoized (the
  /// map-side combine output of ReduceByKey): no key is ever rehashed.
  StatusOr<std::vector<HashedVec>> ShuffleHashed(
      const std::vector<HashedVec>& in, int stage, int64_t* shuffle_bytes,
      StageRecovery* rec, StageStats* stats);

  /// ShuffleHashed without the boxing: scatters typed combine output
  /// (runtime/column_batch.h TypedRows — cached hashes, raw key bits,
  /// numeric payloads) straight into per-destination typed arrays. Only
  /// engaged when every combine partition stayed typed with one
  /// key/payload shape and no wire format, fault injection or remote
  /// backend needs boxed rows; byte accounting charges exactly what the
  /// boxed pair rows would have weighed, so stats match ShuffleHashed.
  StatusOr<std::vector<TypedRows>> ShuffleTyped(
      const std::vector<TypedRows>& in, int stage, int64_t* shuffle_bytes,
      StageRecovery* rec, StageStats* stats);

  /// Columnar Force (EngineConfig::columnar): runs a fully-kernelized
  /// fused chain as column batches — one unbox per source row, each
  /// kernel a vector loop over the typed payload, one re-box per
  /// surviving row. A partition whose rows don't columnarize replays the
  /// boxed per-row chain (byte-identical by construction) and is counted
  /// in StageStats::columnar_rows_fallback. Under the distributed
  /// backend the batches themselves cross the wire (wave_io col_batches
  /// slot); the driver re-boxes after the wave.
  StatusOr<Dataset> ForceColumnar(const Dataset& in);

  /// Shared implementation of both ReduceByKey overloads. `native_op`
  /// is non-null when the reduction is a built-in operator the columnar
  /// typed accumulator may take over; `fn` is always the semantic truth
  /// (the fallback, recovery, and ordered paths use it).
  StatusOr<Dataset> ReduceByKeyImpl(const Dataset& in, const ReduceFn& fn,
                                    const BinOp* native_op,
                                    const ColumnSchema& schema,
                                    const std::string& label);

  /// Merges `rec` into `stats` and records the stage.
  void FinishStage(StageStats stats, const StageRecovery& rec);

  /// Builds a lineage node for a dataset produced by this engine. The
  /// recompute closures are only retained when fault injection is on.
  /// `depth_increment` is how many operators the node stands for (a
  /// fused stage advances depth by its whole chain length).
  std::shared_ptr<const LineageNode> MakeLineage(
      std::string kind, std::string label,
      std::vector<std::shared_ptr<const LineageNode>> parents,
      LineageNode::RecomputeFn recompute,
      LineageNode::RecomputeManyFn recompute_many = nullptr,
      int depth_increment = 1) const;

  static StatusOr<const Value*> RowKey(const Value& row);

  EngineConfig config_;
  Metrics metrics_;
  FaultInjector injector_;
  int next_stage_id_ = 0;
  /// Created in the constructor when config_.tracing; never reassigned,
  /// so trace() is stable for the engine's lifetime.
  std::unique_ptr<TraceRecorder> trace_;
  /// Current statement scope (SwapProvenance), driver-side only.
  EngineProvenance provenance_;
  /// Tasks run on the persistent pool since the last FinishStage, which
  /// drains the tally into StageStats::pool_tasks. Driver-side counter
  /// (RunPerPartition returns only after the wave completes); mutable
  /// because RunPerPartition is const.
  mutable int64_t pool_tasks_pending_ = 0;
  /// Profile-informed decisions since the last FinishStage (see
  /// RecordCostDecision).
  int64_t cost_decisions_pending_ = 0;
  /// Largest worker-process peak RSS shipped in telemetry frames since
  /// the last FinishStage, which folds it into the finishing stage's
  /// StageStats::peak_rss_bytes (max with the driver's own getrusage
  /// reading) — same drain pattern as pool_tasks_pending_.
  int64_t worker_rss_pending_ = 0;
  /// Persistent worker pool (EngineConfig::persistent_pool), created
  /// lazily on the first multi-threaded wave and reused for the
  /// engine's whole lifetime. Mutable: creating it does not change
  /// observable engine state.
  mutable std::unique_ptr<WorkerPool> pool_;
  /// Partitions owed by workers that died mid-wave
  /// (EngineConfig::dist_lose_on_kill): registered by the remote
  /// backend's on_worker_lost hook, consumed by the next RecoverInput
  /// (input 0), which rebuilds them from lineage via recompute_many —
  /// real kills exercise the same recovery path as simulated losses.
  std::vector<int> pending_lost_partitions_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_ENGINE_H_
