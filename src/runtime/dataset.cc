#include "runtime/dataset.h"

namespace diablo::runtime {

const std::shared_ptr<const LineageNode>& Dataset::SourceLineage() {
  static const std::shared_ptr<const LineageNode> kSource = [] {
    auto node = std::make_shared<LineageNode>();
    node->kind = "source";
    node->label = "source";
    node->durable = true;
    return node;
  }();
  return kSource;
}

int64_t Dataset::TotalRows() const {
  int64_t n = 0;
  for (const auto& p : *partitions_) n += static_cast<int64_t>(p.size());
  return n;
}

int64_t Dataset::TotalBytes() const {
  int64_t n = 0;
  for (const auto& p : *partitions_) {
    for (const Value& v : p) n += v.SerializedBytes();
  }
  return n;
}

}  // namespace diablo::runtime
