#ifndef DIABLO_RUNTIME_METRICS_H_
#define DIABLO_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace diablo::runtime {

/// Execution statistics for one engine operator (one "stage").
///
/// Narrow operators (map, filter, flatMap) only have map-side work. Wide
/// operators (groupByKey, reduceByKey, join, coGroup) additionally move
/// `shuffle_bytes` across the simulated network and then perform
/// reduce-side work on the post-shuffle partitions.
struct StageStats {
  std::string label;
  bool wide = false;
  /// Work units (≈ rows touched) per map-side task.
  std::vector<int64_t> map_work;
  /// Work units per reduce-side task (empty for narrow stages).
  std::vector<int64_t> reduce_work;
  /// Approximate bytes exchanged between workers during the shuffle.
  int64_t shuffle_bytes = 0;
  /// Fault-tolerance accounting (runtime/fault.h). `attempts` counts
  /// every task attempt across the stage's internal waves (== the task
  /// count on a fault-free run; 0 for driver-side metadata stages).
  int64_t attempts = 0;
  /// Input partitions rebuilt from lineage before the stage could run.
  int64_t recomputed_partitions = 0;
  /// Simulated seconds spent on recovery: wasted work of failed
  /// attempts, retry backoff, straggler delay, and lineage
  /// recomputation — priced by the engine's own ClusterModel at
  /// execution time. SimulatedSeconds() includes it; the fault-free
  /// figure is SimulatedFaultFreeSeconds().
  double recovery_seconds = 0;
  /// Narrow-operator fusion accounting. `fused_ops` is the number of
  /// deferred narrow operators this stage executed element-by-element
  /// inside its task wave (0 for eager stages). The rows/bytes fields
  /// count the intermediate results an eager per-operator engine would
  /// have built as full ValueVec datasets between those operators but
  /// which this stage streamed through without materializing (bytes are
  /// estimated from the first row crossing each operator boundary).
  int64_t fused_ops = 0;
  int64_t rows_not_materialized = 0;
  int64_t bytes_not_materialized = 0;
  /// Hash-aggregation accounting (runtime/keyed_accumulator.h). Rows
  /// inserted into open-addressing KeyedAccumulators while executing
  /// this stage (combine + reduce side), and distinct keys they
  /// produced. Both 0 when EngineConfig::hash_aggregation is off or the
  /// stage has no keyed aggregation.
  int64_t hash_agg_rows = 0;
  int64_t hash_agg_keys = 0;
  /// Tasks this stage ran on the persistent work-stealing WorkerPool
  /// (0 when EngineConfig::persistent_pool is off, host_threads <= 1,
  /// or the waves were too small to parallelize).
  int64_t pool_tasks = 0;
  /// Columnar-execution accounting (runtime/column_batch.h, under
  /// EngineConfig::columnar). `columnar_batches` counts partition
  /// batches this stage executed through a typed columnar fast path
  /// (typed reduceByKey combine/reduce, vectorized scatter key hashing,
  /// kernelized fused chains); `columnar_rows_fallback` counts rows that
  /// bounced back to the boxed per-row path mid-stage (heterogeneous
  /// kinds, non-scalar keys, uncovered operators). Both 0 when columnar
  /// execution is off.
  int64_t columnar_batches = 0;
  int64_t columnar_rows_fallback = 0;
  /// Multi-process distributed backend accounting (src/dist/). Tasks
  /// dispatched to worker processes, task re-dispatches after a worker
  /// died mid-task, and worker processes lost (heartbeat timeout,
  /// deadline, crash, or chaos SIGKILL) while this stage ran. All 0
  /// when EngineConfig::remote is unset.
  int64_t dist_tasks = 0;
  int64_t dist_retries = 0;
  int64_t dist_workers_lost = 0;
  /// Adaptive-execution accounting (DESIGN.md §17, under
  /// EngineConfig::skew). `salted_keys` counts distinct keys whose rows
  /// were folded in more than one salted sub-task and re-merged by the
  /// un-salt stage; `salt_fanout` counts the extra sub-tasks skew
  /// mitigation created beyond the unmitigated task count;
  /// `cost_decisions` counts plan/engine decisions (broadcast-vs-hash
  /// join, partition count) that consulted a `--profile-in` prior-run
  /// profile. All 0 when mitigation never triggered and no profile was
  /// supplied.
  int64_t salted_keys = 0;
  int64_t salt_fanout = 0;
  int64_t cost_decisions = 0;
  /// Source provenance: the loop statement in the .diablo program this
  /// stage was translated from. `src_line == 0` means unknown (e.g. a
  /// stage run outside any statement scope). Reports render it as
  /// "label [file:line:col]".
  std::string src_file;
  int src_line = 0;
  int src_column = 0;
  /// Output rows per partition after the stage ran (per-partition skew
  /// histograms in the profile export; may be empty for driver-side
  /// metadata stages).
  std::vector<int64_t> partition_rows;
  /// Shuffle bytes received per destination partition (empty for narrow
  /// stages; sums to shuffle_bytes for shuffling stages).
  std::vector<int64_t> partition_bytes;
  /// Memory watermarks (cluster telemetry, DESIGN.md §18).
  /// `peak_rss_bytes` is the coordinator process's peak RSS (getrusage
  /// ru_maxrss) sampled when the stage finished — monotone over the run,
  /// so the per-stage series shows which stage first pushed the
  /// high-water mark. `accumulator_bytes_peak` is the largest estimated
  /// footprint of a single KeyedAccumulator / TypedReduceAccumulator any
  /// task of this stage filled (max across tasks; under the distributed
  /// backend it crosses the wire with the task's ChainTally, so it
  /// reflects worker-side memory).
  int64_t peak_rss_bytes = 0;
  int64_t accumulator_bytes_peak = 0;
};

/// Parameters of the deterministic cluster cost model.
///
/// The engine executes on the local host but *accounts* as if tasks were
/// spread over `num_workers` machines: each stage costs the makespan of a
/// longest-processing-time assignment of its tasks to workers, plus a
/// network term for shuffled bytes, plus a fixed scheduling latency for
/// wide stages. This reproduces the relative performance of competing
/// plans (fewer shuffles / less data moved => faster) without real
/// hardware; see DESIGN.md §3.
struct ClusterModel {
  int num_workers = 4;
  /// Seconds of simulated compute per work unit (row). Calibrated near
  /// Spark's per-row deserialization+closure overhead so that row counts,
  /// not stage latencies, dominate at benchmark scale.
  double seconds_per_work_unit = 200e-9;
  /// Seconds of simulated network transfer per shuffled byte (aggregate
  /// cluster bandwidth is num_workers / seconds_per_byte).
  double seconds_per_shuffle_byte = 20e-9;
  /// Fixed scheduling/coordination latency charged per wide stage.
  double wide_stage_latency_seconds = 5e-3;
  /// Fixed latency charged per narrow stage (task launch overhead).
  double narrow_stage_latency_seconds = 5e-4;
};

/// Accumulates per-stage statistics for a run and evaluates the cluster
/// cost model over them.
class Metrics {
 public:
  void AddStage(StageStats stage) { stages_.push_back(std::move(stage)); }
  void Clear() { stages_.clear(); }

  const std::vector<StageStats>& stages() const { return stages_; }
  int64_t num_stages() const { return static_cast<int64_t>(stages_.size()); }
  int64_t num_wide_stages() const;
  int64_t total_work() const;
  int64_t total_shuffle_bytes() const;
  /// Task attempts across all stages (fault tolerance; see StageStats).
  int64_t total_attempts() const;
  /// Partitions recomputed from lineage across all stages.
  int64_t total_recomputed_partitions() const;
  /// Simulated seconds of recovery work across all stages.
  double total_recovery_seconds() const;
  /// Fused narrow operators executed inside stage waves (see StageStats).
  int64_t total_fused_ops() const;
  /// Intermediate rows streamed through fused chains instead of built
  /// as full datasets.
  int64_t total_rows_not_materialized() const;
  /// Estimated bytes of those skipped intermediates.
  int64_t total_bytes_not_materialized() const;
  /// Rows inserted into hash KeyedAccumulators across all stages.
  int64_t total_hash_agg_rows() const;
  /// Distinct keys those accumulators produced.
  int64_t total_hash_agg_keys() const;
  /// Tasks executed on the persistent worker pool across all stages.
  int64_t total_pool_tasks() const;
  /// Partition batches run through typed columnar fast paths.
  int64_t total_columnar_batches() const;
  /// Rows that fell back from columnar to boxed execution mid-stage.
  int64_t total_columnar_rows_fallback() const;
  /// Tasks dispatched to distributed worker processes across all stages.
  int64_t total_dist_tasks() const;
  /// Task re-dispatches after real worker deaths across all stages.
  int64_t total_dist_retries() const;
  /// Worker processes lost (and recovered from) across all stages.
  int64_t total_dist_workers_lost() const;
  /// Keys folded in more than one salted sub-task across all stages.
  int64_t total_salted_keys() const;
  /// Extra sub-tasks skew mitigation created across all stages.
  int64_t total_salt_fanout() const;
  /// Profile-informed plan decisions taken across all stages.
  int64_t total_cost_decisions() const;
  /// High-water marks across all stages (memory watermarks are maxima,
  /// not sums: RSS is monotone and accumulators are per-task peaks).
  int64_t max_peak_rss_bytes() const;
  int64_t max_accumulator_bytes_peak() const;

  /// Simulated wall-clock seconds on a cluster described by `model`,
  /// recovery overhead included.
  double SimulatedSeconds(const ClusterModel& model) const;

  /// The same run priced as if no fault had fired (recovery excluded);
  /// SimulatedSeconds() - SimulatedFaultFreeSeconds() is the recovery
  /// overhead the fault model charges.
  double SimulatedFaultFreeSeconds(const ClusterModel& model) const;

  /// One line per stage: label, tasks, work, shuffled bytes.
  std::string Report() const;

 private:
  std::vector<StageStats> stages_;
};

/// Makespan of assigning `tasks` (work units) to `workers` identical
/// workers using the longest-processing-time greedy rule.
int64_t LptMakespan(std::vector<int64_t> tasks, int workers);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_METRICS_H_
