#include "runtime/profile.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace diablo::runtime {

namespace {

/// Cursor over the JSON text. Depth-bounded like the binary codec: a
/// profile is machine-written and shallow, so a deep nest is garbage.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    DIABLO_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing bytes after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrCat("profile JSON: ", what, " at byte ", pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      DIABLO_ASSIGN_OR_RETURN(v.str, ParseString());
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue();
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (Eat('}')) return v;
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      DIABLO_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Eat(':')) return Err("expected ':' after object key");
      DIABLO_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.obj.emplace(std::move(key), std::move(member));
      if (Eat(',')) continue;
      if (Eat('}')) return v;
      return Err("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (Eat(']')) return v;
    for (;;) {
      DIABLO_ASSIGN_OR_RETURN(JsonValue elem, ParseValue(depth + 1));
      v.arr.push_back(std::move(elem));
      if (Eat(',')) continue;
      if (Eat(']')) return v;
      return Err("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Err("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode (the exporter only escapes control bytes, so
            // surrogate pairs are not expected; encode BMP points).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Err("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a JSON value");
    const std::string num = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.num = v;
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

int64_t JsonValue::Int(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kNumber) return fallback;
  return static_cast<int64_t>(v->num);
}

std::string JsonValue::Str(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kString) return "";
  return v->str;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

StatusOr<ProfileData> ProfileData::Parse(const std::string& json_text) {
  DIABLO_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json_text));
  if (!root.is_object()) {
    return Status::InvalidArgument("profile JSON: top level is not an object");
  }
  if (root.Int("schema_version", 0) < 1) {
    return Status::InvalidArgument(
        "profile JSON: missing or invalid schema_version");
  }
  const JsonValue* stages = root.Find("stages");
  if (stages == nullptr || !stages->is_array()) {
    return Status::InvalidArgument("profile JSON: missing \"stages\" array");
  }
  ProfileData data;
  data.program_ = root.Str("program");
  data.stages_.reserve(stages->arr.size());
  for (const JsonValue& s : stages->arr) {
    if (!s.is_object()) continue;
    ProfileStage stage;
    stage.label = s.Str("label");
    if (const JsonValue* w = s.Find("wide")) {
      stage.wide = w->kind == JsonValue::Kind::kBool && w->b;
    }
    if (const JsonValue* loc = s.Find("location")) {
      stage.file = loc->Str("file");
      stage.line = static_cast<int>(loc->Int("line"));
      stage.column = static_cast<int>(loc->Int("column"));
    }
    stage.map_work = s.Int("map_work");
    stage.reduce_work = s.Int("reduce_work");
    stage.shuffle_bytes = s.Int("shuffle_bytes");
    stage.hash_agg_keys = s.Int("hash_agg_keys");
    if (const JsonValue* parts = s.Find("partitions")) {
      if (const JsonValue* rows = parts->Find("rows")) {
        for (const JsonValue& r : rows->arr) {
          if (r.kind == JsonValue::Kind::kNumber) {
            stage.partition_rows.push_back(static_cast<int64_t>(r.num));
          }
        }
      }
    }
    data.stages_.push_back(std::move(stage));
  }
  return data;
}

const ProfileStage* ProfileData::FindStage(
    const std::string& file, int line, int column,
    const std::string& label_fragment) const {
  const ProfileStage* best = nullptr;
  for (const ProfileStage& s : stages_) {
    if (s.line != line || s.column != column || s.file != file) continue;
    if (s.label.find(label_fragment) == std::string::npos) continue;
    if (best == nullptr || s.shuffle_bytes > best->shuffle_bytes) best = &s;
  }
  return best;
}

int64_t ProfileData::ShuffleBytesFor(const std::string& file, int line,
                                     int column,
                                     const std::string& label_fragment) const {
  const ProfileStage* s = FindStage(file, line, column, label_fragment);
  return s == nullptr ? -1 : s->shuffle_bytes;
}

int64_t ProfileData::MaxStageRows() const {
  int64_t best = 0;
  for (const ProfileStage& s : stages_) {
    best = std::max(best, std::max(s.map_work, s.reduce_work));
  }
  return best;
}

int RecommendPartitions(const ProfileData& profile, int num_workers,
                        int fallback_partitions,
                        int64_t target_rows_per_partition) {
  const int64_t rows = profile.MaxStageRows();
  if (rows <= 0 || target_rows_per_partition <= 0 || num_workers <= 0) {
    return fallback_partitions;
  }
  const int64_t ideal =
      (rows + target_rows_per_partition - 1) / target_rows_per_partition;
  const int64_t lo = num_workers;
  const int64_t hi = static_cast<int64_t>(num_workers) * 8;
  return static_cast<int>(std::clamp(ideal, lo, hi));
}

}  // namespace diablo::runtime
