#include "runtime/events.h"

#include <chrono>
#include <cstdio>

namespace diablo::runtime {

namespace {

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FmtUs(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

EventLog::EventLog() : epoch_us_(SteadyNowUs()) {}

void EventLog::Emit(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  // Timestamp under the lock: log order and timestamp order coincide,
  // which check_events.py asserts.
  events_.push_back({SteadyNowUs() - epoch_us_, std::move(event)});
}

std::vector<StampedEvent> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int64_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(events_.size());
}

int64_t EventLog::CountOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& e : events_) {
    if (e.event.name == name) ++n;
  }
  return n;
}

void EventLog::WriteJsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& stamped : events_) {
    const Event& e = stamped.event;
    os << "{\"schema_version\":" << kSchemaVersion << ",\"event\":\""
       << EscapeJson(e.name) << "\",\"ts_us\":" << FmtUs(stamped.ts_us)
       << ",\"stage\":";
    if (e.stage_id >= 0) {
      os << e.stage_id;
    } else {
      os << "null";
    }
    os << ",\"location\":";
    if (e.src_line > 0) {
      os << "{\"file\":\""
         << EscapeJson(e.src_file.empty() ? "<program>" : e.src_file)
         << "\",\"line\":" << e.src_line << ",\"column\":" << e.src_column
         << "}";
    } else {
      os << "null";
    }
    for (const auto& [key, value] : e.ints) {
      os << ",\"" << EscapeJson(key) << "\":" << value;
    }
    for (const auto& [key, value] : e.strs) {
      os << ",\"" << EscapeJson(key) << "\":\"" << EscapeJson(value) << "\"";
    }
    os << "}\n";
  }
}

}  // namespace diablo::runtime
