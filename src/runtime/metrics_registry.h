#ifndef DIABLO_RUNTIME_METRICS_REGISTRY_H_
#define DIABLO_RUNTIME_METRICS_REGISTRY_H_

// Named-metric registry for cluster telemetry (DESIGN.md §18).
//
// The Metrics class (runtime/metrics.h) is the engine's *per-stage*
// accounting and feeds the deterministic cost model; this registry is
// the run-level *operational* surface: named counters, gauges, and
// histograms with label sets, exported as Prometheus text exposition or
// JSON via `diablo_run --metrics-out`. It also owns the memory
// accounting the stage stats cannot see — process peak RSS (getrusage)
// and byte watermarks for partitions and accumulators — so a
// distributed run's coordinator can publish per-stage high-water marks
// for every process in the cluster.
//
// Semantics (unit-tested in tests/metrics_test.cc):
//  - A metric name is bound to one kind (counter/gauge/histogram) at
//    first use; later calls under a different kind are ignored.
//  - Counters are monotone: negative deltas are ignored.
//  - GaugeSet overwrites; GaugeMax keeps the high-water mark.
//  - Histograms use fixed decade buckets (1, 10, ..., 1e12, +Inf) with
//    cumulative counts, a sum, and a count, matching the Prometheus
//    histogram exposition.
//  - Output ordering is deterministic: metric families sorted by name,
//    series sorted by their label string.
//
// Thread-safe; every mutation takes one mutex (telemetry is recorded at
// stage granularity, never inside task inner loops).

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace diablo::runtime {

/// Label set of one metric series, e.g. {{"stage", "3"}, {"label",
/// "reduceByKey"}}. Order is preserved in the output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (created at 0). Negative deltas
  /// are ignored — counters are monotone by contract.
  void CounterAdd(const std::string& name, int64_t delta,
                  const MetricLabels& labels = {});
  /// Sets the named gauge to `value`.
  void GaugeSet(const std::string& name, double value,
                const MetricLabels& labels = {});
  /// Raises the named gauge to `value` if above its current reading —
  /// the high-water-mark form used for memory watermarks.
  void GaugeMax(const std::string& name, double value,
                const MetricLabels& labels = {});
  /// Records one observation into the named histogram.
  void HistogramObserve(const std::string& name, double value,
                        const MetricLabels& labels = {});

  /// Upper bounds of the histogram buckets (exclusive of the implicit
  /// +Inf bucket): 1, 10, 100, ..., 1e12.
  static const std::vector<double>& HistogramBuckets();

  /// Peak resident set size of the calling process in bytes
  /// (getrusage RUSAGE_SELF; monotone over the process lifetime).
  static int64_t ProcessPeakRssBytes();

  /// Prometheus text exposition format (one # TYPE line per family).
  void WritePrometheus(std::ostream& os) const;
  /// The same registry as JSON: {"counters":[...],"gauges":[...],
  /// "histograms":[...]}.
  void WriteJson(std::ostream& os) const;

  void Clear();

  /// Test/inspection accessors; 0 / negative infinity when the series
  /// does not exist under the expected kind.
  int64_t CounterValue(const std::string& name,
                       const MetricLabels& labels = {}) const;
  double GaugeValue(const std::string& name,
                    const MetricLabels& labels = {}) const;
  int64_t HistogramCount(const std::string& name,
                         const MetricLabels& labels = {}) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    MetricLabels labels;
    int64_t counter = 0;
    double gauge = 0;
    std::vector<int64_t> bucket_counts;  ///< per HistogramBuckets() + Inf
    double hist_sum = 0;
    int64_t hist_count = 0;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    /// Keyed by the canonical label string for deterministic output.
    std::map<std::string, Series> series;
  };

  /// Returns the series for (name, labels), creating it; null when the
  /// name is already bound to a different kind.
  Series* Upsert(const std::string& name, Kind kind,
                 const MetricLabels& labels);
  const Series* Find(const std::string& name, Kind kind,
                     const MetricLabels& labels) const;

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_METRICS_REGISTRY_H_
