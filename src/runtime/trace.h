#ifndef DIABLO_RUNTIME_TRACE_H_
#define DIABLO_RUNTIME_TRACE_H_

// Wall-clock tracing and profiling for the engine (DESIGN.md §13).
//
// The engine records real spans while it executes:
//
//   run > statement > stage > wave > task
//                           > recovery (lineage recomputation, retries)
//
// Driver-side spans (run/statement/stage/wave/recovery) nest through an
// explicit stack — the engine driver is single-threaded. Task spans are
// appended concurrently by worker threads under a mutex, already closed,
// with the wave span as parent. Every span carries a monotonic
// (steady_clock) start and duration in microseconds, the worker that ran
// it, and — once provenance is stamped — the source location of the
// loop statement it was translated from.
//
// Tracing is controlled by EngineConfig::tracing (default on; the off
// path is a null-pointer check per hook). Defining
// DIABLO_DISABLE_TRACING compiles every engine hook out entirely.
//
// Exports:
//   WriteChromeTrace    Chrome trace_event JSON (chrome://tracing,
//                       Perfetto): one timeline row for the driver and
//                       one per worker thread.
//   WriteProfileJson    schema-stable profile JSON: totals, per-stage
//                       counters + source locations, task-time
//                       percentiles, per-partition row/byte histograms,
//                       skew ratio (max/mean task time), straggler
//                       flags (> 2x median). Validated by
//                       tools/check_trace_profile.py.
//   WriteExplainAnalyze text report interleaving the statement/plan
//                       structure with the observed runtime stats.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/metrics.h"

namespace diablo::runtime {

enum class SpanKind { kRun, kStatement, kStage, kWave, kTask, kRecovery };

/// Stable lowercase name ("run", "statement", ...), used in exports.
const char* SpanKindName(SpanKind kind);

struct TraceSpan {
  int64_t id = 0;
  int64_t parent = -1;  ///< span id of the enclosing span, -1 for roots
  SpanKind kind = SpanKind::kTask;
  std::string name;
  double start_us = 0;  ///< microseconds since the recorder's epoch
  double dur_us = 0;
  int worker = 0;      ///< 0 = driver/inline, 1.. = host worker threads
  int partition = -1;  ///< task spans: the partition the task processed
  int attempt = 0;     ///< task spans: retry attempt (0 = first try)
  int stage_id = -1;   ///< engine stage number (fault-injector coordinates)
  int64_t rows = -1;   ///< task: input work units; stage: output rows
  int64_t shuffle_bytes = -1;
  /// Stage spans: index of the matching StageStats in Metrics::stages(),
  /// stamped when the stage finishes; -1 otherwise.
  int metrics_index = -1;
  /// Process lane for distributed runs: 0 = coordinator, 1.. = worker
  /// process id + 1. Chrome export maps it to `pid`, so a multi-process
  /// run renders one process group per worker under a single timeline.
  int process = 0;
  /// Worker-process spans: the clock offset (worker steady clock minus
  /// coordinator steady clock, µs) measured at the Hello handshake and
  /// already applied to start_us. 0 for coordinator-side spans.
  double clock_offset_us = 0;
  /// Source provenance; src_line == 0 means unknown.
  std::string src_file;
  int src_line = 0;
  int src_column = 0;
};

/// Collects spans for one engine. All public methods are thread-safe;
/// Begin/End additionally maintain the driver-side nesting stack and
/// must only be called from the driver thread.
class TraceRecorder {
 public:
  TraceRecorder();

  /// Microseconds since this recorder was constructed (monotonic).
  double NowUs() const;

  /// Opens a driver-side span nested under the innermost open one.
  int64_t BeginSpan(SpanKind kind, std::string name);
  /// Closes `id` (and anything left open beneath it) at NowUs().
  void EndSpan(int64_t id);

  /// Innermost open driver-side span of `kind`, or -1.
  int64_t OpenSpan(SpanKind kind) const;

  void SetName(int64_t id, std::string name);
  void SetStageId(int64_t id, int stage_id);
  void SetRows(int64_t id, int64_t rows);
  void SetShuffleBytes(int64_t id, int64_t bytes);
  void SetMetricsIndex(int64_t id, int index);
  void SetLocation(int64_t id, std::string file, int line, int column);

  /// Records an already-timed task execution under `parent` (the wave
  /// span). Safe to call concurrently from worker threads.
  void AddTask(int64_t parent, double start_us, double dur_us, int worker,
               int partition, int attempt, int stage_id, int64_t rows);

  /// Splices a span shipped from another process (dist telemetry) under
  /// `parent`, assigning it a fresh id. `span.start_us` must already be
  /// in this recorder's timebase (caller subtracts EpochUs() and applies
  /// the clock offset); `span.process` selects its Chrome process lane.
  int64_t AddRemoteSpan(int64_t parent, TraceSpan span);

  /// The absolute steady-clock reading (µs) this recorder's span
  /// timestamps are relative to. Remote telemetry ships absolute
  /// steady-clock times; the splice converts with
  /// `abs_us - EpochUs() + clock_offset`.
  double EpochUs() const { return epoch_us_; }

  /// Copy of all spans recorded so far (open spans have dur_us extended
  /// to now).
  std::vector<TraceSpan> Snapshot() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<int64_t> stack_;  ///< driver-side open spans, outermost first
  double epoch_us_ = 0;         ///< steady_clock reading at construction
};

/// RAII driver-side span; every operation is a no-op when `rec` is null,
/// which is the whole tracing-off fast path.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder* rec, SpanKind kind, std::string name)
      : rec_(rec) {
    if (rec_ != nullptr) id_ = rec_->BeginSpan(kind, std::move(name));
  }
  ~ScopedSpan() {
    if (rec_ != nullptr && id_ >= 0) rec_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceRecorder* recorder() const { return rec_; }
  int64_t id() const { return id_; }

  void SetStageId(int stage_id) {
    if (rec_ != nullptr) rec_->SetStageId(id_, stage_id);
  }
  void SetRows(int64_t rows) {
    if (rec_ != nullptr) rec_->SetRows(id_, rows);
  }
  void SetLocation(std::string file, int line, int column) {
    if (rec_ != nullptr) rec_->SetLocation(id_, std::move(file), line, column);
  }

 private:
  TraceRecorder* rec_ = nullptr;
  int64_t id_ = -1;
};

/// Worker id of the calling thread for task spans: 0 for the driver (and
/// for tasks run inline on it), 1.. for pool / spawned worker threads.
/// Set once per worker thread by the thread's run loop.
int CurrentTraceWorker();
void SetCurrentTraceWorker(int worker);

/// Chrome trace_event JSON ("X" complete events + thread names).
void WriteChromeTrace(const std::vector<TraceSpan>& spans, std::ostream& os);

/// Schema-stable profile JSON (schema_version 4). Works with an empty
/// span vector (tracing off): per-stage counters still come from
/// `metrics`, wall-clock task stats are simply absent.
void WriteProfileJson(const Metrics& metrics, const ClusterModel& model,
                      const std::vector<TraceSpan>& spans,
                      const std::string& program, std::ostream& os);

/// --explain-analyze: statement tree interleaved with observed stats.
/// Falls back to the plain metrics report when `spans` is empty.
void WriteExplainAnalyze(const Metrics& metrics, const ClusterModel& model,
                         const std::vector<TraceSpan>& spans,
                         std::ostream& os);

/// Observed wall-clock statistics over the task spans beneath one stage
/// span, as rendered into the profile JSON and explain-analyze report.
struct TaskTimeStats {
  int64_t count = 0;
  double total_us = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double max_us = 0;
  /// max/mean task time; 1.0 for perfectly balanced waves, 0 when empty.
  double skew_ratio = 0;
  /// Partitions whose task time exceeded 2x the median.
  std::vector<int> straggler_partitions;
};

/// Aggregates the task spans transitively beneath span `stage_span_id`.
TaskTimeStats AggregateTaskTimes(const std::vector<TraceSpan>& spans,
                                 int64_t stage_span_id);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_TRACE_H_
