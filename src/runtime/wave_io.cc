#include "runtime/wave_io.h"

#include <utility>

#include "common/strings.h"
#include "runtime/serialize.h"

namespace diablo::runtime {

namespace {

// One byte per field marks its presence, so a payload produced by a
// mismatched (or corrupted) wave shape fails decoding instead of being
// installed into the wrong slot.
enum FieldFlag : char {
  kAbsent = 0,
  kPresent = 1,
};

Status CheckTask(int task, size_t size, const char* field) {
  if (task < 0 || static_cast<size_t>(task) >= size) {
    return Status::RuntimeError(
        StrCat("task ", task, " out of range for wave slot '", field, "' (",
               size, " tasks)"));
  }
  return Status::OK();
}

StatusOr<bool> GetFlag(const std::string& data, size_t* offset,
                       bool expected_present, const char* field) {
  if (*offset >= data.size()) {
    return Status::RuntimeError("truncated task-slot payload");
  }
  char flag = data[(*offset)++];
  if (flag != kAbsent && flag != kPresent) {
    return Status::RuntimeError(
        StrCat("corrupt presence flag for wave slot '", field, "'"));
  }
  const bool present = flag == kPresent;
  if (present != expected_present) {
    return Status::RuntimeError(
        StrCat("task-slot payload shape mismatch on '", field, "': ",
               present ? "present" : "absent", " on the wire, ",
               expected_present ? "present" : "absent", " in the wave"));
  }
  return present;
}

/// Cheap bound shared by every count prefix below: each element costs at
/// least one byte, so a count larger than the remaining payload is a
/// corrupt (oversized) length prefix.
Status CheckCount(uint32_t n, const std::string& data, size_t offset) {
  if (static_cast<size_t>(n) > data.size() - offset) {
    return Status::RuntimeError("oversized length prefix in task-slot payload");
  }
  return Status::OK();
}

void PutNumVec(const std::vector<int64_t>& v, std::string* out) {
  PutWireU32(static_cast<uint32_t>(v.size()), out);
  for (int64_t x : v) PutWireU64(static_cast<uint64_t>(x), out);
}

StatusOr<std::vector<int64_t>> GetNumVec(const std::string& data,
                                         size_t* offset) {
  DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetWireU32(data, offset));
  DIABLO_RETURN_IF_ERROR(CheckCount(n, data, *offset));
  std::vector<int64_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DIABLO_ASSIGN_OR_RETURN(uint64_t x, GetWireU64(data, offset));
    v.push_back(static_cast<int64_t>(x));
  }
  return v;
}

}  // namespace

StatusOr<std::string> EncodeTaskSlots(const WaveSlots& slots, int task) {
  std::string out;
  if (slots.rows != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.rows->size(), "rows"));
    out.push_back(kPresent);
    const ValueVec& rows = (*slots.rows)[task];
    PutWireU32(static_cast<uint32_t>(rows.size()), &out);
    for (const Value& v : rows) SerializeValue(v, &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.hashed != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.hashed->size(), "hashed"));
    out.push_back(kPresent);
    SerializeHashedVec((*slots.hashed)[task], &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.buckets != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.buckets->size(), "buckets"));
    out.push_back(kPresent);
    const std::vector<HashedVec>& buckets = (*slots.buckets)[task];
    PutWireU32(static_cast<uint32_t>(buckets.size()), &out);
    for (const HashedVec& bucket : buckets) SerializeHashedVec(bucket, &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.partials != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.partials->size(), "partials"));
    out.push_back(kPresent);
    const std::optional<Value>& partial = (*slots.partials)[task];
    out.push_back(partial.has_value() ? kPresent : kAbsent);
    if (partial.has_value()) SerializeValue(*partial, &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.nums != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.nums->size(), "nums"));
    out.push_back(kPresent);
    PutWireU64(static_cast<uint64_t>((*slots.nums)[task]), &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.num_vecs != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.num_vecs->size(), "num_vecs"));
    out.push_back(kPresent);
    PutNumVec((*slots.num_vecs)[task], &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.tallies != nullptr) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.tallies->size(), "tallies"));
    out.push_back(kPresent);
    const ChainTally& tally = (*slots.tallies)[task];
    PutNumVec(tally.rows, &out);
    PutNumVec(tally.sample_bytes, &out);
    PutWireU64(static_cast<uint64_t>(tally.columnar_batches), &out);
    PutWireU64(static_cast<uint64_t>(tally.columnar_rows_fallback), &out);
    PutWireU64(static_cast<uint64_t>(tally.accumulator_bytes), &out);
  } else {
    out.push_back(kAbsent);
  }
  if (slots.col_batches != nullptr) {
    DIABLO_RETURN_IF_ERROR(
        CheckTask(task, slots.col_batches->size(), "col_batches"));
    out.push_back(kPresent);
    SerializeColumnBatch((*slots.col_batches)[task], &out);
  } else {
    out.push_back(kAbsent);
  }
  return out;
}

Status DecodeTaskSlots(const WaveSlots& slots, int task,
                       const std::string& bytes) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(
      bool has_rows, GetFlag(bytes, &offset, slots.rows != nullptr, "rows"));
  if (has_rows) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.rows->size(), "rows"));
    DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetWireU32(bytes, &offset));
    DIABLO_RETURN_IF_ERROR(CheckCount(n, bytes, offset));
    ValueVec rows;
    rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      DIABLO_ASSIGN_OR_RETURN(Value v, DeserializeValue(bytes, &offset));
      rows.push_back(std::move(v));
    }
    (*slots.rows)[task] = std::move(rows);
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_hashed,
      GetFlag(bytes, &offset, slots.hashed != nullptr, "hashed"));
  if (has_hashed) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.hashed->size(), "hashed"));
    DIABLO_ASSIGN_OR_RETURN(HashedVec rows,
                            DeserializeHashedVec(bytes, &offset));
    (*slots.hashed)[task] = std::move(rows);
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_buckets,
      GetFlag(bytes, &offset, slots.buckets != nullptr, "buckets"));
  if (has_buckets) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.buckets->size(), "buckets"));
    DIABLO_ASSIGN_OR_RETURN(uint32_t n, GetWireU32(bytes, &offset));
    DIABLO_RETURN_IF_ERROR(CheckCount(n, bytes, offset));
    std::vector<HashedVec> buckets;
    buckets.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      DIABLO_ASSIGN_OR_RETURN(HashedVec bucket,
                              DeserializeHashedVec(bytes, &offset));
      buckets.push_back(std::move(bucket));
    }
    (*slots.buckets)[task] = std::move(buckets);
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_partial,
      GetFlag(bytes, &offset, slots.partials != nullptr, "partials"));
  if (has_partial) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.partials->size(), "partials"));
    // The inner flag carries real information — an empty partition
    // reduces to "no partial" — so both values are legal here; only a
    // byte that is neither flag is corruption.
    if (offset >= bytes.size()) {
      return Status::RuntimeError("truncated task-slot payload");
    }
    char has_value = bytes[offset++];
    if (has_value == kPresent) {
      DIABLO_ASSIGN_OR_RETURN(Value v, DeserializeValue(bytes, &offset));
      (*slots.partials)[task] = std::move(v);
    } else if (has_value == kAbsent) {
      (*slots.partials)[task].reset();
    } else {
      return Status::RuntimeError(
          "corrupt presence flag for wave slot 'partials.value'");
    }
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_num, GetFlag(bytes, &offset, slots.nums != nullptr, "nums"));
  if (has_num) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.nums->size(), "nums"));
    DIABLO_ASSIGN_OR_RETURN(uint64_t x, GetWireU64(bytes, &offset));
    (*slots.nums)[task] = static_cast<int64_t>(x);
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_num_vec,
      GetFlag(bytes, &offset, slots.num_vecs != nullptr, "num_vecs"));
  if (has_num_vec) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.num_vecs->size(), "num_vecs"));
    DIABLO_ASSIGN_OR_RETURN((*slots.num_vecs)[task], GetNumVec(bytes, &offset));
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_tally,
      GetFlag(bytes, &offset, slots.tallies != nullptr, "tallies"));
  if (has_tally) {
    DIABLO_RETURN_IF_ERROR(CheckTask(task, slots.tallies->size(), "tallies"));
    ChainTally tally;
    DIABLO_ASSIGN_OR_RETURN(tally.rows, GetNumVec(bytes, &offset));
    DIABLO_ASSIGN_OR_RETURN(tally.sample_bytes, GetNumVec(bytes, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint64_t cb, GetWireU64(bytes, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint64_t cf, GetWireU64(bytes, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint64_t ab, GetWireU64(bytes, &offset));
    tally.columnar_batches = static_cast<int64_t>(cb);
    tally.columnar_rows_fallback = static_cast<int64_t>(cf);
    tally.accumulator_bytes = static_cast<int64_t>(ab);
    (*slots.tallies)[task] = std::move(tally);
  }
  DIABLO_ASSIGN_OR_RETURN(
      bool has_batch,
      GetFlag(bytes, &offset, slots.col_batches != nullptr, "col_batches"));
  if (has_batch) {
    DIABLO_RETURN_IF_ERROR(
        CheckTask(task, slots.col_batches->size(), "col_batches"));
    DIABLO_ASSIGN_OR_RETURN(ColumnBatch batch,
                            DeserializeColumnBatch(bytes, &offset));
    (*slots.col_batches)[task] = std::move(batch);
  }
  if (offset != bytes.size()) {
    return Status::RuntimeError("trailing bytes after task-slot payload");
  }
  return Status::OK();
}

}  // namespace diablo::runtime
