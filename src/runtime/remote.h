#ifndef DIABLO_RUNTIME_REMOTE_H_
#define DIABLO_RUNTIME_REMOTE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace diablo::runtime {

/// One span recorded inside a worker process and shipped back with the
/// task result (kTelemetry frame). Times are ABSOLUTE worker
/// steady-clock microseconds; the coordinator rebases them into its
/// recorder's timebase using the clock offset measured at the Hello
/// handshake. (Workers are forked from the coordinator on one host, so
/// both read the same CLOCK_MONOTONIC; the offset is the measured
/// residual, applied only when it is large enough to be a real skew.)
struct WorkerSpan {
  double start_abs_us = 0;
  double dur_us = 0;
  int partition = -1;
  int attempt = 0;
  int stage_id = -1;
  int64_t rows = -1;
};

/// Telemetry piggybacked on one task result: the spans the worker
/// recorded while running the task, plus process-level counters.
struct WorkerTelemetry {
  int task = -1;
  int attempt = 0;
  /// Worker process peak RSS in bytes (getrusage) when the task ended.
  int64_t peak_rss_bytes = 0;
  std::vector<WorkerSpan> spans;
};

/// One task wave handed to a remote executor. The engine packages every
/// wave (map, shuffle, reduce, ...) into this closure bundle so the
/// scheduling seam stays in runtime/ while the process/socket machinery
/// lives in src/dist/ — runtime/ never links against dist/.
///
/// Split of responsibilities:
///  - `run` and `encode` execute on the WORKER side (after fork they run
///    in the child against its copy-on-write snapshot of the wave
///    closures).
///  - `install` and every hook below execute on the COORDINATOR side,
///    against the driver's live slot vectors.
///
/// Simulated faults stay engine-owned: the coordinator drives the same
/// attempt loop the local scheduler runs (begin_attempt / sim_kill /
/// charge_*) so a distributed run charges byte-identical simulated
/// retry and straggler time. Real worker deaths are a separate budget:
/// a task lost to a SIGKILL is re-dispatched with the SAME simulated
/// attempt number, keeping the deterministic fault schedule aligned
/// between local and distributed runs.
///
/// Every member must be set; the engine always provides all of them
/// (with trivial bodies when fault injection or tracing is off).
struct RemoteTaskWave {
  /// Human-readable op label ("map", "shuffle", ...), for errors/logs.
  std::string label;
  /// Stage id (fault-injection coordinate and trace stage).
  int stage = 0;
  /// Per-task work estimate (rows), sized to the number of tasks.
  std::vector<int64_t> task_work;
  /// Simulated retry budget: a task whose simulated attempt counter
  /// reaches this bound fails the wave via `sim_budget_exhausted`.
  int max_sim_attempts = 1;

  /// WORKER: runs task `p` as simulated attempt `attempt`, writing the
  /// worker-local copy of the wave's slots. May return TaskLost (a
  /// simulated in-task fault) — retryable by the coordinator.
  std::function<Status(int p, int attempt)> run;
  /// WORKER: encodes task `p`'s slots after a successful run.
  std::function<StatusOr<std::string>(int p)> encode;
  /// COORDINATOR: installs a worker's encoded slots for task `p` into
  /// the driver's slot vectors.
  std::function<Status(int p, const std::string& bytes)> install;

  /// COORDINATOR: starts the next simulated attempt of task `p` and
  /// returns its 0-based attempt number (charges the engine's per-stage
  /// attempt counter).
  std::function<int(int p)> begin_attempt;
  /// COORDINATOR: true when the deterministic injector kills simulated
  /// attempt `attempt` of task `p` before it would run.
  std::function<bool(int p, int attempt)> sim_kill;
  /// COORDINATOR: charges simulated recovery time (task time + backoff)
  /// for a failed simulated attempt.
  std::function<void(int p, int attempt)> charge_failure;
  /// COORDINATOR: charges simulated straggler slowdown, if any, for a
  /// successful attempt.
  std::function<void(int p, int attempt)> charge_success;
  /// COORDINATOR: the error a task reports when its simulated retry
  /// budget is exhausted (message identical to the local scheduler's).
  std::function<Status(int p)> sim_budget_exhausted;

  /// Ask workers to record and ship task telemetry (kTelemetry frames).
  /// Costs one extra frame per task result; off when the engine has
  /// neither a trace recorder nor a metrics registry.
  bool want_telemetry = false;

  /// COORDINATOR trace hooks. `worker` is the 0-based worker index.
  std::function<void(int p, int attempt, int worker)> on_dispatch;
  std::function<void(int p, int attempt, int worker)> on_complete;
  /// COORDINATOR: telemetry received from `worker` for one task, before
  /// the matching on_complete. `clock_offset_us` is the worker's steady
  /// clock minus the coordinator's, measured at the Hello handshake.
  /// Null when want_telemetry is false.
  std::function<void(int worker, double clock_offset_us,
                     const WorkerTelemetry& telemetry)>
      on_telemetry;
  /// COORDINATOR: a worker died (heartbeat timeout, task deadline, or a
  /// real kill); `pending` lists the task indices that were in flight
  /// on it and will be re-dispatched to survivors.
  std::function<void(int worker, const std::vector<int>& pending,
                     const std::string& reason)>
      on_worker_lost;
};

/// Counters a remote executor reports back per wave, merged into the
/// engine's stage metrics.
struct RemoteWaveStats {
  /// Tasks dispatched to workers (includes real-retry re-dispatches).
  int64_t tasks = 0;
  /// Re-dispatches caused by real worker loss (not simulated faults).
  int64_t real_retries = 0;
  /// Workers declared dead during the wave.
  int64_t workers_lost = 0;
  /// Total encoded result bytes installed.
  int64_t result_bytes = 0;
};

/// The engine's seam to a distributed backend. Implemented by
/// dist::Coordinator; the engine calls RunWave for every task wave when
/// EngineConfig::remote is set.
class RemoteExecutor {
 public:
  virtual ~RemoteExecutor() = default;

  /// Executes every task of `wave` remotely, installing all results
  /// before returning. Returns the first (lowest task index) genuine
  /// task error, or a DistError when the backend itself fails.
  virtual Status RunWave(const RemoteTaskWave& wave,
                         RemoteWaveStats* stats) = 0;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_REMOTE_H_
