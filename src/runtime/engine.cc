#include "runtime/engine.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "runtime/metrics_registry.h"
#include "runtime/remote.h"
#include "runtime/serialize.h"
#include "runtime/worker_pool.h"

namespace diablo::runtime {

namespace {

/// Stable ordered map, the legacy aggregation path of the wide
/// operators (EngineConfig::hash_aggregation = false): O(log n) deep
/// Value::Compare per inserted row. The default path aggregates through
/// KeyedAccumulator with one final per-partition sort instead; both
/// produce byte-identical output (asserted in hashagg_test.cc).
using OrderedGroups = std::map<Value, ValueVec>;

/// Payload of a Distinct accumulator entry: key presence is the datum.
struct NoPayload {};

std::vector<int64_t> RowCounts(const std::vector<ValueVec>& parts) {
  std::vector<int64_t> counts;
  counts.reserve(parts.size());
  for (const auto& p : parts) counts.push_back(static_cast<int64_t>(p.size()));
  return counts;
}

std::vector<int64_t> RowCounts(const std::vector<HashedVec>& parts) {
  std::vector<int64_t> counts;
  counts.reserve(parts.size());
  for (const auto& p : parts) counts.push_back(static_cast<int64_t>(p.size()));
  return counts;
}

std::vector<int64_t> RowCounts(const Dataset& ds) {
  return RowCounts(ds.partitions());
}

/// Simulated scheduler backoff charged before retrying after `attempt`
/// failed: base * 2^attempt, with the exponent capped so the charge can
/// never overflow to infinity on absurd budgets.
double RetryBackoff(const FaultConfig& fc, int attempt) {
  return fc.retry_backoff_seconds * std::ldexp(1.0, std::min(attempt, 16));
}

/// Worker clock offsets below this are treated as zero when splicing
/// worker telemetry spans into the driver trace: forked workers share
/// the driver's CLOCK_MONOTONIC, so the Hello-measured offset is pure
/// scheduling noise, and collapsing it keeps worker spans nested inside
/// their dispatch window. Larger offsets (a worker with a genuinely
/// different clock base) are applied; the measured value is recorded on
/// the span either way.
constexpr double kClockAlignThresholdUs = 10'000.0;

int HashDestination(size_t hash, int out_parts) {
  return static_cast<int>(hash % static_cast<size_t>(out_parts));
}

/// Murmur3-style 64-bit finalizer used to pick salt stripes. The
/// scatter already consumed the hash modulo num_partitions
/// (HashDestination), so striping a destination's rows must remix the
/// hash first or the stripes would be modulus-correlated with the
/// destination choice and collapse onto few stripes.
size_t RemixHash(size_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

/// The sub-task layout of one salted wave (SkewConfig). Original task p
/// becomes fanout[p] virtual tasks; virtual task t works on sub-task
/// index_of[t] of original task_of[t]. fanout == 1 everywhere when
/// mitigation is off or nothing is hot — the layout then degenerates to
/// the identity and every downstream loop behaves exactly as before.
struct SaltPlan {
  bool active = false;
  int64_t extra = 0;        ///< sub-tasks beyond the original task count
  std::vector<int> fanout;  ///< per original task, 1 = unsplit
  std::vector<int> first;   ///< original task -> its first virtual index
  std::vector<int> task_of;   ///< virtual -> original task
  std::vector<int> index_of;  ///< virtual -> sub-task index within task
};

SaltPlan PlanSalt(const std::vector<int64_t>& rows, const SkewConfig& cfg) {
  SaltPlan plan;
  const int n = static_cast<int>(rows.size());
  plan.fanout.assign(n, 1);
  int64_t total = 0;
  for (int64_t r : rows) total += r;
  if (cfg.mitigate && n > 1 && total > 0) {
    const double mean = static_cast<double>(total) / n;
    for (int p = 0; p < n; ++p) {
      if (rows[p] >= cfg.min_rows &&
          static_cast<double>(rows[p]) > cfg.ratio * mean) {
        // Enough sub-tasks that each still carries min_rows-scale work.
        const int64_t want = rows[p] / std::max<int64_t>(cfg.min_rows, 1);
        plan.fanout[p] = static_cast<int>(std::clamp<int64_t>(
            want, 2, std::max(2, cfg.max_fanout)));
      }
    }
  }
  plan.first.reserve(n);
  for (int p = 0; p < n; ++p) {
    plan.first.push_back(static_cast<int>(plan.task_of.size()));
    for (int s = 0; s < plan.fanout[p]; ++s) {
      plan.task_of.push_back(p);
      plan.index_of.push_back(s);
    }
    if (plan.fanout[p] > 1) {
      plan.active = true;
      plan.extra += plan.fanout[p] - 1;
    }
  }
  return plan;
}

/// Emits the skew_salting event for an active salt plan (no-op when the
/// plan split nothing or no log is attached): how many hot tasks were
/// split and how many extra sub-tasks the split added.
void EmitSkewSalting(EventLog* events, int stage, const char* wave,
                     const SaltPlan& salt) {
  if (events == nullptr || !salt.active) return;
  Event e;
  e.name = "skew_salting";
  e.stage_id = stage;
  int64_t hot = 0;
  for (int f : salt.fanout) {
    if (f > 1) ++hot;
  }
  e.ints.emplace_back("hot_tasks", hot);
  e.ints.emplace_back("extra_tasks", salt.extra);
  e.strs.emplace_back("wave", wave);
  events->Emit(std::move(e));
}

/// Row range [lo, hi) of chunk `index` of `fanout` over `n` rows:
/// contiguous, covering, ascending — chunk order IS arrival order.
std::pair<size_t, size_t> ChunkRange(size_t n, int index, int fanout) {
  const size_t f = static_cast<size_t>(fanout);
  const size_t i = static_cast<size_t>(index);
  return {n * i / f, n * (i + 1) / f};
}

/// Un-salt merge of one STRIPED destination: k-way merge of the
/// sub-tasks' sorted (key, value) rows. Striping is by key hash, so the
/// key sets are disjoint — this is a plain sorted merge, byte-identical
/// to the sort the unsplit task would have produced.
ValueVec MergeSortedRows(std::vector<ValueVec> parts) {
  size_t total = 0;
  for (const ValueVec& p : parts) total += p.size();
  ValueVec out;
  out.reserve(total);
  std::vector<size_t> cur(parts.size(), 0);
  while (out.size() < total) {
    int best = -1;
    for (size_t s = 0; s < parts.size(); ++s) {
      if (cur[s] >= parts[s].size()) continue;
      if (best < 0 || parts[s][cur[s]].tuple()[0] <
                          parts[best][cur[best]].tuple()[0]) {
        best = static_cast<int>(s);
      }
    }
    out.push_back(std::move(parts[best][cur[best]]));
    ++cur[best];
  }
  return out;
}

/// Un-salt merge of one CHUNKED groupByKey destination: k-way merge of
/// the chunks' sorted (key, bag) rows; a key present in several chunks
/// concatenates its partial bags in chunk order — which is arrival
/// order, because chunks are contiguous ascending row ranges. Counts
/// each extra appearance of a key (a fold the merge performed) into
/// `salted_keys`.
ValueVec MergeSortedBags(std::vector<ValueVec> parts, int64_t* salted_keys) {
  size_t total = 0;
  for (const ValueVec& p : parts) total += p.size();
  ValueVec out;
  out.reserve(total);
  std::vector<size_t> cur(parts.size(), 0);
  size_t done = 0;
  while (done < total) {
    int best = -1;
    for (size_t s = 0; s < parts.size(); ++s) {
      if (cur[s] >= parts[s].size()) continue;
      if (best < 0 || parts[s][cur[s]].tuple()[0] <
                          parts[best][cur[best]].tuple()[0]) {
        best = static_cast<int>(s);
      }
    }
    const Value& key = parts[best][cur[best]].tuple()[0];
    ValueVec bag;
    int appearances = 0;
    for (size_t s = static_cast<size_t>(best); s < parts.size(); ++s) {
      if (cur[s] >= parts[s].size()) continue;
      const Value& row = parts[s][cur[s]];
      if (!(row.tuple()[0] == key)) continue;
      const ValueVec& part_bag = row.tuple()[1].bag();
      bag.insert(bag.end(), part_bag.begin(), part_bag.end());
      ++cur[s];
      ++done;
      ++appearances;
    }
    if (appearances > 1) *salted_keys += appearances - 1;
    out.push_back(Value::MakePair(key, Value::MakeBag(std::move(bag))));
  }
  return out;
}

/// Splits one destination's shuffled rows into `k` hash stripes,
/// preserving arrival order within each stripe (stable single pass).
/// Every row of a key shares the key's hash, hence its stripe: no key
/// is ever split, so per-key fold order is untouched.
std::vector<HashedVec> StripeHashed(HashedVec rows, int k) {
  std::vector<HashedVec> stripes(k);
  for (HashedVec& s : stripes) s.reserve(rows.size() / k + 1);
  for (HashedRow& hr : rows) {
    stripes[RemixHash(hr.hash) % static_cast<size_t>(k)].push_back(
        std::move(hr));
  }
  return stripes;
}

/// StripeHashed for the typed shuffle representation. Each stripe keeps
/// a copy of the (shared-payload) string dictionary so its codes stay
/// resolvable independently.
std::vector<TypedRows> StripeTyped(const TypedRows& rows, int k) {
  std::vector<TypedRows> stripes(k);
  const bool ints = rows.payload_mode == TypedPayloadMode::kInt64;
  for (TypedRows& s : stripes) {
    s.key_mode = rows.key_mode;
    s.payload_mode = rows.payload_mode;
    s.dict_values = rows.dict_values;
    s.dict_hashes = rows.dict_hashes;
    s.hashes.reserve(rows.size() / k + 1);
    s.key_bits.reserve(rows.size() / k + 1);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    TypedRows& s = stripes[RemixHash(rows.hashes[i]) % static_cast<size_t>(k)];
    s.hashes.push_back(rows.hashes[i]);
    s.key_bits.push_back(rows.key_bits[i]);
    if (ints) {
      s.pay_ints.push_back(rows.pay_ints[i]);
    } else {
      s.pay_doubles.push_back(rows.pay_doubles[i]);
    }
  }
  return stripes;
}

// ChainTally moved to runtime/wave_io.h: the distributed backend
// marshals the per-task tallies back with the wave's output slots.

/// Applies chain[i..] to `v` element-by-element, delivering every
/// surviving output row to `sink` (a Status(const Value&) callable).
/// Rows produced at boundary b are recorded in `tally` (may be null;
/// boundaries past its Reset() size — i.e. outputs the caller does
/// materialize — are ignored).
template <typename Sink>
Status ApplyChain(const FusedChain& chain, size_t i, const Value& v,
                  ChainTally* tally, Sink&& sink) {
  if (i == chain.size()) return sink(v);
  const FusedOp& op = chain[i];
  switch (op.kind) {
    case FusedOp::Kind::kMap: {
      DIABLO_ASSIGN_OR_RETURN(Value out, op.map(v));
      if (tally != nullptr) tally->Record(i, out);
      return ApplyChain(chain, i + 1, out, tally, sink);
    }
    case FusedOp::Kind::kMapValues: {
      if (!v.is_tuple() || v.tuple().size() != 2) {
        return Status::RuntimeError(
            StrCat("mapValues applied to non-pair row: ", v.ToString()));
      }
      DIABLO_ASSIGN_OR_RETURN(Value mv, op.map(v.tuple()[1]));
      Value out = Value::MakePair(v.tuple()[0], std::move(mv));
      if (tally != nullptr) tally->Record(i, out);
      return ApplyChain(chain, i + 1, out, tally, sink);
    }
    case FusedOp::Kind::kFilter: {
      DIABLO_ASSIGN_OR_RETURN(bool keep, op.pred(v));
      if (!keep) return Status::OK();
      if (tally != nullptr) tally->Record(i, v);
      return ApplyChain(chain, i + 1, v, tally, sink);
    }
    case FusedOp::Kind::kFlatMap: {
      DIABLO_ASSIGN_OR_RETURN(ValueVec vs, op.flat(v));
      for (const Value& out : vs) {
        if (tally != nullptr) tally->Record(i, out);
        DIABLO_RETURN_IF_ERROR(ApplyChain(chain, i + 1, out, tally, sink));
      }
      return Status::OK();
    }
  }
  return Status::RuntimeError("unknown fused operator kind");
}

/// The stage label of a fused chain: its operator labels joined with '+'.
std::string ChainLabel(const FusedChain& chain) {
  std::string label;
  for (const FusedOp& op : chain) {
    if (!label.empty()) label += '+';
    label += op.label;
  }
  return label;
}

/// Recorded label of a wide stage that inlined a pending chain, e.g.
/// "flatMap+filter+reduceByKey".
std::string FusedStageLabel(const FusedChain& chain,
                            const std::string& label) {
  return chain.empty() ? label : ChainLabel(chain) + "+" + label;
}

/// True when every operator of the chain carries a column kernel and
/// all kernels agree on the row shape (whole rows vs pair values) — the
/// precondition for running the chain over one column batch.
bool ChainFullyKernelized(const FusedChain& chain) {
  if (chain.empty()) return false;
  if (!chain[0].kernel.has_value()) return false;
  const bool on_value = chain[0].kernel->on_value;
  for (const FusedOp& op : chain) {
    if (!op.kernel.has_value()) return false;
    if (op.kernel->on_value != on_value) return false;
  }
  return true;
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), injector_(config_.faults) {
  if (config_.num_partitions < 1) config_.num_partitions = 1;
  if (config_.host_threads < 1) config_.host_threads = 1;
  if (config_.faults.max_task_attempts < 1) config_.faults.max_task_attempts = 1;
  if (config_.remote != nullptr) {
    // The coordinator forks workers mid-wave; the driver must hold no
    // extra threads at fork time (a forked child inherits only the
    // calling thread, so a pool worker's locks would be orphaned).
    config_.host_threads = 1;
    config_.persistent_pool = false;
  }
  // Real kills recover through lineage, so the recompute closures must
  // survive even with every simulated fault class disarmed.
  if (config_.dist_lose_on_kill) config_.faults.retain_lineage = true;
#ifndef DIABLO_DISABLE_TRACING
  if (config_.tracing) trace_ = std::make_unique<TraceRecorder>();
#endif
}

Engine::~Engine() = default;

Dataset Engine::Parallelize(ValueVec rows) const {
  return Parallelize(std::move(rows), config_.num_partitions);
}

Dataset Engine::Parallelize(ValueVec rows, int num_partitions) const {
  if (num_partitions < 1) num_partitions = 1;
  std::vector<ValueVec> parts(num_partitions);
  const size_t n = rows.size();
  size_t begin = 0;
  for (int p = 0; p < num_partitions; ++p) {
    size_t end = n * (p + 1) / num_partitions;
    parts[p].reserve(end - begin);
    for (size_t i = begin; i < end; ++i) parts[p].push_back(std::move(rows[i]));
    begin = end;
  }
  return Dataset(std::move(parts));
}

Dataset Engine::Range(int64_t lo, int64_t hi) const {
  ValueVec rows;
  if (hi >= lo) {
    rows.reserve(static_cast<size_t>(hi - lo + 1));
    for (int64_t i = lo; i <= hi; ++i) rows.push_back(Value::MakeInt(i));
  }
  return Parallelize(std::move(rows));
}

Status Engine::RunPerPartition(int n,
                               const std::function<Status(int)>& fn) const {
  if (n <= 0) return Status::OK();
  const int threads = std::min(config_.host_threads, n);
  if (threads <= 1) {
    // Serial order stops at the first error, which IS the
    // lowest-indexed failing partition.
    for (int i = 0; i < n; ++i) DIABLO_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }
  if (config_.persistent_pool) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<WorkerPool>(config_.host_threads);
    }
    pool_tasks_pending_ += n;
    return pool_->Run(n, fn);
  }
  // Spawn-per-wave baseline (AB7): fresh threads every call, same
  // deterministic error selection as the pool — every partition below
  // the lowest known failure runs, and the lowest-indexed failing
  // partition's error is reported regardless of the thread race.
  std::atomic<int> next{0};
  std::atomic<int> error_bound{INT_MAX};
  std::mutex mu;
  int err_index = INT_MAX;
  Status error;
  auto worker = [&] {
    for (;;) {
      int i = next.fetch_add(1);
      if (i >= n) return;
      if (i >= error_bound.load()) continue;
      Status st = fn(i);
      if (!st.ok()) {
        int cur = error_bound.load();
        while (i < cur && !error_bound.compare_exchange_weak(cur, i)) {
        }
        std::lock_guard<std::mutex> lock(mu);
        if (i < err_index) {
          err_index = i;
          error = std::move(st);
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&worker, t] {
      SetCurrentTraceWorker(t + 1);
      worker();
    });
  }
  for (auto& t : pool) t.join();
  return error;
}

Status Engine::RunTaskWave(const std::string& label, int stage,
                           const std::vector<int64_t>& task_work,
                           const std::function<Status(int, int)>& fn,
                           StageRecovery* rec, const WaveSlots* slots) {
  const int n = static_cast<int>(task_work.size());
  if (n == 0) return Status::OK();
  TraceRecorder* tr = trace();
  ScopedSpan wave_span(tr, SpanKind::kWave, label);
  wave_span.SetStageId(stage);
  if (config_.remote != nullptr && slots != nullptr) {
    return RunTaskWaveRemote(label, stage, task_work, fn, rec, *slots, tr,
                             wave_span.id());
  }
  // Times one task attempt into a task span under the wave. Tracing
  // never perturbs execution: the stage/partition/attempt coordinates
  // the fault injector sees are identical either way.
  auto invoke = [&](int p, int attempt) -> Status {
    if (tr == nullptr) return fn(p, attempt);
    const double t0 = tr->NowUs();
    Status st = fn(p, attempt);
    tr->AddTask(wave_span.id(), t0, tr->NowUs() - t0, CurrentTraceWorker(), p,
                attempt, stage, task_work[p]);
    return st;
  };
  if (!config_.faults.enabled()) {
    // Fault-free fast path: every task succeeds on its first attempt and
    // no retry bookkeeping is kept.
    rec->attempts += n;
    return RunPerPartition(n, [&](int p) { return invoke(p, 0); });
  }
  const FaultConfig& fc = config_.faults;
  const int budget = fc.max_task_attempts;
  // One structured event per failed attempt. EventLog::Emit locks, so
  // the wave threads may race here without ordering guarantees beyond
  // the log's own timestamping.
  auto emit_retry = [&](int p, int attempt, const char* reason) {
    if (config_.events == nullptr) return;
    Event e;
    e.name = "task_retry";
    e.stage_id = stage;
    e.ints.emplace_back("partition", p);
    e.ints.emplace_back("attempt", attempt);
    e.strs.emplace_back("reason", reason);
    config_.events->Emit(std::move(e));
  };
  // Per-task tallies, merged in index order below so the floating-point
  // sums are identical for every host_threads setting.
  std::vector<int64_t> attempts(n, 0);
  std::vector<double> recovery(n, 0.0);
  Status st = RunPerPartition(n, [&](int p) -> Status {
    const double task_seconds = static_cast<double>(task_work[p]) *
                                config_.cluster.seconds_per_work_unit;
    for (int attempt = 0; attempt < budget; ++attempt) {
      ++attempts[p];
      if (injector_.TaskAttemptFails(stage, p, attempt)) {
        // The attempt dies partway through: its work is wasted and the
        // scheduler waits out a backoff before relaunching.
        recovery[p] += task_seconds + RetryBackoff(fc, attempt);
        emit_retry(p, attempt, "sim_kill");
        continue;
      }
      Status run = invoke(p, attempt);
      if (run.ok()) {
        const double mult = injector_.StragglerMultiplier(stage, p, attempt);
        if (mult > 1.0) recovery[p] += (mult - 1.0) * task_seconds;
        return Status::OK();
      }
      // Only simulated faults are retryable; a genuine callback error
      // aborts the stage unchanged.
      if (run.code() != StatusCode::kTaskLost) return run;
      recovery[p] += task_seconds + RetryBackoff(fc, attempt);
      emit_retry(p, attempt, "task_lost");
    }
    return Status::RuntimeError(
        StrCat("stage #", stage, " '", label, "': partition ", p,
               " failed after ", budget, " attempts; retry budget (", budget,
               ") exhausted"));
  });
  for (int p = 0; p < n; ++p) {
    rec->attempts += attempts[p];
    rec->recovery_seconds += recovery[p];
  }
  return st;
}

Status Engine::RunTaskWaveRemote(const std::string& label, int stage,
                                 const std::vector<int64_t>& task_work,
                                 const std::function<Status(int, int)>& fn,
                                 StageRecovery* rec, const WaveSlots& slots,
                                 TraceRecorder* tr, int64_t wave_span_id) {
  const int n = static_cast<int>(task_work.size());
  const FaultConfig& fc = config_.faults;
  const bool faults_on = fc.enabled();
  // Per-task tallies written by the coordinator-side hooks, merged in
  // index order below — same deterministic float summation as the local
  // scheduler, whatever order results come off the sockets.
  std::vector<int64_t> attempts(n, 0);
  std::vector<double> recovery(n, 0.0);
  std::vector<double> dispatch_t0(n, 0.0);
  auto task_seconds = [&](int p) {
    return static_cast<double>(task_work[p]) *
           config_.cluster.seconds_per_work_unit;
  };

  // Tasks whose worker shipped a kTelemetry frame before the result:
  // their worker-side span replaces the coordinator's synthesized
  // dispatch→result span (keeping both would double-count the task in
  // AggregateTaskTimes). Telemetry frames precede their kTaskResult on
  // the wire, so the flag is always set before on_complete fires.
  std::vector<char> telemetry_seen(static_cast<size_t>(n), 0);

  RemoteTaskWave wave;
  wave.label = label;
  wave.stage = stage;
  wave.task_work = task_work;
  wave.want_telemetry = tr != nullptr || config_.registry != nullptr;
  wave.max_sim_attempts = faults_on ? fc.max_task_attempts : 1;
  wave.run = fn;
  wave.encode = [&slots](int p) { return EncodeTaskSlots(slots, p); };
  wave.install = [&slots](int p, const std::string& bytes) {
    return DecodeTaskSlots(slots, p, bytes);
  };
  wave.begin_attempt = [&attempts](int p) {
    return static_cast<int>(attempts[p]++);
  };
  wave.sim_kill = [this, faults_on, stage](int p, int attempt) {
    return faults_on && injector_.TaskAttemptFails(stage, p, attempt);
  };
  wave.charge_failure = [&, this, stage](int p, int attempt) {
    recovery[p] += task_seconds(p) + RetryBackoff(fc, attempt);
    if (config_.events != nullptr) {
      Event e;
      e.name = "task_retry";
      e.stage_id = stage;
      e.ints.emplace_back("partition", p);
      e.ints.emplace_back("attempt", attempt);
      e.strs.emplace_back("reason", "sim_kill");
      config_.events->Emit(std::move(e));
    }
  };
  wave.charge_success = [&, this](int p, int attempt) {
    if (!faults_on) return;
    const double mult = injector_.StragglerMultiplier(stage, p, attempt);
    if (mult > 1.0) recovery[p] += (mult - 1.0) * task_seconds(p);
  };
  const int budget = wave.max_sim_attempts;
  wave.sim_budget_exhausted = [label, stage, budget](int p) {
    // Message identical to the local scheduler's, so tests comparing
    // failure modes across backends see the same error.
    return Status::RuntimeError(
        StrCat("stage #", stage, " '", label, "': partition ", p,
               " failed after ", budget, " attempts; retry budget (", budget,
               ") exhausted"));
  };
  wave.on_dispatch = [&dispatch_t0, tr](int p, int, int) {
    if (tr != nullptr) dispatch_t0[p] = tr->NowUs();
  };
  wave.on_telemetry = [&, this, tr, wave_span_id, stage](
                          int worker, double clock_offset_us,
                          const WorkerTelemetry& telemetry) {
    if (telemetry.task >= 0 && telemetry.task < n) {
      telemetry_seen[static_cast<size_t>(telemetry.task)] = 1;
    }
    // Worker-side memory watermark: attributed to the consuming stage
    // at the next FinishStage (same drain pattern as pool task
    // tallies), and published per worker in the registry.
    if (telemetry.peak_rss_bytes > worker_rss_pending_) {
      worker_rss_pending_ = telemetry.peak_rss_bytes;
    }
    if (config_.registry != nullptr) {
      config_.registry->GaugeMax("diablo_worker_peak_rss_bytes",
                                 static_cast<double>(telemetry.peak_rss_bytes),
                                 {{"worker", StrCat(worker)}});
      for (const WorkerSpan& ws : telemetry.spans) {
        config_.registry->HistogramObserve("diablo_task_duration_us",
                                           ws.dur_us,
                                           {{"process", StrCat(worker + 1)}});
      }
    }
    if (tr == nullptr) return;
    // Clock alignment: worker span times are absolute steady-clock
    // readings from the worker process; the Hello handshake measured
    // worker_now - driver_now, so subtracting the offset (then the
    // trace epoch) rebases them onto the driver timeline. Offsets
    // below the threshold collapse to zero — see kClockAlignThresholdUs.
    const double applied = std::abs(clock_offset_us) < kClockAlignThresholdUs
                               ? 0.0
                               : clock_offset_us;
    for (const WorkerSpan& ws : telemetry.spans) {
      TraceSpan span;
      span.kind = SpanKind::kTask;
      span.name = "task";
      span.start_us = ws.start_abs_us - applied - tr->EpochUs();
      span.dur_us = ws.dur_us;
      // Remote worker w is trace worker w+1 (0 = driver) and Chrome
      // process lane w+1 (0 = coordinator).
      span.worker = worker + 1;
      span.partition = ws.partition;
      span.attempt = ws.attempt;
      span.stage_id = ws.stage_id;
      span.rows = ws.rows;
      span.process = worker + 1;
      span.clock_offset_us = clock_offset_us;
      tr->AddRemoteSpan(wave_span_id, std::move(span));
    }
  };
  wave.on_complete = [&, tr, wave_span_id, stage](int p, int attempt,
                                                  int worker) {
    // Skip the synthesized span when the worker's own telemetry span
    // for this task was already spliced in (see wave.on_telemetry).
    if (tr != nullptr && !telemetry_seen[static_cast<size_t>(p)]) {
      // Worker-process rows in the Chrome trace: remote worker w runs
      // as trace worker w+1 (0 is the driver), same convention as the
      // in-process thread pool.
      tr->AddTask(wave_span_id, dispatch_t0[p], tr->NowUs() - dispatch_t0[p],
                  worker + 1, p, attempt, stage, task_work[p]);
    }
  };
  wave.on_worker_lost = [&, this, tr, stage](int worker,
                                             const std::vector<int>& pending,
                                             const std::string& reason) {
    if (tr != nullptr) {
      ScopedSpan span(tr, SpanKind::kRecovery,
                      StrCat("worker ", worker, " lost (", reason, "): ",
                             pending.size(), " task",
                             pending.size() == 1 ? "" : "s", " re-admitted"));
      span.SetStageId(stage);
    }
    if (config_.events != nullptr) {
      for (int p : pending) {
        Event e;
        e.name = "task_retry";
        e.stage_id = stage;
        e.ints.emplace_back("partition", p);
        e.ints.emplace_back("worker", worker);
        e.strs.emplace_back("reason", "worker_lost");
        config_.events->Emit(std::move(e));
      }
    }
    if (config_.dist_lose_on_kill) {
      // Register the dead worker's partitions for lineage recovery at
      // the next stage boundary (consumed by RecoverInput).
      for (int p : pending) pending_lost_partitions_.push_back(p);
    }
  };

  RemoteWaveStats stats;
  Status st = config_.remote->RunWave(wave, &stats);
  for (int p = 0; p < n; ++p) {
    rec->attempts += attempts[p];
    rec->recovery_seconds += recovery[p];
  }
  rec->dist_tasks += stats.tasks;
  rec->dist_retries += stats.real_retries;
  rec->dist_workers_lost += stats.workers_lost;
  return st;
}

StatusOr<Dataset> Engine::RecoverInput(const Dataset& in, int stage,
                                       int input_index, StageRecovery* rec) {
  if (!config_.faults.enabled()) return in;
  std::vector<int> lost =
      injector_.LostPartitions(stage, input_index, in.num_partitions());
  if (input_index == 0 && !pending_lost_partitions_.empty()) {
    // Partitions owed by workers that really died in an earlier wave
    // (dist_lose_on_kill): rebuild them from lineage here. The rebuilt
    // rows are bit-identical to what the survivors recomputed, so this
    // only exercises the recovery path — it can never change output.
    for (int p : pending_lost_partitions_) {
      if (p >= 0 && p < in.num_partitions()) lost.push_back(p);
    }
    pending_lost_partitions_.clear();
  }
  if (lost.empty()) return in;
  std::sort(lost.begin(), lost.end());
  lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
  const std::shared_ptr<const LineageNode>& lineage = in.lineage();
  // Lineage recomputation attributed as its own span nested under the
  // consuming stage.
  ScopedSpan recovery_span(
      trace(), SpanKind::kRecovery,
      StrCat("recover input ", input_index, " (", lost.size(),
             " lost partition", lost.size() == 1 ? "" : "s", ")"));
  recovery_span.SetStageId(stage);
  if (config_.events != nullptr) {
    Event e;
    e.name = "lineage_recovery";
    e.stage_id = stage;
    e.ints.emplace_back("input_index", input_index);
    e.ints.emplace_back("partitions", static_cast<int64_t>(lost.size()));
    config_.events->Emit(std::move(e));
  }
  std::vector<ValueVec> parts = in.partitions();
  if (lineage == nullptr || lineage->durable) {
    // Durable data (source or checkpoint): re-read from stable
    // storage. The rows survive; only the re-read scan is charged.
    for (int p : lost) {
      rec->recomputed_partitions += 1;
      rec->recovery_seconds += static_cast<double>(parts[p].size()) *
                               config_.cluster.seconds_per_work_unit;
    }
  } else if (lineage->recompute_many) {
    // Single-pass multi-partition recovery: one scan over the ancestor
    // data rebuilds every lost partition at once.
    std::vector<ValueVec> rebuilt;
    int64_t work = 0;
    DIABLO_RETURN_IF_ERROR(lineage->recompute_many(lost, &rebuilt, &work));
    if (rebuilt.size() != lost.size()) {
      return Status::RuntimeError(
          StrCat("stage #", stage, ": lineage recompute of dataset '",
                 lineage->label, "' rebuilt ", rebuilt.size(),
                 " partitions, expected ", lost.size()));
    }
    for (size_t i = 0; i < lost.size(); ++i) {
      rec->recomputed_partitions += 1;
      parts[lost[i]] = std::move(rebuilt[i]);
    }
    rec->recovery_seconds +=
        static_cast<double>(work) * config_.cluster.seconds_per_work_unit;
  } else if (lineage->recompute) {
    for (int p : lost) {
      rec->recomputed_partitions += 1;
      int64_t work = 0;
      DIABLO_ASSIGN_OR_RETURN(parts[p], lineage->recompute(p, &work));
      rec->recovery_seconds +=
          static_cast<double>(work) * config_.cluster.seconds_per_work_unit;
    }
  } else {
    return Status::RuntimeError(
        StrCat("stage #", stage, ": input partition ", lost.front(),
               " lost and no lineage recompute is available (dataset '",
               lineage->label, "')"));
  }
  // Keep any pending fused chain: the stage's input is the source rows
  // plus the chain, and only the source rows were lost.
  return Dataset(std::move(parts), lineage, in.chain_ptr());
}

void Engine::FinishStage(StageStats stats, const StageRecovery& rec) {
  stats.attempts = rec.attempts;
  stats.recomputed_partitions = rec.recomputed_partitions;
  stats.recovery_seconds = rec.recovery_seconds;
  stats.dist_tasks = rec.dist_tasks;
  stats.dist_retries = rec.dist_retries;
  stats.dist_workers_lost = rec.dist_workers_lost;
  stats.pool_tasks = pool_tasks_pending_;
  pool_tasks_pending_ = 0;
  stats.cost_decisions += cost_decisions_pending_;
  cost_decisions_pending_ = 0;
  // Per-stage memory high-water mark: the driver's own peak RSS, raised
  // by any worker-process peak shipped in telemetry frames since the
  // last stage boundary (drained like pool task tallies). RSS is
  // monotone, so the per-stage series shows which stage first pushed
  // the process high-water mark.
  stats.peak_rss_bytes = std::max(MetricsRegistry::ProcessPeakRssBytes(),
                                  worker_rss_pending_);
  worker_rss_pending_ = 0;
  if (provenance_.line > 0) {
    stats.src_file = provenance_.file;
    stats.src_line = provenance_.line;
    stats.src_column = provenance_.column;
  }
  if (config_.registry != nullptr) {
    const MetricLabels stage_labels = {
        {"stage", StrCat(metrics_.stages().size())}, {"label", stats.label}};
    config_.registry->CounterAdd("diablo_stages_total", 1);
    config_.registry->CounterAdd("diablo_task_attempts_total", stats.attempts);
    config_.registry->CounterAdd("diablo_shuffle_bytes_total",
                                 stats.shuffle_bytes);
    config_.registry->GaugeSet("diablo_stage_peak_rss_bytes",
                               static_cast<double>(stats.peak_rss_bytes),
                               stage_labels);
    if (stats.accumulator_bytes_peak > 0) {
      config_.registry->GaugeSet(
          "diablo_stage_accumulator_bytes_peak",
          static_cast<double>(stats.accumulator_bytes_peak), stage_labels);
    }
    config_.registry->HistogramObserve(
        "diablo_stage_shuffle_bytes", static_cast<double>(stats.shuffle_bytes));
  }
  if (TraceRecorder* t = trace()) {
    // The innermost open stage span belongs to the operator finishing
    // this stage (each operator opens exactly one before it runs).
    const int64_t span = t->OpenSpan(SpanKind::kStage);
    if (span >= 0) {
      t->SetName(span, stats.label);
      t->SetMetricsIndex(span, static_cast<int>(metrics_.stages().size()));
      t->SetShuffleBytes(span, stats.shuffle_bytes);
      if (!stats.partition_rows.empty()) {
        int64_t rows = 0;
        for (int64_t c : stats.partition_rows) rows += c;
        t->SetRows(span, rows);
      }
      t->SetLocation(span, stats.src_file, stats.src_line, stats.src_column);
    }
  }
  metrics_.AddStage(std::move(stats));
}

void Engine::RecordPlannerStage(StageStats stats) {
  if (provenance_.line > 0) {
    stats.src_file = provenance_.file;
    stats.src_line = provenance_.line;
    stats.src_column = provenance_.column;
  }
  if (TraceRecorder* t = trace()) {
    // Zero-duration stage span: the work happened inside other spans
    // (or is purely simulated); this records the stage's existence,
    // label, and provenance in the trace.
    ScopedSpan span(t, SpanKind::kStage, stats.label);
    t->SetMetricsIndex(span.id(), static_cast<int>(metrics_.stages().size()));
    t->SetShuffleBytes(span.id(), stats.shuffle_bytes);
    span.SetLocation(stats.src_file, stats.src_line, stats.src_column);
  }
  metrics_.AddStage(std::move(stats));
}

std::shared_ptr<const LineageNode> Engine::MakeLineage(
    std::string kind, std::string label,
    std::vector<std::shared_ptr<const LineageNode>> parents,
    LineageNode::RecomputeFn recompute,
    LineageNode::RecomputeManyFn recompute_many, int depth_increment) const {
  auto node = std::make_shared<LineageNode>();
  node->kind = std::move(kind);
  node->label = std::move(label);
  int depth = 0;
  for (const auto& parent : parents) {
    if (parent != nullptr) depth = std::max(depth, parent->depth);
  }
  node->depth = depth + depth_increment;
  node->parents = std::move(parents);
  // Without fault injection no recovery can ever be requested, so the
  // closures (and the ancestor datasets they capture) are dropped here —
  // fault-free runs retain no extra memory.
  if (config_.faults.enabled()) {
    node->recompute = std::move(recompute);
    node->recompute_many = std::move(recompute_many);
  }
  return node;
}

StatusOr<Dataset> Engine::Map(const Dataset& in, const MapFn& fn,
                              const std::string& label) {
  if (config_.fuse_narrow) {
    FusedOp op;
    op.kind = FusedOp::Kind::kMap;
    op.label = label;
    op.map = fn;
    return in.WithOp(std::move(op));
  }
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  std::vector<ValueVec> out(src.num_partitions());
  WaveSlots slots;
  slots.rows = &out;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        const ValueVec& rows = src.partition(p);
        out[p].clear();
        out[p].reserve(rows.size());
        for (const Value& row : rows) {
          DIABLO_ASSIGN_OR_RETURN(Value v, fn(row));
          out[p].push_back(std::move(v));
        }
        return Status::OK();
      },
      &rec, &slots);
  if (!st.ok()) return st;
  StageStats map_stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  map_stats.partition_rows = RowCounts(out);
  FinishStage(std::move(map_stats), rec);
  auto lineage = MakeLineage(
      "map", label, {src.lineage()},
      [src, fn](int p, int64_t* work) -> StatusOr<ValueVec> {
        const ValueVec& rows = src.partition(p);
        *work += static_cast<int64_t>(rows.size());
        ValueVec rebuilt;
        rebuilt.reserve(rows.size());
        for (const Value& row : rows) {
          DIABLO_ASSIGN_OR_RETURN(Value v, fn(row));
          rebuilt.push_back(std::move(v));
        }
        return rebuilt;
      });
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::MapValues(const Dataset& in, const MapFn& fn,
                                    const std::string& label) {
  if (config_.fuse_narrow) {
    FusedOp op;
    op.kind = FusedOp::Kind::kMapValues;
    op.label = label;
    op.map = fn;
    return in.WithOp(std::move(op));
  }
  return Map(
      in,
      [fn](const Value& row) -> StatusOr<Value> {
        if (!row.is_tuple() || row.tuple().size() != 2) {
          return Status::RuntimeError(
              StrCat("mapValues applied to non-pair row: ", row.ToString()));
        }
        DIABLO_ASSIGN_OR_RETURN(Value v, fn(row.tuple()[1]));
        return Value::MakePair(row.tuple()[0], std::move(v));
      },
      label);
}

StatusOr<Dataset> Engine::Filter(const Dataset& in, const PredFn& pred,
                                 const std::string& label) {
  if (config_.fuse_narrow) {
    FusedOp op;
    op.kind = FusedOp::Kind::kFilter;
    op.label = label;
    op.pred = pred;
    return in.WithOp(std::move(op));
  }
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  std::vector<ValueVec> out(src.num_partitions());
  WaveSlots slots;
  slots.rows = &out;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        out[p].clear();
        for (const Value& row : src.partition(p)) {
          DIABLO_ASSIGN_OR_RETURN(bool keep, pred(row));
          if (keep) out[p].push_back(row);
        }
        return Status::OK();
      },
      &rec, &slots);
  if (!st.ok()) return st;
  StageStats filter_stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  filter_stats.partition_rows = RowCounts(out);
  FinishStage(std::move(filter_stats), rec);
  auto lineage = MakeLineage(
      "filter", label, {src.lineage()},
      [src, pred](int p, int64_t* work) -> StatusOr<ValueVec> {
        const ValueVec& rows = src.partition(p);
        *work += static_cast<int64_t>(rows.size());
        ValueVec rebuilt;
        for (const Value& row : rows) {
          DIABLO_ASSIGN_OR_RETURN(bool keep, pred(row));
          if (keep) rebuilt.push_back(row);
        }
        return rebuilt;
      });
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::FlatMap(const Dataset& in, const FlatMapFn& fn,
                                  const std::string& label) {
  if (config_.fuse_narrow) {
    FusedOp op;
    op.kind = FusedOp::Kind::kFlatMap;
    op.label = label;
    op.flat = fn;
    return in.WithOp(std::move(op));
  }
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  std::vector<ValueVec> out(src.num_partitions());
  WaveSlots slots;
  slots.rows = &out;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        out[p].clear();
        for (const Value& row : src.partition(p)) {
          DIABLO_ASSIGN_OR_RETURN(ValueVec vs, fn(row));
          for (Value& v : vs) out[p].push_back(std::move(v));
        }
        return Status::OK();
      },
      &rec, &slots);
  if (!st.ok()) return st;
  StageStats flat_stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  flat_stats.partition_rows = RowCounts(out);
  FinishStage(std::move(flat_stats), rec);
  auto lineage = MakeLineage(
      "flatMap", label, {src.lineage()},
      [src, fn](int p, int64_t* work) -> StatusOr<ValueVec> {
        const ValueVec& rows = src.partition(p);
        *work += static_cast<int64_t>(rows.size());
        ValueVec rebuilt;
        for (const Value& row : rows) {
          DIABLO_ASSIGN_OR_RETURN(ValueVec vs, fn(row));
          for (Value& v : vs) rebuilt.push_back(std::move(v));
        }
        return rebuilt;
      });
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::Map(const Dataset& in, BinOp op, const Value& operand,
                              const std::string& label) {
  Value captured = operand;
  MapFn fn = [op, captured](const Value& row) {
    return EvalBinOp(op, row, captured);
  };
  if (!config_.fuse_narrow) return Map(in, fn, label);
  FusedOp fop;
  fop.kind = FusedOp::Kind::kMap;
  fop.label = label;
  fop.map = std::move(fn);
  fop.kernel = ColumnKernel{op, std::move(captured), /*on_value=*/false};
  return in.WithOp(std::move(fop));
}

StatusOr<Dataset> Engine::MapValues(const Dataset& in, BinOp op,
                                    const Value& operand,
                                    const std::string& label) {
  Value captured = operand;
  // The fused kMapValues operator hands `map` the pair's value (see
  // ApplyChain), so this closure sees the value directly.
  MapFn fn = [op, captured](const Value& v) {
    return EvalBinOp(op, v, captured);
  };
  if (!config_.fuse_narrow) return MapValues(in, fn, label);
  FusedOp fop;
  fop.kind = FusedOp::Kind::kMapValues;
  fop.label = label;
  fop.map = std::move(fn);
  fop.kernel = ColumnKernel{op, std::move(captured), /*on_value=*/true};
  return in.WithOp(std::move(fop));
}

StatusOr<Dataset> Engine::Filter(const Dataset& in, BinOp op,
                                 const Value& operand,
                                 const std::string& label) {
  Value captured = operand;
  PredFn pred = [op, captured](const Value& row) -> StatusOr<bool> {
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalBinOp(op, row, captured));
    if (!v.is_bool()) {
      return Status::RuntimeError(
          StrCat("filter predicate evaluated to non-bool: ", v.ToString()));
    }
    return v.AsBool();
  };
  if (!config_.fuse_narrow) return Filter(in, pred, label);
  FusedOp fop;
  fop.kind = FusedOp::Kind::kFilter;
  fop.label = label;
  fop.pred = std::move(pred);
  fop.kernel = ColumnKernel{op, std::move(captured), /*on_value=*/false};
  return in.WithOp(std::move(fop));
}

StatusOr<Dataset> Engine::FilterValues(const Dataset& in, BinOp op,
                                       const Value& operand,
                                       const std::string& label) {
  Value captured = operand;
  PredFn pred = [op, captured](const Value& row) -> StatusOr<bool> {
    if (!row.is_tuple() || row.tuple().size() != 2) {
      return Status::RuntimeError(
          StrCat("filterValues applied to non-pair row: ", row.ToString()));
    }
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalBinOp(op, row.tuple()[1], captured));
    if (!v.is_bool()) {
      return Status::RuntimeError(
          StrCat("filter predicate evaluated to non-bool: ", v.ToString()));
    }
    return v.AsBool();
  };
  if (!config_.fuse_narrow) return Filter(in, pred, label);
  FusedOp fop;
  fop.kind = FusedOp::Kind::kFilter;
  fop.label = label;
  fop.pred = std::move(pred);
  fop.kernel = ColumnKernel{op, std::move(captured), /*on_value=*/true};
  return in.WithOp(std::move(fop));
}

StatusOr<Dataset> Engine::Force(const Dataset& in) {
  if (in.materialized()) return in;
  const FusedChain& chain = in.chain();
  if (config_.columnar && ChainFullyKernelized(chain)) {
    return ForceColumnar(in);
  }
  const std::string label = ChainLabel(chain);
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  const int n = src.num_partitions();
  std::vector<ValueVec> out(n);
  std::vector<ChainTally> tallies(n);
  WaveSlots slots;
  slots.rows = &out;
  slots.tallies = &tallies;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        // Restartable: a failed attempt re-runs the whole fused chain.
        out[p].clear();
        out[p].reserve(src.partition(p).size());
        // The last operator's outputs ARE materialized here, so only
        // the chain.size()-1 interior boundaries count as saved.
        tallies[p].Reset(chain.size() - 1);
        for (const Value& row : src.partition(p)) {
          DIABLO_RETURN_IF_ERROR(
              ApplyChain(chain, 0, row, &tallies[p],
                         [&](const Value& v) -> Status {
                           out[p].push_back(v);
                           return Status::OK();
                         }));
        }
        return Status::OK();
      },
      &rec, &slots);
  if (!st.ok()) return st;
  StageStats stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  stats.fused_ops = static_cast<int64_t>(chain.size());
  for (const ChainTally& t : tallies) t.MergeInto(&stats);
  stats.partition_rows = RowCounts(out);
  FinishStage(std::move(stats), rec);
  auto lineage = MakeLineage(
      "fused", label, {src.lineage()},
      [src](int p, int64_t* work) -> StatusOr<ValueVec> {
        const ValueVec& rows = src.partition(p);
        *work += static_cast<int64_t>(rows.size());
        ValueVec rebuilt;
        rebuilt.reserve(rows.size());
        for (const Value& row : rows) {
          DIABLO_RETURN_IF_ERROR(
              ApplyChain(src.chain(), 0, row, nullptr,
                         [&](const Value& v) -> Status {
                           rebuilt.push_back(v);
                           return Status::OK();
                         }));
        }
        return rebuilt;
      },
      nullptr, static_cast<int>(chain.size()));
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::ForceColumnar(const Dataset& in) {
  const FusedChain& chain = in.chain();
  const std::string label = ChainLabel(chain);
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  const int n = src.num_partitions();
  const bool on_value = chain[0].kernel->on_value;
  std::vector<ColumnBatch> batches(n);
  std::vector<ChainTally> tallies(n);
  WaveSlots slots;
  slots.col_batches = &batches;
  slots.tallies = &tallies;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        // Restartable: a failed attempt rebuilds the batch from scratch.
        const ValueVec& rows = src.partition(p);
        tallies[p].Reset(chain.size() - 1);
        batches[p] = ColumnBatch();
        // A partition the kernels can't handle (unsupported type mix,
        // non-pair rows under a value chain) replays the boxed per-row
        // chain — byte-identical by construction — and still ships its
        // output as a (boxed-column) batch.
        auto replay = [&]() -> Status {
          tallies[p].Reset(chain.size() - 1);
          ColumnBatch fallback;
          for (const Value& row : rows) {
            DIABLO_RETURN_IF_ERROR(
                ApplyChain(chain, 0, row, &tallies[p],
                           [&](const Value& v) -> Status {
                             fallback.values.Append(v);
                             return Status::OK();
                           }));
          }
          tallies[p].columnar_rows_fallback +=
              static_cast<int64_t>(rows.size());
          batches[p] = std::move(fallback);
          return Status::OK();
        };
        ColumnBatch batch;
        batch.pairs = on_value;
        for (const Value& row : rows) {
          if (on_value) {
            if (!row.is_tuple() || row.tuple().size() != 2) return replay();
            batch.keys.push_back(row.tuple()[0]);
            batch.values.Append(row.tuple()[1]);
          } else {
            batch.values.Append(row);
          }
        }
        std::vector<uint8_t> live(batch.size(), 1);
        for (size_t i = 0; i < chain.size(); ++i) {
          const ColumnKernel& k = *chain[i].kernel;
          const bool handled =
              chain[i].kind == FusedOp::Kind::kFilter
                  ? ApplyFilterKernel(k.op, k.operand, batch.values, &live)
                  : ApplyMapKernel(k.op, k.operand, live, &batch.values);
          if (!handled) return replay();
          if (i + 1 < chain.size()) {
            // Interior boundary: record what the boxed tally would —
            // the surviving row count and the first survivor's size.
            int64_t alive = 0;
            size_t first = live.size();
            for (size_t r = 0; r < live.size(); ++r) {
              if (live[r] == 0) continue;
              if (first == live.size()) first = r;
              ++alive;
            }
            tallies[p].rows[i] = alive;
            tallies[p].sample_bytes[i] =
                first == live.size() ? 0 : batch.RowAt(first).SerializedBytes();
          }
        }
        batch.Compact(live);
        tallies[p].columnar_batches += 1;
        batches[p] = std::move(batch);
        return Status::OK();
      },
      &rec, &slots);
  if (!st.ok()) return st;
  std::vector<ValueVec> out(n);
  for (int p = 0; p < n; ++p) batches[p].EmitRows(&out[p]);
  StageStats stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  stats.fused_ops = static_cast<int64_t>(chain.size());
  for (const ChainTally& t : tallies) t.MergeInto(&stats);
  stats.partition_rows = RowCounts(out);
  FinishStage(std::move(stats), rec);
  // Recovery replays the boxed chain: replay IS the semantic truth, and
  // a lost partition is the rare path.
  auto lineage = MakeLineage(
      "fused", label, {src.lineage()},
      [src](int p, int64_t* work) -> StatusOr<ValueVec> {
        const ValueVec& rows = src.partition(p);
        *work += static_cast<int64_t>(rows.size());
        ValueVec rebuilt;
        rebuilt.reserve(rows.size());
        for (const Value& row : rows) {
          DIABLO_RETURN_IF_ERROR(
              ApplyChain(src.chain(), 0, row, nullptr,
                         [&](const Value& v) -> Status {
                           rebuilt.push_back(v);
                           return Status::OK();
                         }));
        }
        return rebuilt;
      },
      nullptr, static_cast<int>(chain.size()));
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<const Value*> Engine::RowKey(const Value& row) {
  if (!row.is_tuple() || row.tuple().size() != 2) {
    return Status::RuntimeError(
        StrCat("keyed operator applied to non-pair row: ", row.ToString()));
  }
  return &row.tuple()[0];
}

StatusOr<std::vector<HashedVec>> Engine::ShuffleCore(
    int stage, const std::vector<int64_t>& task_work,
    const std::function<Status(int, const EmitFn&)>& produce,
    int64_t* shuffle_bytes, std::vector<int64_t>* dest_bytes,
    std::vector<ChainTally>* tallies, StageRecovery* rec) {
  const int out_parts = config_.num_partitions;
  const int n = static_cast<int>(task_work.size());
  // buckets[src][dst]
  std::vector<std::vector<HashedVec>> buckets(
      n, std::vector<HashedVec>(out_parts));
  std::vector<int64_t> moved_bytes(n, 0);
  // bucket_bytes[src][dst]: bytes each source task shipped per
  // destination, reduced into `dest_bytes` after the wave.
  std::vector<std::vector<int64_t>> bucket_bytes(
      n, std::vector<int64_t>(out_parts, 0));
  const bool serialize = config_.serialize_shuffles;
  const bool inject = config_.faults.enabled();
  WaveSlots slots;
  slots.buckets = &buckets;
  slots.nums = &moved_bytes;
  slots.num_vecs = &bucket_bytes;
  slots.tallies = tallies;
  Status st = RunTaskWave(
      "shuffle", stage, task_work,
      [&](int p, int attempt) -> Status {
        // Restartable: wipe any partial output of a failed attempt (and
        // re-run the producer, fused chain included).
        buckets[p].assign(out_parts, HashedVec());
        // Reserve from the source row count: keys spread roughly
        // uniformly, so each destination sees about rows/out_parts of
        // this task's output.
        const size_t hint =
            static_cast<size_t>(task_work[p]) / static_cast<size_t>(out_parts) +
            1;
        for (HashedVec& bucket : buckets[p]) bucket.reserve(hint);
        moved_bytes[p] = 0;
        bucket_bytes[p].assign(out_parts, 0);
        int64_t row_idx = 0;
        // Single-pass scatter: each produced row arrives with its key
        // hash (computed exactly once by the producer) and is appended
        // to its destination buffer hash-first, so the reduce side
        // never rehashes. `row_idx` numbers the scattered rows, so
        // corruption coordinates are independent of how the row was
        // produced (fused, eager, or pre-combined).
        auto scatter = [&](size_t hash, const Value& row) -> Status {
          const int dst = HashDestination(hash, out_parts);
          // Rows that stay on the same simulated node are still
          // accounted: with many workers almost every row crosses the
          // network, so we charge all of them (Spark's shuffle write
          // does the same).
          if (serialize) {
            // Ship the encoded bytes, exactly as a real shuffle would.
            std::string wire = Serialize(row);
            moved_bytes[p] += static_cast<int64_t>(wire.size());
            bucket_bytes[p][dst] += static_cast<int64_t>(wire.size());
            if (inject &&
                injector_.CorruptShuffleRow(stage, p, attempt, row_idx)) {
              // Flip one byte in flight. The decoder must survive the
              // damaged buffer (hardened in runtime/serialize.cc); the
              // simulated checksum then flags the payload and the task
              // is relaunched.
              wire[injector_.CorruptByteIndex(stage, p, row_idx,
                                              wire.size())] ^= 0x2d;
              StatusOr<Value> decoded = Deserialize(wire);
              (void)decoded;
              return Status::TaskLost(
                  StrCat("shuffle payload of stage #", stage, " task ", p,
                         " corrupted in flight (row ", row_idx, ")"));
            }
            DIABLO_ASSIGN_OR_RETURN(Value decoded, Deserialize(wire));
            buckets[p][dst].push_back(HashedRow{hash, std::move(decoded)});
          } else {
            const int64_t approx = row.SerializedBytes();
            moved_bytes[p] += approx;
            bucket_bytes[p][dst] += approx;
            buckets[p][dst].push_back(HashedRow{hash, row});
          }
          ++row_idx;
          return Status::OK();
        };
        return produce(p, scatter);
      },
      rec, &slots);
  if (!st.ok()) return st;
  if (shuffle_bytes != nullptr) {
    *shuffle_bytes = 0;
    for (int64_t b : moved_bytes) *shuffle_bytes += b;
  }
  if (dest_bytes != nullptr) {
    if (dest_bytes->size() < static_cast<size_t>(out_parts)) {
      dest_bytes->resize(static_cast<size_t>(out_parts), 0);
    }
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < out_parts; ++dst) {
        (*dest_bytes)[dst] += bucket_bytes[src][dst];
      }
    }
  }
  std::vector<HashedVec> out(out_parts);
  for (int dst = 0; dst < out_parts; ++dst) {
    size_t total = 0;
    for (int src = 0; src < n; ++src) total += buckets[src][dst].size();
    out[dst].reserve(total);
    for (int src = 0; src < n; ++src) {
      for (HashedRow& v : buckets[src][dst]) out[dst].push_back(std::move(v));
    }
  }
  return out;
}

StatusOr<std::vector<HashedVec>> Engine::ShuffleWave(const Dataset& in,
                                                     int stage,
                                                     int64_t* shuffle_bytes,
                                                     StageRecovery* rec,
                                                     StageStats* stats) {
  const FusedChain& chain = in.chain();
  std::vector<ChainTally> tallies(in.num_partitions());
  auto result = ShuffleCore(
      stage, RowCounts(in),
      [&](int p, const EmitFn& emit) -> Status {
        tallies[p].Reset(chain.size());
        if (!config_.columnar) {
          for (const Value& row : in.partition(p)) {
            DIABLO_RETURN_IF_ERROR(ApplyChain(
                chain, 0, row, &tallies[p], [&](const Value& v) -> Status {
                  DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                  return emit(key->Hash(), v);
                }));
          }
          return Status::OK();
        }
        // Vectorized scatter: buffer the produced rows with their keys
        // in a column, hash the whole key column in one pass (cached
        // dictionary hashes for strings, HashColumn bit-identical to
        // per-row Value::Hash), then emit in the original order.
        ValueVec rows;
        Column keycol;
        rows.reserve(in.partition(p).size());
        for (const Value& row : in.partition(p)) {
          DIABLO_RETURN_IF_ERROR(ApplyChain(
              chain, 0, row, &tallies[p], [&](const Value& v) -> Status {
                DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                keycol.Append(*key);
                rows.push_back(v);
                return Status::OK();
              }));
        }
        std::vector<size_t> hashes;
        HashColumn(keycol, &hashes);
        if (!rows.empty()) {
          if (keycol.tag() == ColumnTag::kBoxed) {
            tallies[p].columnar_rows_fallback +=
                static_cast<int64_t>(rows.size());
          } else {
            tallies[p].columnar_batches += 1;
          }
        }
        for (size_t i = 0; i < rows.size(); ++i) {
          DIABLO_RETURN_IF_ERROR(emit(hashes[i], rows[i]));
        }
        return Status::OK();
      },
      shuffle_bytes, stats != nullptr ? &stats->partition_bytes : nullptr,
      &tallies, rec);
  if (result.ok() && stats != nullptr) {
    stats->fused_ops += static_cast<int64_t>(chain.size());
    for (const ChainTally& t : tallies) t.MergeInto(stats);
  }
  return result;
}

StatusOr<std::vector<HashedVec>> Engine::ShuffleHashed(
    const std::vector<HashedVec>& in, int stage, int64_t* shuffle_bytes,
    StageRecovery* rec, StageStats* stats) {
  return ShuffleCore(
      stage, RowCounts(in),
      [&](int p, const EmitFn& emit) -> Status {
        for (const HashedRow& hr : in[p]) {
          DIABLO_RETURN_IF_ERROR(emit(hr.hash, hr.row));
        }
        return Status::OK();
      },
      shuffle_bytes, stats != nullptr ? &stats->partition_bytes : nullptr,
      nullptr, rec);
}

StatusOr<std::vector<TypedRows>> Engine::ShuffleTyped(
    const std::vector<TypedRows>& in, int stage, int64_t* shuffle_bytes,
    StageRecovery* rec, StageStats* stats) {
  const int out_parts = config_.num_partitions;
  const int n = static_cast<int>(in.size());
  std::vector<int64_t> task_work(n, 0);
  TypedKeyMode kmode = TypedKeyMode::kNone;
  TypedPayloadMode pmode = TypedPayloadMode::kNone;
  for (int p = 0; p < n; ++p) {
    task_work[p] = static_cast<int64_t>(in[p].size());
    if (in[p].size() > 0 && kmode == TypedKeyMode::kNone) {
      kmode = in[p].key_mode;
      pmode = in[p].payload_mode;
    }
  }
  // buckets[src][dst], plus the same byte accounting ShuffleCore keeps:
  // every scattered entry is charged what its boxed pair row would have
  // weighed on the wire.
  std::vector<std::vector<TypedRows>> buckets(n,
                                              std::vector<TypedRows>(out_parts));
  std::vector<int64_t> moved_bytes(n, 0);
  std::vector<std::vector<int64_t>> bucket_bytes(
      n, std::vector<int64_t>(out_parts, 0));
  WaveSlots slots;
  slots.nums = &moved_bytes;
  slots.num_vecs = &bucket_bytes;
  Status st = RunTaskWave(
      "shuffle", stage, task_work,
      [&](int p, int) -> Status {
        const TypedRows& src = in[p];
        buckets[p].assign(out_parts, TypedRows());
        const size_t hint =
            src.size() / static_cast<size_t>(out_parts) + 1;
        for (TypedRows& bucket : buckets[p]) {
          bucket.key_mode = src.key_mode;
          bucket.payload_mode = src.payload_mode;
          bucket.hashes.reserve(hint);
          bucket.key_bits.reserve(hint);
          if (src.payload_mode == TypedPayloadMode::kInt64) {
            bucket.pay_ints.reserve(hint);
          } else {
            bucket.pay_doubles.reserve(hint);
          }
        }
        moved_bytes[p] = 0;
        bucket_bytes[p].assign(out_parts, 0);
        const bool ints = src.payload_mode == TypedPayloadMode::kInt64;
        for (size_t i = 0; i < src.size(); ++i) {
          const int dst = HashDestination(src.hashes[i], out_parts);
          TypedRows& bucket = buckets[p][dst];
          // String keys keep their SOURCE dictionary code through the
          // scatter; the driver-side concatenation below re-interns
          // them into the destination's dictionary.
          bucket.hashes.push_back(src.hashes[i]);
          bucket.key_bits.push_back(src.key_bits[i]);
          if (ints) {
            bucket.pay_ints.push_back(src.pay_ints[i]);
          } else {
            bucket.pay_doubles.push_back(src.pay_doubles[i]);
          }
          const int64_t entry_bytes = src.EntryBytesAt(i);
          moved_bytes[p] += entry_bytes;
          bucket_bytes[p][dst] += entry_bytes;
        }
        return Status::OK();
      },
      rec, &slots);
  if (!st.ok()) return st;
  if (shuffle_bytes != nullptr) {
    *shuffle_bytes = 0;
    for (int64_t b : moved_bytes) *shuffle_bytes += b;
  }
  if (stats != nullptr) {
    std::vector<int64_t>& dest_bytes = stats->partition_bytes;
    if (dest_bytes.size() < static_cast<size_t>(out_parts)) {
      dest_bytes.resize(static_cast<size_t>(out_parts), 0);
    }
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < out_parts; ++dst) {
        dest_bytes[dst] += bucket_bytes[src][dst];
      }
    }
  }
  // Concatenate source-order (sources ascending, each pre-sorted by
  // key) — exactly the arrival order of the boxed shuffle, so every
  // per-key fold order downstream is identical. String keys re-intern
  // into one dictionary per destination (first-occurrence order, Value
  // payloads shared): code equality then coincides with key equality,
  // which is what the reduce side's code-keyed accumulator relies on.
  std::vector<TypedRows> out(out_parts);
  for (int dst = 0; dst < out_parts; ++dst) {
    TypedRows& d = out[dst];
    d.key_mode = kmode;
    d.payload_mode = pmode;
    size_t total = 0;
    for (int src = 0; src < n; ++src) total += buckets[src][dst].size();
    d.hashes.reserve(total);
    d.key_bits.reserve(total);
    if (pmode == TypedPayloadMode::kInt64) {
      d.pay_ints.reserve(total);
    } else {
      d.pay_doubles.reserve(total);
    }
    std::unordered_map<std::string, uint32_t> remap;
    for (int src = 0; src < n; ++src) {
      TypedRows& b = buckets[src][dst];
      d.hashes.insert(d.hashes.end(), b.hashes.begin(), b.hashes.end());
      if (kmode == TypedKeyMode::kString) {
        const std::vector<Value>& src_dict = in[src].dict_values;
        const std::vector<size_t>& src_dict_hashes = in[src].dict_hashes;
        for (int64_t code_bits : b.key_bits) {
          const size_t code = static_cast<size_t>(code_bits);
          auto [it, inserted] = remap.try_emplace(
              src_dict[code].AsString(),
              static_cast<uint32_t>(d.dict_values.size()));
          if (inserted) {
            d.dict_values.push_back(src_dict[code]);
            d.dict_hashes.push_back(src_dict_hashes[code]);
          }
          d.key_bits.push_back(static_cast<int64_t>(it->second));
        }
      } else {
        d.key_bits.insert(d.key_bits.end(), b.key_bits.begin(),
                          b.key_bits.end());
      }
      d.pay_ints.insert(d.pay_ints.end(), b.pay_ints.begin(),
                        b.pay_ints.end());
      d.pay_doubles.insert(d.pay_doubles.end(), b.pay_doubles.begin(),
                           b.pay_doubles.end());
    }
  }
  return out;
}

StatusOr<Dataset> Engine::GroupByKey(const Dataset& in,
                                     const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int shuffle_stage = NextStageId();
  const int reduce_stage = NextStageId();
  stage_span.SetStageId(shuffle_stage);
  StageRecovery rec;
  StageStats stats;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, shuffle_stage, 0, &rec));
  int64_t bytes = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<HashedVec> shuffled,
                          ShuffleWave(src, shuffle_stage, &bytes, &rec, &stats));
  const bool hash_agg = config_.hash_aggregation;
  // Skew mitigation (DESIGN.md §17): a destination far above the mean
  // row count is split into contiguous row CHUNKS, each grouped by its
  // own virtual task; the driver then k-way merges the chunks' sorted
  // (key, bag) rows, concatenating a straddling key's partial bags in
  // chunk order — which IS arrival order, so the merged bag is
  // byte-identical to what the unsplit task would have built.
  const std::vector<int64_t> shuffled_counts = RowCounts(shuffled);
  const SaltPlan salt = PlanSalt(shuffled_counts, config_.skew);
  EmitSkewSalting(config_.events, reduce_stage, "reduce", salt);
  const int num_virtual = static_cast<int>(salt.task_of.size());
  std::vector<int64_t> sub_work(num_virtual);
  for (int t = 0; t < num_virtual; ++t) {
    const int p = salt.task_of[t];
    const auto [lo, hi] = ChunkRange(shuffled[p].size(), salt.index_of[t],
                                     salt.fanout[p]);
    sub_work[t] = static_cast<int64_t>(hi - lo);
  }
  std::vector<ValueVec> sub_out(num_virtual);
  std::vector<ChainTally> reduce_tallies(num_virtual);
  WaveSlots reduce_slots;
  reduce_slots.rows = &sub_out;
  reduce_slots.tallies = &reduce_tallies;
  Status st = RunTaskWave(
      label, reduce_stage, sub_work,
      [&](int t, int) -> Status {
        sub_out[t].clear();
        reduce_tallies[t].Reset(0);
        const int p = salt.task_of[t];
        const HashedVec& part = shuffled[p];
        const auto [lo, hi] =
            ChunkRange(part.size(), salt.index_of[t], salt.fanout[p]);
        if (hash_agg) {
          // Values land per key in arrival order; the final sort
          // canonicalizes the key order, matching the ordered map.
          KeyedAccumulator<ValueVec> groups(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            const HashedRow& hr = part[i];
            const ValueVec& kv = hr.row.tuple();
            groups.FindOrCreate(hr.hash, kv[0]).payload.push_back(kv[1]);
          }
          reduce_tallies[t].accumulator_bytes =
              static_cast<int64_t>(groups.MemoryBytes());
          groups.SortByKey();
          sub_out[t].reserve(groups.size());
          for (auto& e : groups.entries()) {
            sub_out[t].push_back(Value::MakePair(
                std::move(e.key), Value::MakeBag(std::move(e.payload))));
          }
        } else {
          OrderedGroups groups;
          for (size_t i = lo; i < hi; ++i) {
            const ValueVec& kv = part[i].row.tuple();
            groups[kv[0]].push_back(kv[1]);
          }
          sub_out[t].reserve(groups.size());
          for (auto& [key, vals] : groups) {
            sub_out[t].push_back(
                Value::MakePair(key, Value::MakeBag(std::move(vals))));
          }
        }
        return Status::OK();
      },
      &rec, &reduce_slots);
  if (!st.ok()) return st;
  // Driver-side un-salt: splits merge, unsplit destinations move.
  std::vector<ValueVec> out(shuffled.size());
  int64_t salted_keys = 0;
  std::vector<int64_t> unsalt_work;
  for (size_t p = 0; p < out.size(); ++p) {
    if (salt.fanout[p] == 1) {
      out[p] = std::move(sub_out[salt.first[p]]);
      continue;
    }
    std::vector<ValueVec> parts;
    parts.reserve(salt.fanout[p]);
    for (int s = 0; s < salt.fanout[p]; ++s) {
      parts.push_back(std::move(sub_out[salt.first[p] + s]));
    }
    out[p] = MergeSortedBags(std::move(parts), &salted_keys);
    unsalt_work.push_back(static_cast<int64_t>(out[p].size()));
  }
  stats.label = FusedStageLabel(src.chain(), label);
  stats.wide = true;
  stats.map_work = RowCounts(src);
  stats.reduce_work = sub_work;
  stats.shuffle_bytes = bytes;
  stats.partition_rows = RowCounts(out);
  stats.salted_keys = salted_keys;
  stats.salt_fanout = salt.extra;
  for (const ChainTally& t : reduce_tallies) t.MergeInto(&stats);
  if (hash_agg) {
    for (int64_t c : shuffled_counts) stats.hash_agg_rows += c;
    for (int64_t c : stats.partition_rows) stats.hash_agg_keys += c;
  }
  FinishStage(std::move(stats), rec);
  if (salt.active) {
    StageStats unsalt;
    unsalt.label = label + ".unsalt";
    unsalt.wide = false;
    unsalt.map_work = std::move(unsalt_work);
    RecordPlannerStage(std::move(unsalt));
  }
  const int out_parts = config_.num_partitions;
  auto lineage = MakeLineage(
      "groupByKey", label, {src.lineage()}, nullptr,
      [src, out_parts](const std::vector<int>& lost,
                       std::vector<ValueVec>* rebuilt,
                       int64_t* work) -> Status {
        // Replay the single-pass scatter restricted to the lost
        // destinations: every source row is scanned and hashed ONCE;
        // scanning the source partitions in order reproduces each lost
        // reduce partition's arrival order exactly, and the final sort
        // canonicalizes key order just like the forward path.
        std::vector<int> slot_of(out_parts, -1);
        for (size_t i = 0; i < lost.size(); ++i) {
          slot_of[lost[i]] = static_cast<int>(i);
        }
        std::vector<KeyedAccumulator<ValueVec>> groups(lost.size());
        for (int s = 0; s < src.num_partitions(); ++s) {
          for (const Value& row : src.partition(s)) {
            *work += 1;
            DIABLO_RETURN_IF_ERROR(ApplyChain(
                src.chain(), 0, row, nullptr,
                [&](const Value& v) -> Status {
                  DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                  const size_t h = key->Hash();
                  const int slot = slot_of[HashDestination(h, out_parts)];
                  if (slot >= 0) {
                    groups[slot].FindOrCreate(h, *key).payload.push_back(
                        v.tuple()[1]);
                  }
                  return Status::OK();
                }));
          }
        }
        rebuilt->resize(lost.size());
        for (size_t i = 0; i < lost.size(); ++i) {
          groups[i].SortByKey();
          (*rebuilt)[i].reserve(groups[i].size());
          for (auto& e : groups[i].entries()) {
            (*rebuilt)[i].push_back(Value::MakePair(
                std::move(e.key), Value::MakeBag(std::move(e.payload))));
          }
        }
        return Status::OK();
      },
      1 + static_cast<int>(src.chain().size()));
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::ReduceByKeyImpl(const Dataset& in, const ReduceFn& fn,
                                          const BinOp* native_op,
                                          const ColumnSchema& schema,
                                          const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int combine_stage = NextStageId();
  const int shuffle_stage = NextStageId();
  const int reduce_stage = NextStageId();
  stage_span.SetStageId(combine_stage);
  StageRecovery rec;
  StageStats stats;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, combine_stage, 0, &rec));
  const FusedChain& chain = src.chain();
  const bool hash_agg = config_.hash_aggregation;
  // Typed aggregation (EngineConfig::columnar): a built-in op whose
  // key/value kinds columnarize folds with native arithmetic in the
  // same arrival order — bit-identical results, no per-row Value
  // allocation. The plan-time schema only ever skips the attempt (a
  // definitely non-numeric value); kUnknown means detect from the data,
  // and a deviating row mid-stream spills to the boxed accumulator.
  const bool try_typed =
      config_.columnar && native_op != nullptr &&
      TypedReduceAccumulator::SupportsOp(*native_op) &&
      schema.value != ColumnTag::kString && schema.value != ColumnTag::kBool;
  // Map-side combine (like Spark): fold each input partition first so the
  // shuffle only moves one pair per (partition, key). Any pending fused
  // chain runs element-by-element straight into the combine. Both paths
  // emit the combined pairs in key order, so the merge side's arrival
  // order — and with it every per-key float fold order — is identical
  // whichever aggregation path runs.
  std::vector<HashedVec> shuffled;
  std::vector<TypedRows> typed_shuffled;
  bool use_typed_shuffle = false;
  int64_t bytes = 0;
  Status st;
  // When no boxed rows are needed between combine and reduce — no wire
  // format, no fault injection (row-level corruption coordinates name
  // boxed rows), no remote backend — the combine output can stay typed
  // across the shuffle: no intermediate pair row is ever allocated.
  const bool typed_shuffle_ok =
      try_typed && !config_.serialize_shuffles && !config_.faults.enabled() &&
      config_.remote == nullptr;
  // Combine-side skew mitigation (DESIGN.md §17): an oversized SOURCE
  // partition is combined as contiguous row chunks by independent
  // virtual tasks, so one giant input partition no longer serializes
  // the combine wave. The chunk partials of a key re-merge in the
  // normal reduce stage, so the split is only taken when that re-merge
  // is exact under ANY grouping: a typed int64 fold of an associative
  // built-in op (+, *, min, max are bit-associative on int64). The
  // typed_shuffle_ok conjunct also keeps splits away from fault
  // injection, the wire format, and the remote backend.
  const bool combine_splittable =
      hash_agg && typed_shuffle_ok && schema.value == ColumnTag::kInt64 &&
      native_op != nullptr &&
      (*native_op == BinOp::kAdd || *native_op == BinOp::kMul ||
       *native_op == BinOp::kMin || *native_op == BinOp::kMax);
  SkewConfig combine_cfg = config_.skew;
  combine_cfg.mitigate = combine_cfg.mitigate && combine_splittable;
  const SaltPlan combine_salt = PlanSalt(RowCounts(src), combine_cfg);
  EmitSkewSalting(config_.events, combine_stage, "combine", combine_salt);
  const int num_combine = static_cast<int>(combine_salt.task_of.size());
  std::vector<int64_t> combine_work(num_combine);
  for (int t = 0; t < num_combine; ++t) {
    const int p = combine_salt.task_of[t];
    const auto [lo, hi] =
        ChunkRange(src.partition(p).size(), combine_salt.index_of[t],
                   combine_salt.fanout[p]);
    combine_work[t] = static_cast<int64_t>(hi - lo);
  }
  std::vector<ChainTally> tallies(num_combine);
  if (hash_agg) {
    std::vector<HashedVec> combined(num_combine);
    std::vector<TypedRows> typed_combined(num_combine);
    // Folds rows [lo, hi) of source partition p into output slot `slot`
    // exactly as the unsplit combine folds a whole partition: wave
    // tasks call it with their chunk, and the dirty-chunk fallback
    // below re-runs it over a full partition.
    auto combine_range = [&](int slot, int p, size_t lo,
                             size_t hi) -> Status {
      combined[slot].clear();
      tallies[slot].Reset(chain.size());
      KeyedAccumulator<Value> acc(hi - lo);
      std::optional<TypedReduceAccumulator> typed;
      if (try_typed) typed.emplace(*native_op, hi - lo);
      int64_t boxed_rows = 0;
      auto combine = [&](const Value& row) -> Status {
        if (typed.has_value()) {
          if (typed->Add(row)) return Status::OK();
          // Deviating row: replay the typed state into the boxed
          // accumulator (insertion order, hashes and payloads
          // preserved) and continue boxed from this row.
          typed->SpillTo(&acc);
          typed.reset();
        }
        if (try_typed) ++boxed_rows;
        DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(row));
        const size_t h = key->Hash();
        auto ref = acc.FindOrCreate(h, *key);
        if (ref.inserted) {
          ref.payload = row.tuple()[1];
        } else {
          DIABLO_ASSIGN_OR_RETURN(ref.payload,
                                  fn(ref.payload, row.tuple()[1]));
        }
        return Status::OK();
      };
      const ValueVec& part = src.partition(p);
      if (typed.has_value() && chain.empty()) {
        // No pending fused chain: fold the rows into the typed
        // accumulator directly, skipping the per-row chain dispatch.
        // A deviating row drops to the boxed `combine` from there.
        size_t i = lo;
        for (; i < hi; ++i) {
          if (!typed->Add(part[i])) break;
        }
        for (; i < hi; ++i) {
          DIABLO_RETURN_IF_ERROR(combine(part[i]));
        }
      } else {
        for (size_t i = lo; i < hi; ++i) {
          DIABLO_RETURN_IF_ERROR(
              ApplyChain(chain, 0, part[i], &tallies[slot], combine));
        }
      }
      // Task-level accumulator watermark (the boxed accumulator always
      // reserves its capacity, so both live footprints are summed);
      // ChainTally carries it across the dist wire into
      // StageStats::accumulator_bytes_peak.
      tallies[slot].accumulator_bytes = static_cast<int64_t>(
          acc.MemoryBytes() + (typed.has_value() ? typed->MemoryBytes() : 0));
      if (typed.has_value()) {
        typed_combined[slot] = TypedRows();
        if (!typed_shuffle_ok ||
            !typed->EmitSortedTyped(&typed_combined[slot])) {
          typed->EmitSortedHashed(&combined[slot]);
        }
        if (typed->rows() > 0) tallies[slot].columnar_batches += 1;
      } else {
        acc.SortByKey();
        combined[slot].reserve(acc.size());
        for (auto& e : acc.entries()) {
          combined[slot].push_back(HashedRow{
              e.hash,
              Value::MakePair(std::move(e.key), std::move(e.payload))});
        }
      }
      tallies[slot].columnar_rows_fallback += boxed_rows;
      return Status::OK();
    };
    WaveSlots combine_slots;
    combine_slots.hashed = &combined;
    combine_slots.tallies = &tallies;
    st = RunTaskWave(
        label + ".combine", combine_stage, combine_work,
        [&](int t, int) -> Status {
          const int p = combine_salt.task_of[t];
          const auto [lo, hi] =
              ChunkRange(src.partition(p).size(), combine_salt.index_of[t],
                         combine_salt.fanout[p]);
          return combine_range(t, p, lo, hi);
        },
        &rec, &combine_slots);
    if (!st.ok()) return st;
    // A split is only exact while every chunk of the partition stayed
    // on the typed int64 path. A chunk that bounced — boxed rows, or a
    // payload that turned out non-int64 at runtime — re-runs its whole
    // source partition unsplit on the driver (rare by construction: the
    // plan-time schema already claimed int64), zeroing the sibling
    // chunk slots so the empty chunks contribute nothing downstream.
    if (combine_salt.active) {
      for (int p = 0; p < src.num_partitions(); ++p) {
        if (combine_salt.fanout[p] == 1) continue;
        bool clean = true;
        for (int s = 0; s < combine_salt.fanout[p] && clean; ++s) {
          const int t = combine_salt.first[p] + s;
          if (!combined[t].empty() ||
              (typed_combined[t].size() > 0 &&
               typed_combined[t].payload_mode != TypedPayloadMode::kInt64)) {
            clean = false;
          }
        }
        if (clean) continue;
        for (int s = 1; s < combine_salt.fanout[p]; ++s) {
          const int t = combine_salt.first[p] + s;
          combined[t].clear();
          typed_combined[t] = TypedRows();
          tallies[t].Reset(chain.size());
        }
        DIABLO_RETURN_IF_ERROR(combine_range(combine_salt.first[p], p, 0,
                                             src.partition(p).size()));
      }
    }
    stats.fused_ops += static_cast<int64_t>(chain.size());
    for (const ChainTally& t : tallies) t.MergeInto(&stats);
    for (int64_t c : RowCounts(src)) stats.hash_agg_rows += c;
    // The typed shuffle needs every non-empty combine output typed with
    // one key/payload shape; a spilled or string-keyed partition drops
    // the whole operator back to boxed rows (the typed ones re-box).
    if (typed_shuffle_ok) {
      use_typed_shuffle = true;
      TypedKeyMode kmode = TypedKeyMode::kNone;
      TypedPayloadMode pmode = TypedPayloadMode::kNone;
      for (int t = 0; t < num_combine; ++t) {
        if (!combined[t].empty()) {
          use_typed_shuffle = false;
          break;
        }
        const TypedRows& tc = typed_combined[t];
        if (tc.size() == 0) continue;
        if (kmode == TypedKeyMode::kNone) {
          kmode = tc.key_mode;
          pmode = tc.payload_mode;
        } else if (tc.key_mode != kmode || tc.payload_mode != pmode) {
          use_typed_shuffle = false;
          break;
        }
      }
      if (!use_typed_shuffle) {
        for (int t = 0; t < num_combine; ++t) {
          typed_combined[t].EmitHashed(&combined[t]);
          typed_combined[t] = TypedRows();
        }
      }
    }
    int64_t combined_keys = 0;
    for (int t = 0; t < num_combine; ++t) {
      combined_keys += static_cast<int64_t>(combined[t].size()) +
                       static_cast<int64_t>(typed_combined[t].size());
    }
    stats.hash_agg_keys += combined_keys;
    // The combined pairs carry their memoized key hashes straight into
    // the scatter: no key is hashed twice anywhere in this operator.
    if (use_typed_shuffle) {
      DIABLO_ASSIGN_OR_RETURN(typed_shuffled,
                              ShuffleTyped(typed_combined, shuffle_stage,
                                           &bytes, &rec, &stats));
    } else {
      DIABLO_ASSIGN_OR_RETURN(shuffled,
                              ShuffleHashed(combined, shuffle_stage, &bytes,
                                            &rec, &stats));
    }
  } else {
    std::vector<ValueVec> combined(src.num_partitions());
    WaveSlots combine_slots;
    combine_slots.rows = &combined;
    combine_slots.tallies = &tallies;
    st = RunTaskWave(
        label + ".combine", combine_stage, RowCounts(src),
        [&](int p, int) -> Status {
          combined[p].clear();
          tallies[p].Reset(chain.size());
          OrderedGroups acc;
          auto combine = [&](const Value& row) -> Status {
            DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(row));
            auto it = acc.find(*key);
            if (it == acc.end()) {
              acc.emplace(*key, ValueVec{row.tuple()[1]});
            } else {
              DIABLO_ASSIGN_OR_RETURN(it->second[0],
                                      fn(it->second[0], row.tuple()[1]));
            }
            return Status::OK();
          };
          for (const Value& row : src.partition(p)) {
            DIABLO_RETURN_IF_ERROR(
                ApplyChain(chain, 0, row, &tallies[p], combine));
          }
          combined[p].reserve(acc.size());
          for (auto& [key, vals] : acc) {
            combined[p].push_back(Value::MakePair(key, std::move(vals[0])));
          }
          return Status::OK();
        },
        &rec, &combine_slots);
    if (!st.ok()) return st;
    stats.fused_ops += static_cast<int64_t>(chain.size());
    for (const ChainTally& t : tallies) t.MergeInto(&stats);
    Dataset combined_ds(std::move(combined));
    DIABLO_ASSIGN_OR_RETURN(
        shuffled, ShuffleWave(combined_ds, shuffle_stage, &bytes, &rec,
                              &stats));
  }
  std::vector<int64_t> shuffled_counts;
  if (use_typed_shuffle) {
    shuffled_counts.reserve(typed_shuffled.size());
    for (const TypedRows& t : typed_shuffled) {
      shuffled_counts.push_back(static_cast<int64_t>(t.size()));
    }
  } else {
    shuffled_counts = RowCounts(shuffled);
  }
  // Reduce-side skew mitigation (DESIGN.md §17): an oversized
  // DESTINATION is split into hash STRIPES (RemixHash % k), each folded
  // by its own virtual task. Every row of a key shares the key's hash
  // and hence its stripe — no key is ever split — and the stable stripe
  // pass preserves arrival order within each stripe, so per-key fold
  // order is untouched for ANY reduce function. The driver's un-salt is
  // a plain sorted merge of disjoint key sets.
  const SaltPlan reduce_salt = PlanSalt(shuffled_counts, config_.skew);
  EmitSkewSalting(config_.events, reduce_stage, "reduce", reduce_salt);
  const int num_reduce = static_cast<int>(reduce_salt.task_of.size());
  std::vector<TypedRows> typed_parts;
  std::vector<HashedVec> hashed_parts;
  if (use_typed_shuffle) {
    typed_parts.resize(num_reduce);
  } else {
    hashed_parts.resize(num_reduce);
  }
  for (size_t p = 0; p < shuffled_counts.size(); ++p) {
    const int f = reduce_salt.fanout[p];
    const int base = reduce_salt.first[p];
    if (use_typed_shuffle) {
      if (f == 1) {
        typed_parts[base] = std::move(typed_shuffled[p]);
      } else {
        std::vector<TypedRows> stripes = StripeTyped(typed_shuffled[p], f);
        for (int s = 0; s < f; ++s) {
          typed_parts[base + s] = std::move(stripes[s]);
        }
        typed_shuffled[p] = TypedRows();
      }
    } else {
      if (f == 1) {
        hashed_parts[base] = std::move(shuffled[p]);
      } else {
        std::vector<HashedVec> stripes =
            StripeHashed(std::move(shuffled[p]), f);
        for (int s = 0; s < f; ++s) {
          hashed_parts[base + s] = std::move(stripes[s]);
        }
      }
    }
  }
  std::vector<int64_t> reduce_work(num_reduce);
  for (int t = 0; t < num_reduce; ++t) {
    reduce_work[t] = use_typed_shuffle
                         ? static_cast<int64_t>(typed_parts[t].size())
                         : static_cast<int64_t>(hashed_parts[t].size());
  }
  std::vector<ValueVec> sub_out(num_reduce);
  std::vector<ChainTally> reduce_tallies(num_reduce);
  WaveSlots reduce_slots;
  reduce_slots.rows = &sub_out;
  reduce_slots.tallies = &reduce_tallies;
  st = RunTaskWave(
      label, reduce_stage, reduce_work,
      [&](int t, int) -> Status {
        sub_out[t].clear();
        reduce_tallies[t].Reset(0);
        if (use_typed_shuffle) {
          // Typed end-to-end: the shuffled arrays fold straight into a
          // typed accumulator — hash, raw key bits and payload, no
          // boxed row until the final sorted emit.
          const TypedRows& tr = typed_parts[t];
          TypedReduceAccumulator typed(*native_op, tr.size());
          typed.BeginTyped(tr.key_mode, tr.payload_mode, &tr.dict_values);
          const bool ints = tr.payload_mode == TypedPayloadMode::kInt64;
          for (size_t i = 0; i < tr.size(); ++i) {
            typed.AddHashedBits(tr.hashes[i], tr.key_bits[i],
                                ints ? tr.pay_ints[i] : 0,
                                ints ? 0.0 : tr.pay_doubles[i]);
          }
          reduce_tallies[t].accumulator_bytes =
              static_cast<int64_t>(typed.MemoryBytes());
          typed.EmitSortedRows(&sub_out[t]);
          if (typed.rows() > 0) reduce_tallies[t].columnar_batches += 1;
          return Status::OK();
        }
        const HashedVec& part = hashed_parts[t];
        if (hash_agg) {
          KeyedAccumulator<Value> acc(part.size());
          std::optional<TypedReduceAccumulator> typed;
          if (try_typed) typed.emplace(*native_op, part.size());
          int64_t boxed_rows = 0;
          size_t i = 0;
          if (typed.has_value()) {
            // The hash crossed the shuffle with the row: trust it.
            for (; i < part.size(); ++i) {
              const HashedRow& hr = part[i];
              if (!typed->AddHashed(hr.hash, hr.row)) break;
            }
            if (i == part.size()) {
              reduce_tallies[t].accumulator_bytes = static_cast<int64_t>(
                  acc.MemoryBytes() + typed->MemoryBytes());
              typed->EmitSortedRows(&sub_out[t]);
              if (typed->rows() > 0) reduce_tallies[t].columnar_batches += 1;
              return Status::OK();
            }
            typed->SpillTo(&acc);
          }
          for (; i < part.size(); ++i) {
            const HashedRow& hr = part[i];
            if (try_typed) ++boxed_rows;
            const ValueVec& kv = hr.row.tuple();
            auto ref = acc.FindOrCreate(hr.hash, kv[0]);
            if (ref.inserted) {
              ref.payload = kv[1];
            } else {
              DIABLO_ASSIGN_OR_RETURN(ref.payload, fn(ref.payload, kv[1]));
            }
          }
          reduce_tallies[t].columnar_rows_fallback += boxed_rows;
          reduce_tallies[t].accumulator_bytes = static_cast<int64_t>(
              acc.MemoryBytes() +
              (typed.has_value() ? typed->MemoryBytes() : 0));
          acc.SortByKey();
          sub_out[t].reserve(acc.size());
          for (auto& e : acc.entries()) {
            sub_out[t].push_back(
                Value::MakePair(std::move(e.key), std::move(e.payload)));
          }
        } else {
          OrderedGroups acc;
          for (const HashedRow& hr : part) {
            const ValueVec& kv = hr.row.tuple();
            auto it = acc.find(kv[0]);
            if (it == acc.end()) {
              acc.emplace(kv[0], ValueVec{kv[1]});
            } else {
              DIABLO_ASSIGN_OR_RETURN(it->second[0], fn(it->second[0], kv[1]));
            }
          }
          sub_out[t].reserve(acc.size());
          for (auto& [key, vals] : acc) {
            sub_out[t].push_back(Value::MakePair(key, std::move(vals[0])));
          }
        }
        return Status::OK();
      },
      &rec, &reduce_slots);
  if (!st.ok()) return st;
  // Driver-side un-salt: striped destinations merge, the rest move.
  std::vector<ValueVec> out(shuffled_counts.size());
  std::vector<int64_t> unsalt_work;
  for (size_t p = 0; p < out.size(); ++p) {
    if (reduce_salt.fanout[p] == 1) {
      out[p] = std::move(sub_out[reduce_salt.first[p]]);
      continue;
    }
    std::vector<ValueVec> parts;
    parts.reserve(reduce_salt.fanout[p]);
    for (int s = 0; s < reduce_salt.fanout[p]; ++s) {
      parts.push_back(std::move(sub_out[reduce_salt.first[p] + s]));
    }
    out[p] = MergeSortedRows(std::move(parts));
    unsalt_work.push_back(static_cast<int64_t>(out[p].size()));
  }
  for (const ChainTally& t : reduce_tallies) t.MergeInto(&stats);
  stats.label = FusedStageLabel(chain, label);
  stats.wide = true;
  stats.map_work = std::move(combine_work);
  stats.reduce_work = std::move(reduce_work);
  stats.shuffle_bytes = bytes;
  stats.partition_rows = RowCounts(out);
  // Stripe and chunk splits never fold one key in two sub-tasks (the
  // un-salt merges are over disjoint key sets; chunk partials re-merge
  // in the reduce stage itself), so salted_keys stays 0 here — only
  // groupByKey's bag-concat un-salt reports it.
  stats.salt_fanout = combine_salt.extra + reduce_salt.extra;
  if (hash_agg) {
    for (int64_t c : shuffled_counts) stats.hash_agg_rows += c;
    for (int64_t c : stats.partition_rows) stats.hash_agg_keys += c;
  }
  FinishStage(std::move(stats), rec);
  if (reduce_salt.active) {
    StageStats unsalt;
    unsalt.label = label + ".unsalt";
    unsalt.wide = false;
    unsalt.map_work = std::move(unsalt_work);
    RecordPlannerStage(std::move(unsalt));
  }
  const int out_parts = config_.num_partitions;
  auto lineage = MakeLineage(
      "reduceByKey", label, {src.lineage()}, nullptr,
      [src, fn, out_parts](const std::vector<int>& lost,
                           std::vector<ValueVec>* rebuilt,
                           int64_t* work) -> Status {
        // Reproduce combine -> shuffle -> fold for the lost destinations
        // in ONE pass over the source: each produced row is hashed once
        // and dropped unless its destination was lost. Restricting the
        // map-side combine to lost-destination keys, and merging each
        // source partition's combined pairs in key order (the combine
        // emits them that way), keeps every per-key fold order
        // identical to the original run, so floating-point results
        // match bit for bit.
        std::vector<int> slot_of(out_parts, -1);
        for (size_t i = 0; i < lost.size(); ++i) {
          slot_of[lost[i]] = static_cast<int>(i);
        }
        std::vector<KeyedAccumulator<Value>> acc(lost.size());
        for (int s = 0; s < src.num_partitions(); ++s) {
          std::vector<KeyedAccumulator<Value>> part(lost.size());
          for (const Value& row : src.partition(s)) {
            *work += 1;
            DIABLO_RETURN_IF_ERROR(ApplyChain(
                src.chain(), 0, row, nullptr,
                [&](const Value& v) -> Status {
                  DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                  const size_t h = key->Hash();
                  const int slot = slot_of[HashDestination(h, out_parts)];
                  if (slot < 0) return Status::OK();
                  auto ref = part[slot].FindOrCreate(h, *key);
                  if (ref.inserted) {
                    ref.payload = v.tuple()[1];
                  } else {
                    DIABLO_ASSIGN_OR_RETURN(ref.payload,
                                            fn(ref.payload, v.tuple()[1]));
                  }
                  return Status::OK();
                }));
          }
          for (size_t i = 0; i < lost.size(); ++i) {
            part[i].SortByKey();
            for (auto& e : part[i].entries()) {
              auto ref = acc[i].FindOrCreate(e.hash, e.key);
              if (ref.inserted) {
                ref.payload = std::move(e.payload);
              } else {
                DIABLO_ASSIGN_OR_RETURN(ref.payload,
                                        fn(ref.payload, e.payload));
              }
            }
          }
        }
        rebuilt->resize(lost.size());
        for (size_t i = 0; i < lost.size(); ++i) {
          acc[i].SortByKey();
          (*rebuilt)[i].reserve(acc[i].size());
          for (auto& e : acc[i].entries()) {
            (*rebuilt)[i].push_back(
                Value::MakePair(std::move(e.key), std::move(e.payload)));
          }
        }
        return Status::OK();
      },
      1 + static_cast<int>(src.chain().size()));
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::ReduceByKey(const Dataset& in, const ReduceFn& fn,
                                      const std::string& label) {
  return ReduceByKeyImpl(in, fn, nullptr, ColumnSchema(), label);
}

StatusOr<Dataset> Engine::ReduceByKey(const Dataset& in, BinOp op,
                                      const std::string& label,
                                      const ColumnSchema& schema) {
  return ReduceByKeyImpl(
      in,
      [op](const Value& a, const Value& b) { return EvalBinOp(op, a, b); },
      &op, schema, label);
}

StatusOr<Dataset> Engine::Join(const Dataset& left, const Dataset& right,
                               const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int left_stage = NextStageId();
  const int right_stage = NextStageId();
  const int join_stage = NextStageId();
  stage_span.SetStageId(left_stage);
  StageRecovery rec;
  StageStats stats;
  // Loss directives address both inputs at the operator's first stage:
  // input 0 is the left side, input 1 the right.
  DIABLO_ASSIGN_OR_RETURN(Dataset l, RecoverInput(left, left_stage, 0, &rec));
  DIABLO_ASSIGN_OR_RETURN(Dataset r, RecoverInput(right, left_stage, 1, &rec));
  int64_t bytes_l = 0, bytes_r = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<HashedVec> ls,
                          ShuffleWave(l, left_stage, &bytes_l, &rec, &stats));
  DIABLO_ASSIGN_OR_RETURN(std::vector<HashedVec> rs,
                          ShuffleWave(r, right_stage, &bytes_r, &rec, &stats));
  const bool hash_agg = config_.hash_aggregation;
  std::vector<ValueVec> out(ls.size());
  std::vector<int64_t> reduce_work(ls.size(), 0);
  WaveSlots join_slots;
  join_slots.rows = &out;
  join_slots.nums = &reduce_work;
  Status st = RunTaskWave(
      label, join_stage, RowCounts(ls),
      [&](int p, int) -> Status {
        out[p].clear();
        reduce_work[p] = static_cast<int64_t>(ls[p].size());
        if (hash_agg) {
          // Build from the left rows in arrival order, probe with the
          // right rows in arrival order: the output sequence is the
          // probe order either way, so no final sort is needed to match
          // the ordered-map path. Both sides reuse the carried hashes.
          KeyedAccumulator<ValueVec> build(ls[p].size());
          for (const HashedRow& hr : ls[p]) {
            const ValueVec& kv = hr.row.tuple();
            build.FindOrCreate(hr.hash, kv[0]).payload.push_back(kv[1]);
          }
          for (const HashedRow& hr : rs[p]) {
            const ValueVec& kv = hr.row.tuple();
            reduce_work[p] += 1;
            ValueVec* lvs = build.Find(hr.hash, kv[0]);
            if (lvs == nullptr) continue;
            for (const Value& lv : *lvs) {
              out[p].push_back(
                  Value::MakePair(kv[0], Value::MakePair(lv, kv[1])));
              reduce_work[p] += 1;
            }
          }
        } else {
          OrderedGroups build;
          for (const HashedRow& hr : ls[p]) {
            const ValueVec& kv = hr.row.tuple();
            build[kv[0]].push_back(kv[1]);
          }
          for (const HashedRow& hr : rs[p]) {
            const ValueVec& kv = hr.row.tuple();
            reduce_work[p] += 1;
            auto it = build.find(kv[0]);
            if (it == build.end()) continue;
            for (const Value& lv : it->second) {
              out[p].push_back(
                  Value::MakePair(kv[0], Value::MakePair(lv, kv[1])));
              reduce_work[p] += 1;
            }
          }
        }
        return Status::OK();
      },
      &rec, &join_slots);
  if (!st.ok()) return st;
  stats.label = FusedStageLabel(l.chain(), FusedStageLabel(r.chain(), label));
  stats.wide = true;
  stats.map_work = RowCounts(l);
  for (int64_t c : RowCounts(r)) stats.map_work.push_back(c);
  stats.reduce_work = std::move(reduce_work);
  stats.shuffle_bytes = bytes_l + bytes_r;
  stats.partition_rows = RowCounts(out);
  if (hash_agg) {
    for (int64_t c : RowCounts(ls)) stats.hash_agg_rows += c;
  }
  FinishStage(std::move(stats), rec);
  const int out_parts = config_.num_partitions;
  const int chain_depth = static_cast<int>(
      std::max(l.chain().size(), r.chain().size()));
  auto lineage = MakeLineage(
      "join", label, {l.lineage(), r.lineage()}, nullptr,
      [l, r, out_parts](const std::vector<int>& lost,
                        std::vector<ValueVec>* rebuilt,
                        int64_t* work) -> Status {
        // Rebuild the lost post-shuffle partitions of both sides in one
        // pass per side (each produced row hashed once, kept with its
        // memoized hash only when its destination was lost), then
        // replay the hash join. Scanning sources in order restores the
        // arrival order, so the probe-order output matches exactly.
        std::vector<int> slot_of(out_parts, -1);
        for (size_t i = 0; i < lost.size(); ++i) {
          slot_of[lost[i]] = static_cast<int>(i);
        }
        std::vector<HashedVec> lrows(lost.size()), rrows(lost.size());
        auto scatter = [&](const Dataset& side,
                           std::vector<HashedVec>& dest) -> Status {
          for (int s = 0; s < side.num_partitions(); ++s) {
            for (const Value& row : side.partition(s)) {
              *work += 1;
              DIABLO_RETURN_IF_ERROR(ApplyChain(
                  side.chain(), 0, row, nullptr,
                  [&](const Value& v) -> Status {
                    DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                    const size_t h = key->Hash();
                    const int slot = slot_of[HashDestination(h, out_parts)];
                    if (slot >= 0) dest[slot].push_back(HashedRow{h, v});
                    return Status::OK();
                  }));
            }
          }
          return Status::OK();
        };
        DIABLO_RETURN_IF_ERROR(scatter(l, lrows));
        DIABLO_RETURN_IF_ERROR(scatter(r, rrows));
        rebuilt->resize(lost.size());
        for (size_t i = 0; i < lost.size(); ++i) {
          KeyedAccumulator<ValueVec> build(lrows[i].size());
          for (const HashedRow& hr : lrows[i]) {
            const ValueVec& kv = hr.row.tuple();
            build.FindOrCreate(hr.hash, kv[0]).payload.push_back(kv[1]);
          }
          for (const HashedRow& hr : rrows[i]) {
            const ValueVec& kv = hr.row.tuple();
            ValueVec* lvs = build.Find(hr.hash, kv[0]);
            if (lvs == nullptr) continue;
            for (const Value& lv : *lvs) {
              (*rebuilt)[i].push_back(
                  Value::MakePair(kv[0], Value::MakePair(lv, kv[1])));
            }
          }
        }
        return Status::OK();
      },
      1 + chain_depth);
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::CoGroup(const Dataset& left, const Dataset& right,
                                  const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int left_stage = NextStageId();
  const int right_stage = NextStageId();
  const int cogroup_stage = NextStageId();
  stage_span.SetStageId(left_stage);
  StageRecovery rec;
  StageStats stats;
  DIABLO_ASSIGN_OR_RETURN(Dataset l, RecoverInput(left, left_stage, 0, &rec));
  DIABLO_ASSIGN_OR_RETURN(Dataset r, RecoverInput(right, left_stage, 1, &rec));
  int64_t bytes_l = 0, bytes_r = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<HashedVec> ls,
                          ShuffleWave(l, left_stage, &bytes_l, &rec, &stats));
  DIABLO_ASSIGN_OR_RETURN(std::vector<HashedVec> rs,
                          ShuffleWave(r, right_stage, &bytes_r, &rec, &stats));
  const bool hash_agg = config_.hash_aggregation;
  std::vector<ValueVec> out(ls.size());
  std::vector<int64_t> reduce_work(ls.size(), 0);
  WaveSlots cg_slots;
  cg_slots.rows = &out;
  cg_slots.nums = &reduce_work;
  Status st = RunTaskWave(
      label, cogroup_stage, RowCounts(ls),
      [&](int p, int) -> Status {
        out[p].clear();
        reduce_work[p] = static_cast<int64_t>(ls[p].size()) +
                         static_cast<int64_t>(rs[p].size());
        if (hash_agg) {
          KeyedAccumulator<std::pair<ValueVec, ValueVec>> groups(
              ls[p].size() + rs[p].size());
          for (const HashedRow& hr : ls[p]) {
            const ValueVec& kv = hr.row.tuple();
            groups.FindOrCreate(hr.hash, kv[0])
                .payload.first.push_back(kv[1]);
          }
          for (const HashedRow& hr : rs[p]) {
            const ValueVec& kv = hr.row.tuple();
            groups.FindOrCreate(hr.hash, kv[0])
                .payload.second.push_back(kv[1]);
          }
          groups.SortByKey();
          out[p].reserve(groups.size());
          for (auto& e : groups.entries()) {
            out[p].push_back(Value::MakePair(
                std::move(e.key),
                Value::MakePair(Value::MakeBag(std::move(e.payload.first)),
                                Value::MakeBag(std::move(e.payload.second)))));
          }
          return Status::OK();
        }
        std::map<Value, std::pair<ValueVec, ValueVec>> groups;
        for (const HashedRow& hr : ls[p]) {
          const ValueVec& kv = hr.row.tuple();
          groups[kv[0]].first.push_back(kv[1]);
        }
        for (const HashedRow& hr : rs[p]) {
          const ValueVec& kv = hr.row.tuple();
          groups[kv[0]].second.push_back(kv[1]);
        }
        out[p].reserve(groups.size());
        for (auto& [key, sides] : groups) {
          out[p].push_back(Value::MakePair(
              key, Value::MakePair(Value::MakeBag(std::move(sides.first)),
                                   Value::MakeBag(std::move(sides.second)))));
        }
        return Status::OK();
      },
      &rec, &cg_slots);
  if (!st.ok()) return st;
  stats.label = FusedStageLabel(l.chain(), FusedStageLabel(r.chain(), label));
  stats.wide = true;
  stats.map_work = RowCounts(l);
  for (int64_t c : RowCounts(r)) stats.map_work.push_back(c);
  stats.reduce_work = std::move(reduce_work);
  stats.shuffle_bytes = bytes_l + bytes_r;
  stats.partition_rows = RowCounts(out);
  if (hash_agg) {
    for (int64_t c : stats.reduce_work) stats.hash_agg_rows += c;
    for (int64_t c : stats.partition_rows) stats.hash_agg_keys += c;
  }
  FinishStage(std::move(stats), rec);
  const int out_parts = config_.num_partitions;
  const int chain_depth = static_cast<int>(
      std::max(l.chain().size(), r.chain().size()));
  auto lineage = MakeLineage(
      "coGroup", label, {l.lineage(), r.lineage()}, nullptr,
      [l, r, out_parts](const std::vector<int>& lost,
                        std::vector<ValueVec>* rebuilt,
                        int64_t* work) -> Status {
        // Single-pass scatter per side, restricted to lost destinations;
        // each produced row's key hashes once. SortByKey canonicalizes
        // the rebuilt groups to match the forward path byte-for-byte.
        std::vector<int> slot_of(out_parts, -1);
        for (size_t i = 0; i < lost.size(); ++i) {
          slot_of[lost[i]] = static_cast<int>(i);
        }
        std::vector<KeyedAccumulator<std::pair<ValueVec, ValueVec>>> groups(
            lost.size());
        auto scatter = [&](const Dataset& side, bool is_left) -> Status {
          for (int s = 0; s < side.num_partitions(); ++s) {
            for (const Value& row : side.partition(s)) {
              *work += 1;
              DIABLO_RETURN_IF_ERROR(ApplyChain(
                  side.chain(), 0, row, nullptr,
                  [&](const Value& v) -> Status {
                    DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                    const size_t h = key->Hash();
                    const int slot = slot_of[HashDestination(h, out_parts)];
                    if (slot < 0) return Status::OK();
                    auto& sides = groups[slot].FindOrCreate(h, *key).payload;
                    (is_left ? sides.first : sides.second)
                        .push_back(v.tuple()[1]);
                    return Status::OK();
                  }));
            }
          }
          return Status::OK();
        };
        DIABLO_RETURN_IF_ERROR(scatter(l, /*is_left=*/true));
        DIABLO_RETURN_IF_ERROR(scatter(r, /*is_left=*/false));
        rebuilt->resize(lost.size());
        for (size_t i = 0; i < lost.size(); ++i) {
          groups[i].SortByKey();
          (*rebuilt)[i].reserve(groups[i].size());
          for (auto& e : groups[i].entries()) {
            (*rebuilt)[i].push_back(Value::MakePair(
                std::move(e.key),
                Value::MakePair(Value::MakeBag(std::move(e.payload.first)),
                                Value::MakeBag(std::move(e.payload.second)))));
          }
        }
        return Status::OK();
      },
      1 + chain_depth);
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::Union(const Dataset& in_a, const Dataset& in_b) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, "union");
  DIABLO_ASSIGN_OR_RETURN(Dataset a, Force(in_a));
  DIABLO_ASSIGN_OR_RETURN(Dataset b, Force(in_b));
  const int n = std::max(a.num_partitions(), b.num_partitions());
  std::vector<ValueVec> out(n);
  for (int p = 0; p < n; ++p) {
    size_t total = 0;
    if (p < a.num_partitions()) total += a.partition(p).size();
    if (p < b.num_partitions()) total += b.partition(p).size();
    out[p].reserve(total);
  }
  for (int p = 0; p < a.num_partitions(); ++p) {
    for (const Value& v : a.partition(p)) out[p].push_back(v);
  }
  for (int p = 0; p < b.num_partitions(); ++p) {
    for (const Value& v : b.partition(p)) out[p].push_back(v);
  }
  StageStats union_stats{"union", /*wide=*/false, RowCounts(out), {}, 0};
  union_stats.partition_rows = RowCounts(out);
  FinishStage(std::move(union_stats), StageRecovery());
  auto lineage = MakeLineage(
      "union", "union", {a.lineage(), b.lineage()},
      [a, b](int p, int64_t* work) -> StatusOr<ValueVec> {
        ValueVec rebuilt;
        rebuilt.reserve(
            (p < a.num_partitions() ? a.partition(p).size() : 0) +
            (p < b.num_partitions() ? b.partition(p).size() : 0));
        if (p < a.num_partitions()) {
          *work += static_cast<int64_t>(a.partition(p).size());
          for (const Value& v : a.partition(p)) rebuilt.push_back(v);
        }
        if (p < b.num_partitions()) {
          *work += static_cast<int64_t>(b.partition(p).size());
          for (const Value& v : b.partition(p)) rebuilt.push_back(v);
        }
        return rebuilt;
      });
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::Distinct(const Dataset& in,
                                   const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  // Key each row by itself, shuffle, dedup per partition.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keyed,
      Map(in, [](const Value& v) -> StatusOr<Value> {
        return Value::MakePair(v, Value::MakeUnit());
      }, label + ".key"));
  const int shuffle_stage = NextStageId();
  const int dedup_stage = NextStageId();
  stage_span.SetStageId(shuffle_stage);
  StageRecovery rec;
  StageStats stats;
  DIABLO_ASSIGN_OR_RETURN(Dataset src,
                          RecoverInput(keyed, shuffle_stage, 0, &rec));
  int64_t bytes = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<HashedVec> shuffled,
                          ShuffleWave(src, shuffle_stage, &bytes, &rec, &stats));
  const bool hash_agg = config_.hash_aggregation;
  std::vector<ValueVec> out(shuffled.size());
  WaveSlots dedup_slots;
  dedup_slots.rows = &out;
  Status st = RunTaskWave(
      label, dedup_stage, RowCounts(shuffled),
      [&](int p, int) -> Status {
        out[p].clear();
        if (hash_agg) {
          KeyedAccumulator<NoPayload> seen(shuffled[p].size());
          for (const HashedRow& hr : shuffled[p]) {
            seen.FindOrCreate(hr.hash, hr.row.tuple()[0]);
          }
          seen.SortByKey();
          out[p].reserve(seen.size());
          for (auto& e : seen.entries()) out[p].push_back(std::move(e.key));
          return Status::OK();
        }
        std::map<Value, bool> seen;
        for (const HashedRow& hr : shuffled[p]) {
          seen.emplace(hr.row.tuple()[0], true);
        }
        out[p].reserve(seen.size());
        for (auto& [v, unused] : seen) out[p].push_back(v);
        return Status::OK();
      },
      &rec, &dedup_slots);
  if (!st.ok()) return st;
  stats.label = FusedStageLabel(src.chain(), label);
  stats.wide = true;
  stats.map_work = RowCounts(src);
  stats.reduce_work = RowCounts(shuffled);
  stats.shuffle_bytes = bytes;
  stats.partition_rows = RowCounts(out);
  if (hash_agg) {
    for (int64_t c : RowCounts(shuffled)) stats.hash_agg_rows += c;
    for (int64_t c : stats.partition_rows) stats.hash_agg_keys += c;
  }
  FinishStage(std::move(stats), rec);
  const int out_parts = config_.num_partitions;
  auto lineage = MakeLineage(
      "distinct", label, {src.lineage()}, nullptr,
      [src, out_parts](const std::vector<int>& lost,
                       std::vector<ValueVec>* rebuilt,
                       int64_t* work) -> Status {
        // Single-pass scatter restricted to the lost destinations; each
        // key hashes once and the final sort canonicalizes the rebuilt
        // partition to match the forward path byte-for-byte.
        std::vector<int> slot_of(out_parts, -1);
        for (size_t i = 0; i < lost.size(); ++i) {
          slot_of[lost[i]] = static_cast<int>(i);
        }
        std::vector<KeyedAccumulator<NoPayload>> seen(lost.size());
        for (int s = 0; s < src.num_partitions(); ++s) {
          for (const Value& row : src.partition(s)) {
            *work += 1;
            DIABLO_RETURN_IF_ERROR(ApplyChain(
                src.chain(), 0, row, nullptr,
                [&](const Value& v) -> Status {
                  DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(v));
                  const size_t h = key->Hash();
                  const int slot = slot_of[HashDestination(h, out_parts)];
                  if (slot >= 0) seen[slot].FindOrCreate(h, *key);
                  return Status::OK();
                }));
          }
        }
        rebuilt->resize(lost.size());
        for (size_t i = 0; i < lost.size(); ++i) {
          seen[i].SortByKey();
          (*rebuilt)[i].reserve(seen[i].size());
          for (auto& e : seen[i].entries()) {
            (*rebuilt)[i].push_back(std::move(e.key));
          }
        }
        return Status::OK();
      },
      1 + static_cast<int>(src.chain().size()));
  return Dataset(std::move(out), std::move(lineage));
}

StatusOr<Dataset> Engine::Checkpoint(const Dataset& in,
                                     const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  const FusedChain& chain = src.chain();
  const int n = src.num_partitions();
  // The "write": each task serializes its partition to (simulated)
  // stable storage, running any pending fused chain straight into the
  // writer. Charged as a narrow stage whose shuffle_bytes are the bytes
  // written.
  std::vector<ValueVec> out(n);
  std::vector<int64_t> written(n, 0);
  std::vector<ChainTally> tallies(n);
  WaveSlots ckpt_slots;
  ckpt_slots.rows = &out;
  ckpt_slots.nums = &written;
  ckpt_slots.tallies = &tallies;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        out[p].clear();
        written[p] = 0;
        // The written rows are materialized (they become the durable
        // dataset), so only interior boundaries count as saved.
        tallies[p].Reset(chain.empty() ? 0 : chain.size() - 1);
        if (chain.empty()) {
          for (const Value& row : src.partition(p)) {
            written[p] += row.SerializedBytes();
          }
          return Status::OK();
        }
        out[p].reserve(src.partition(p).size());
        for (const Value& row : src.partition(p)) {
          DIABLO_RETURN_IF_ERROR(
              ApplyChain(chain, 0, row, &tallies[p],
                         [&](const Value& v) -> Status {
                           written[p] += v.SerializedBytes();
                           out[p].push_back(v);
                           return Status::OK();
                         }));
        }
        return Status::OK();
      },
      &rec, &ckpt_slots);
  if (!st.ok()) return st;
  int64_t total_bytes = 0;
  for (int64_t b : written) total_bytes += b;
  StageStats stats{label, /*wide=*/false, RowCounts(src), {}, total_bytes};
  stats.fused_ops = static_cast<int64_t>(chain.size());
  for (const ChainTally& t : tallies) t.MergeInto(&stats);
  stats.partition_rows = chain.empty() ? RowCounts(src) : RowCounts(out);
  FinishStage(std::move(stats), rec);
  // Durable node: recoveries stop here, and lineage depth resets to 0.
  auto node = std::make_shared<LineageNode>();
  node->kind = "checkpoint";
  node->label = label;
  node->durable = true;
  node->parents = {src.lineage()};
  if (chain.empty()) return Dataset(src, std::move(node));
  return Dataset(std::move(out), std::move(node));
}

StatusOr<std::optional<Value>> Engine::Reduce(const Dataset& in,
                                              const ReduceFn& fn,
                                              const std::string& label) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  const FusedChain& chain = src.chain();
  // Per-partition partial reduce (with any pending fused chain folding
  // straight into the partial), then combine partials on the driver.
  std::vector<std::optional<Value>> partials(src.num_partitions());
  std::vector<ChainTally> tallies(src.num_partitions());
  WaveSlots reduce_slots;
  reduce_slots.partials = &partials;
  reduce_slots.tallies = &tallies;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        partials[p].reset();
        tallies[p].Reset(chain.size());
        for (const Value& row : src.partition(p)) {
          DIABLO_RETURN_IF_ERROR(ApplyChain(
              chain, 0, row, &tallies[p],
              [&](const Value& v) -> Status {
                if (!partials[p].has_value()) {
                  partials[p] = v;
                } else {
                  DIABLO_ASSIGN_OR_RETURN(*partials[p], fn(*partials[p], v));
                }
                return Status::OK();
              }));
        }
        return Status::OK();
      },
      &rec, &reduce_slots);
  if (!st.ok()) return st;
  StageStats stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  stats.fused_ops = static_cast<int64_t>(chain.size());
  for (const ChainTally& t : tallies) t.MergeInto(&stats);
  FinishStage(std::move(stats), rec);
  std::optional<Value> acc;
  for (auto& part : partials) {
    if (!part.has_value()) continue;
    if (!acc.has_value()) {
      acc = std::move(part);
    } else {
      DIABLO_ASSIGN_OR_RETURN(*acc, fn(*acc, *part));
    }
  }
  return acc;
}

StatusOr<std::optional<Value>> Engine::Reduce(const Dataset& in, BinOp op,
                                              const std::string& label) {
  ReduceFn fn = [op](const Value& a, const Value& b) {
    return EvalBinOp(op, a, b);
  };
  if (!config_.columnar || !TypedFold::SupportsOp(op)) {
    return Reduce(in, fn, label);
  }
  ScopedSpan stage_span(trace(), SpanKind::kStage, label);
  const int stage = NextStageId();
  stage_span.SetStageId(stage);
  StageRecovery rec;
  DIABLO_ASSIGN_OR_RETURN(Dataset src, RecoverInput(in, stage, 0, &rec));
  const FusedChain& chain = src.chain();
  // Same shape as the closure Reduce, but each partition's partial folds
  // with native int64/double arithmetic (TypedFold) in arrival order —
  // bit-identical to EvalBinOp, including the int->double promotion when
  // a double appears mid-fold. A row of any other kind converts the
  // typed partial to a boxed accumulator and continues with EvalBinOp.
  std::vector<std::optional<Value>> partials(src.num_partitions());
  std::vector<ChainTally> tallies(src.num_partitions());
  WaveSlots reduce_slots;
  reduce_slots.partials = &partials;
  reduce_slots.tallies = &tallies;
  Status st = RunTaskWave(
      label, stage, RowCounts(src),
      [&](int p, int) -> Status {
        partials[p].reset();
        tallies[p].Reset(chain.size());
        TypedFold fold(op);
        bool typed_active = true;
        int64_t boxed_rows = 0;
        for (const Value& row : src.partition(p)) {
          DIABLO_RETURN_IF_ERROR(ApplyChain(
              chain, 0, row, &tallies[p],
              [&](const Value& v) -> Status {
                if (typed_active) {
                  if (fold.Add(v)) return Status::OK();
                  if (!fold.empty()) partials[p] = fold.Result();
                  typed_active = false;
                }
                ++boxed_rows;
                if (!partials[p].has_value()) {
                  partials[p] = v;
                } else {
                  DIABLO_ASSIGN_OR_RETURN(*partials[p], fn(*partials[p], v));
                }
                return Status::OK();
              }));
        }
        if (typed_active) {
          if (fold.rows() > 0) tallies[p].columnar_batches += 1;
          if (!fold.empty()) partials[p] = fold.Result();
        } else {
          tallies[p].columnar_rows_fallback += boxed_rows;
        }
        return Status::OK();
      },
      &rec, &reduce_slots);
  if (!st.ok()) return st;
  StageStats stats{label, /*wide=*/false, RowCounts(src), {}, 0};
  stats.fused_ops = static_cast<int64_t>(chain.size());
  for (const ChainTally& t : tallies) t.MergeInto(&stats);
  FinishStage(std::move(stats), rec);
  std::optional<Value> acc;
  for (auto& part : partials) {
    if (!part.has_value()) continue;
    if (!acc.has_value()) {
      acc = std::move(part);
    } else {
      DIABLO_ASSIGN_OR_RETURN(*acc, fn(*acc, *part));
    }
  }
  return acc;
}

StatusOr<ValueVec> Engine::Collect(const Dataset& in) {
  DIABLO_ASSIGN_OR_RETURN(Dataset src, Force(in));
  ValueVec out;
  out.reserve(static_cast<size_t>(src.TotalRows()));
  for (const auto& part : src.partitions()) {
    for (const Value& v : part) out.push_back(v);
  }
  return out;
}

StatusOr<Value> Engine::First(const Dataset& in) {
  DIABLO_ASSIGN_OR_RETURN(Dataset src, Force(in));
  for (const auto& part : src.partitions()) {
    if (!part.empty()) return part[0];
  }
  return Status::RuntimeError("First() on an empty dataset");
}

StatusOr<int64_t> Engine::Count(const Dataset& in) {
  ScopedSpan stage_span(trace(), SpanKind::kStage, "count");
  DIABLO_ASSIGN_OR_RETURN(Dataset src, Force(in));
  StageStats count_stats{"count", /*wide=*/false, RowCounts(src), {}, 0};
  count_stats.partition_rows = RowCounts(src);
  FinishStage(std::move(count_stats), StageRecovery());
  return src.TotalRows();
}

}  // namespace diablo::runtime
