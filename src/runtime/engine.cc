#include "runtime/engine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/strings.h"
#include "runtime/serialize.h"

namespace diablo::runtime {

namespace {

/// Stable ordered map used to give wide-operator outputs a deterministic
/// per-partition order regardless of hashing and threading.
using OrderedGroups = std::map<Value, ValueVec>;

std::vector<int64_t> RowCounts(const std::vector<ValueVec>& parts) {
  std::vector<int64_t> counts;
  counts.reserve(parts.size());
  for (const auto& p : parts) counts.push_back(static_cast<int64_t>(p.size()));
  return counts;
}

std::vector<int64_t> RowCounts(const Dataset& ds) {
  return RowCounts(ds.partitions());
}

}  // namespace

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  if (config_.num_partitions < 1) config_.num_partitions = 1;
  if (config_.host_threads < 1) config_.host_threads = 1;
}

Dataset Engine::Parallelize(ValueVec rows) const {
  return Parallelize(std::move(rows), config_.num_partitions);
}

Dataset Engine::Parallelize(ValueVec rows, int num_partitions) const {
  if (num_partitions < 1) num_partitions = 1;
  std::vector<ValueVec> parts(num_partitions);
  const size_t n = rows.size();
  size_t begin = 0;
  for (int p = 0; p < num_partitions; ++p) {
    size_t end = n * (p + 1) / num_partitions;
    parts[p].reserve(end - begin);
    for (size_t i = begin; i < end; ++i) parts[p].push_back(std::move(rows[i]));
    begin = end;
  }
  return Dataset(std::move(parts));
}

Dataset Engine::Range(int64_t lo, int64_t hi) const {
  ValueVec rows;
  if (hi >= lo) {
    rows.reserve(static_cast<size_t>(hi - lo + 1));
    for (int64_t i = lo; i <= hi; ++i) rows.push_back(Value::MakeInt(i));
  }
  return Parallelize(std::move(rows));
}

Status Engine::RunPerPartition(int n,
                               const std::function<Status(int)>& fn) const {
  if (n <= 0) return Status::OK();
  const int threads = std::min(config_.host_threads, n);
  if (threads <= 1) {
    for (int i = 0; i < n; ++i) DIABLO_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }
  std::atomic<int> next{0};
  std::mutex mu;
  Status first_error;
  auto worker = [&] {
    for (;;) {
      int i = next.fetch_add(1);
      if (i >= n) return;
      Status st = fn(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return first_error;
}

StatusOr<Dataset> Engine::Map(const Dataset& in, const MapFn& fn,
                              const std::string& label) {
  std::vector<ValueVec> out(in.num_partitions());
  Status st = RunPerPartition(in.num_partitions(), [&](int p) -> Status {
    const ValueVec& rows = in.partition(p);
    out[p].reserve(rows.size());
    for (const Value& row : rows) {
      DIABLO_ASSIGN_OR_RETURN(Value v, fn(row));
      out[p].push_back(std::move(v));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  metrics_.AddStage({label, /*wide=*/false, RowCounts(in), {}, 0});
  return Dataset(std::move(out));
}

StatusOr<Dataset> Engine::Filter(const Dataset& in, const PredFn& pred,
                                 const std::string& label) {
  std::vector<ValueVec> out(in.num_partitions());
  Status st = RunPerPartition(in.num_partitions(), [&](int p) -> Status {
    for (const Value& row : in.partition(p)) {
      DIABLO_ASSIGN_OR_RETURN(bool keep, pred(row));
      if (keep) out[p].push_back(row);
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  metrics_.AddStage({label, /*wide=*/false, RowCounts(in), {}, 0});
  return Dataset(std::move(out));
}

StatusOr<Dataset> Engine::FlatMap(const Dataset& in, const FlatMapFn& fn,
                                  const std::string& label) {
  std::vector<ValueVec> out(in.num_partitions());
  Status st = RunPerPartition(in.num_partitions(), [&](int p) -> Status {
    for (const Value& row : in.partition(p)) {
      DIABLO_ASSIGN_OR_RETURN(ValueVec vs, fn(row));
      for (Value& v : vs) out[p].push_back(std::move(v));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  metrics_.AddStage({label, /*wide=*/false, RowCounts(in), {}, 0});
  return Dataset(std::move(out));
}

StatusOr<const Value*> Engine::RowKey(const Value& row) {
  if (!row.is_tuple() || row.tuple().size() != 2) {
    return Status::RuntimeError(
        StrCat("keyed operator applied to non-pair row: ", row.ToString()));
  }
  return &row.tuple()[0];
}

StatusOr<std::vector<ValueVec>> Engine::Shuffle(const Dataset& in,
                                                int64_t* shuffle_bytes) const {
  const int out_parts = config_.num_partitions;
  // buckets[src][dst]
  std::vector<std::vector<ValueVec>> buckets(
      in.num_partitions(), std::vector<ValueVec>(out_parts));
  std::vector<int64_t> moved_bytes(in.num_partitions(), 0);
  const bool serialize = config_.serialize_shuffles;
  Status st = RunPerPartition(in.num_partitions(), [&](int p) -> Status {
    for (const Value& row : in.partition(p)) {
      DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(row));
      int dst = static_cast<int>(key->Hash() % static_cast<size_t>(out_parts));
      // Rows that stay on the same simulated node are still accounted:
      // with many workers almost every row crosses the network, so we
      // charge all of them (Spark's shuffle write does the same).
      if (serialize) {
        // Ship the encoded bytes, exactly as a real shuffle would.
        std::string wire = Serialize(row);
        moved_bytes[p] += static_cast<int64_t>(wire.size());
        DIABLO_ASSIGN_OR_RETURN(Value decoded, Deserialize(wire));
        buckets[p][dst].push_back(std::move(decoded));
      } else {
        moved_bytes[p] += row.SerializedBytes();
        buckets[p][dst].push_back(row);
      }
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  if (shuffle_bytes != nullptr) {
    *shuffle_bytes = 0;
    for (int64_t b : moved_bytes) *shuffle_bytes += b;
  }
  std::vector<ValueVec> out(out_parts);
  for (int dst = 0; dst < out_parts; ++dst) {
    size_t total = 0;
    for (int src = 0; src < in.num_partitions(); ++src) {
      total += buckets[src][dst].size();
    }
    out[dst].reserve(total);
    for (int src = 0; src < in.num_partitions(); ++src) {
      for (Value& v : buckets[src][dst]) out[dst].push_back(std::move(v));
    }
  }
  return out;
}

StatusOr<Dataset> Engine::GroupByKey(const Dataset& in,
                                     const std::string& label) {
  int64_t bytes = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> shuffled, Shuffle(in, &bytes));
  std::vector<ValueVec> out(shuffled.size());
  Status st = RunPerPartition(
      static_cast<int>(shuffled.size()), [&](int p) -> Status {
        OrderedGroups groups;
        for (Value& row : shuffled[p]) {
          const ValueVec& kv = row.tuple();
          groups[kv[0]].push_back(kv[1]);
        }
        out[p].reserve(groups.size());
        for (auto& [key, vals] : groups) {
          out[p].push_back(
              Value::MakePair(key, Value::MakeBag(std::move(vals))));
        }
        return Status::OK();
      });
  if (!st.ok()) return st;
  metrics_.AddStage(
      {label, /*wide=*/true, RowCounts(in), RowCounts(shuffled), bytes});
  return Dataset(std::move(out));
}

StatusOr<Dataset> Engine::ReduceByKey(const Dataset& in, const ReduceFn& fn,
                                      const std::string& label) {
  // Map-side combine (like Spark): fold each input partition first so the
  // shuffle only moves one pair per (partition, key).
  std::vector<ValueVec> combined(in.num_partitions());
  Status st = RunPerPartition(in.num_partitions(), [&](int p) -> Status {
    OrderedGroups acc;
    for (const Value& row : in.partition(p)) {
      DIABLO_ASSIGN_OR_RETURN(const Value* key, RowKey(row));
      auto it = acc.find(*key);
      if (it == acc.end()) {
        acc.emplace(*key, ValueVec{row.tuple()[1]});
      } else {
        DIABLO_ASSIGN_OR_RETURN(it->second[0],
                                fn(it->second[0], row.tuple()[1]));
      }
    }
    combined[p].reserve(acc.size());
    for (auto& [key, vals] : acc) {
      combined[p].push_back(Value::MakePair(key, std::move(vals[0])));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;

  Dataset combined_ds(std::move(combined));
  int64_t bytes = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> shuffled,
                          Shuffle(combined_ds, &bytes));
  std::vector<ValueVec> out(shuffled.size());
  st = RunPerPartition(static_cast<int>(shuffled.size()), [&](int p) -> Status {
    OrderedGroups acc;
    for (Value& row : shuffled[p]) {
      const ValueVec& kv = row.tuple();
      auto it = acc.find(kv[0]);
      if (it == acc.end()) {
        acc.emplace(kv[0], ValueVec{kv[1]});
      } else {
        DIABLO_ASSIGN_OR_RETURN(it->second[0], fn(it->second[0], kv[1]));
      }
    }
    out[p].reserve(acc.size());
    for (auto& [key, vals] : acc) {
      out[p].push_back(Value::MakePair(key, std::move(vals[0])));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  metrics_.AddStage(
      {label, /*wide=*/true, RowCounts(in), RowCounts(shuffled), bytes});
  return Dataset(std::move(out));
}

StatusOr<Dataset> Engine::ReduceByKey(const Dataset& in, BinOp op,
                                      const std::string& label) {
  return ReduceByKey(
      in,
      [op](const Value& a, const Value& b) { return EvalBinOp(op, a, b); },
      label);
}

StatusOr<Dataset> Engine::Join(const Dataset& left, const Dataset& right,
                               const std::string& label) {
  int64_t bytes_l = 0, bytes_r = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> ls, Shuffle(left, &bytes_l));
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> rs, Shuffle(right, &bytes_r));
  std::vector<ValueVec> out(ls.size());
  std::vector<int64_t> reduce_work(ls.size(), 0);
  Status st = RunPerPartition(static_cast<int>(ls.size()), [&](int p) -> Status {
    OrderedGroups build;
    for (Value& row : ls[p]) {
      const ValueVec& kv = row.tuple();
      build[kv[0]].push_back(kv[1]);
    }
    reduce_work[p] = static_cast<int64_t>(ls[p].size());
    for (Value& row : rs[p]) {
      const ValueVec& kv = row.tuple();
      reduce_work[p] += 1;
      auto it = build.find(kv[0]);
      if (it == build.end()) continue;
      for (const Value& lv : it->second) {
        out[p].push_back(
            Value::MakePair(kv[0], Value::MakePair(lv, kv[1])));
        reduce_work[p] += 1;
      }
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  std::vector<int64_t> map_work = RowCounts(left);
  for (int64_t c : RowCounts(right)) map_work.push_back(c);
  metrics_.AddStage(
      {label, /*wide=*/true, map_work, reduce_work, bytes_l + bytes_r});
  return Dataset(std::move(out));
}

StatusOr<Dataset> Engine::CoGroup(const Dataset& left, const Dataset& right,
                                  const std::string& label) {
  int64_t bytes_l = 0, bytes_r = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> ls, Shuffle(left, &bytes_l));
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> rs, Shuffle(right, &bytes_r));
  std::vector<ValueVec> out(ls.size());
  std::vector<int64_t> reduce_work(ls.size(), 0);
  Status st = RunPerPartition(static_cast<int>(ls.size()), [&](int p) -> Status {
    std::map<Value, std::pair<ValueVec, ValueVec>> groups;
    for (Value& row : ls[p]) {
      const ValueVec& kv = row.tuple();
      groups[kv[0]].first.push_back(kv[1]);
    }
    for (Value& row : rs[p]) {
      const ValueVec& kv = row.tuple();
      groups[kv[0]].second.push_back(kv[1]);
    }
    reduce_work[p] =
        static_cast<int64_t>(ls[p].size()) + static_cast<int64_t>(rs[p].size());
    out[p].reserve(groups.size());
    for (auto& [key, sides] : groups) {
      out[p].push_back(Value::MakePair(
          key, Value::MakePair(Value::MakeBag(std::move(sides.first)),
                               Value::MakeBag(std::move(sides.second)))));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  std::vector<int64_t> map_work = RowCounts(left);
  for (int64_t c : RowCounts(right)) map_work.push_back(c);
  metrics_.AddStage(
      {label, /*wide=*/true, map_work, reduce_work, bytes_l + bytes_r});
  return Dataset(std::move(out));
}

Dataset Engine::Union(const Dataset& a, const Dataset& b) {
  const int n = std::max(a.num_partitions(), b.num_partitions());
  std::vector<ValueVec> out(n);
  for (int p = 0; p < a.num_partitions(); ++p) {
    for (const Value& v : a.partition(p)) out[p].push_back(v);
  }
  for (int p = 0; p < b.num_partitions(); ++p) {
    for (const Value& v : b.partition(p)) out[p].push_back(v);
  }
  metrics_.AddStage({"union", /*wide=*/false, RowCounts(out), {}, 0});
  return Dataset(std::move(out));
}

StatusOr<Dataset> Engine::Distinct(const Dataset& in,
                                   const std::string& label) {
  // Key each row by itself, shuffle, dedup per partition.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keyed,
      Map(in, [](const Value& v) -> StatusOr<Value> {
        return Value::MakePair(v, Value::MakeUnit());
      }, label + ".key"));
  int64_t bytes = 0;
  DIABLO_ASSIGN_OR_RETURN(std::vector<ValueVec> shuffled,
                          Shuffle(keyed, &bytes));
  std::vector<ValueVec> out(shuffled.size());
  Status st = RunPerPartition(
      static_cast<int>(shuffled.size()), [&](int p) -> Status {
        std::map<Value, bool> seen;
        for (Value& row : shuffled[p]) seen.emplace(row.tuple()[0], true);
        out[p].reserve(seen.size());
        for (auto& [v, unused] : seen) out[p].push_back(v);
        return Status::OK();
      });
  if (!st.ok()) return st;
  metrics_.AddStage(
      {label, /*wide=*/true, RowCounts(in), RowCounts(shuffled), bytes});
  return Dataset(std::move(out));
}

StatusOr<std::optional<Value>> Engine::Reduce(const Dataset& in,
                                              const ReduceFn& fn,
                                              const std::string& label) {
  // Per-partition partial reduce, then combine partials on the driver.
  std::vector<std::optional<Value>> partials(in.num_partitions());
  Status st = RunPerPartition(in.num_partitions(), [&](int p) -> Status {
    for (const Value& row : in.partition(p)) {
      if (!partials[p].has_value()) {
        partials[p] = row;
      } else {
        DIABLO_ASSIGN_OR_RETURN(*partials[p], fn(*partials[p], row));
      }
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  metrics_.AddStage({label, /*wide=*/false, RowCounts(in), {}, 0});
  std::optional<Value> acc;
  for (auto& part : partials) {
    if (!part.has_value()) continue;
    if (!acc.has_value()) {
      acc = std::move(part);
    } else {
      DIABLO_ASSIGN_OR_RETURN(*acc, fn(*acc, *part));
    }
  }
  return acc;
}

ValueVec Engine::Collect(const Dataset& in) const {
  ValueVec out;
  out.reserve(static_cast<size_t>(in.TotalRows()));
  for (const auto& part : in.partitions()) {
    for (const Value& v : part) out.push_back(v);
  }
  return out;
}

StatusOr<Value> Engine::First(const Dataset& in) const {
  for (const auto& part : in.partitions()) {
    if (!part.empty()) return part[0];
  }
  return Status::RuntimeError("First() on an empty dataset");
}

int64_t Engine::Count(const Dataset& in) {
  metrics_.AddStage({"count", /*wide=*/false, RowCounts(in), {}, 0});
  return in.TotalRows();
}

}  // namespace diablo::runtime
