#ifndef DIABLO_RUNTIME_OPERATORS_H_
#define DIABLO_RUNTIME_OPERATORS_H_

#include <string>

#include "common/status.h"
#include "runtime/value.h"

namespace diablo::runtime {

/// Binary operators of the loop language and of comprehension expressions.
/// kMin/kMax/kAnd/kOr/kAdd/kMul are the commutative monoids accepted on the
/// left of an incremental update `d op= e`.
enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kMin, kMax,
  /// argmin over (score, payload...) tuples: keeps the operand with the
  /// smaller first component (left-biased on ties). Used for KMeans-style
  /// nearest-centroid reductions, mirroring the paper's ArgMin monoid.
  kArgmin,
};

enum class UnOp { kNeg, kNot };

/// The operator's surface syntax ("+", "==", "min", ...).
const char* BinOpName(BinOp op);
const char* UnOpName(UnOp op);

/// True for operators that form a commutative monoid over their operand
/// type, i.e. the ⊕ allowed in incremental updates (Section 3.2).
bool IsCommutativeMonoid(BinOp op);

/// The identity element of a commutative monoid operator, used when a
/// reduction `⊕/v` is applied to an empty bag. Numeric identities are
/// produced in the kind of `sample` (int or double).
Value MonoidIdentity(BinOp op, const Value& sample);

/// Applies a binary operator with the language's coercion rules:
/// int⋆int → int, any double operand widens to double; comparison works on
/// numerics, strings and booleans; && / || require booleans. Errors on a
/// kind mismatch or division by zero (integer case).
StatusOr<Value> EvalBinOp(BinOp op, const Value& a, const Value& b);

/// Applies a unary operator (numeric negation, boolean not).
StatusOr<Value> EvalUnOp(UnOp op, const Value& v);

/// Reduces all elements of `bag` with the commutative operator `op`,
/// returning the monoid identity for an empty bag. `sample` determines the
/// numeric kind of the identity (pass any element when available).
StatusOr<Value> ReduceBag(BinOp op, const ValueVec& elems);

/// Multiset equality of two bags: same elements with the same
/// multiplicities, irrespective of order. This is the correct equality for
/// comprehension results, whose element order is not specified.
bool BagEquals(const Value& a, const Value& b);

/// Multiset equality with numeric tolerance: doubles within `eps` compare
/// equal (elements matched greedily on sorted order). For floating-point
/// programs where the parallel reduction order differs from the sequential
/// one.
bool BagAlmostEquals(const Value& a, const Value& b, double eps);

/// Deep approximate equality on arbitrary values (doubles within eps,
/// bags compared as sorted multisets).
bool AlmostEquals(const Value& a, const Value& b, double eps);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_OPERATORS_H_
