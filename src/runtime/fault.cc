#include "runtime/fault.h"

#include <utility>

namespace diablo::runtime {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

enum Stream : uint64_t {
  kTaskFail = 1,
  kStraggler = 2,
  kCorruptRow = 3,
  kCorruptByte = 4,
};

}  // namespace

bool FaultConfig::enabled() const {
  return task_failure_rate > 0 || straggler_rate > 0 ||
         corrupt_shuffle_rate > 0 || !kill_tasks.empty() ||
         !lose_partitions.empty() || retain_lineage;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(std::move(config)) {}

double FaultInjector::Uniform(uint64_t stream, uint64_t a, uint64_t b,
                              uint64_t c) const {
  uint64_t h = Mix(config_.seed ^ (stream * 0xd6e8feb86659fd93ull));
  h = Mix(h ^ a);
  h = Mix(h ^ b);
  h = Mix(h ^ c);
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::TaskAttemptFails(int stage, int partition,
                                     int attempt) const {
  if (attempt == 0) {
    for (const KillTask& k : config_.kill_tasks) {
      if (k.stage == stage && k.partition == partition) return true;
    }
  }
  return config_.task_failure_rate > 0 &&
         Uniform(kTaskFail, static_cast<uint64_t>(stage),
                 static_cast<uint64_t>(partition),
                 static_cast<uint64_t>(attempt)) < config_.task_failure_rate;
}

double FaultInjector::StragglerMultiplier(int stage, int partition,
                                          int attempt) const {
  if (config_.straggler_rate <= 0) return 1.0;
  bool straggles =
      Uniform(kStraggler, static_cast<uint64_t>(stage),
              static_cast<uint64_t>(partition),
              static_cast<uint64_t>(attempt)) < config_.straggler_rate;
  return straggles ? config_.straggler_multiplier : 1.0;
}

bool FaultInjector::CorruptShuffleRow(int stage, int partition, int attempt,
                                      int64_t row) const {
  return config_.corrupt_shuffle_rate > 0 &&
         Uniform(kCorruptRow, static_cast<uint64_t>(stage),
                 static_cast<uint64_t>(partition),
                 (static_cast<uint64_t>(attempt) << 40) ^
                     static_cast<uint64_t>(row)) <
             config_.corrupt_shuffle_rate;
}

size_t FaultInjector::CorruptByteIndex(int stage, int partition, int64_t row,
                                       size_t size) const {
  if (size == 0) return 0;
  uint64_t h = Mix(config_.seed ^ (kCorruptByte * 0xd6e8feb86659fd93ull));
  h = Mix(h ^ static_cast<uint64_t>(stage));
  h = Mix(h ^ static_cast<uint64_t>(partition));
  h = Mix(h ^ static_cast<uint64_t>(row));
  return static_cast<size_t>(h % size);
}

std::vector<int> FaultInjector::LostPartitions(int stage, int input_index,
                                               int num_partitions) const {
  std::vector<int> lost;
  for (const LosePartition& l : config_.lose_partitions) {
    if (l.stage == stage && l.input_index == input_index &&
        l.partition >= 0 && l.partition < num_partitions) {
      lost.push_back(l.partition);
    }
  }
  return lost;
}

}  // namespace diablo::runtime
