#ifndef DIABLO_RUNTIME_PROFILE_H_
#define DIABLO_RUNTIME_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

/// Prior-run profile ingestion (`--profile-in`): the feedback half of the
/// adaptive-execution loop (DESIGN.md §17). A profile JSON written by
/// `diablo_run --profile-out` (runtime/trace.h WriteProfileJson) is
/// parsed back into ProfileData, and plan-time cost decisions — broadcast
/// vs. hash join, partition count — consult the *measured* stage facts of
/// the prior run instead of static estimates alone.
///
/// Matching key: a plan node finds its prior-run stage by source
/// provenance (file:line:column of the originating loop statement) plus
/// the operator-kind fragment of the stage label ("join[M]",
/// "reduceByKey", ...). A stale profile — renamed program, shifted line
/// numbers, changed operators — simply fails every lookup and the caller
/// falls back to its static rule; a mismatched profile must never turn
/// into an error (tested in tests/skew_test.cc).

namespace diablo::runtime {

/// Minimal JSON value: exactly what the schema-stable profile export
/// needs, tolerant of unknown keys (schema growth must not break old
/// readers). No dependency beyond the standard library.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  /// Member lookup; null value when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Numeric member as int64 (truncated), or `fallback`.
  int64_t Int(const std::string& key, int64_t fallback = 0) const;
  /// String member, or "" when absent.
  std::string Str(const std::string& key) const;
};

/// Strict recursive-descent JSON parser (objects, arrays, strings with
/// \uXXXX escapes, numbers, true/false/null). Errors carry the byte
/// offset of the failure.
StatusOr<JsonValue> ParseJson(const std::string& text);

/// One prior-run stage, as re-read from the profile export.
struct ProfileStage {
  std::string label;
  std::string file;
  int line = 0;
  int column = 0;
  bool wide = false;
  int64_t map_work = 0;
  int64_t reduce_work = 0;
  int64_t shuffle_bytes = 0;
  int64_t hash_agg_keys = 0;
  /// Output rows per partition (skew histogram of the prior run).
  std::vector<int64_t> partition_rows;
};

/// A parsed prior-run profile.
class ProfileData {
 public:
  /// Parses the JSON text of a `--profile-out` export. Any
  /// schema_version >= 1 is accepted (later versions only add keys).
  /// Malformed JSON or a missing "stages" array is an error; individual
  /// stages missing optional keys parse as zeros.
  static StatusOr<ProfileData> Parse(const std::string& json_text);

  const std::vector<ProfileStage>& stages() const { return stages_; }
  const std::string& program() const { return program_; }

  /// The prior-run stage matching provenance (file:line:column) whose
  /// label contains `label_fragment` — the profile-feedback matching
  /// key. When the statement executed more than once (a While body),
  /// returns the stage with the most shuffled bytes: the conservative
  /// representative for cost comparisons. Null when nothing matches
  /// (stale profile => caller keeps its static choice).
  const ProfileStage* FindStage(const std::string& file, int line, int column,
                                const std::string& label_fragment) const;

  /// Measured shuffle bytes for the matching stage, or -1 when the
  /// profile has no evidence for this plan node.
  int64_t ShuffleBytesFor(const std::string& file, int line, int column,
                          const std::string& label_fragment) const;

  /// Largest per-stage row count the prior run processed (map side) —
  /// the scale estimate behind the partition-count recommendation.
  int64_t MaxStageRows() const;

 private:
  std::string program_;
  std::vector<ProfileStage> stages_;
};

/// Partition count recommended for a re-run of the profiled program:
/// enough partitions that the biggest stage lands near
/// `target_rows_per_partition` rows each, clamped to [num_workers,
/// 8 * num_workers] so every simulated worker has at least one task and
/// scheduling overhead stays bounded. Deterministic; returns
/// `fallback_partitions` when the profile carries no row counts.
int RecommendPartitions(const ProfileData& profile, int num_workers,
                        int fallback_partitions,
                        int64_t target_rows_per_partition = 1 << 18);

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_PROFILE_H_
