#include "runtime/value.h"

#include <functional>
#include <sstream>

#include "common/strings.h"

namespace diablo::runtime {

namespace {

size_t HashCombine(size_t seed, size_t h) {
  // Boost-style combiner.
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

const Value* Value::FindField(const std::string& name) const {
  for (const auto& [fname, fval] : fields()) {
    if (fname == name) return &fval;
  }
  return nullptr;
}

bool Value::operator==(const Value& other) const {
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  switch (kind()) {
    case Kind::kUnit:
      return 0;
    case Kind::kBool:
      return (AsBool() == other.AsBool()) ? 0 : (AsBool() ? 1 : -1);
    case Kind::kInt: {
      int64_t a = AsInt(), b = other.AsInt();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case Kind::kDouble: {
      double a = AsDouble(), b = other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case Kind::kString:
      return AsString().compare(other.AsString());
    case Kind::kTuple:
    case Kind::kBag: {
      const ValueVec& a = is_tuple() ? tuple() : bag();
      const ValueVec& b = other.is_tuple() ? other.tuple() : other.bag();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
    case Kind::kRecord: {
      const FieldVec& a = fields();
      const FieldVec& b = other.fields();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].first.compare(b[i].first);
        if (c != 0) return c;
        c = a[i].second.Compare(b[i].second);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind()) * 0x9e3779b9u;
  switch (kind()) {
    case Kind::kUnit:
      return seed;
    case Kind::kBool:
      return HashCombine(seed, AsBool() ? 1u : 0u);
    case Kind::kInt:
      return HashCombine(seed, std::hash<int64_t>()(AsInt()));
    case Kind::kDouble:
      return HashCombine(seed, std::hash<double>()(AsDouble()));
    case Kind::kString:
      return HashCombine(seed, std::hash<std::string>()(AsString()));
    case Kind::kTuple:
    case Kind::kBag: {
      const ValueVec& elems = is_tuple() ? tuple() : bag();
      for (const Value& v : elems) seed = HashCombine(seed, v.Hash());
      return seed;
    }
    case Kind::kRecord: {
      for (const auto& [name, v] : fields()) {
        seed = HashCombine(seed, std::hash<std::string>()(name));
        seed = HashCombine(seed, v.Hash());
      }
      return seed;
    }
  }
  return seed;
}

int64_t Value::SerializedBytes() const {
  switch (kind()) {
    case Kind::kUnit:
      return 1;
    case Kind::kBool:
      return 1;
    case Kind::kInt:
    case Kind::kDouble:
      return 8;
    case Kind::kString:
      return 4 + static_cast<int64_t>(AsString().size());
    case Kind::kTuple:
    case Kind::kBag: {
      const ValueVec& elems = is_tuple() ? tuple() : bag();
      int64_t n = 4;
      for (const Value& v : elems) n += v.SerializedBytes();
      return n;
    }
    case Kind::kRecord: {
      int64_t n = 4;
      for (const auto& [name, v] : fields()) {
        n += 4 + static_cast<int64_t>(name.size()) + v.SerializedBytes();
      }
      return n;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kUnit:
      os << "()";
      break;
    case Kind::kBool:
      os << (AsBool() ? "true" : "false");
      break;
    case Kind::kInt:
      os << AsInt();
      break;
    case Kind::kDouble:
      os << AsDouble();
      break;
    case Kind::kString:
      os << '"' << AsString() << '"';
      break;
    case Kind::kTuple: {
      os << '(';
      for (size_t i = 0; i < tuple().size(); ++i) {
        if (i != 0) os << ',';
        os << tuple()[i].ToString();
      }
      os << ')';
      break;
    }
    case Kind::kRecord: {
      os << '<';
      for (size_t i = 0; i < fields().size(); ++i) {
        if (i != 0) os << ',';
        os << fields()[i].first << '=' << fields()[i].second.ToString();
      }
      os << '>';
      break;
    }
    case Kind::kBag: {
      os << '{';
      for (size_t i = 0; i < bag().size(); ++i) {
        if (i != 0) os << ',';
        os << bag()[i].ToString();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

const char* KindName(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kUnit:
      return "unit";
    case Value::Kind::kBool:
      return "bool";
    case Value::Kind::kInt:
      return "int";
    case Value::Kind::kDouble:
      return "double";
    case Value::Kind::kString:
      return "string";
    case Value::Kind::kTuple:
      return "tuple";
    case Value::Kind::kRecord:
      return "record";
    case Value::Kind::kBag:
      return "bag";
  }
  return "unknown";
}

}  // namespace diablo::runtime
