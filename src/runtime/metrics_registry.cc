#include "runtime/metrics_registry.h"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>

namespace diablo::runtime {

namespace {

std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Canonical `{k="v",k2="v2"}` form; empty string for no labels. Used
/// both as the series map key (deterministic ordering) and verbatim in
/// the Prometheus output.
std::string LabelString(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Numbers render as integers whenever exactly representable — metric
/// values are overwhelmingly counts and byte sizes, and "123" beats
/// "123.000000" in goldens and dashboards alike.
std::string FmtValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FmtBucketBound(double bound) { return FmtValue(bound); }

void WriteLabelsJson(const MetricLabels& labels, std::ostream& os) {
  os << "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << EscapeJsonString(labels[i].first) << "\":\""
       << EscapeJsonString(labels[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

const std::vector<double>& MetricsRegistry::HistogramBuckets() {
  static const std::vector<double> kBuckets = {1,   1e1, 1e2, 1e3,  1e4,  1e5,
                                               1e6, 1e7, 1e8, 1e9,  1e10, 1e11,
                                               1e12};
  return kBuckets;
}

int64_t MetricsRegistry::ProcessPeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
}

MetricsRegistry::Series* MetricsRegistry::Upsert(const std::string& name,
                                                 Kind kind,
                                                 const MetricLabels& labels) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) it->second.kind = kind;
  if (it->second.kind != kind) return nullptr;
  Series& series = it->second.series[LabelString(labels)];
  if (series.labels.empty() && !labels.empty()) series.labels = labels;
  if (kind == Kind::kHistogram && series.bucket_counts.empty()) {
    series.bucket_counts.assign(HistogramBuckets().size() + 1, 0);
  }
  return &series;
}

const MetricsRegistry::Series* MetricsRegistry::Find(
    const std::string& name, Kind kind, const MetricLabels& labels) const {
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != kind) return nullptr;
  auto sit = it->second.series.find(LabelString(labels));
  return sit == it->second.series.end() ? nullptr : &sit->second;
}

void MetricsRegistry::CounterAdd(const std::string& name, int64_t delta,
                                 const MetricLabels& labels) {
  if (delta < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Upsert(name, Kind::kCounter, labels);
  if (series != nullptr) series->counter += delta;
}

void MetricsRegistry::GaugeSet(const std::string& name, double value,
                               const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Upsert(name, Kind::kGauge, labels);
  if (series != nullptr) series->gauge = value;
}

void MetricsRegistry::GaugeMax(const std::string& name, double value,
                               const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Upsert(name, Kind::kGauge, labels);
  if (series != nullptr && value > series->gauge) series->gauge = value;
}

void MetricsRegistry::HistogramObserve(const std::string& name, double value,
                                       const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Upsert(name, Kind::kHistogram, labels);
  if (series == nullptr) return;
  const auto& buckets = HistogramBuckets();
  size_t i = 0;
  while (i < buckets.size() && value > buckets[i]) ++i;
  ++series->bucket_counts[i];
  series->hist_sum += value;
  ++series->hist_count;
}

int64_t MetricsRegistry::CounterValue(const std::string& name,
                                      const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = Find(name, Kind::kCounter, labels);
  return series != nullptr ? series->counter : 0;
}

double MetricsRegistry::GaugeValue(const std::string& name,
                                   const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = Find(name, Kind::kGauge, labels);
  return series != nullptr ? series->gauge : 0;
}

int64_t MetricsRegistry::HistogramCount(const std::string& name,
                                        const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = Find(name, Kind::kHistogram, labels);
  return series != nullptr ? series->hist_count : 0;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    os << "# TYPE " << name << " " << type << "\n";
    for (const auto& [label_str, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          os << name << label_str << " " << series.counter << "\n";
          break;
        case Kind::kGauge:
          os << name << label_str << " " << FmtValue(series.gauge) << "\n";
          break;
        case Kind::kHistogram: {
          // Cumulative bucket counts, then sum and count, with the
          // series labels merged into each le="" bucket label.
          const auto& buckets = HistogramBuckets();
          std::string prefix = "{";
          for (const auto& [k, v] : series.labels) {
            prefix += k + "=\"" + EscapeLabelValue(v) + "\",";
          }
          int64_t cumulative = 0;
          for (size_t i = 0; i <= buckets.size(); ++i) {
            cumulative += series.bucket_counts[i];
            const std::string le =
                i < buckets.size() ? FmtBucketBound(buckets[i]) : "+Inf";
            os << name << "_bucket" << prefix << "le=\"" << le << "\"} "
               << cumulative << "\n";
          }
          os << name << "_sum" << label_str << " " << FmtValue(series.hist_sum)
             << "\n";
          os << name << "_count" << label_str << " " << series.hist_count
             << "\n";
          break;
        }
      }
    }
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto write_kind = [&os, this](Kind kind, const char* key, bool* first_kind) {
    if (!*first_kind) os << ",";
    *first_kind = false;
    os << "\"" << key << "\":[";
    bool first = true;
    for (const auto& [name, family] : families_) {
      if (family.kind != kind) continue;
      for (const auto& [label_str, series] : family.series) {
        if (!first) os << ",";
        first = false;
        os << "\n{\"name\":\"" << EscapeJsonString(name) << "\",\"labels\":";
        WriteLabelsJson(series.labels, os);
        switch (kind) {
          case Kind::kCounter:
            os << ",\"value\":" << series.counter;
            break;
          case Kind::kGauge:
            os << ",\"value\":" << FmtValue(series.gauge);
            break;
          case Kind::kHistogram: {
            const auto& buckets = HistogramBuckets();
            os << ",\"buckets\":[";
            int64_t cumulative = 0;
            for (size_t i = 0; i <= buckets.size(); ++i) {
              cumulative += series.bucket_counts[i];
              if (i > 0) os << ",";
              os << "{\"le\":"
                 << (i < buckets.size()
                         ? FmtBucketBound(buckets[i])
                         : std::string("\"+Inf\""))
                 << ",\"count\":" << cumulative << "}";
            }
            os << "],\"sum\":" << FmtValue(series.hist_sum)
               << ",\"count\":" << series.hist_count;
            break;
          }
        }
        os << "}";
      }
    }
    os << "\n]";
  };
  os << "{";
  bool first_kind = true;
  write_kind(Kind::kCounter, "counters", &first_kind);
  write_kind(Kind::kGauge, "gauges", &first_kind);
  write_kind(Kind::kHistogram, "histograms", &first_kind);
  os << "}\n";
}

}  // namespace diablo::runtime
