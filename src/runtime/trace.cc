#include "runtime/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

namespace diablo::runtime {

namespace {

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Open spans keep dur_us at this sentinel until EndSpan fixes it.
constexpr double kOpenSentinel = -1.0;

thread_local int g_trace_worker = 0;

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-point microseconds: trace timestamps don't need more than
/// 0.001us and scientific notation confuses trace viewers.
std::string FmtUs(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteLocationJson(const std::string& file, int line, int column,
                       std::ostream& os) {
  if (line <= 0) {
    os << "null";
    return;
  }
  os << "{\"file\":\"" << EscapeJson(file.empty() ? "<program>" : file)
     << "\",\"line\":" << line << ",\"column\":" << column << "}";
}

std::string LocationSuffix(const std::string& file, int line, int column) {
  if (line <= 0) return "";
  std::ostringstream os;
  os << " [" << (file.empty() ? "<program>" : file) << ":" << line << ":"
     << column << "]";
  return os.str();
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// children[i] = ids of spans whose parent is i.
std::vector<std::vector<int64_t>> ChildIndex(
    const std::vector<TraceSpan>& spans) {
  std::vector<std::vector<int64_t>> children(spans.size());
  for (const auto& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<int64_t>(spans.size())) {
      children[static_cast<size_t>(s.parent)].push_back(s.id);
    }
  }
  return children;
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun:
      return "run";
    case SpanKind::kStatement:
      return "statement";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kWave:
      return "wave";
    case SpanKind::kTask:
      return "task";
    case SpanKind::kRecovery:
      return "recovery";
  }
  return "span";
}

TraceRecorder::TraceRecorder() : epoch_us_(SteadyNowUs()) {}

double TraceRecorder::NowUs() const { return SteadyNowUs() - epoch_us_; }

int64_t TraceRecorder::BeginSpan(SpanKind kind, std::string name) {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<int64_t>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.kind = kind;
  span.name = std::move(name);
  span.start_us = now;
  span.dur_us = kOpenSentinel;
  stack_.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::EndSpan(int64_t id) {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  // Close everything the stack still holds above (and including) `id`;
  // a mismatched End closes the abandoned children too, keeping
  // intervals properly nested.
  while (!stack_.empty()) {
    const int64_t top = stack_.back();
    stack_.pop_back();
    auto& span = spans_[static_cast<size_t>(top)];
    if (span.dur_us == kOpenSentinel) span.dur_us = now - span.start_us;
    if (top == id) return;
  }
  auto& span = spans_[static_cast<size_t>(id)];
  if (span.dur_us == kOpenSentinel) span.dur_us = now - span.start_us;
}

int64_t TraceRecorder::OpenSpan(SpanKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (spans_[static_cast<size_t>(*it)].kind == kind) return *it;
  }
  return -1;
}

void TraceRecorder::SetName(int64_t id, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].name = std::move(name);
}

void TraceRecorder::SetStageId(int64_t id, int stage_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].stage_id = stage_id;
}

void TraceRecorder::SetRows(int64_t id, int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].rows = rows;
}

void TraceRecorder::SetShuffleBytes(int64_t id, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].shuffle_bytes = bytes;
}

void TraceRecorder::SetMetricsIndex(int64_t id, int index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].metrics_index = index;
}

void TraceRecorder::SetLocation(int64_t id, std::string file, int line,
                                int column) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  auto& span = spans_[static_cast<size_t>(id)];
  span.src_file = std::move(file);
  span.src_line = line;
  span.src_column = column;
}

void TraceRecorder::AddTask(int64_t parent, double start_us, double dur_us,
                            int worker, int partition, int attempt,
                            int stage_id, int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<int64_t>(spans_.size());
  span.parent = parent;
  span.kind = SpanKind::kTask;
  span.name = "task";
  span.start_us = start_us;
  span.dur_us = dur_us;
  span.worker = worker;
  span.partition = partition;
  span.attempt = attempt;
  span.stage_id = stage_id;
  span.rows = rows;
  spans_.push_back(std::move(span));
}

int64_t TraceRecorder::AddRemoteSpan(int64_t parent, TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  span.id = static_cast<int64_t>(spans_.size());
  span.parent = parent;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out = spans_;
  for (auto& span : out) {
    if (span.dur_us == kOpenSentinel) span.dur_us = now - span.start_us;
  }
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  stack_.clear();
}

int CurrentTraceWorker() { return g_trace_worker; }

void SetCurrentTraceWorker(int worker) { g_trace_worker = worker; }

void WriteChromeTrace(const std::vector<TraceSpan>& spans, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Thread-name metadata: the driver timeline plus one row per worker
  // thread that ran a task in the coordinator process.
  std::vector<int> workers;
  // Process-lane metadata: one Chrome process group per worker PROCESS
  // (distributed runs). Single-process traces have no process > 0 spans
  // and emit no process metadata at all, keeping their bytes identical
  // to the pre-distributed format.
  std::vector<int> processes;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::kTask && s.worker > 0 && s.process == 0) {
      workers.push_back(s.worker);
    }
    if (s.process > 0) processes.push_back(s.process);
  }
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  std::sort(processes.begin(), processes.end());
  processes.erase(std::unique(processes.begin(), processes.end()),
                  processes.end());
  bool first = true;
  auto comma = [&first, &os]() {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  comma();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"driver\"}}";
  for (int w : workers) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << w
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << w
       << "\"}}";
  }
  if (!processes.empty()) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"coordinator\"}}";
    for (int p : processes) {
      comma();
      os << "{\"ph\":\"M\",\"pid\":" << p
         << ",\"tid\":0,\"name\":\"process_name\","
            "\"args\":{\"name\":\"worker process "
         << (p - 1) << "\"}}";
    }
  }
  for (const auto& s : spans) {
    comma();
    const int tid = s.kind == SpanKind::kTask ? s.worker : 0;
    os << "{\"ph\":\"X\",\"pid\":" << s.process << ",\"tid\":" << tid
       << ",\"name\":\""
       << EscapeJson(s.name) << "\",\"cat\":\"" << SpanKindName(s.kind)
       << "\",\"ts\":" << FmtUs(s.start_us) << ",\"dur\":" << FmtUs(s.dur_us)
       << ",\"args\":{\"span\":" << s.id << ",\"parent\":" << s.parent;
    if (s.stage_id >= 0) os << ",\"stage\":" << s.stage_id;
    if (s.partition >= 0) os << ",\"partition\":" << s.partition;
    if (s.kind == SpanKind::kTask) os << ",\"attempt\":" << s.attempt;
    if (s.rows >= 0) os << ",\"rows\":" << s.rows;
    if (s.shuffle_bytes >= 0) os << ",\"shuffle_bytes\":" << s.shuffle_bytes;
    if (s.src_line > 0) {
      os << ",\"location\":";
      WriteLocationJson(s.src_file, s.src_line, s.src_column, os);
    }
    os << "}}";
  }
  os << "\n]}\n";
}

TaskTimeStats AggregateTaskTimes(const std::vector<TraceSpan>& spans,
                                 int64_t stage_span_id) {
  TaskTimeStats stats;
  if (stage_span_id < 0 || stage_span_id >= static_cast<int64_t>(spans.size()))
    return stats;
  const auto children = ChildIndex(spans);
  std::vector<int64_t> work = {stage_span_id};
  std::vector<std::pair<double, int>> tasks;  // (dur_us, partition)
  while (!work.empty()) {
    const int64_t id = work.back();
    work.pop_back();
    const auto& span = spans[static_cast<size_t>(id)];
    if (span.kind == SpanKind::kTask) {
      tasks.emplace_back(span.dur_us, span.partition);
    }
    for (int64_t child : children[static_cast<size_t>(id)]) {
      work.push_back(child);
    }
  }
  if (tasks.empty()) return stats;
  std::vector<double> durs;
  durs.reserve(tasks.size());
  for (const auto& [dur, part] : tasks) {
    durs.push_back(dur);
    stats.total_us += dur;
  }
  std::sort(durs.begin(), durs.end());
  stats.count = static_cast<int64_t>(durs.size());
  stats.mean_us = stats.total_us / static_cast<double>(stats.count);
  stats.p50_us = Percentile(durs, 0.50);
  stats.p90_us = Percentile(durs, 0.90);
  stats.max_us = durs.back();
  stats.skew_ratio = stats.mean_us > 0 ? stats.max_us / stats.mean_us : 0;
  const double median = stats.p50_us;
  for (const auto& [dur, part] : tasks) {
    if (median > 0 && dur > 2 * median && part >= 0) {
      stats.straggler_partitions.push_back(part);
    }
  }
  std::sort(stats.straggler_partitions.begin(),
            stats.straggler_partitions.end());
  stats.straggler_partitions.erase(
      std::unique(stats.straggler_partitions.begin(),
                  stats.straggler_partitions.end()),
      stats.straggler_partitions.end());
  return stats;
}

namespace {

void WriteTaskStatsJson(const TaskTimeStats& t, std::ostream& os) {
  os << "{\"count\":" << t.count << ",\"total_us\":" << FmtDouble(t.total_us)
     << ",\"mean_us\":" << FmtDouble(t.mean_us)
     << ",\"p50_us\":" << FmtDouble(t.p50_us)
     << ",\"p90_us\":" << FmtDouble(t.p90_us)
     << ",\"max_us\":" << FmtDouble(t.max_us)
     << ",\"skew_ratio\":" << FmtDouble(t.skew_ratio) << ",\"stragglers\":[";
  for (size_t i = 0; i < t.straggler_partitions.size(); ++i) {
    if (i > 0) os << ",";
    os << t.straggler_partitions[i];
  }
  os << "]}";
}

void WriteIntArray(const std::vector<int64_t>& xs, std::ostream& os) {
  os << "[";
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) os << ",";
    os << xs[i];
  }
  os << "]";
}

}  // namespace

void WriteProfileJson(const Metrics& metrics, const ClusterModel& model,
                      const std::vector<TraceSpan>& spans,
                      const std::string& program, std::ostream& os) {
  // metrics_index -> stage span id.
  std::map<int, int64_t> stage_spans;
  double run_wall_us = 0;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::kStage && s.metrics_index >= 0) {
      stage_spans[s.metrics_index] = s.id;
    }
    if (s.kind == SpanKind::kRun) run_wall_us += s.dur_us;
  }
  os << "{\"schema_version\":4,\"program\":\"" << EscapeJson(program)
     << "\",\"tracing\":" << (spans.empty() ? "false" : "true")
     << ",\"run_wall_us\":" << FmtDouble(run_wall_us) << ",\"totals\":{"
     << "\"stages\":" << metrics.num_stages()
     << ",\"wide_stages\":" << metrics.num_wide_stages()
     << ",\"work\":" << metrics.total_work()
     << ",\"shuffle_bytes\":" << metrics.total_shuffle_bytes()
     << ",\"attempts\":" << metrics.total_attempts()
     << ",\"recomputed_partitions\":" << metrics.total_recomputed_partitions()
     << ",\"recovery_seconds\":" << FmtDouble(metrics.total_recovery_seconds())
     << ",\"fused_ops\":" << metrics.total_fused_ops()
     << ",\"rows_not_materialized\":" << metrics.total_rows_not_materialized()
     << ",\"bytes_not_materialized\":" << metrics.total_bytes_not_materialized()
     << ",\"hash_agg_rows\":" << metrics.total_hash_agg_rows()
     << ",\"hash_agg_keys\":" << metrics.total_hash_agg_keys()
     << ",\"pool_tasks\":" << metrics.total_pool_tasks()
     << ",\"columnar_batches\":" << metrics.total_columnar_batches()
     << ",\"columnar_rows_fallback\":"
     << metrics.total_columnar_rows_fallback()
     << ",\"salted_keys\":" << metrics.total_salted_keys()
     << ",\"salt_fanout\":" << metrics.total_salt_fanout()
     << ",\"cost_decisions\":" << metrics.total_cost_decisions()
     << ",\"dist_tasks\":" << metrics.total_dist_tasks()
     << ",\"dist_retries\":" << metrics.total_dist_retries()
     << ",\"dist_workers_lost\":" << metrics.total_dist_workers_lost()
     << ",\"peak_rss_bytes\":" << metrics.max_peak_rss_bytes()
     << ",\"accumulator_bytes_peak\":" << metrics.max_accumulator_bytes_peak()
     << ",\"simulated_seconds\":" << FmtDouble(metrics.SimulatedSeconds(model))
     << ",\"simulated_fault_free_seconds\":"
     << FmtDouble(metrics.SimulatedFaultFreeSeconds(model))
     << "},\"processes\":[";
  // One entry per process lane observed among task spans (0 =
  // coordinator; distributed runs add one per worker process).
  std::map<int, std::pair<int64_t, double>> proc_tasks;  // tasks, time
  std::map<int, double> proc_offset;
  for (const auto& s : spans) {
    if (s.kind != SpanKind::kTask) continue;
    auto& [count, time_us] = proc_tasks[s.process];
    ++count;
    time_us += s.dur_us;
    if (s.clock_offset_us != 0) proc_offset[s.process] = s.clock_offset_us;
  }
  {
    bool first_proc = true;
    for (const auto& [proc, stats] : proc_tasks) {
      os << (first_proc ? "" : ",") << "{\"process\":" << proc
         << ",\"tasks\":" << stats.first
         << ",\"task_time_us\":" << FmtDouble(stats.second)
         << ",\"clock_offset_us\":" << FmtDouble(proc_offset[proc]) << "}";
      first_proc = false;
    }
  }
  os << "],\"stages\":[";
  const auto& stages = metrics.stages();
  for (size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    int64_t map_total = 0, reduce_total = 0;
    for (int64_t w : s.map_work) map_total += w;
    for (int64_t w : s.reduce_work) reduce_total += w;
    os << (i == 0 ? "" : ",") << "\n{\"index\":" << i << ",\"label\":\""
       << EscapeJson(s.label) << "\",\"wide\":" << (s.wide ? "true" : "false")
       << ",\"location\":";
    WriteLocationJson(s.src_file, s.src_line, s.src_column, os);
    os << ",\"map_work\":" << map_total << ",\"reduce_work\":" << reduce_total
       << ",\"shuffle_bytes\":" << s.shuffle_bytes
       << ",\"attempts\":" << s.attempts
       << ",\"recomputed_partitions\":" << s.recomputed_partitions
       << ",\"recovery_seconds\":" << FmtDouble(s.recovery_seconds)
       << ",\"fused_ops\":" << s.fused_ops
       << ",\"rows_not_materialized\":" << s.rows_not_materialized
       << ",\"bytes_not_materialized\":" << s.bytes_not_materialized
       << ",\"hash_agg_rows\":" << s.hash_agg_rows
       << ",\"hash_agg_keys\":" << s.hash_agg_keys
       << ",\"pool_tasks\":" << s.pool_tasks
       << ",\"columnar_batches\":" << s.columnar_batches
       << ",\"columnar_rows_fallback\":" << s.columnar_rows_fallback
       << ",\"salted_keys\":" << s.salted_keys
       << ",\"salt_fanout\":" << s.salt_fanout
       << ",\"cost_decisions\":" << s.cost_decisions
       << ",\"peak_rss_bytes\":" << s.peak_rss_bytes
       << ",\"accumulator_bytes_peak\":" << s.accumulator_bytes_peak
       << ",\"partitions\":{\"rows\":";
    WriteIntArray(s.partition_rows, os);
    os << ",\"bytes\":";
    WriteIntArray(s.partition_bytes, os);
    os << "},\"tasks\":";
    auto it = stage_spans.find(static_cast<int>(i));
    if (it == stage_spans.end()) {
      os << "null";
    } else {
      WriteTaskStatsJson(AggregateTaskTimes(spans, it->second), os);
    }
    os << "}";
  }
  os << "\n]}\n";
}

void WriteExplainAnalyze(const Metrics& metrics, const ClusterModel& model,
                         const std::vector<TraceSpan>& spans,
                         std::ostream& os) {
  const auto& stages = metrics.stages();
  if (spans.empty()) {
    os << "explain-analyze: tracing was disabled; metrics report only\n"
       << metrics.Report();
    os << "simulated cluster seconds: "
       << FmtDouble(metrics.SimulatedSeconds(model)) << "\n";
    return;
  }
  double run_wall_us = 0;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::kRun) run_wall_us += s.dur_us;
  }
  os << "== explain-analyze ==\n"
     << "run: " << FmtDouble(run_wall_us / 1000.0) << " ms wall, "
     << metrics.num_stages() << " stages (" << metrics.num_wide_stages()
     << " wide), simulated " << FmtDouble(metrics.SimulatedSeconds(model))
     << " s";
  if (metrics.total_recovery_seconds() > 0) {
    os << " (incl. " << FmtDouble(metrics.total_recovery_seconds())
       << " s recovery)";
  }
  os << "\n";
  // Nearest enclosing statement span for every stage span.
  auto statement_of = [&spans](const TraceSpan& span) -> int64_t {
    int64_t p = span.parent;
    while (p >= 0) {
      const auto& anc = spans[static_cast<size_t>(p)];
      if (anc.kind == SpanKind::kStatement) return anc.id;
      p = anc.parent;
    }
    return -1;
  };
  std::map<int64_t, std::vector<const TraceSpan*>> by_statement;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::kStage) by_statement[statement_of(s)].push_back(&s);
  }
  auto print_stage = [&](const TraceSpan& span) {
    os << "  stage";
    if (span.stage_id >= 0) {
      os << " " << span.stage_id;
    }
    const StageStats* stats = nullptr;
    if (span.metrics_index >= 0 &&
        span.metrics_index < static_cast<int>(stages.size())) {
      stats = &stages[static_cast<size_t>(span.metrics_index)];
    }
    os << (stats != nullptr && stats->wide ? " [wide]  " : " [narrow]") << " "
       << span.name
       << LocationSuffix(span.src_file, span.src_line, span.src_column)
       << "  (wall " << FmtDouble(span.dur_us / 1000.0) << " ms)\n";
    if (stats != nullptr) {
      int64_t map_total = 0, reduce_total = 0;
      for (int64_t w : stats->map_work) map_total += w;
      for (int64_t w : stats->reduce_work) reduce_total += w;
      os << "      map_work=" << map_total << " reduce_work=" << reduce_total
         << " shuffle_bytes=" << stats->shuffle_bytes
         << " attempts=" << stats->attempts;
      if (stats->recomputed_partitions > 0 || stats->recovery_seconds > 0) {
        os << " recomputed=" << stats->recomputed_partitions
           << " recovery_s=" << FmtDouble(stats->recovery_seconds);
      }
      if (stats->fused_ops > 0) os << " fused_ops=" << stats->fused_ops;
      if (stats->hash_agg_rows > 0) {
        os << " hash_agg_rows=" << stats->hash_agg_rows
           << " hash_agg_keys=" << stats->hash_agg_keys;
      }
      if (stats->pool_tasks > 0) os << " pool_tasks=" << stats->pool_tasks;
      if (stats->columnar_batches > 0 || stats->columnar_rows_fallback > 0) {
        os << " columnar_batches=" << stats->columnar_batches
           << " columnar_rows_fallback=" << stats->columnar_rows_fallback;
      }
      os << "\n";
    }
    const TaskTimeStats t = AggregateTaskTimes(spans, span.id);
    if (t.count > 0) {
      os << "      tasks: " << t.count << "  mean "
         << FmtDouble(t.mean_us / 1000.0) << " ms  p50 "
         << FmtDouble(t.p50_us / 1000.0) << " ms  p90 "
         << FmtDouble(t.p90_us / 1000.0) << " ms  max "
         << FmtDouble(t.max_us / 1000.0) << " ms  skew "
         << FmtDouble(t.skew_ratio) << "  stragglers: ";
      if (t.straggler_partitions.empty()) {
        os << "none";
      } else {
        for (size_t i = 0; i < t.straggler_partitions.size(); ++i) {
          if (i > 0) os << ",";
          os << "p" << t.straggler_partitions[i];
        }
      }
      os << "\n";
    }
  };
  // Statements in execution order; stages outside any statement first
  // (input materialization before the program body runs).
  if (by_statement.count(-1) > 0) {
    os << "\n(setup: input materialization outside program statements)\n";
    for (const TraceSpan* stage : by_statement[-1]) print_stage(*stage);
  }
  for (const auto& s : spans) {
    if (s.kind != SpanKind::kStatement) continue;
    os << "\nstatement: " << s.name
       << LocationSuffix(s.src_file, s.src_line, s.src_column) << "  (wall "
       << FmtDouble(s.dur_us / 1000.0) << " ms)\n";
    auto it = by_statement.find(s.id);
    if (it == by_statement.end()) {
      os << "  (driver-only: no engine stages)\n";
      continue;
    }
    for (const TraceSpan* stage : it->second) print_stage(*stage);
  }
  os << "\n";
}

}  // namespace diablo::runtime
