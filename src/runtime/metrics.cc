#include "runtime/metrics.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace diablo::runtime {

int64_t LptMakespan(std::vector<int64_t> tasks, int workers) {
  if (tasks.empty() || workers <= 0) return 0;
  std::sort(tasks.begin(), tasks.end(), std::greater<int64_t>());
  // Min-heap of worker loads.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>
      loads;
  for (int i = 0; i < workers; ++i) loads.push(0);
  for (int64_t t : tasks) {
    int64_t load = loads.top();
    loads.pop();
    loads.push(load + t);
  }
  int64_t makespan = 0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

int64_t Metrics::num_wide_stages() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.wide ? 1 : 0;
  return n;
}

int64_t Metrics::total_work() const {
  int64_t n = 0;
  for (const auto& s : stages_) {
    for (int64_t w : s.map_work) n += w;
    for (int64_t w : s.reduce_work) n += w;
  }
  return n;
}

int64_t Metrics::total_shuffle_bytes() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.shuffle_bytes;
  return n;
}

int64_t Metrics::total_attempts() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.attempts;
  return n;
}

int64_t Metrics::total_recomputed_partitions() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.recomputed_partitions;
  return n;
}

double Metrics::total_recovery_seconds() const {
  double n = 0;
  for (const auto& s : stages_) n += s.recovery_seconds;
  return n;
}

int64_t Metrics::total_fused_ops() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.fused_ops;
  return n;
}

int64_t Metrics::total_rows_not_materialized() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.rows_not_materialized;
  return n;
}

int64_t Metrics::total_bytes_not_materialized() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.bytes_not_materialized;
  return n;
}

int64_t Metrics::total_hash_agg_rows() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.hash_agg_rows;
  return n;
}

int64_t Metrics::total_hash_agg_keys() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.hash_agg_keys;
  return n;
}

int64_t Metrics::total_pool_tasks() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.pool_tasks;
  return n;
}

int64_t Metrics::total_columnar_batches() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.columnar_batches;
  return n;
}

int64_t Metrics::total_columnar_rows_fallback() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.columnar_rows_fallback;
  return n;
}

int64_t Metrics::total_dist_tasks() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.dist_tasks;
  return n;
}

int64_t Metrics::total_dist_retries() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.dist_retries;
  return n;
}

int64_t Metrics::total_dist_workers_lost() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.dist_workers_lost;
  return n;
}

int64_t Metrics::total_salted_keys() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.salted_keys;
  return n;
}

int64_t Metrics::total_salt_fanout() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.salt_fanout;
  return n;
}

int64_t Metrics::total_cost_decisions() const {
  int64_t n = 0;
  for (const auto& s : stages_) n += s.cost_decisions;
  return n;
}

int64_t Metrics::max_peak_rss_bytes() const {
  int64_t n = 0;
  for (const auto& s : stages_) n = std::max(n, s.peak_rss_bytes);
  return n;
}

int64_t Metrics::max_accumulator_bytes_peak() const {
  int64_t n = 0;
  for (const auto& s : stages_) n = std::max(n, s.accumulator_bytes_peak);
  return n;
}

double Metrics::SimulatedFaultFreeSeconds(const ClusterModel& model) const {
  double total = 0;
  for (const auto& s : stages_) {
    total += static_cast<double>(LptMakespan(s.map_work, model.num_workers)) *
             model.seconds_per_work_unit;
    if (!s.reduce_work.empty()) {
      total +=
          static_cast<double>(LptMakespan(s.reduce_work, model.num_workers)) *
          model.seconds_per_work_unit;
    }
    total += static_cast<double>(s.shuffle_bytes) *
             model.seconds_per_shuffle_byte / model.num_workers;
    total += s.wide ? model.wide_stage_latency_seconds
                    : model.narrow_stage_latency_seconds;
  }
  return total;
}

double Metrics::SimulatedSeconds(const ClusterModel& model) const {
  return SimulatedFaultFreeSeconds(model) + total_recovery_seconds();
}

std::string Metrics::Report() const {
  std::ostringstream os;
  for (const auto& s : stages_) {
    int64_t map_total = 0, reduce_total = 0;
    for (int64_t w : s.map_work) map_total += w;
    for (int64_t w : s.reduce_work) reduce_total += w;
    os << (s.wide ? "[wide]   " : "[narrow] ") << s.label;
    if (s.src_line > 0) {
      os << " [" << (s.src_file.empty() ? "<program>" : s.src_file) << ":"
         << s.src_line << ":" << s.src_column << "]";
    }
    os << ": map_work=" << map_total << " reduce_work=" << reduce_total
       << " shuffle_bytes=" << s.shuffle_bytes << " attempts=" << s.attempts;
    if (s.recomputed_partitions > 0 || s.recovery_seconds > 0) {
      os << " recomputed=" << s.recomputed_partitions
         << " recovery_s=" << s.recovery_seconds;
    }
    if (s.fused_ops > 0) {
      os << " fused_ops=" << s.fused_ops
         << " rows_unmaterialized=" << s.rows_not_materialized
         << " bytes_unmaterialized=" << s.bytes_not_materialized;
    }
    if (s.hash_agg_rows > 0 || s.hash_agg_keys > 0) {
      os << " hash_agg_rows=" << s.hash_agg_rows
         << " hash_agg_keys=" << s.hash_agg_keys;
    }
    if (s.pool_tasks > 0) os << " pool_tasks=" << s.pool_tasks;
    if (s.columnar_batches > 0 || s.columnar_rows_fallback > 0) {
      os << " columnar_batches=" << s.columnar_batches
         << " columnar_rows_fallback=" << s.columnar_rows_fallback;
    }
    if (s.dist_tasks > 0) {
      os << " dist_tasks=" << s.dist_tasks;
      if (s.dist_retries > 0) os << " dist_retries=" << s.dist_retries;
      if (s.dist_workers_lost > 0) {
        os << " dist_workers_lost=" << s.dist_workers_lost;
      }
    }
    if (s.salted_keys > 0 || s.salt_fanout > 0) {
      os << " salted_keys=" << s.salted_keys
         << " salt_fanout=" << s.salt_fanout;
    }
    if (s.cost_decisions > 0) os << " cost_decisions=" << s.cost_decisions;
    os << "\n";
  }
  return os.str();
}

}  // namespace diablo::runtime
