#ifndef DIABLO_RUNTIME_WORKER_POOL_H_
#define DIABLO_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace diablo::runtime {

/// A persistent work-stealing thread pool for partition task waves.
///
/// The engine used to spawn (and join) a fresh std::thread vector for
/// every task wave; a multi-stage plan paid that startup cost per stage
/// per retry wave. This pool starts its workers once and reuses them for
/// every wave of the engine's lifetime.
///
/// Scheduling: each wave splits [0, n) into one contiguous index range
/// per worker, packed into a single 64-bit atomic (begin << 32 | end).
/// A worker pops from the front of its own range with a CAS; when its
/// range drains it steals the back half of a victim's range with a CAS
/// on the same word, so owner pops and thief steals linearize without
/// locks. Every index is executed exactly once regardless of stealing.
///
/// Error discipline: task errors never race. The pool runs every index
/// that could fail with a lower number than the lowest failure seen so
/// far (indices above a known failure are skipped — the wave aborts
/// anyway) and returns the error of the LOWEST-indexed failing task, so
/// a failing stage reports the same error for every worker count,
/// host_threads=1 included.
///
/// Run() is not reentrant and must be called from one thread at a time
/// (the engine driver). Tasks must not call back into the pool.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0) .. fn(n-1) across the pool and returns the error of the
  /// lowest-indexed failing task, or OK when all succeed.
  Status Run(int n, const std::function<Status(int)>& fn);

 private:
  struct Wave;

  void WorkerLoop(int self);
  static void WorkOn(Wave& wave, int self);
  static void RunTask(Wave& wave, int index);

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  /// Bumped per wave; sleeping workers compare against their last seen
  /// generation to pick up new work.
  uint64_t generation_ = 0;
  std::shared_ptr<Wave> wave_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace diablo::runtime

#endif  // DIABLO_RUNTIME_WORKER_POOL_H_
