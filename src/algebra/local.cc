#include "algebra/local.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "runtime/array.h"
#include "runtime/operators.h"

namespace diablo::algebra {

using comp::CExpr;
using comp::CExprPtr;
using comp::CompPtr;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;
using runtime::Value;
using runtime::ValueVec;

namespace {

constexpr int64_t kMaxRange = 1 << 24;

Status BindPattern(const Pattern& pattern, const Value& value, Env* env) {
  if (!pattern.is_tuple) {
    if (pattern.var != "_") env->emplace_back(pattern.var, value);
    return Status::OK();
  }
  if (!value.is_tuple() || value.tuple().size() != pattern.elems.size()) {
    return Status::RuntimeError(
        StrCat("pattern ", pattern.ToString(), " does not match ",
               value.ToString()));
  }
  for (size_t i = 0; i < pattern.elems.size(); ++i) {
    DIABLO_RETURN_IF_ERROR(BindPattern(pattern.elems[i], value.tuple()[i], env));
  }
  return Status::OK();
}

const Value* Lookup(const Env& env, const std::string& name) {
  for (auto it = env.rbegin(); it != env.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

StatusOr<Value> EvalBuiltin(const CExpr::Call& call,
                            const std::vector<Value>& args) {
  auto num = [&](size_t i) { return args[i].ToDouble(); };
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::RuntimeError(StrCat("builtin ", call.function,
                                         " expects ", n, " argument(s)"));
    }
    for (const Value& v : args) {
      if (!v.is_numeric()) {
        return Status::RuntimeError(StrCat("builtin ", call.function,
                                           " applied to ", v.ToString()));
      }
    }
    return Status::OK();
  };
  if (call.function == "inRange") {
    DIABLO_RETURN_IF_ERROR(need(3));
    return Value::MakeBool(num(0) >= num(1) && num(0) <= num(2));
  }
  if (call.function == "sqrt") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Value::MakeDouble(std::sqrt(num(0)));
  }
  if (call.function == "abs") {
    DIABLO_RETURN_IF_ERROR(need(1));
    if (args[0].is_int()) return Value::MakeInt(std::llabs(args[0].AsInt()));
    return Value::MakeDouble(std::fabs(num(0)));
  }
  if (call.function == "exp") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Value::MakeDouble(std::exp(num(0)));
  }
  if (call.function == "log") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Value::MakeDouble(std::log(num(0)));
  }
  if (call.function == "pow") {
    DIABLO_RETURN_IF_ERROR(need(2));
    return Value::MakeDouble(std::pow(num(0), num(1)));
  }
  if (call.function == "floor") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Value::MakeDouble(std::floor(num(0)));
  }
  return Status::RuntimeError(StrCat("unknown builtin '", call.function, "'"));
}

/// Local combining merge X ⊳⊕ Y.
StatusOr<Value> MergeWithOp(BinOp op, const Value& left, const Value& right) {
  if (!left.is_bag() || !right.is_bag()) {
    return Status::RuntimeError("array merge applied to non-bags");
  }
  std::map<Value, Value> merged;
  for (const Value& row : left.bag()) {
    merged.insert_or_assign(row.tuple()[0], row.tuple()[1]);
  }
  for (const Value& row : right.bag()) {
    auto it = merged.find(row.tuple()[0]);
    if (it == merged.end()) {
      merged.emplace(row.tuple()[0], row.tuple()[1]);
    } else {
      DIABLO_ASSIGN_OR_RETURN(it->second,
                              runtime::EvalBinOp(op, it->second,
                                                 row.tuple()[1]));
    }
  }
  ValueVec out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) out.push_back(Value::MakePair(k, v));
  return Value::MakeBag(std::move(out));
}

}  // namespace

StatusOr<Value> EvalExpr(const CExprPtr& e, const Env& env,
                         const std::map<std::string, Value>& globals) {
  if (e->is<CExpr::Var>()) {
    const std::string& name = e->as<CExpr::Var>().name;
    if (const Value* v = Lookup(env, name)) return *v;
    auto it = globals.find(name);
    if (it != globals.end()) return it->second;
    return Status::RuntimeError(StrCat("unbound variable '", name, "'"));
  }
  if (e->is<CExpr::IntConst>()) {
    return Value::MakeInt(e->as<CExpr::IntConst>().value);
  }
  if (e->is<CExpr::DoubleConst>()) {
    return Value::MakeDouble(e->as<CExpr::DoubleConst>().value);
  }
  if (e->is<CExpr::BoolConst>()) {
    return Value::MakeBool(e->as<CExpr::BoolConst>().value);
  }
  if (e->is<CExpr::StringConst>()) {
    return Value::MakeString(e->as<CExpr::StringConst>().value);
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    DIABLO_ASSIGN_OR_RETURN(Value l, EvalExpr(b.lhs, env, globals));
    if (b.op == BinOp::kAnd && l.is_bool() && !l.AsBool()) {
      return Value::MakeBool(false);
    }
    if (b.op == BinOp::kOr && l.is_bool() && l.AsBool()) {
      return Value::MakeBool(true);
    }
    DIABLO_ASSIGN_OR_RETURN(Value r, EvalExpr(b.rhs, env, globals));
    return runtime::EvalBinOp(b.op, l, r);
  }
  if (e->is<CExpr::Un>()) {
    const auto& u = e->as<CExpr::Un>();
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(u.operand, env, globals));
    return runtime::EvalUnOp(u.op, v);
  }
  if (e->is<CExpr::TupleCons>()) {
    ValueVec elems;
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env, globals));
      elems.push_back(std::move(v));
    }
    return Value::MakeTuple(std::move(elems));
  }
  if (e->is<CExpr::RecordCons>()) {
    runtime::FieldVec fields;
    for (const auto& [n, c] : e->as<CExpr::RecordCons>().fields) {
      DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env, globals));
      fields.emplace_back(n, std::move(v));
    }
    return Value::MakeRecord(std::move(fields));
  }
  if (e->is<CExpr::Proj>()) {
    const auto& p = e->as<CExpr::Proj>();
    DIABLO_ASSIGN_OR_RETURN(Value base, EvalExpr(p.base, env, globals));
    if (base.is_record()) {
      const Value* f = base.FindField(p.field);
      if (f == nullptr) {
        return Status::RuntimeError(StrCat("record has no field '",
                                           p.field, "'"));
      }
      return *f;
    }
    if (base.is_tuple() && p.field.size() >= 2 && p.field[0] == '_') {
      int idx = std::atoi(p.field.c_str() + 1);
      if (idx >= 1 && static_cast<size_t>(idx) <= base.tuple().size()) {
        return base.tuple()[static_cast<size_t>(idx) - 1];
      }
    }
    return Status::RuntimeError(
        StrCat("cannot project .", p.field, " out of ", base.ToString()));
  }
  if (e->is<CExpr::Call>()) {
    const auto& call = e->as<CExpr::Call>();
    std::vector<Value> args;
    for (const auto& a : call.args) {
      DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(a, env, globals));
      args.push_back(std::move(v));
    }
    return EvalBuiltin(call, args);
  }
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    DIABLO_ASSIGN_OR_RETURN(Value bag, EvalExpr(r.arg, env, globals));
    if (!bag.is_bag()) {
      return Status::RuntimeError(
          StrCat("reduction applied to ", bag.ToString()));
    }
    return runtime::ReduceBag(r.op, bag.bag());
  }
  if (e->is<CExpr::Nested>()) {
    return EvalComprehension(e->as<CExpr::Nested>().comp, env, globals);
  }
  if (e->is<CExpr::Range>()) {
    const auto& r = e->as<CExpr::Range>();
    DIABLO_ASSIGN_OR_RETURN(Value lo, EvalExpr(r.lo, env, globals));
    DIABLO_ASSIGN_OR_RETURN(Value hi, EvalExpr(r.hi, env, globals));
    if (!lo.is_int() || !hi.is_int()) {
      return Status::RuntimeError("range bounds must be integers");
    }
    if (hi.AsInt() - lo.AsInt() + 1 > kMaxRange) {
      return Status::RuntimeError("range too large");
    }
    ValueVec out;
    for (int64_t i = lo.AsInt(); i <= hi.AsInt(); ++i) {
      out.push_back(Value::MakeInt(i));
    }
    return Value::MakeBag(std::move(out));
  }
  if (e->is<CExpr::Merge>()) {
    const auto& m = e->as<CExpr::Merge>();
    DIABLO_ASSIGN_OR_RETURN(Value left, EvalExpr(m.left, env, globals));
    DIABLO_ASSIGN_OR_RETURN(Value right, EvalExpr(m.right, env, globals));
    if (m.has_op) return MergeWithOp(m.op, left, right);
    if (!left.is_bag() || !right.is_bag()) {
      return Status::RuntimeError("array merge applied to non-bags");
    }
    DIABLO_ASSIGN_OR_RETURN(ValueVec merged,
                            runtime::ArrayMergeLocal(left.bag(), right.bag()));
    return Value::MakeBag(std::move(merged));
  }
  // BagCons.
  ValueVec elems;
  for (const auto& c : e->as<CExpr::BagCons>().elems) {
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(c, env, globals));
    elems.push_back(std::move(v));
  }
  return Value::MakeBag(std::move(elems));
}

StatusOr<Value> EvalComprehension(
    const CompPtr& comp, const Env& env,
    const std::map<std::string, Value>& globals) {
  // §3.3 semantics: a list of environments threaded through the
  // qualifiers left to right.
  std::vector<Env> envs = {env};
  // Variables bound by this comprehension so far (lifted by group-bys).
  std::vector<std::string> bound;

  auto note_bound = [&](const Pattern& p) {
    for (const std::string& v : p.Vars()) {
      if (std::find(bound.begin(), bound.end(), v) == bound.end()) {
        bound.push_back(v);
      }
    }
  };

  for (const Qualifier& q : comp->qualifiers) {
    switch (q.kind) {
      case Qualifier::Kind::kGenerator: {
        std::vector<Env> next;
        for (const Env& cur : envs) {
          DIABLO_ASSIGN_OR_RETURN(Value domain,
                                  EvalExpr(q.expr, cur, globals));
          if (!domain.is_bag()) {
            return Status::RuntimeError(
                StrCat("generator domain is not a bag: ",
                       domain.ToString()));
          }
          for (const Value& elem : domain.bag()) {
            Env extended = cur;
            DIABLO_RETURN_IF_ERROR(BindPattern(q.pattern, elem, &extended));
            next.push_back(std::move(extended));
          }
        }
        envs = std::move(next);
        note_bound(q.pattern);
        break;
      }
      case Qualifier::Kind::kCondition: {
        std::vector<Env> next;
        for (const Env& cur : envs) {
          DIABLO_ASSIGN_OR_RETURN(Value keep, EvalExpr(q.expr, cur, globals));
          if (!keep.is_bool()) {
            return Status::RuntimeError(
                StrCat("condition evaluated to ", keep.ToString()));
          }
          if (keep.AsBool()) next.push_back(cur);
        }
        envs = std::move(next);
        break;
      }
      case Qualifier::Kind::kLet: {
        for (Env& cur : envs) {
          DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(q.expr, cur, globals));
          DIABLO_RETURN_IF_ERROR(BindPattern(q.pattern, v, &cur));
        }
        note_bound(q.pattern);
        break;
      }
      case Qualifier::Kind::kGroupBy: {
        if (q.expr == nullptr) {
          return Status::RuntimeError("group-by without a key expression");
        }
        // Partition the environments by key.
        std::map<Value, std::vector<const Env*>> groups;
        std::vector<Value> keys_in_order;
        for (const Env& cur : envs) {
          DIABLO_ASSIGN_OR_RETURN(Value key, EvalExpr(q.expr, cur, globals));
          auto [it, inserted] = groups.try_emplace(key);
          if (inserted) keys_in_order.push_back(key);
          it->second.push_back(&cur);
        }
        // Lift every comprehension-bound variable (except the group-by
        // pattern's) to the bag of its values in the group.
        std::vector<std::string> pattern_vars = q.pattern.Vars();
        std::vector<std::string> lifted;
        for (const std::string& v : bound) {
          if (std::find(pattern_vars.begin(), pattern_vars.end(), v) ==
              pattern_vars.end()) {
            lifted.push_back(v);
          }
        }
        std::vector<Env> next;
        for (const Value& key : keys_in_order) {
          Env grouped = env;  // the enclosing environment survives
          DIABLO_RETURN_IF_ERROR(BindPattern(q.pattern, key, &grouped));
          for (const std::string& v : lifted) {
            ValueVec column;
            for (const Env* member : groups[key]) {
              const Value* val = Lookup(*member, v);
              if (val != nullptr) column.push_back(*val);
            }
            grouped.emplace_back(v, Value::MakeBag(std::move(column)));
          }
          next.push_back(std::move(grouped));
        }
        envs = std::move(next);
        bound = pattern_vars;
        for (const std::string& v : lifted) bound.push_back(v);
        break;
      }
    }
  }

  ValueVec out;
  out.reserve(envs.size());
  for (const Env& cur : envs) {
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(comp->head, cur, globals));
    out.push_back(std::move(v));
  }
  return Value::MakeBag(std::move(out));
}

// ----------------------------- LocalExecutor --------------------------------

Status LocalExecutor::Run(const comp::TargetProgram& program,
                          const Bindings& inputs) {
  globals_.clear();
  is_array_.clear();
  for (const auto& [name, value] : inputs) {
    globals_[name] = value;
    is_array_[name] = value.is_bag();
  }
  for (const auto& stmt : program.stmts) {
    DIABLO_RETURN_IF_ERROR(ExecStmt(stmt));
  }
  return Status::OK();
}

Status LocalExecutor::ExecStmt(const comp::TargetStmtPtr& stmt) {
  using comp::TargetStmt;
  if (stmt->is<TargetStmt::Declare>()) {
    const auto& d = stmt->as<TargetStmt::Declare>();
    if (d.is_array) {
      globals_[d.var] = Value::EmptyBag();
      is_array_[d.var] = true;
      return Status::OK();
    }
    is_array_[d.var] = false;
    if (d.init == nullptr) {
      globals_[d.var] = Value::MakeUnit();
      return Status::OK();
    }
    DIABLO_ASSIGN_OR_RETURN(Value bag, EvalExpr(d.init, {}, globals_));
    if (!bag.is_bag() || bag.bag().size() != 1) {
      return Status::RuntimeError(
          StrCat("initializer of '", d.var, "' is not a single value"));
    }
    globals_[d.var] = bag.bag()[0];
    return Status::OK();
  }
  if (stmt->is<TargetStmt::Assign>()) {
    const auto& a = stmt->as<TargetStmt::Assign>();
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(a.value, {}, globals_));
    if (a.is_array) {
      if (!v.is_bag()) {
        return Status::RuntimeError(
            StrCat("array assignment to '", a.var,
                   "' produced a non-bag value"));
      }
      globals_[a.var] = std::move(v);
      is_array_[a.var] = true;
      return Status::OK();
    }
    if (!v.is_bag()) {
      return Status::RuntimeError("scalar assignment did not lift to a bag");
    }
    if (v.bag().empty()) return Status::OK();
    if (v.bag().size() > 1) {
      return Status::RuntimeError(
          StrCat("scalar assignment to '", a.var, "' produced ",
                 v.bag().size(), " values"));
    }
    globals_[a.var] = v.bag()[0];
    is_array_[a.var] = false;
    return Status::OK();
  }
  const auto& w = stmt->as<TargetStmt::While>();
  for (;;) {
    DIABLO_ASSIGN_OR_RETURN(Value cond, EvalExpr(w.cond, {}, globals_));
    if (!cond.is_bag()) {
      return Status::RuntimeError("while condition did not lift to a bag");
    }
    if (cond.bag().empty()) return Status::OK();
    if (!cond.bag()[0].is_bool()) {
      return Status::RuntimeError("while condition is not boolean");
    }
    if (!cond.bag()[0].AsBool()) return Status::OK();
    for (const auto& child : w.body) {
      DIABLO_RETURN_IF_ERROR(ExecStmt(child));
    }
  }
}

StatusOr<Value> LocalExecutor::GetScalar(const std::string& name) const {
  auto it = globals_.find(name);
  auto kind = is_array_.find(name);
  if (it == globals_.end() || (kind != is_array_.end() && kind->second)) {
    return Status::InvalidArgument(StrCat("no scalar variable '", name, "'"));
  }
  return it->second;
}

StatusOr<Value> LocalExecutor::GetArray(const std::string& name) const {
  auto it = globals_.find(name);
  auto kind = is_array_.find(name);
  if (it == globals_.end() || kind == is_array_.end() || !kind->second) {
    return Status::InvalidArgument(StrCat("no array variable '", name, "'"));
  }
  ValueVec rows = it->second.bag();
  std::sort(rows.begin(), rows.end());
  return Value::MakeBag(std::move(rows));
}

}  // namespace diablo::algebra
