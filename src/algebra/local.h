#ifndef DIABLO_ALGEBRA_LOCAL_H_
#define DIABLO_ALGEBRA_LOCAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "comp/comp.h"
#include "runtime/value.h"

namespace diablo::algebra {

/// Local evaluation of monoid comprehensions by the formal semantics of
/// paper §3.3: qualifiers are processed left to right over a list of
/// variable environments — a generator flatMaps the environments over its
/// domain, a condition filters them, a let extends them, and a group-by
/// partitions them by key and lifts every previously bound variable to
/// the bag of its values in the group.
///
/// This is a *third*, independent implementation of the language's
/// semantics (besides the sequential reference interpreter and the
/// distributed planner), used to cross-validate both: for every program,
///   reference == local algebra == distributed plan.
/// It is also a practical single-process backend — the paper's "Scala
/// collections" target.

/// A variable environment: name -> value bindings, innermost last.
using Env = std::vector<std::pair<std::string, runtime::Value>>;

/// Evaluates a comprehension to a bag under `env` plus the global
/// variables in `globals` (arrays are bag values of (key,value) pairs).
StatusOr<runtime::Value> EvalComprehension(
    const comp::CompPtr& comp, const Env& env,
    const std::map<std::string, runtime::Value>& globals);

/// Evaluates a comprehension-calculus expression locally. Nested
/// comprehensions recurse; Range produces a bag of ints; Merge applies
/// the local array merge.
StatusOr<runtime::Value> EvalExpr(
    const comp::CExprPtr& e, const Env& env,
    const std::map<std::string, runtime::Value>& globals);

/// Executes translated target code entirely locally: scalars and arrays
/// live in one process, assignments evaluate comprehensions with
/// EvalComprehension, while-loops run on the driver.
class LocalExecutor {
 public:
  using Bindings = std::map<std::string, runtime::Value>;

  /// Runs a target program with host inputs (bag values bind arrays).
  Status Run(const comp::TargetProgram& program, const Bindings& inputs);

  StatusOr<runtime::Value> GetScalar(const std::string& name) const;
  /// Array contents as a bag of (key, value) pairs sorted by key.
  StatusOr<runtime::Value> GetArray(const std::string& name) const;

 private:
  Status ExecStmt(const comp::TargetStmtPtr& stmt);

  std::map<std::string, runtime::Value> globals_;
  std::map<std::string, bool> is_array_;
};

}  // namespace diablo::algebra

#endif  // DIABLO_ALGEBRA_LOCAL_H_
