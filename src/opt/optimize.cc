#include "opt/optimize.h"

#include <map>
#include <optional>
#include <set>

#include "normalize/normalize.h"

namespace diablo::opt {

using comp::CExpr;
using comp::CExprPtr;
using comp::CompPtr;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;

namespace {

// ------------------------- shared helpers ----------------------------------

bool IsGenerator(const Qualifier& q) {
  return q.kind == Qualifier::Kind::kGenerator;
}

/// Index variables bound by a generator: for ((i,j),v) <- M they are i,j;
/// for (i,v) <- V just i; for v <- range(...) the variable itself.
std::vector<std::string> GeneratorIndexVars(const Qualifier& q) {
  if (q.expr->is<CExpr::Range>()) {
    return q.pattern.is_tuple ? std::vector<std::string>{}
                              : std::vector<std::string>{q.pattern.var};
  }
  if (!q.pattern.is_tuple || q.pattern.elems.size() != 2) return {};
  const Pattern& key = q.pattern.elems[0];
  if (!key.is_tuple) {
    if (key.var == "_") return {};
    return {key.var};
  }
  std::vector<std::string> out;
  key.CollectVars(&out);
  return out;
}

/// All variables bound by a qualifier.
std::vector<std::string> BoundVars(const Qualifier& q) {
  if (q.kind == Qualifier::Kind::kCondition) return {};
  return q.pattern.Vars();
}

bool QualUsesVar(const Qualifier& q, const std::string& v) {
  return q.expr != nullptr && comp::FreeVars(q.expr).count(v) != 0;
}

// ------------------------- range elimination --------------------------------

/// Matches `e` as an affine use of variable `v`: v, v+c, c+v, v-c.
/// On success returns the inverse F such that e == u  =>  v == F(u).
std::optional<CExprPtr> InvertAffine(const CExprPtr& e, const std::string& v,
                                     const CExprPtr& u) {
  if (e->is<CExpr::Var>() && e->as<CExpr::Var>().name == v) return u;
  if (!e->is<CExpr::Bin>()) return std::nullopt;
  const auto& b = e->as<CExpr::Bin>();
  auto uses_v = [&](const CExprPtr& t) {
    return comp::FreeVars(t).count(v) != 0;
  };
  if (b.op == BinOp::kAdd) {
    // (v + c) == u  =>  v == u - c   (and symmetrically).
    if (b.lhs->is<CExpr::Var>() && b.lhs->as<CExpr::Var>().name == v &&
        !uses_v(b.rhs)) {
      return comp::MakeBin(BinOp::kSub, u, b.rhs);
    }
    if (b.rhs->is<CExpr::Var>() && b.rhs->as<CExpr::Var>().name == v &&
        !uses_v(b.lhs)) {
      return comp::MakeBin(BinOp::kSub, u, b.lhs);
    }
  }
  if (b.op == BinOp::kSub) {
    // (v - c) == u  =>  v == u + c.
    if (b.lhs->is<CExpr::Var>() && b.lhs->as<CExpr::Var>().name == v &&
        !uses_v(b.rhs)) {
      return comp::MakeBin(BinOp::kAdd, u, b.rhs);
    }
  }
  return std::nullopt;
}

/// §3.6: rewrites one range-generator joined to an array traversal; true
/// if a rewrite happened.
bool EliminateOneRange(std::vector<Qualifier>* quals, CExprPtr* head) {
  for (size_t g = 0; g < quals->size(); ++g) {
    const Qualifier& gen = (*quals)[g];
    if (!IsGenerator(gen) || !gen.expr->is<CExpr::Range>() ||
        gen.pattern.is_tuple) {
      continue;
    }
    const std::string v = gen.pattern.var;
    const CExprPtr lo = gen.expr->as<CExpr::Range>().lo;
    const CExprPtr hi = gen.expr->as<CExpr::Range>().hi;
    // Find a joining equality condition.
    for (size_t c = g + 1; c < quals->size(); ++c) {
      const Qualifier& cond = (*quals)[c];
      if (cond.kind != Qualifier::Kind::kCondition ||
          !cond.expr->is<CExpr::Bin>() ||
          cond.expr->as<CExpr::Bin>().op != BinOp::kEq) {
        continue;
      }
      const auto& eq = cond.expr->as<CExpr::Bin>();
      // One side must be affine in v, the other a dataset index variable.
      for (int flip = 0; flip < 2; ++flip) {
        const CExprPtr& vside = flip == 0 ? eq.lhs : eq.rhs;
        const CExprPtr& uside = flip == 0 ? eq.rhs : eq.lhs;
        if (!uside->is<CExpr::Var>()) continue;
        const std::string u = uside->as<CExpr::Var>().name;
        if (u == v || comp::FreeVars(vside).count(v) == 0) continue;
        // u must be an index variable of a dataset generator.
        size_t d = quals->size();
        for (size_t j = 0; j < quals->size(); ++j) {
          if (!IsGenerator((*quals)[j]) ||
              (*quals)[j].expr->is<CExpr::Range>()) {
            continue;
          }
          std::vector<std::string> idx = GeneratorIndexVars((*quals)[j]);
          for (const std::string& iv : idx) {
            if (iv == u) d = j;
          }
          if (d != quals->size()) break;
        }
        if (d == quals->size()) continue;
        std::optional<CExprPtr> inverse = InvertAffine(vside, v, uside);
        if (!inverse.has_value()) continue;
        // Every other use of v must be after both the dataset generator
        // and the range generator so the substituted F(u) is bound.
        size_t first_ok = std::max(g, d);
        bool safe = true;
        for (size_t j = 0; j < quals->size(); ++j) {
          if (j == g || j == c) continue;
          if (QualUsesVar((*quals)[j], v) && j <= first_ok) {
            safe = false;
            break;
          }
        }
        if (!safe) continue;
        // Rewrite: drop the range generator, replace the condition with
        // inRange(F(u), lo, hi), substitute v := F(u) elsewhere.
        std::map<std::string, CExprPtr> subst{{v, *inverse}};
        std::vector<Qualifier> out;
        for (size_t j = 0; j < quals->size(); ++j) {
          if (j == g) continue;
          if (j == c) {
            out.push_back(Qualifier::Condition(
                comp::MakeCall("inRange", {*inverse, lo, hi})));
            continue;
          }
          Qualifier nq = (*quals)[j];
          if (nq.expr != nullptr) nq.expr = comp::Substitute(nq.expr, subst);
          out.push_back(std::move(nq));
        }
        *head = comp::Substitute(*head, subst);
        *quals = std::move(out);
        return true;
      }
    }
  }
  return false;
}

// ------------------------- Rule (16): constant keys -------------------------

bool IsConstantExpr(const CExprPtr& e) { return comp::FreeVars(e).empty(); }

/// Rule (16): { e | q1, group by p : c, q2 }
///   -> { e | let p = c, ∀vi: let vi = { vi | q1 }, q2 }.
bool ApplyRule16(std::vector<Qualifier>* quals, CExprPtr* head,
                 comp::NameGen* names) {
  for (size_t g = 0; g < quals->size(); ++g) {
    const Qualifier& q = (*quals)[g];
    if (q.kind != Qualifier::Kind::kGroupBy || q.expr == nullptr ||
        !IsConstantExpr(q.expr)) {
      continue;
    }
    // Variables bound in q1 that are used after the group-by.
    std::vector<std::string> lifted;
    for (size_t j = 0; j < g; ++j) {
      for (const std::string& v : BoundVars((*quals)[j])) {
        bool used = comp::FreeVars(*head).count(v) != 0;
        for (size_t k = g + 1; !used && k < quals->size(); ++k) {
          used = QualUsesVar((*quals)[k], v);
        }
        if (used) lifted.push_back(v);
      }
    }
    if (lifted.size() > 2) continue;  // would duplicate q1 too many times
    std::vector<Qualifier> q1((*quals).begin(),
                              (*quals).begin() + static_cast<long>(g));
    std::vector<Qualifier> out;
    out.push_back(Qualifier::Let(q.pattern, q.expr));
    for (const std::string& v : lifted) {
      // let v = { v | q1 }, alpha-renamed per copy.
      CompPtr copy = normalize::RenameBound(
          comp::MakeComp(comp::MakeVar(v), q1), names);
      // RenameBound renames the head too; rebuild with the renamed head.
      out.push_back(
          Qualifier::Let(Pattern::Var(v), comp::MakeNested(copy)));
    }
    for (size_t j = g + 1; j < quals->size(); ++j) out.push_back((*quals)[j]);
    *quals = std::move(out);
    return true;
  }
  return false;
}

// ------------------------- Rule (17): unique keys ----------------------------

/// Union-find over variable names for equality classes from conditions.
class UnionFind {
 public:
  const std::string& Find(const std::string& x) {
    auto it = parent_.find(x);
    if (it == parent_.end() || it->second == x) {
      parent_[x] = x;
      return parent_.find(x)->second;
    }
    const std::string root = Find(it->second);
    parent_[x] = root;
    return parent_.find(x)->second;
  }
  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::map<std::string, std::string> parent_;
};

/// Collects the variables appearing in a group-by key expression when the
/// key is a variable, a tuple of variables, or affine terms of single
/// variables; nullopt when the key has any other shape.
std::optional<std::vector<std::string>> KeyVars(const CExprPtr& key) {
  auto single = [](const CExprPtr& e) -> std::optional<std::string> {
    if (e->is<CExpr::Var>()) return e->as<CExpr::Var>().name;
    if (e->is<CExpr::Bin>()) {
      const auto& b = e->as<CExpr::Bin>();
      if (b.op != BinOp::kAdd && b.op != BinOp::kSub && b.op != BinOp::kMul) {
        return std::nullopt;
      }
      std::set<std::string> fv = comp::FreeVars(e);
      if (fv.size() == 1) return *fv.begin();
    }
    return std::nullopt;
  };
  std::vector<std::string> out;
  if (key->is<CExpr::TupleCons>()) {
    for (const auto& e : key->as<CExpr::TupleCons>().elems) {
      std::optional<std::string> v = single(e);
      if (!v.has_value()) return std::nullopt;
      out.push_back(*v);
    }
    return out;
  }
  std::optional<std::string> v = single(key);
  if (!v.has_value()) return std::nullopt;
  out.push_back(*v);
  return out;
}

/// Rule (17): remove a group-by whose key is unique — the key covers, via
/// equality classes, every index variable of every generator before it.
bool ApplyRule17(std::vector<Qualifier>* quals) {
  for (size_t g = 0; g < quals->size(); ++g) {
    const Qualifier& q = (*quals)[g];
    if (q.kind != Qualifier::Kind::kGroupBy || q.expr == nullptr) continue;
    std::optional<std::vector<std::string>> key_vars = KeyVars(q.expr);
    if (!key_vars.has_value()) continue;

    UnionFind uf;
    for (size_t j = 0; j < g; ++j) {
      const Qualifier& c = (*quals)[j];
      if (c.kind == Qualifier::Kind::kCondition && c.expr->is<CExpr::Bin>()) {
        const auto& b = c.expr->as<CExpr::Bin>();
        if (b.op == BinOp::kEq && b.lhs->is<CExpr::Var>() &&
            b.rhs->is<CExpr::Var>()) {
          uf.Union(b.lhs->as<CExpr::Var>().name,
                   b.rhs->as<CExpr::Var>().name);
        }
      }
      // let x = y also induces equality of x and y.
      if (c.kind == Qualifier::Kind::kLet && !c.pattern.is_tuple &&
          c.expr->is<CExpr::Var>()) {
        uf.Union(c.pattern.var, c.expr->as<CExpr::Var>().name);
      }
    }
    std::set<std::string> key_roots;
    for (const std::string& v : *key_vars) key_roots.insert(uf.Find(v));

    bool unique = true;
    bool any_generator = false;
    for (size_t j = 0; j < g && unique; ++j) {
      if (!IsGenerator((*quals)[j])) continue;
      any_generator = true;
      std::vector<std::string> idx = GeneratorIndexVars((*quals)[j]);
      if (idx.empty()) {
        unique = false;  // a generator with no recoverable index
        break;
      }
      for (const std::string& iv : idx) {
        if (key_roots.count(uf.Find(iv)) == 0) {
          unique = false;
          break;
        }
      }
    }
    if (!unique || !any_generator) continue;

    // Rewrite: drop the group-by, bind the pattern to the key, lift each
    // previously-bound used variable to the singleton bag {v}.
    std::vector<Qualifier> out((*quals).begin(),
                               (*quals).begin() + static_cast<long>(g));
    out.push_back(Qualifier::Let(q.pattern, q.expr));
    for (size_t j = 0; j < g; ++j) {
      for (const std::string& v : BoundVars((*quals)[j])) {
        bool in_key = false;
        for (const std::string& kv : q.pattern.Vars()) {
          if (kv == v) in_key = true;
        }
        if (in_key) continue;
        out.push_back(Qualifier::Let(Pattern::Var(v),
                                     comp::MakeBag({comp::MakeVar(v)})));
      }
    }
    for (size_t j = g + 1; j < quals->size(); ++j) out.push_back((*quals)[j]);
    *quals = std::move(out);
    return true;
  }
  return false;
}

// ------------------------- array-read CSE -----------------------------------

/// The destructured shape of an array generator ((i1,...,in), v) <- A.
struct GenShape {
  std::vector<std::string> index_vars;
  std::string value_var;
};

std::optional<GenShape> ShapeOfGenerator(const Qualifier& q) {
  if (!IsGenerator(q) || !q.expr->is<CExpr::Var>()) return std::nullopt;
  if (!q.pattern.is_tuple || q.pattern.elems.size() != 2) return std::nullopt;
  const Pattern& key = q.pattern.elems[0];
  const Pattern& val = q.pattern.elems[1];
  if (val.is_tuple || val.var == "_") return std::nullopt;
  GenShape shape;
  shape.value_var = val.var;
  if (!key.is_tuple) {
    if (key.var == "_") return std::nullopt;
    shape.index_vars.push_back(key.var);
    return shape;
  }
  for (const Pattern& p : key.elems) {
    if (p.is_tuple || p.var == "_") return std::nullopt;
    shape.index_vars.push_back(p.var);
  }
  return shape;
}

/// The expression each index variable of the generator at `g` is equated
/// to by a later condition in the same group-by region; the variable
/// itself when unconstrained (it is then the canonical binder). Only
/// conditions whose other side is built from variables bound *before*
/// the generator qualify — otherwise a generator could adopt the join
/// condition of a later duplicate of itself.
std::vector<CExprPtr> BindingSpec(const std::vector<Qualifier>& quals,
                                  size_t g, const GenShape& shape) {
  std::set<std::string> before;
  for (size_t j = 0; j < g; ++j) {
    if (quals[j].kind != Qualifier::Kind::kCondition) {
      for (const std::string& v : quals[j].pattern.Vars()) before.insert(v);
    }
  }
  std::vector<CExprPtr> spec;
  for (const std::string& iv : shape.index_vars) {
    CExprPtr bound = comp::MakeVar(iv);
    for (size_t j = g + 1; j < quals.size(); ++j) {
      if (quals[j].kind == Qualifier::Kind::kGroupBy) break;
      if (quals[j].kind != Qualifier::Kind::kCondition ||
          !quals[j].expr->is<CExpr::Bin>()) {
        continue;
      }
      const auto& eq = quals[j].expr->as<CExpr::Bin>();
      if (eq.op != BinOp::kEq) continue;
      const CExprPtr* other = nullptr;
      if (eq.lhs->is<CExpr::Var>() && eq.lhs->as<CExpr::Var>().name == iv) {
        other = &eq.rhs;
      } else if (eq.rhs->is<CExpr::Var>() &&
                 eq.rhs->as<CExpr::Var>().name == iv) {
        other = &eq.lhs;
      }
      if (other == nullptr) continue;
      bool prior = true;
      for (const std::string& v : comp::FreeVars(*other)) {
        if (before.count(v) == 0) prior = false;
      }
      if (!prior) continue;
      bound = *other;
      break;
    }
    spec.push_back(bound);
  }
  return spec;
}

/// Group-by region of each qualifier (number of preceding group-bys).
std::vector<int> Regions(const std::vector<Qualifier>& quals) {
  std::vector<int> out;
  int region = 0;
  for (const Qualifier& q : quals) {
    out.push_back(region);
    if (q.kind == Qualifier::Kind::kGroupBy) ++region;
  }
  return out;
}

/// Removes one duplicate array generator (see OptimizeOptions::
/// cse_array_reads); true if a rewrite happened.
bool EliminateOneDuplicateRead(std::vector<Qualifier>* quals,
                               CExprPtr* head) {
  std::vector<int> regions = Regions(*quals);
  for (size_t g2 = 1; g2 < quals->size(); ++g2) {
    std::optional<GenShape> shape2 = ShapeOfGenerator((*quals)[g2]);
    if (!shape2.has_value()) continue;
    const std::string& array = (*quals)[g2].expr->as<CExpr::Var>().name;
    std::vector<CExprPtr> spec2 = BindingSpec(*quals, g2, *shape2);
    // Fully-bound only: every index var equated to an expression that
    // does not mention the generator's own binders.
    bool fully_bound = true;
    for (size_t k = 0; k < spec2.size(); ++k) {
      if (spec2[k]->is<CExpr::Var>() &&
          spec2[k]->as<CExpr::Var>().name == shape2->index_vars[k]) {
        fully_bound = false;
      }
    }
    if (!fully_bound) continue;
    for (size_t g1 = 0; g1 < g2; ++g1) {
      if (regions[g1] != regions[g2]) continue;
      std::optional<GenShape> shape1 = ShapeOfGenerator((*quals)[g1]);
      if (!shape1.has_value()) continue;
      if (!(*quals)[g1].expr->is<CExpr::Var>() ||
          (*quals)[g1].expr->as<CExpr::Var>().name != array) {
        continue;
      }
      if (shape1->index_vars.size() != shape2->index_vars.size()) continue;
      std::vector<CExprPtr> spec1 = BindingSpec(*quals, g1, *shape1);
      bool match = true;
      for (size_t k = 0; k < spec1.size() && match; ++k) {
        match = comp::Equals(spec1[k], spec2[k]);
      }
      if (!match) continue;
      // Both generators draw the element of `array` at the same key:
      // drop g2, substituting its binders by g1's / the shared exprs.
      std::map<std::string, CExprPtr> subst;
      for (size_t k = 0; k < shape2->index_vars.size(); ++k) {
        subst[shape2->index_vars[k]] = spec2[k];
      }
      subst[shape2->value_var] = comp::MakeVar(shape1->value_var);
      std::vector<Qualifier> out;
      std::map<std::string, CExprPtr> live = subst;
      for (size_t j = 0; j < quals->size(); ++j) {
        if (j == g2) continue;
        Qualifier nq = (*quals)[j];
        if (j > g2) {
          if (nq.expr != nullptr) nq.expr = comp::Substitute(nq.expr, live);
          // A later rebinding of one of the removed names shadows it.
          if (nq.kind != Qualifier::Kind::kCondition) {
            for (const std::string& v : nq.pattern.Vars()) live.erase(v);
          }
        }
        out.push_back(std::move(nq));
      }
      *head = comp::Substitute(*head, live);
      *quals = std::move(out);
      // The binding conditions become x == x and are dropped by the
      // normalizer pass that follows optimization.
      return true;
    }
  }
  return false;
}

// ------------------------- driver -------------------------------------------

CExprPtr OptimizeExprImpl(const CExprPtr& e, comp::NameGen* names,
                          const OptimizeOptions& options);

CExprPtr OptimizeComp(const CompPtr& c, comp::NameGen* names,
                      const OptimizeOptions& options) {
  std::vector<Qualifier> quals;
  for (const Qualifier& q : c->qualifiers) {
    Qualifier nq = q;
    if (nq.expr != nullptr) nq.expr = OptimizeExprImpl(nq.expr, names, options);
    quals.push_back(std::move(nq));
  }
  CExprPtr head = OptimizeExprImpl(c->head, names, options);

  for (int iter = 0; iter < 50; ++iter) {
    bool changed = false;
    if (options.range_elimination) {
      changed = EliminateOneRange(&quals, &head) || changed;
    }
    if (!changed && options.cse_array_reads) {
      changed = EliminateOneDuplicateRead(&quals, &head) || changed;
    }
    if (!changed && options.rule17_unique_key) {
      changed = ApplyRule17(&quals) || changed;
    }
    if (!changed && options.rule16_constant_key) {
      changed = ApplyRule16(&quals, &head, names) || changed;
    }
    if (!changed) break;
  }
  return comp::MakeNested(comp::MakeComp(head, std::move(quals)));
}

CExprPtr OptimizeExprImpl(const CExprPtr& e, comp::NameGen* names,
                          const OptimizeOptions& options) {
  if (e == nullptr) return e;
  if (e->is<CExpr::Nested>()) {
    return OptimizeComp(e->as<CExpr::Nested>().comp, names, options);
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    return comp::MakeBin(b.op, OptimizeExprImpl(b.lhs, names, options),
                         OptimizeExprImpl(b.rhs, names, options));
  }
  if (e->is<CExpr::Un>()) {
    const auto& u = e->as<CExpr::Un>();
    return comp::MakeUn(u.op, OptimizeExprImpl(u.operand, names, options));
  }
  if (e->is<CExpr::TupleCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      elems.push_back(OptimizeExprImpl(c, names, options));
    }
    return comp::MakeTuple(std::move(elems));
  }
  if (e->is<CExpr::RecordCons>()) {
    std::vector<std::pair<std::string, CExprPtr>> fields;
    for (const auto& [n, c] : e->as<CExpr::RecordCons>().fields) {
      fields.emplace_back(n, OptimizeExprImpl(c, names, options));
    }
    return comp::MakeRecord(std::move(fields));
  }
  if (e->is<CExpr::Proj>()) {
    const auto& p = e->as<CExpr::Proj>();
    return comp::MakeProj(OptimizeExprImpl(p.base, names, options), p.field);
  }
  if (e->is<CExpr::Call>()) {
    const auto& c = e->as<CExpr::Call>();
    std::vector<CExprPtr> args;
    for (const auto& a : c.args) {
      args.push_back(OptimizeExprImpl(a, names, options));
    }
    return comp::MakeCall(c.function, std::move(args));
  }
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    return comp::MakeReduce(r.op, OptimizeExprImpl(r.arg, names, options));
  }
  if (e->is<CExpr::Range>()) {
    const auto& r = e->as<CExpr::Range>();
    return comp::MakeRange(OptimizeExprImpl(r.lo, names, options),
                           OptimizeExprImpl(r.hi, names, options));
  }
  if (e->is<CExpr::Merge>()) {
    const auto& m = e->as<CExpr::Merge>();
    CExprPtr left = OptimizeExprImpl(m.left, names, options);
    CExprPtr right = OptimizeExprImpl(m.right, names, options);
    return m.has_op ? comp::MakeMergeOp(m.op, left, right)
                    : comp::MakeMerge(left, right);
  }
  if (e->is<CExpr::BagCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::BagCons>().elems) {
      elems.push_back(OptimizeExprImpl(c, names, options));
    }
    return comp::MakeBag(std::move(elems));
  }
  return e;
}

}  // namespace

CExprPtr OptimizeExpr(const CExprPtr& e, comp::NameGen* names,
                      const OptimizeOptions& options) {
  CExprPtr optimized = OptimizeExprImpl(e, names, options);
  return normalize::NormalizeExpr(optimized, names);
}

comp::TargetProgram OptimizeTarget(const comp::TargetProgram& program,
                                   comp::NameGen* names,
                                   const OptimizeOptions& options) {
  comp::TargetProgram out;
  for (const auto& s : program.stmts) {
    if (s->is<comp::TargetStmt::Assign>()) {
      const auto& a = s->as<comp::TargetStmt::Assign>();
      out.stmts.push_back(comp::MakeAssign(
          a.var, OptimizeExpr(a.value, names, options), a.is_array, s->loc));
    } else if (s->is<comp::TargetStmt::While>()) {
      const auto& w = s->as<comp::TargetStmt::While>();
      comp::TargetProgram body;
      body.stmts = w.body;
      comp::TargetProgram opt_body = OptimizeTarget(body, names, options);
      out.stmts.push_back(comp::MakeWhile(OptimizeExpr(w.cond, names, options),
                                          std::move(opt_body.stmts), s->loc));
    } else {
      const auto& d = s->as<comp::TargetStmt::Declare>();
      out.stmts.push_back(comp::MakeDeclare(
          d.var, d.is_array,
          d.init != nullptr ? OptimizeExpr(d.init, names, options) : nullptr,
          s->loc));
    }
  }
  return out;
}

}  // namespace diablo::opt
