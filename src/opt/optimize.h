#ifndef DIABLO_OPT_OPTIMIZE_H_
#define DIABLO_OPT_OPTIMIZE_H_

#include "comp/comp.h"

namespace diablo::opt {

/// Switches for the comprehension optimizations of §3.6 and §4. All on by
/// default; the ablation benchmark flips them individually.
struct OptimizeOptions {
  /// §3.6: eliminate `v <- range(lo,hi)` joined to an array traversal by
  /// inverting the affine index term and adding an inRange predicate.
  bool range_elimination = true;
  /// Rule (16): remove group-bys with a constant key (total aggregation).
  bool rule16_constant_key = true;
  /// Rule (17): remove group-bys whose key is provably unique (injective
  /// over the generators).
  bool rule17_unique_key = true;
  /// Extension (the paper's future-work "more effective query
  /// optimization"): common-subexpression elimination of repeated array
  /// accesses. Two generators over the same array whose index variables
  /// are equated to identical expressions draw the same single element
  /// (sparse-array keys are unique), so the second generator — and the
  /// join it would plan to — is removed. This collapses the redundant
  /// self-joins in expressions like `(P[i]._1 - C[j]._1) * (P[i]._1 -
  /// C[j]._1)` (KMeans) that the paper attributes DIABLO's KMeans gap to.
  bool cse_array_reads = true;
};

/// Optimizes all comprehensions inside `e`. Expects normalized input
/// (normalize::NormalizeExpr) and leaves the result un-normalized; run the
/// normalizer again afterwards to fold the residue (`⊕/{v}` etc.).
comp::CExprPtr OptimizeExpr(const comp::CExprPtr& e, comp::NameGen* names,
                            const OptimizeOptions& options = {});

/// Optimizes every comprehension in a target program and renormalizes.
comp::TargetProgram OptimizeTarget(const comp::TargetProgram& program,
                                   comp::NameGen* names,
                                   const OptimizeOptions& options = {});

}  // namespace diablo::opt

#endif  // DIABLO_OPT_OPTIMIZE_H_
