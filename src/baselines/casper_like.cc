#include "baselines/casper_like.h"

#include <functional>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "analysis/lvalues.h"
#include "analysis/restrictions.h"
#include "ast/ast.h"
#include "common/strings.h"
#include "exec/reference_interpreter.h"
#include "parser/parser.h"
#include "runtime/operators.h"
#include "translate/translate.h"

namespace diablo::baselines {

using ast::Expr;
using ast::ExprPtr;
using ast::Stmt;
using ast::StmtPtr;
using runtime::BinOp;
using runtime::Value;
using runtime::ValueVec;

namespace {

/// The synthesis grammar: candidates are (filter predicate, map
/// expression[, key expression]) drawn from terminals mined out of the
/// source program, combined by binary operators up to depth 2.
struct Grammar {
  std::vector<ExprPtr> terminals;

  /// All expressions of depth <= 2 (terminals and one binary node).
  std::vector<ExprPtr> Depth2() const {
    static const BinOp kOps[] = {BinOp::kAdd, BinOp::kMul, BinOp::kLt,
                                 BinOp::kEq, BinOp::kAnd, BinOp::kOr};
    std::vector<ExprPtr> out = terminals;
    for (const ExprPtr& a : terminals) {
      for (const ExprPtr& b : terminals) {
        for (BinOp op : kOps) {
          out.push_back(Expr::MakeBin(op, a, b));
        }
      }
    }
    return out;
  }
};

/// Mines candidate terminals from the program: the loop variable, its
/// projections, literals, and free scalar names (the way Casper seeds its
/// grammar from the source).
Grammar MineGrammar(const ast::Program& program, const std::string& loop_var) {
  Grammar g;
  g.terminals.push_back(Expr::MakeVar(loop_var));
  std::set<std::string> seen;
  std::function<void(const ExprPtr&)> mine_expr = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    if (e->is<Expr::IntConst>() || e->is<Expr::DoubleConst>() ||
        e->is<Expr::StringConst>() || e->is<Expr::BoolConst>()) {
      std::string key = e->ToString();
      if (seen.insert(key).second) g.terminals.push_back(e);
      return;
    }
    if (e->is<Expr::LVal>()) {
      const auto& d = e->as<Expr::LVal>().lvalue;
      if (d->is_proj() && d->proj().base->is_var()) {
        std::string key = StrCat(loop_var, ".", d->proj().field);
        if (seen.insert(key).second) {
          g.terminals.push_back(Expr::MakeLValue(ast::LValue::MakeProj(
              ast::LValue::MakeVar(loop_var), d->proj().field)));
        }
      }
      return;
    }
    if (e->is<Expr::Bin>()) {
      mine_expr(e->as<Expr::Bin>().lhs);
      mine_expr(e->as<Expr::Bin>().rhs);
    }
    if (e->is<Expr::Un>()) mine_expr(e->as<Expr::Un>().operand);
    if (e->is<Expr::Call>()) {
      for (const auto& a : e->as<Expr::Call>().args) mine_expr(a);
    }
  };
  std::function<void(const StmtPtr&)> mine_stmt = [&](const StmtPtr& s) {
    if (s->is<Stmt::Incr>()) {
      mine_expr(s->as<Stmt::Incr>().value);
      if (s->as<Stmt::Incr>().dest->is_index()) {
        for (const auto& i : s->as<Stmt::Incr>().dest->index().indices) {
          mine_expr(i);
        }
      }
    } else if (s->is<Stmt::Assign>()) {
      mine_expr(s->as<Stmt::Assign>().value);
    } else if (s->is<Stmt::ForRange>()) {
      mine_stmt(s->as<Stmt::ForRange>().body);
    } else if (s->is<Stmt::ForEach>()) {
      mine_stmt(s->as<Stmt::ForEach>().body);
    } else if (s->is<Stmt::While>()) {
      mine_stmt(s->as<Stmt::While>().body);
    } else if (s->is<Stmt::If>()) {
      mine_expr(s->as<Stmt::If>().cond);
      mine_stmt(s->as<Stmt::If>().then_branch);
      if (s->as<Stmt::If>().else_branch != nullptr) {
        mine_stmt(s->as<Stmt::If>().else_branch);
      }
    } else if (s->is<Stmt::Block>()) {
      for (const auto& c : s->as<Stmt::Block>().stmts) mine_stmt(c);
    }
  };
  for (const auto& s : program.stmts) mine_stmt(s);
  return g;
}

/// Finds the single for-in loop of a flat program; nullopt for anything
/// more complex (several loops, nested loops, while loops, for-range).
struct LoopShape {
  std::string loop_var;
  std::string collection;
  /// Output: a scalar name or an indexed array name.
  std::string output;
  bool keyed = false;
};

void CountLoops(const StmtPtr& s, int* for_loops, int* other_loops) {
  if (s->is<Stmt::ForEach>()) {
    ++*for_loops;
    CountLoops(s->as<Stmt::ForEach>().body, for_loops, other_loops);
  } else if (s->is<Stmt::ForRange>()) {
    ++*other_loops;
    CountLoops(s->as<Stmt::ForRange>().body, for_loops, other_loops);
  } else if (s->is<Stmt::While>()) {
    ++*other_loops;
    CountLoops(s->as<Stmt::While>().body, for_loops, other_loops);
  } else if (s->is<Stmt::If>()) {
    CountLoops(s->as<Stmt::If>().then_branch, for_loops, other_loops);
    if (s->as<Stmt::If>().else_branch != nullptr) {
      CountLoops(s->as<Stmt::If>().else_branch, for_loops, other_loops);
    }
  } else if (s->is<Stmt::Block>()) {
    for (const auto& c : s->as<Stmt::Block>().stmts) {
      CountLoops(c, for_loops, other_loops);
    }
  }
}

std::optional<LoopShape> AnalyzeShape(const ast::Program& program) {
  int for_loops = 0, other_loops = 0;
  const Stmt::ForEach* loop = nullptr;
  std::function<void(const StmtPtr&)> find = [&](const StmtPtr& s) {
    if (s->is<Stmt::ForEach>()) loop = &s->as<Stmt::ForEach>();
    if (s->is<Stmt::Block>()) {
      for (const auto& c : s->as<Stmt::Block>().stmts) find(c);
    }
  };
  for (const auto& s : program.stmts) {
    CountLoops(s, &for_loops, &other_loops);
    find(s);
  }
  if (for_loops != 1 || other_loops != 0 || loop == nullptr) {
    return std::nullopt;
  }
  if (!loop->collection->is<Expr::LVal>() ||
      !loop->collection->as<Expr::LVal>().lvalue->is_var()) {
    return std::nullopt;
  }
  // The body must be a single (possibly guarded) incremental update, or
  // a block of scalar updates (each output is synthesized independently;
  // the first one stands for the program).
  const Stmt* body = loop->body.get();
  if (body->is<Stmt::If>() && body->as<Stmt::If>().else_branch == nullptr) {
    body = body->as<Stmt::If>().then_branch.get();
  }
  if (body->is<Stmt::Block>()) {
    const auto& block = body->as<Stmt::Block>();
    for (const auto& child : block.stmts) {
      if (!child->is<Stmt::Incr>() ||
          !child->as<Stmt::Incr>().dest->is_var()) {
        return std::nullopt;
      }
    }
    if (block.stmts.empty()) return std::nullopt;
    body = block.stmts[0].get();
  }
  if (!body->is<Stmt::Incr>()) return std::nullopt;
  const auto& incr = body->as<Stmt::Incr>();
  LoopShape shape;
  shape.loop_var = loop->var;
  shape.collection =
      loop->collection->as<Expr::LVal>().lvalue->var().name;
  if (incr.dest->is_var()) {
    shape.output = incr.dest->var().name;
    shape.keyed = false;
    return shape;
  }
  if (incr.dest->is_index() && incr.dest->index().indices.size() == 1) {
    shape.output = incr.dest->index().array;
    shape.keyed = true;
    return shape;
  }
  return std::nullopt;
}

/// Evaluates a grammar expression for one collection element.
StatusOr<Value> EvalCandidate(const ExprPtr& e, const std::string& loop_var,
                              const Value& v,
                              const std::map<std::string, Value>& scalars) {
  if (e->is<Expr::IntConst>()) {
    return Value::MakeInt(e->as<Expr::IntConst>().value);
  }
  if (e->is<Expr::DoubleConst>()) {
    return Value::MakeDouble(e->as<Expr::DoubleConst>().value);
  }
  if (e->is<Expr::BoolConst>()) {
    return Value::MakeBool(e->as<Expr::BoolConst>().value);
  }
  if (e->is<Expr::StringConst>()) {
    return Value::MakeString(e->as<Expr::StringConst>().value);
  }
  if (e->is<Expr::LVal>()) {
    const auto& d = e->as<Expr::LVal>().lvalue;
    if (d->is_var()) {
      if (d->var().name == loop_var) return v;
      auto it = scalars.find(d->var().name);
      if (it != scalars.end()) return it->second;
      return Status::RuntimeError("unbound");
    }
    if (d->is_proj() && d->proj().base->is_var()) {
      if (!v.is_record()) return Status::RuntimeError("not a record");
      const Value* f = v.FindField(d->proj().field);
      if (f == nullptr) return Status::RuntimeError("no field");
      return *f;
    }
    return Status::RuntimeError("unsupported");
  }
  if (e->is<Expr::Bin>()) {
    const auto& b = e->as<Expr::Bin>();
    DIABLO_ASSIGN_OR_RETURN(Value l,
                            EvalCandidate(b.lhs, loop_var, v, scalars));
    DIABLO_ASSIGN_OR_RETURN(Value r,
                            EvalCandidate(b.rhs, loop_var, v, scalars));
    return runtime::EvalBinOp(b.op, l, r);
  }
  return Status::RuntimeError("unsupported");
}

}  // namespace

BaselineResult CasperLikeTranslate(const std::string& source,
                                   int64_t candidate_cap) {
  BaselineResult result;
  StatusOr<ast::Program> parsed_raw = parser::ParseProgram(source);
  if (!parsed_raw.ok()) {
    result.failure_reason = parsed_raw.status().ToString();
    return result;
  }
  StatusOr<ast::Program> parsed =
      analysis::CanonicalizeIncrements(*parsed_raw);
  std::optional<LoopShape> shape = AnalyzeShape(*parsed);
  if (!shape.has_value()) {
    result.failure_reason =
        "program shape outside the synthesizable fragment "
        "(multiple/nested/range loops)";
    return result;
  }

  // Build randomized verification inputs. Element kind is guessed from
  // the mined terminals: strings when string literals appear, records
  // when projections appear, doubles otherwise.
  Grammar grammar = MineGrammar(*parsed, shape->loop_var);
  // Free scalar inputs (like Equal's `x`) join the grammar terminals and
  // are bound alongside the collection: every variable read that is not
  // declared, not an array, not the loop variable and not written.
  std::vector<std::string> free_scalars;
  {
    std::map<std::string, translate::VarInfo> vars =
        translate::InferVars(*parsed);
    std::set<std::string> written;
    std::set<std::string> read;
    for (const auto& s : parsed->stmts) {
      for (const auto& info : analysis::CollectAccesses(*s)) {
        for (const auto& d : info.writers) written.insert(d->RootName());
        for (const auto& d : info.aggregators) written.insert(d->RootName());
        for (const auto& d : info.readers) {
          if (d->is_var()) read.insert(d->var().name);
        }
      }
    }
    for (const std::string& name : read) {
      auto it = vars.find(name);
      bool declared_or_array =
          it != vars.end() && (it->second.declared || it->second.is_array);
      if (!declared_or_array && name != shape->loop_var &&
          written.count(name) == 0) {
        free_scalars.push_back(name);
        grammar.terminals.push_back(Expr::MakeVar(name));
      }
    }
  }
  bool has_string = false, has_proj = false;
  std::vector<std::string> fields;
  for (const ExprPtr& t : grammar.terminals) {
    if (t->is<Expr::StringConst>()) has_string = true;
    if (t->is<Expr::LVal>() && t->as<Expr::LVal>().lvalue->is_proj()) {
      has_proj = true;
      fields.push_back(t->as<Expr::LVal>().lvalue->proj().field);
    }
  }
  std::mt19937_64 rng(20200321);
  auto make_element = [&](int i) -> Value {
    if (has_string) {
      return Value::MakeString(StrCat("key", (i % 5) + 1));
    }
    if (has_proj) {
      runtime::FieldVec fv;
      for (const std::string& f : fields) {
        fv.emplace_back(f, Value::MakeInt(static_cast<int64_t>(rng() % 4)));
      }
      return Value::MakeRecord(std::move(fv));
    }
    // A small value pool straddling the typical mined thresholds, so
    // equality and comparison candidates are distinguishable.
    static const double kPool[] = {0, 1, 2, 99, 100, 150};
    return Value::MakeDouble(kPool[rng() % 6]);
  };

  constexpr int kNumTests = 3;
  constexpr int kElems = 8;
  std::vector<ValueVec> test_inputs;
  std::vector<Value> expected;
  // Free scalars are bound to an element-kind value (Casper mines input
  // bindings from the harness the same way).
  std::map<std::string, Value> scalar_bindings;
  for (const std::string& name : free_scalars) {
    scalar_bindings[name] = make_element(0);
  }
  for (int t = 0; t < kNumTests; ++t) {
    ValueVec elems;
    Value constant = make_element(0);
    for (int i = 0; i < kElems; ++i) {
      // The first test uses a constant collection: it separates
      // all-equal-sensitive programs (Equal) from trivially-false
      // candidates that bounded testing could not otherwise reject.
      elems.push_back(Value::MakePair(
          Value::MakeInt(i), t == 0 ? constant : make_element(i)));
    }
    exec::ReferenceInterpreter ref;
    exec::ReferenceInterpreter::Bindings inputs;
    inputs[shape->collection] = Value::MakeBag(elems);
    for (const auto& [name, value] : scalar_bindings) inputs[name] = value;
    Status st = ref.Run(*parsed, inputs);
    if (!st.ok()) {
      result.failure_reason =
          StrCat("could not model inputs: ", st.ToString());
      return result;
    }
    StatusOr<Value> out = shape->keyed ? ref.GetArray(shape->output)
                                       : ref.GetScalar(shape->output);
    if (!out.ok()) {
      result.failure_reason = out.status().ToString();
      return result;
    }
    test_inputs.push_back(std::move(elems));
    expected.push_back(std::move(*out));
  }

  // Enumerate candidates: (predicate, map expr[, key expr], operator).
  static const BinOp kReduceOps[] = {BinOp::kAdd, BinOp::kMul, BinOp::kMin,
                                     BinOp::kMax, BinOp::kAnd, BinOp::kOr};
  std::vector<ExprPtr> exprs = grammar.Depth2();
  std::vector<ExprPtr> preds = exprs;
  preds.insert(preds.begin(), Expr::MakeBool(true));

  auto verify = [&](const ExprPtr& pred, const ExprPtr& key,
                    const ExprPtr& map, BinOp op) -> bool {
    for (int t = 0; t < kNumTests; ++t) {
      std::map<Value, Value> agg;
      Value scalar_acc;
      bool have_scalar = false;
      for (const Value& pair : test_inputs[t]) {
        const Value& v = pair.tuple()[1];
        StatusOr<Value> p = EvalCandidate(pred, shape->loop_var, v,
                                          scalar_bindings);
        if (!p.ok() || !p->is_bool()) return false;
        if (!p->AsBool()) continue;
        StatusOr<Value> m = EvalCandidate(map, shape->loop_var, v,
                                          scalar_bindings);
        if (!m.ok()) return false;
        if (shape->keyed) {
          StatusOr<Value> k =
              EvalCandidate(key, shape->loop_var, v, scalar_bindings);
          if (!k.ok()) return false;
          auto it = agg.find(*k);
          if (it == agg.end()) {
            agg.emplace(*k, *m);
          } else {
            StatusOr<Value> combined = runtime::EvalBinOp(op, it->second, *m);
            if (!combined.ok()) return false;
            it->second = *combined;
          }
        } else if (!have_scalar) {
          scalar_acc = *m;
          have_scalar = true;
        } else {
          StatusOr<Value> combined = runtime::EvalBinOp(op, scalar_acc, *m);
          if (!combined.ok()) return false;
          scalar_acc = *combined;
        }
      }
      if (shape->keyed) {
        ValueVec rows;
        for (const auto& [k, val] : agg) {
          rows.push_back(Value::MakePair(k, val));
        }
        if (!runtime::AlmostEquals(Value::MakeBag(std::move(rows)),
                                   expected[t], 1e-9)) {
          return false;
        }
      } else {
        if (!have_scalar) {
          // Nothing passed the filter: the fold yields the identity.
          scalar_acc = runtime::MonoidIdentity(op, Value::MakeDouble(0));
        }
        if (!runtime::AlmostEquals(scalar_acc, expected[t], 1e-9)) {
          return false;
        }
      }
    }
    return true;
  };

  std::vector<ExprPtr> keys =
      shape->keyed ? exprs : std::vector<ExprPtr>{Expr::MakeInt(0)};
  for (const ExprPtr& pred : preds) {
    for (const ExprPtr& key : keys) {
      for (const ExprPtr& map : exprs) {
        for (BinOp op : kReduceOps) {
          if (++result.states_explored > candidate_cap) {
            result.failure_reason = "candidate space exhausted";
            return result;
          }
          if (verify(pred, key, map, op)) {
            result.success = true;
            result.output = StrCat(
                shape->output, " = ", shape->collection, ".filter(",
                shape->loop_var, " => ", pred->ToString(), ")",
                shape->keyed
                    ? StrCat(".map(", shape->loop_var, " => (",
                             key->ToString(), ", ", map->ToString(),
                             ")).reduceByKey(_", runtime::BinOpName(op), "_)")
                    : StrCat(".map(", shape->loop_var, " => ",
                             map->ToString(), ").reduce(_",
                             runtime::BinOpName(op), "_)"));
            return result;
          }
        }
      }
    }
  }
  result.failure_reason = "no candidate verified";
  return result;
}

}  // namespace diablo::baselines
