#ifndef DIABLO_BASELINES_MOLD_LIKE_H_
#define DIABLO_BASELINES_MOLD_LIKE_H_

#include <cstdint>
#include <string>

namespace diablo::baselines {

/// Outcome of a baseline translation attempt.
struct BaselineResult {
  bool success = false;
  /// Pseudo-Spark rendering of the translated program (when successful).
  std::string output;
  /// Search effort: states explored (MOLD-like) or candidates tried
  /// (Casper-like).
  int64_t states_explored = 0;
  std::string failure_reason;
};

/// A template-rewrite translator in the style of MOLD (Radoi et al.,
/// OOPSLA 2014): a database of syntactic loop templates (fold, map,
/// group-by) applied by an exhaustive search over rewrite sequences, with
/// no compositional fallback. Succeeds only when the whole program can be
/// covered by templates; the search cost grows combinatorially with the
/// number of statements and loop nests, reproducing the orders-of-
/// magnitude translation-time gap of Table 1. `state_cap` bounds the
/// search; exceeding it is a failure.
BaselineResult MoldLikeTranslate(const std::string& source,
                                 int64_t state_cap = 2000000);

}  // namespace diablo::baselines

#endif  // DIABLO_BASELINES_MOLD_LIKE_H_
