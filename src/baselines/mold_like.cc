#include "baselines/mold_like.h"

#include <vector>

#include "analysis/lvalues.h"
#include "analysis/restrictions.h"
#include "ast/ast.h"
#include "common/strings.h"
#include "parser/parser.h"

namespace diablo::baselines {

using ast::Expr;
using ast::LValue;
using ast::Stmt;
using ast::StmtPtr;

namespace {

/// A translation state: statements still to be covered by templates plus
/// the pseudo-Spark fragments produced so far.
struct SearchState {
  std::vector<StmtPtr> pending;
  std::vector<std::string> emitted;
};

class MoldSearch {
 public:
  explicit MoldSearch(int64_t cap) : cap_(cap) {}

  bool Run(SearchState state, std::vector<std::string>* out) {
    if (state.pending.empty()) {
      *out = state.emitted;
      return true;
    }
    if (++explored_ > cap_) {
      exhausted_ = true;
      return false;
    }
    StmtPtr next = state.pending.front();
    std::vector<StmtPtr> rest(state.pending.begin() + 1,
                              state.pending.end());

    // Template attempts, each charged for the subtree walk it performs.
    for (int rule = 0; rule < kNumRules; ++rule) {
      explored_ += Size(*next);
      if (explored_ > cap_) {
        exhausted_ = true;
        return false;
      }
      std::vector<std::string> emitted;
      std::vector<StmtPtr> replacement;
      if (!ApplyRule(rule, next, &emitted, &replacement)) continue;
      SearchState child;
      child.pending = replacement;
      for (const StmtPtr& s : rest) child.pending.push_back(s);
      child.emitted = state.emitted;
      for (std::string& e : emitted) child.emitted.push_back(std::move(e));
      if (Run(std::move(child), out)) return true;
    }
    return false;
  }

  int64_t explored() const { return explored_; }
  bool exhausted() const { return exhausted_; }

 private:
  static constexpr int kNumRules = 6;

  static int Size(const Stmt& s) {
    if (s.is<Stmt::Block>()) {
      int n = 1;
      for (const auto& c : s.as<Stmt::Block>().stmts) n += Size(*c);
      return n;
    }
    if (s.is<Stmt::ForRange>()) return 1 + Size(*s.as<Stmt::ForRange>().body);
    if (s.is<Stmt::ForEach>()) return 1 + Size(*s.as<Stmt::ForEach>().body);
    if (s.is<Stmt::While>()) return 1 + Size(*s.as<Stmt::While>().body);
    if (s.is<Stmt::If>()) {
      int n = 1 + Size(*s.as<Stmt::If>().then_branch);
      if (s.as<Stmt::If>().else_branch != nullptr) {
        n += Size(*s.as<Stmt::If>().else_branch);
      }
      return n;
    }
    return 1;
  }

  /// True when the expression only reads the loop variable and loop
  /// constants (no other array reads), i.e. fits a flat template.
  static bool FlatExpr(const ast::ExprPtr& e, const std::string& loop_var) {
    std::vector<ast::LValuePtr> reads;
    analysis::CollectExprReads(e, &reads);
    for (const auto& d : reads) {
      if (d->is_var()) continue;  // scalars and the loop variable
      if (d->is_index()) return false;
      if (d->is_proj() && !d->proj().base->is_var()) return false;
    }
    (void)loop_var;
    return true;
  }

  bool ApplyRule(int rule, const StmtPtr& s,
                 std::vector<std::string>* emitted,
                 std::vector<StmtPtr>* replacement) {
    switch (rule) {
      case 0: {  // fold: for v in V do <scalar> op= f(v)
        if (!s->is<Stmt::ForEach>()) return false;
        const auto& loop = s->as<Stmt::ForEach>();
        const Stmt* body = loop.body.get();
        if (!body->is<Stmt::Incr>()) return false;
        const auto& incr = body->as<Stmt::Incr>();
        if (!incr.dest->is_var()) return false;
        if (!FlatExpr(incr.value, loop.var)) return false;
        emitted->push_back(StrCat(
            incr.dest->ToString(), " = ", loop.collection->ToString(),
            ".map(", loop.var, " => ", incr.value->ToString(), ").reduce(_",
            runtime::BinOpName(incr.op), "_)"));
        return true;
      }
      case 1: {  // filtered fold: for v in V do if (c) <scalar> op= f(v)
        if (!s->is<Stmt::ForEach>()) return false;
        const auto& loop = s->as<Stmt::ForEach>();
        if (!loop.body->is<Stmt::If>()) return false;
        const auto& branch = loop.body->as<Stmt::If>();
        if (branch.else_branch != nullptr) return false;
        if (!branch.then_branch->is<Stmt::Incr>()) return false;
        const auto& incr = branch.then_branch->as<Stmt::Incr>();
        if (!incr.dest->is_var()) return false;
        if (!FlatExpr(branch.cond, loop.var) ||
            !FlatExpr(incr.value, loop.var)) {
          return false;
        }
        emitted->push_back(StrCat(
            incr.dest->ToString(), " = ", loop.collection->ToString(),
            ".filter(", loop.var, " => ", branch.cond->ToString(), ").map(",
            loop.var, " => ", incr.value->ToString(), ").reduce(_",
            runtime::BinOpName(incr.op), "_)"));
        return true;
      }
      case 2: {  // group-by: for v in V do C[k(v)] op= f(v)
        if (!s->is<Stmt::ForEach>()) return false;
        const auto& loop = s->as<Stmt::ForEach>();
        if (!loop.body->is<Stmt::Incr>()) return false;
        const auto& incr = loop.body->as<Stmt::Incr>();
        if (!incr.dest->is_index() ||
            incr.dest->index().indices.size() != 1) {
          return false;
        }
        if (!FlatExpr(incr.dest->index().indices[0], loop.var) ||
            !FlatExpr(incr.value, loop.var)) {
          return false;
        }
        emitted->push_back(StrCat(
            incr.dest->index().array, " = ", loop.collection->ToString(),
            ".map(", loop.var, " => (",
            incr.dest->index().indices[0]->ToString(), ", ",
            incr.value->ToString(), ")).reduceByKey(_",
            runtime::BinOpName(incr.op), "_)"));
        return true;
      }
      case 3: {  // map: for i = a,b do A[i] := f(B[i])
        if (!s->is<Stmt::ForRange>()) return false;
        const auto& loop = s->as<Stmt::ForRange>();
        if (!loop.body->is<Stmt::Assign>()) return false;
        const auto& assign = loop.body->as<Stmt::Assign>();
        if (!assign.dest->is_index() ||
            assign.dest->index().indices.size() != 1) {
          return false;
        }
        const auto& idx = assign.dest->index().indices[0];
        if (!idx->is<Expr::LVal>() ||
            !idx->as<Expr::LVal>().lvalue->is_var() ||
            idx->as<Expr::LVal>().lvalue->var().name != loop.var) {
          return false;
        }
        // The right-hand side may index exactly one array at [i].
        std::vector<ast::LValuePtr> reads;
        analysis::CollectExprReads(assign.value, &reads);
        std::string src;
        for (const auto& d : reads) {
          if (!d->is_index()) continue;
          if (d->index().indices.size() != 1) return false;
          const auto& ri = d->index().indices[0];
          if (!ri->is<Expr::LVal>() ||
              !ri->as<Expr::LVal>().lvalue->is_var() ||
              ri->as<Expr::LVal>().lvalue->var().name != loop.var) {
            return false;
          }
          if (!src.empty() && src != d->index().array) return false;
          src = d->index().array;
        }
        if (src.empty()) return false;
        emitted->push_back(StrCat(assign.dest->index().array, " = ", src,
                                  ".map { case (", loop.var, ", _v) => (",
                                  loop.var, ", ",
                                  assign.value->ToString(), ") }"));
        return true;
      }
      case 4: {  // loop splitting: for .. do { s1; ...; sn }
        bool is_range = s->is<Stmt::ForRange>();
        if (!is_range && !s->is<Stmt::ForEach>()) return false;
        const StmtPtr& body = is_range ? s->as<Stmt::ForRange>().body
                                       : s->as<Stmt::ForEach>().body;
        if (!body->is<Stmt::Block>()) return false;
        const auto& block = body->as<Stmt::Block>();
        if (block.stmts.size() < 2) return false;
        for (const auto& child : block.stmts) {
          StmtPtr wrapped =
              is_range
                  ? Stmt::MakeForRange(s->as<Stmt::ForRange>().var,
                                       s->as<Stmt::ForRange>().lo,
                                       s->as<Stmt::ForRange>().hi, child)
                  : Stmt::MakeForEach(s->as<Stmt::ForEach>().var,
                                      s->as<Stmt::ForEach>().collection,
                                      child);
          replacement->push_back(std::move(wrapped));
        }
        return true;
      }
      case 5: {  // pass-through for declarations and scalar statements
        if (s->is<Stmt::Decl>()) {
          emitted->push_back(StrCat("// ", s->ToString()));
          return true;
        }
        if (s->is<Stmt::Assign>() &&
            s->as<Stmt::Assign>().dest->is_var()) {
          emitted->push_back(s->ToString());
          return true;
        }
        if (s->is<Stmt::Block>()) {
          for (const auto& child : s->as<Stmt::Block>().stmts) {
            replacement->push_back(child);
          }
          return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  int64_t cap_;
  int64_t explored_ = 0;
  bool exhausted_ = false;
};

}  // namespace

BaselineResult MoldLikeTranslate(const std::string& source,
                                 int64_t state_cap) {
  BaselineResult result;
  StatusOr<ast::Program> parsed = parser::ParseProgram(source);
  if (!parsed.ok()) {
    result.failure_reason = parsed.status().ToString();
    return result;
  }
  // Recognize d := d ⊕ e as an incremental update, as MOLD's fold
  // detection does.
  ast::Program canonical = analysis::CanonicalizeIncrements(*parsed);
  SearchState initial;
  initial.pending = canonical.stmts;
  MoldSearch search(state_cap);
  std::vector<std::string> out;
  if (search.Run(std::move(initial), &out)) {
    result.success = true;
    result.output = Join(out, "\n");
  } else {
    result.failure_reason = search.exhausted()
                                ? "template search exhausted"
                                : "no template covers the program";
  }
  result.states_explored = search.explored();
  return result;
}

}  // namespace diablo::baselines
