#ifndef DIABLO_BASELINES_CASPER_LIKE_H_
#define DIABLO_BASELINES_CASPER_LIKE_H_

#include <string>

#include "baselines/mold_like.h"

namespace diablo::baselines {

/// A synthesize-and-verify translator in the style of Casper (Ahmad &
/// Cheung, SIGMOD 2018): enumerates candidate map/reduce program
/// summaries from a small expression grammar and checks each against the
/// sequential reference semantics on randomized inputs (Casper uses a
/// Dafny proof; bounded testing is strictly cheaper, so the translation-
/// time gap reproduced here is conservative). Handles only flat
/// single-collection loops computing one scalar or one keyed aggregate —
/// everything else fails, like the `fail` entries of Table 1.
/// `candidate_cap` bounds the enumeration.
BaselineResult CasperLikeTranslate(const std::string& source,
                                   int64_t candidate_cap = 2000000);

}  // namespace diablo::baselines

#endif  // DIABLO_BASELINES_CASPER_LIKE_H_
