#include "comp/comp.h"

namespace diablo::comp {

// ----------------------------- Pattern -------------------------------------

void Pattern::CollectVars(std::vector<std::string>* out) const {
  if (!is_tuple) {
    if (var != "_") out->push_back(var);
    return;
  }
  for (const Pattern& p : elems) p.CollectVars(out);
}

std::vector<std::string> Pattern::Vars() const {
  std::vector<std::string> out;
  CollectVars(&out);
  return out;
}

bool Pattern::operator==(const Pattern& other) const {
  if (is_tuple != other.is_tuple) return false;
  if (!is_tuple) return var == other.var;
  if (elems.size() != other.elems.size()) return false;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (!(elems[i] == other.elems[i])) return false;
  }
  return true;
}

// ----------------------------- factories -----------------------------------

namespace {
CExprPtr Wrap(CExpr e) { return std::make_shared<CExpr>(std::move(e)); }
}  // namespace

CExprPtr MakeVar(std::string name) {
  return Wrap(CExpr{CExpr::Var{std::move(name)}});
}
CExprPtr MakeBin(runtime::BinOp op, CExprPtr l, CExprPtr r) {
  return Wrap(CExpr{CExpr::Bin{op, std::move(l), std::move(r)}});
}
CExprPtr MakeUn(runtime::UnOp op, CExprPtr e) {
  return Wrap(CExpr{CExpr::Un{op, std::move(e)}});
}
CExprPtr MakeTuple(std::vector<CExprPtr> elems) {
  return Wrap(CExpr{CExpr::TupleCons{std::move(elems)}});
}
CExprPtr MakeRecord(std::vector<std::pair<std::string, CExprPtr>> fields) {
  return Wrap(CExpr{CExpr::RecordCons{std::move(fields)}});
}
CExprPtr MakeProj(CExprPtr base, std::string field) {
  return Wrap(CExpr{CExpr::Proj{std::move(base), std::move(field)}});
}
CExprPtr MakeInt(int64_t v) { return Wrap(CExpr{CExpr::IntConst{v}}); }
CExprPtr MakeDouble(double v) { return Wrap(CExpr{CExpr::DoubleConst{v}}); }
CExprPtr MakeBool(bool v) { return Wrap(CExpr{CExpr::BoolConst{v}}); }
CExprPtr MakeString(std::string v) {
  return Wrap(CExpr{CExpr::StringConst{std::move(v)}});
}
CExprPtr MakeCall(std::string fn, std::vector<CExprPtr> args) {
  return Wrap(CExpr{CExpr::Call{std::move(fn), std::move(args)}});
}
CExprPtr MakeReduce(runtime::BinOp op, CExprPtr arg) {
  return Wrap(CExpr{CExpr::Reduce{op, std::move(arg)}});
}
CExprPtr MakeNested(CompPtr comp) {
  return Wrap(CExpr{CExpr::Nested{std::move(comp)}});
}
CExprPtr MakeRange(CExprPtr lo, CExprPtr hi) {
  return Wrap(CExpr{CExpr::Range{std::move(lo), std::move(hi)}});
}
CExprPtr MakeMerge(CExprPtr left, CExprPtr right) {
  return Wrap(CExpr{CExpr::Merge{std::move(left), std::move(right),
                                 /*has_op=*/false, runtime::BinOp::kAdd}});
}
CExprPtr MakeMergeOp(runtime::BinOp op, CExprPtr left, CExprPtr right) {
  return Wrap(
      CExpr{CExpr::Merge{std::move(left), std::move(right), /*has_op=*/true, op}});
}
CExprPtr MakeBag(std::vector<CExprPtr> elems) {
  return Wrap(CExpr{CExpr::BagCons{std::move(elems)}});
}

Qualifier Qualifier::Generator(Pattern p, CExprPtr domain) {
  Qualifier q;
  q.kind = Kind::kGenerator;
  q.pattern = std::move(p);
  q.expr = std::move(domain);
  return q;
}
Qualifier Qualifier::Let(Pattern p, CExprPtr e) {
  Qualifier q;
  q.kind = Kind::kLet;
  q.pattern = std::move(p);
  q.expr = std::move(e);
  return q;
}
Qualifier Qualifier::Condition(CExprPtr e) {
  Qualifier q;
  q.kind = Kind::kCondition;
  q.expr = std::move(e);
  return q;
}
Qualifier Qualifier::GroupBy(Pattern p, CExprPtr key) {
  Qualifier q;
  q.kind = Kind::kGroupBy;
  q.pattern = std::move(p);
  q.expr = std::move(key);
  return q;
}

CompPtr MakeComp(CExprPtr head, std::vector<Qualifier> qualifiers) {
  auto c = std::make_shared<Comprehension>();
  c->head = std::move(head);
  c->qualifiers = std::move(qualifiers);
  return c;
}

TargetStmtPtr MakeAssign(std::string var, CExprPtr value, bool is_array,
                         SourceLocation loc) {
  auto s = std::make_shared<TargetStmt>();
  s->node = TargetStmt::Assign{std::move(var), std::move(value), is_array};
  s->loc = loc;
  return s;
}
TargetStmtPtr MakeWhile(CExprPtr cond, std::vector<TargetStmtPtr> body,
                        SourceLocation loc) {
  auto s = std::make_shared<TargetStmt>();
  s->node = TargetStmt::While{std::move(cond), std::move(body)};
  s->loc = loc;
  return s;
}
TargetStmtPtr MakeDeclare(std::string var, bool is_array, CExprPtr init,
                          SourceLocation loc) {
  auto s = std::make_shared<TargetStmt>();
  s->node = TargetStmt::Declare{std::move(var), is_array, std::move(init)};
  s->loc = loc;
  return s;
}

// ----------------------------- Equals --------------------------------------

namespace {

bool CompEquals(const CompPtr& a, const CompPtr& b);

}  // namespace

bool Equals(const CExprPtr& a, const CExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->node.index() != b->node.index()) return false;
  if (a->is<CExpr::Var>()) return a->as<CExpr::Var>().name == b->as<CExpr::Var>().name;
  if (a->is<CExpr::Bin>()) {
    const auto& x = a->as<CExpr::Bin>();
    const auto& y = b->as<CExpr::Bin>();
    return x.op == y.op && Equals(x.lhs, y.lhs) && Equals(x.rhs, y.rhs);
  }
  if (a->is<CExpr::Un>()) {
    const auto& x = a->as<CExpr::Un>();
    const auto& y = b->as<CExpr::Un>();
    return x.op == y.op && Equals(x.operand, y.operand);
  }
  if (a->is<CExpr::TupleCons>()) {
    const auto& x = a->as<CExpr::TupleCons>().elems;
    const auto& y = b->as<CExpr::TupleCons>().elems;
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!Equals(x[i], y[i])) return false;
    }
    return true;
  }
  if (a->is<CExpr::RecordCons>()) {
    const auto& x = a->as<CExpr::RecordCons>().fields;
    const auto& y = b->as<CExpr::RecordCons>().fields;
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].first != y[i].first || !Equals(x[i].second, y[i].second)) {
        return false;
      }
    }
    return true;
  }
  if (a->is<CExpr::Proj>()) {
    const auto& x = a->as<CExpr::Proj>();
    const auto& y = b->as<CExpr::Proj>();
    return x.field == y.field && Equals(x.base, y.base);
  }
  if (a->is<CExpr::IntConst>()) {
    return a->as<CExpr::IntConst>().value == b->as<CExpr::IntConst>().value;
  }
  if (a->is<CExpr::DoubleConst>()) {
    return a->as<CExpr::DoubleConst>().value ==
           b->as<CExpr::DoubleConst>().value;
  }
  if (a->is<CExpr::BoolConst>()) {
    return a->as<CExpr::BoolConst>().value == b->as<CExpr::BoolConst>().value;
  }
  if (a->is<CExpr::StringConst>()) {
    return a->as<CExpr::StringConst>().value ==
           b->as<CExpr::StringConst>().value;
  }
  if (a->is<CExpr::Call>()) {
    const auto& x = a->as<CExpr::Call>();
    const auto& y = b->as<CExpr::Call>();
    if (x.function != y.function || x.args.size() != y.args.size()) {
      return false;
    }
    for (size_t i = 0; i < x.args.size(); ++i) {
      if (!Equals(x.args[i], y.args[i])) return false;
    }
    return true;
  }
  if (a->is<CExpr::Reduce>()) {
    const auto& x = a->as<CExpr::Reduce>();
    const auto& y = b->as<CExpr::Reduce>();
    return x.op == y.op && Equals(x.arg, y.arg);
  }
  if (a->is<CExpr::Nested>()) {
    return CompEquals(a->as<CExpr::Nested>().comp, b->as<CExpr::Nested>().comp);
  }
  if (a->is<CExpr::Range>()) {
    const auto& x = a->as<CExpr::Range>();
    const auto& y = b->as<CExpr::Range>();
    return Equals(x.lo, y.lo) && Equals(x.hi, y.hi);
  }
  if (a->is<CExpr::Merge>()) {
    const auto& x = a->as<CExpr::Merge>();
    const auto& y = b->as<CExpr::Merge>();
    return x.has_op == y.has_op && (!x.has_op || x.op == y.op) &&
           Equals(x.left, y.left) && Equals(x.right, y.right);
  }
  const auto& x = a->as<CExpr::BagCons>().elems;
  const auto& y = b->as<CExpr::BagCons>().elems;
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Equals(x[i], y[i])) return false;
  }
  return true;
}

namespace {

bool CompEquals(const CompPtr& a, const CompPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->qualifiers.size() != b->qualifiers.size()) return false;
  for (size_t i = 0; i < a->qualifiers.size(); ++i) {
    const Qualifier& x = a->qualifiers[i];
    const Qualifier& y = b->qualifiers[i];
    if (x.kind != y.kind) return false;
    if (x.kind != Qualifier::Kind::kCondition && !(x.pattern == y.pattern)) {
      return false;
    }
    if ((x.expr == nullptr) != (y.expr == nullptr)) return false;
    if (x.expr != nullptr && !Equals(x.expr, y.expr)) return false;
  }
  return Equals(a->head, b->head);
}

// ----------------------------- FreeVars ------------------------------------

void FreeVarsInto(const CExprPtr& e, std::set<std::string>* bound,
                  std::set<std::string>* out);

void FreeVarsComp(const CompPtr& comp, std::set<std::string> bound,
                  std::set<std::string>* out) {
  for (const Qualifier& q : comp->qualifiers) {
    if (q.expr != nullptr) FreeVarsInto(q.expr, &bound, out);
    if (q.kind == Qualifier::Kind::kGenerator ||
        q.kind == Qualifier::Kind::kLet ||
        q.kind == Qualifier::Kind::kGroupBy) {
      for (const std::string& v : q.pattern.Vars()) bound.insert(v);
    }
  }
  FreeVarsInto(comp->head, &bound, out);
}

void FreeVarsInto(const CExprPtr& e, std::set<std::string>* bound,
                  std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->is<CExpr::Var>()) {
    const std::string& name = e->as<CExpr::Var>().name;
    if (bound->count(name) == 0) out->insert(name);
    return;
  }
  if (e->is<CExpr::Bin>()) {
    FreeVarsInto(e->as<CExpr::Bin>().lhs, bound, out);
    FreeVarsInto(e->as<CExpr::Bin>().rhs, bound, out);
    return;
  }
  if (e->is<CExpr::Un>()) {
    FreeVarsInto(e->as<CExpr::Un>().operand, bound, out);
    return;
  }
  if (e->is<CExpr::TupleCons>()) {
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      FreeVarsInto(c, bound, out);
    }
    return;
  }
  if (e->is<CExpr::RecordCons>()) {
    for (const auto& [unused, c] : e->as<CExpr::RecordCons>().fields) {
      FreeVarsInto(c, bound, out);
    }
    return;
  }
  if (e->is<CExpr::Proj>()) {
    FreeVarsInto(e->as<CExpr::Proj>().base, bound, out);
    return;
  }
  if (e->is<CExpr::Call>()) {
    for (const auto& c : e->as<CExpr::Call>().args) {
      FreeVarsInto(c, bound, out);
    }
    return;
  }
  if (e->is<CExpr::Reduce>()) {
    FreeVarsInto(e->as<CExpr::Reduce>().arg, bound, out);
    return;
  }
  if (e->is<CExpr::Nested>()) {
    FreeVarsComp(e->as<CExpr::Nested>().comp, *bound, out);
    return;
  }
  if (e->is<CExpr::Range>()) {
    FreeVarsInto(e->as<CExpr::Range>().lo, bound, out);
    FreeVarsInto(e->as<CExpr::Range>().hi, bound, out);
    return;
  }
  if (e->is<CExpr::Merge>()) {
    FreeVarsInto(e->as<CExpr::Merge>().left, bound, out);
    FreeVarsInto(e->as<CExpr::Merge>().right, bound, out);
    return;
  }
  if (e->is<CExpr::BagCons>()) {
    for (const auto& c : e->as<CExpr::BagCons>().elems) {
      FreeVarsInto(c, bound, out);
    }
    return;
  }
  // Constants have no free variables.
}

// ----------------------------- Substitute ----------------------------------

CompPtr SubstituteComp(const CompPtr& comp,
                       std::map<std::string, CExprPtr> subst);

}  // namespace

std::set<std::string> FreeVars(const CExprPtr& e) {
  std::set<std::string> bound, out;
  FreeVarsInto(e, &bound, &out);
  return out;
}

CExprPtr Substitute(const CExprPtr& e,
                    const std::map<std::string, CExprPtr>& subst) {
  if (e == nullptr || subst.empty()) return e;
  if (e->is<CExpr::Var>()) {
    auto it = subst.find(e->as<CExpr::Var>().name);
    return it != subst.end() ? it->second : e;
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    return MakeBin(b.op, Substitute(b.lhs, subst), Substitute(b.rhs, subst));
  }
  if (e->is<CExpr::Un>()) {
    const auto& u = e->as<CExpr::Un>();
    return MakeUn(u.op, Substitute(u.operand, subst));
  }
  if (e->is<CExpr::TupleCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      elems.push_back(Substitute(c, subst));
    }
    return MakeTuple(std::move(elems));
  }
  if (e->is<CExpr::RecordCons>()) {
    std::vector<std::pair<std::string, CExprPtr>> fields;
    for (const auto& [name, c] : e->as<CExpr::RecordCons>().fields) {
      fields.emplace_back(name, Substitute(c, subst));
    }
    return MakeRecord(std::move(fields));
  }
  if (e->is<CExpr::Proj>()) {
    const auto& p = e->as<CExpr::Proj>();
    return MakeProj(Substitute(p.base, subst), p.field);
  }
  if (e->is<CExpr::Call>()) {
    const auto& c = e->as<CExpr::Call>();
    std::vector<CExprPtr> args;
    for (const auto& a : c.args) args.push_back(Substitute(a, subst));
    return MakeCall(c.function, std::move(args));
  }
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    return MakeReduce(r.op, Substitute(r.arg, subst));
  }
  if (e->is<CExpr::Nested>()) {
    return MakeNested(SubstituteComp(e->as<CExpr::Nested>().comp, subst));
  }
  if (e->is<CExpr::Range>()) {
    const auto& r = e->as<CExpr::Range>();
    return MakeRange(Substitute(r.lo, subst), Substitute(r.hi, subst));
  }
  if (e->is<CExpr::Merge>()) {
    const auto& m = e->as<CExpr::Merge>();
    CExprPtr left = Substitute(m.left, subst);
    CExprPtr right = Substitute(m.right, subst);
    return m.has_op ? MakeMergeOp(m.op, std::move(left), std::move(right))
                    : MakeMerge(std::move(left), std::move(right));
  }
  if (e->is<CExpr::BagCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::BagCons>().elems) {
      elems.push_back(Substitute(c, subst));
    }
    return MakeBag(std::move(elems));
  }
  return e;  // constants
}

namespace {

CompPtr SubstituteComp(const CompPtr& comp,
                       std::map<std::string, CExprPtr> subst) {
  std::vector<Qualifier> quals;
  for (const Qualifier& q : comp->qualifiers) {
    Qualifier nq = q;
    if (q.expr != nullptr) nq.expr = Substitute(q.expr, subst);
    // Names (re)bound here shadow the substitution from this point on.
    if (q.kind == Qualifier::Kind::kGenerator ||
        q.kind == Qualifier::Kind::kLet ||
        q.kind == Qualifier::Kind::kGroupBy) {
      for (const std::string& v : q.pattern.Vars()) subst.erase(v);
    }
    quals.push_back(std::move(nq));
  }
  return MakeComp(Substitute(comp->head, subst), std::move(quals));
}

}  // namespace

}  // namespace diablo::comp
