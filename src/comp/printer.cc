#include <sstream>

#include "common/strings.h"
#include "comp/comp.h"

namespace diablo::comp {

std::string Pattern::ToString() const {
  if (!is_tuple) return var;
  std::vector<std::string> parts;
  for (const Pattern& p : elems) parts.push_back(p.ToString());
  return StrCat("(", Join(parts, ","), ")");
}

std::string CExpr::ToString() const {
  if (is<Var>()) return as<Var>().name;
  if (is<Bin>()) {
    const auto& b = as<Bin>();
    return StrCat("(", b.lhs->ToString(), " ", runtime::BinOpName(b.op), " ",
                  b.rhs->ToString(), ")");
  }
  if (is<Un>()) {
    const auto& u = as<Un>();
    return StrCat(runtime::UnOpName(u.op), u.operand->ToString());
  }
  if (is<TupleCons>()) {
    std::vector<std::string> parts;
    for (const auto& e : as<TupleCons>().elems) parts.push_back(e->ToString());
    return StrCat("(", Join(parts, ","), ")");
  }
  if (is<RecordCons>()) {
    std::vector<std::string> parts;
    for (const auto& [n, e] : as<RecordCons>().fields) {
      parts.push_back(StrCat(n, "=", e->ToString()));
    }
    return StrCat("<", Join(parts, ","), ">");
  }
  if (is<Proj>()) {
    return StrCat(as<Proj>().base->ToString(), ".", as<Proj>().field);
  }
  if (is<IntConst>()) return StrCat(as<IntConst>().value);
  if (is<DoubleConst>()) {
    std::ostringstream os;
    os << as<DoubleConst>().value;
    return os.str();
  }
  if (is<BoolConst>()) return as<BoolConst>().value ? "true" : "false";
  if (is<StringConst>()) return StrCat("\"", as<StringConst>().value, "\"");
  if (is<Call>()) {
    std::vector<std::string> parts;
    for (const auto& e : as<Call>().args) parts.push_back(e->ToString());
    return StrCat(as<Call>().function, "(", Join(parts, ","), ")");
  }
  if (is<Reduce>()) {
    return StrCat(runtime::BinOpName(as<Reduce>().op), "/",
                  as<Reduce>().arg->ToString());
  }
  if (is<Nested>()) return as<Nested>().comp->ToString();
  if (is<Range>()) {
    return StrCat("range(", as<Range>().lo->ToString(), ",",
                  as<Range>().hi->ToString(), ")");
  }
  if (is<Merge>()) {
    const auto& m = as<Merge>();
    std::string op = m.has_op ? StrCat("<|", runtime::BinOpName(m.op)) : "<|";
    return StrCat(m.left->ToString(), " ", op, " ", m.right->ToString());
  }
  std::vector<std::string> parts;
  for (const auto& e : as<BagCons>().elems) parts.push_back(e->ToString());
  return StrCat("{", Join(parts, ","), "}");
}

std::string Qualifier::ToString() const {
  switch (kind) {
    case Kind::kGenerator:
      return StrCat(pattern.ToString(), " <- ", expr->ToString());
    case Kind::kLet:
      return StrCat("let ", pattern.ToString(), " = ", expr->ToString());
    case Kind::kCondition:
      return expr->ToString();
    case Kind::kGroupBy:
      if (expr == nullptr) return StrCat("group by ", pattern.ToString());
      return StrCat("group by ", pattern.ToString(), " : ",
                    expr->ToString());
  }
  return "?";
}

std::string Comprehension::ToString() const {
  std::vector<std::string> parts;
  for (const Qualifier& q : qualifiers) parts.push_back(q.ToString());
  return StrCat("{ ", head->ToString(), " | ", Join(parts, ", "), " }");
}

std::string TargetStmt::ToString() const {
  if (is<Assign>()) {
    const auto& a = as<Assign>();
    return StrCat(a.var, " := ", a.value->ToString(), ";\n");
  }
  if (is<While>()) {
    const auto& w = as<While>();
    std::string out = StrCat("while (", w.cond->ToString(), ") {\n");
    for (const auto& s : w.body) out += StrCat("  ", s->ToString());
    out += "}\n";
    return out;
  }
  const auto& d = as<Declare>();
  return StrCat("declare ", d.var, d.is_array ? " : array" : " : scalar",
                d.init != nullptr ? StrCat(" = ", d.init->ToString()) : "",
                ";\n");
}

std::string TargetProgram::ToString() const {
  std::string out;
  for (const auto& s : stmts) out += s->ToString();
  return out;
}

}  // namespace diablo::comp
