#ifndef DIABLO_COMP_COMP_H_
#define DIABLO_COMP_COMP_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "runtime/operators.h"

namespace diablo::comp {

// ---------------------------------------------------------------------------
// Monoid comprehensions (paper §3.3):
//
//   { e | q1, ..., qn }
//
//   q ::= p <- e          generator
//       | let p = e       let-binding
//       | e               condition
//       | group by p [:e] group-by
//
//   p ::= v | (p1,...,pn)
// ---------------------------------------------------------------------------

struct CExpr;
using CExprPtr = std::shared_ptr<const CExpr>;
struct Comprehension;
using CompPtr = std::shared_ptr<const Comprehension>;

/// A qualifier pattern: a variable or a tuple of patterns.
struct Pattern {
  bool is_tuple = false;
  std::string var;               // when !is_tuple
  std::vector<Pattern> elems;    // when is_tuple

  static Pattern Var(std::string name) {
    Pattern p;
    p.var = std::move(name);
    return p;
  }
  static Pattern Tuple(std::vector<Pattern> elems) {
    Pattern p;
    p.is_tuple = true;
    p.elems = std::move(elems);
    return p;
  }

  /// All variable names bound by this pattern, in order.
  void CollectVars(std::vector<std::string>* out) const;
  std::vector<std::string> Vars() const;

  std::string ToString() const;
  bool operator==(const Pattern& other) const;
};

/// An expression of the comprehension calculus.
struct CExpr {
  struct Var {
    std::string name;
  };
  struct Bin {
    runtime::BinOp op;
    CExprPtr lhs;
    CExprPtr rhs;
  };
  struct Un {
    runtime::UnOp op;
    CExprPtr operand;
  };
  struct TupleCons {
    std::vector<CExprPtr> elems;
  };
  struct RecordCons {
    std::vector<std::pair<std::string, CExprPtr>> fields;
  };
  struct Proj {
    CExprPtr base;
    std::string field;
  };
  struct IntConst {
    int64_t value;
  };
  struct DoubleConst {
    double value;
  };
  struct BoolConst {
    bool value;
  };
  struct StringConst {
    std::string value;
  };
  /// Builtin function call (sqrt, inRange, ...).
  struct Call {
    std::string function;
    std::vector<CExprPtr> args;
  };
  /// A reduction `⊕/e` of a bag-valued operand.
  struct Reduce {
    runtime::BinOp op;
    CExprPtr arg;
  };
  /// A nested comprehension used as an expression.
  struct Nested {
    CompPtr comp;
  };
  /// The iteration domain range(lo,hi), inclusive on both ends.
  struct Range {
    CExprPtr lo;
    CExprPtr hi;
  };
  /// Array merge X ⊳ Y (right-biased union by key). When `has_op` is
  /// true this is the *combining* merge X ⊳⊕ Y: keys present on both
  /// sides combine their values with ⊕ (old ⊕ delta), keys present on one
  /// side keep that side's value. This is how incremental updates land in
  /// the old array (one coGroup on Spark; see translate.h).
  struct Merge {
    CExprPtr left;
    CExprPtr right;
    bool has_op;
    runtime::BinOp op;
  };
  /// Bag literal {e1,...,en} (used for singleton bags in the rules).
  struct BagCons {
    std::vector<CExprPtr> elems;
  };

  std::variant<Var, Bin, Un, TupleCons, RecordCons, Proj, IntConst,
               DoubleConst, BoolConst, StringConst, Call, Reduce, Nested,
               Range, Merge, BagCons>
      node;

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(node);
  }

  std::string ToString() const;
};

// Factory helpers ------------------------------------------------------------

CExprPtr MakeVar(std::string name);
CExprPtr MakeBin(runtime::BinOp op, CExprPtr l, CExprPtr r);
CExprPtr MakeUn(runtime::UnOp op, CExprPtr e);
CExprPtr MakeTuple(std::vector<CExprPtr> elems);
CExprPtr MakeRecord(std::vector<std::pair<std::string, CExprPtr>> fields);
CExprPtr MakeProj(CExprPtr base, std::string field);
CExprPtr MakeInt(int64_t v);
CExprPtr MakeDouble(double v);
CExprPtr MakeBool(bool v);
CExprPtr MakeString(std::string v);
CExprPtr MakeCall(std::string fn, std::vector<CExprPtr> args);
CExprPtr MakeReduce(runtime::BinOp op, CExprPtr arg);
CExprPtr MakeNested(CompPtr comp);
CExprPtr MakeRange(CExprPtr lo, CExprPtr hi);
CExprPtr MakeMerge(CExprPtr left, CExprPtr right);
CExprPtr MakeMergeOp(runtime::BinOp op, CExprPtr left, CExprPtr right);
CExprPtr MakeBag(std::vector<CExprPtr> elems);

/// A qualifier of a comprehension.
struct Qualifier {
  enum class Kind { kGenerator, kLet, kCondition, kGroupBy };

  Kind kind = Kind::kCondition;
  Pattern pattern;   // generator / let / group-by
  CExprPtr expr;     // generator domain / let rhs / condition /
                     // group-by key (null means "the pattern itself")

  static Qualifier Generator(Pattern p, CExprPtr domain);
  static Qualifier Let(Pattern p, CExprPtr e);
  static Qualifier Condition(CExprPtr e);
  static Qualifier GroupBy(Pattern p, CExprPtr key = nullptr);

  std::string ToString() const;
};

/// A monoid comprehension { head | qualifiers }.
struct Comprehension {
  CExprPtr head;
  std::vector<Qualifier> qualifiers;

  std::string ToString() const;
};

CompPtr MakeComp(CExprPtr head, std::vector<Qualifier> qualifiers);

// ---------------------------------------------------------------------------
// Target code (paper §3.8):
//   c ::= v := e | while(e, c) | [c1,...,cn]
// ---------------------------------------------------------------------------

struct TargetStmt;
using TargetStmtPtr = std::shared_ptr<const TargetStmt>;

struct TargetStmt {
  /// v := e — for array variables e evaluates to the new array contents
  /// (a bag of pairs, usually `V ⊳ {...}`); for scalar variables e
  /// evaluates to a bag whose single element is the new value.
  struct Assign {
    std::string var;
    CExprPtr value;
    /// True when `var` holds a distributed array rather than a scalar.
    bool is_array;
  };
  /// while(e, body): e is the lifted condition (a bag of booleans).
  struct While {
    CExprPtr cond;
    std::vector<TargetStmtPtr> body;
  };
  /// Declares a variable before first use (carried over from the source
  /// program so the executor knows scalar vs array and initial values).
  struct Declare {
    std::string var;
    bool is_array;
    CExprPtr init;  // may be null
  };

  std::variant<Assign, While, Declare> node;
  /// Location of the source statement this target statement was lowered
  /// from (the loop header for loop bodies), so plan-level diagnostics can
  /// point back into the program text.
  SourceLocation loc;

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(node);
  }

  std::string ToString() const;
};

TargetStmtPtr MakeAssign(std::string var, CExprPtr value, bool is_array,
                         SourceLocation loc = {});
TargetStmtPtr MakeWhile(CExprPtr cond, std::vector<TargetStmtPtr> body,
                        SourceLocation loc = {});
TargetStmtPtr MakeDeclare(std::string var, bool is_array, CExprPtr init,
                          SourceLocation loc = {});

/// A complete translated program.
struct TargetProgram {
  std::vector<TargetStmtPtr> stmts;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Structural utilities used by the normalizer and optimizer.
// ---------------------------------------------------------------------------

/// Structural equality of comprehension expressions.
bool Equals(const CExprPtr& a, const CExprPtr& b);

/// The free variables of `e` (variables not bound by any enclosing
/// comprehension inside `e`).
std::set<std::string> FreeVars(const CExprPtr& e);

/// Capture-avoiding substitution of free variables by expressions.
/// Substitution does not descend past a nested comprehension binder that
/// rebinds the variable.
CExprPtr Substitute(const CExprPtr& e,
                    const std::map<std::string, CExprPtr>& subst);

/// Generates fresh variable names (x$1, x$2, ...) unique per instance.
class NameGen {
 public:
  explicit NameGen(std::string prefix = "x") : prefix_(std::move(prefix)) {}
  std::string Fresh() { return prefix_ + "$" + std::to_string(++counter_); }

 private:
  std::string prefix_;
  int counter_ = 0;
};

}  // namespace diablo::comp

#endif  // DIABLO_COMP_COMP_H_
