#ifndef DIABLO_ANALYSIS_AFFINE_H_
#define DIABLO_ANALYSIS_AFFINE_H_

#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace diablo::analysis {

/// True when `e` is an affine expression in the given loop indexes:
/// c0 + c1*i1 + ... + ck*ik, where the c are loop-invariant (constants or
/// variables that are not loop indexes) and the i are loop indexes.
bool IsAffineExpr(const ast::ExprPtr& e,
                  const std::set<std::string>& loop_indexes);

/// True when `e` mentions any of the given loop indexes.
bool UsesLoopIndex(const ast::ExprPtr& e,
                   const std::set<std::string>& loop_indexes);

/// The paper's affine(d, s): every loop index in `context` is used in d,
/// and every array index expression in d is affine. A destination that is
/// a plain variable is affine only when the context is empty.
bool IsAffineDest(const ast::LValuePtr& d,
                  const std::vector<std::string>& context);

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_AFFINE_H_
