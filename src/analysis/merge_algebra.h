#ifndef DIABLO_ANALYSIS_MERGE_ALGEBRA_H_
#define DIABLO_ANALYSIS_MERGE_ALGEBRA_H_

#include <array>
#include <optional>
#include <vector>

#include "analysis/diagnostics.h"
#include "ast/ast.h"
#include "runtime/operators.h"

namespace diablo::analysis {

// ---------------------------------------------------------------------------
// Algebraic checking of merge/combine operators (DESIGN.md §16).
//
// The paper's translation of an incremental update `d ⊕= e` into a
// reduceByKey is only correct when ⊕ is associative and commutative.
// This module decides both properties for the operators the language can
// put in merge position: a proven-monoid table for the operators whose
// algebra is known by construction (pattern matching on +/*/min/max and
// the boolean/argmin monoids), and a bounded symbolic counterexample
// search over small operand grids for the rest. A refutation always
// carries the concrete counterexample triple/pair, which tests replay
// through runtime::EvalBinOp (the same evaluator the reference
// interpreter uses) — the merge-algebra analogue of loop_lint's
// interpreter-confirmed race witnesses.
// ---------------------------------------------------------------------------

/// The outcome of deciding one algebraic law for one operator.
enum class AlgebraVerdict {
  /// Known monoid by construction (proof by pattern match).
  kProven,
  /// A concrete counterexample exists (attached).
  kRefuted,
  /// The bounded search found no counterexample but cannot prove the law
  /// (never the case for the operators the parser can produce; kept for
  /// forward compatibility).
  kUnknown,
};

struct OpAlgebra {
  runtime::BinOp op;
  AlgebraVerdict associative = AlgebraVerdict::kUnknown;
  AlgebraVerdict commutative = AlgebraVerdict::kUnknown;
  /// When associative == kRefuted: integers a,b,c with
  /// (a op b) op c != a op (b op c).
  std::optional<std::array<int64_t, 3>> assoc_counterexample;
  /// When commutative == kRefuted: integers a,b with a op b != b op a.
  std::optional<std::array<int64_t, 2>> comm_counterexample;

  bool IsProvenMonoid() const {
    return associative == AlgebraVerdict::kProven &&
           commutative == AlgebraVerdict::kProven;
  }
};

/// Decides associativity and commutativity of `op` as described above.
/// Deterministic; the bounded search scans operands in a fixed order so
/// the reported counterexample is stable.
OpAlgebra CheckOperatorAlgebra(runtime::BinOp op);

/// Walks a canonicalized program for self-updates `d := d ⊖ e` (or
/// `d := e ⊖ d`) in parallel for-bodies whose operator ⊖ is a *refuted*
/// monoid, and emits D203 errors with the counterexample witness. These
/// are the merges the translation would feed to reduceByKey; a
/// non-associative ⊖ makes the parallel fold order-dependent, so the
/// program is rejected rather than silently miscompiled. Operators the
/// search cannot refute stay at the D102 warning loop_lint already
/// raises.
std::vector<Diagnostic> LintMergeOperators(const ast::Program& program);

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_MERGE_ALGEBRA_H_
