#ifndef DIABLO_ANALYSIS_PLAN_LINT_H_
#define DIABLO_ANALYSIS_PLAN_LINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/diagnostics.h"
#include "comp/comp.h"
#include "runtime/profile.h"

namespace diablo::analysis {

/// Options of the plan-level shuffle analyzer.
struct PlanLintOptions {
  /// Estimated serialized bytes per environment-row slot, used for the
  /// ~bytes/row figures in P001 notes when no column schema is inferred.
  /// Stages with a typed ColumnSchema (reduceByKey) are estimated from
  /// the actual type widths instead, matching what the engine charges
  /// per shuffled entry; this value only prices boxed/unknown columns.
  int bytes_per_slot = 16;
  /// Interval facts for integer scalars from the abstract interpreter
  /// (AnalyzeProgram().int_scalars), keyed by source variable name.
  /// Optional; when present, range-generator cardinalities become
  /// interval-bounded and P201/P202 advisories fire.
  const std::map<std::string, Interval>* int_scalars = nullptr;
  /// P202 threshold: a join side whose row-count upper bound is at most
  /// this many rows is flagged as broadcastable.
  int64_t broadcast_hint_max_rows = 4096;
  /// Prior-run profile (diablo_lint --profile-in): when set, the P001
  /// stage notes and the P201/P202 cost advisories additionally report
  /// the *measured* shuffle bytes and key cardinality of the matching
  /// prior-run stage next to the static estimates. Stages are matched by
  /// provenance (profile_file:line:column) plus the operator label
  /// fragment; a stale profile matches nothing and the diagnostics keep
  /// their static-only wording.
  const runtime::ProfileData* profile = nullptr;
  /// Provenance file name the profile's stages carry — the program
  /// basename the profiled `diablo_run --profile-out` invocation used.
  std::string profile_file;
};

struct PlanLintResult {
  std::vector<Diagnostic> diagnostics;
  /// Total wide (shuffling) stages a single pass over the program would
  /// run: one per array merge (coGroup) plus the wide operators of every
  /// comprehension plan. While-loop bodies are counted once. Matches
  /// Metrics::num_wide_stages() of an engine run that executes each
  /// while body exactly once.
  int total_wide_stages = 0;
};

/// Level-2 static analysis over translated target code: plans every
/// comprehension with the real planner (against empty placeholder
/// datasets) and reports, per statement, the wide stages it will run and
/// the estimated shuffled bytes per row (P001/P002 notes), plus advisory
/// lints for expensive or improvable shapes: group-by whose only use is
/// a reduction (P101, should be reduceByKey), filters evaluable below
/// the join that precedes them (P102), single-consumer narrow pipelines
/// split by a materialization (P103), merges into provably empty arrays
/// (P104), and cartesian products (P105).
///
/// `array_vars` names the variables holding distributed arrays
/// (CompiledProgram::vars entries with is_array).
PlanLintResult LintTargetProgram(const comp::TargetProgram& target,
                                 const std::set<std::string>& array_vars,
                                 const PlanLintOptions& options = {});

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_PLAN_LINT_H_
