#ifndef DIABLO_ANALYSIS_LOOP_LINT_H_
#define DIABLO_ANALYSIS_LOOP_LINT_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "ast/ast.h"

namespace diablo::analysis {

/// Options of the Definition 3.1 race analyzer.
struct LoopLintOptions {
  /// Maximum number of values enumerated per loop index when searching
  /// for a concrete race witness. Loops with constant bounds use their
  /// own (clamped) domain; everything else defaults to [0, max_domain).
  int max_domain = 6;
  /// Hard cap on the number of iteration-vector pairs tried per
  /// conflicting access pair.
  long long max_combinations = 200000;
};

/// Level-1 static analysis: checks every parallelizable for-loop of
/// `program` against the parallelization restrictions of Definition 3.1
/// and reports violations as error diagnostics (codes D001-D007), each
/// with a concrete two-iteration witness when one exists in a small
/// bounded index domain. Also emits advisory lints (D101-D103) for
/// accepted-but-suspicious shapes: shadowed loop indexes, non-commutative
/// self-updates inside parallel loops, and non-affine read subscripts.
///
/// `program` must be canonicalized first (CanonicalizeIncrements), like
/// CheckProgram. The result is sorted by source location and deduplicated.
std::vector<Diagnostic> LintLoops(const ast::Program& program,
                                  const LoopLintOptions& options = {});

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_LOOP_LINT_H_
