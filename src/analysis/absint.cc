#include "analysis/absint.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "common/strings.h"

namespace diablo::analysis {

using ast::Expr;
using ast::LValue;
using ast::Stmt;
using ast::StmtPtr;
using runtime::BinOp;
using runtime::UnOp;

// ----------------------------- intervals -----------------------------------

std::string Interval::ToString() const {
  if (IsConst()) return StrCat("{", lo, "}");
  std::string l = lo == kNegInf ? "(-inf" : StrCat("[", lo);
  std::string h = hi == kPosInf ? "+inf)" : StrCat(hi, "]");
  return StrCat(l, ",", h);
}

Interval JoinI(const Interval& a, const Interval& b) {
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval WidenI(const Interval& prev, const Interval& next) {
  Interval w = next;
  if (next.lo < prev.lo) w.lo = Interval::kNegInf;
  if (next.hi > prev.hi) w.hi = Interval::kPosInf;
  return w;
}

namespace {

int64_t Saturate(__int128 v) {
  if (v <= static_cast<__int128>(Interval::kNegInf)) return Interval::kNegInf;
  if (v >= static_cast<__int128>(Interval::kPosInf)) return Interval::kPosInf;
  return static_cast<int64_t>(v);
}

/// Adds two lower or two upper bounds; an infinite bound absorbs.
int64_t AddBound(int64_t a, int64_t b, int64_t inf) {
  if (a == inf || b == inf) return inf;
  return Saturate(static_cast<__int128>(a) + b);
}

}  // namespace

Interval AddI(const Interval& a, const Interval& b) {
  return Interval{AddBound(a.lo, b.lo, Interval::kNegInf),
                  AddBound(a.hi, b.hi, Interval::kPosInf)};
}

Interval NegI(const Interval& a) {
  Interval r;
  r.lo = a.hi == Interval::kPosInf ? Interval::kNegInf : -a.hi;
  r.hi = a.lo == Interval::kNegInf ? Interval::kPosInf : -a.lo;
  return r;
}

Interval SubI(const Interval& a, const Interval& b) {
  return AddI(a, NegI(b));
}

Interval MulI(const Interval& a, const Interval& b) {
  if (a.IsZero() || b.IsZero()) return Interval::Const(0);
  if (a.lo == Interval::kNegInf || a.hi == Interval::kPosInf ||
      b.lo == Interval::kNegInf || b.hi == Interval::kPosInf) {
    return Interval::Top();
  }
  __int128 c1 = static_cast<__int128>(a.lo) * b.lo;
  __int128 c2 = static_cast<__int128>(a.lo) * b.hi;
  __int128 c3 = static_cast<__int128>(a.hi) * b.lo;
  __int128 c4 = static_cast<__int128>(a.hi) * b.hi;
  __int128 lo = std::min(std::min(c1, c2), std::min(c3, c4));
  __int128 hi = std::max(std::max(c1, c2), std::max(c3, c4));
  return Interval{Saturate(lo), Saturate(hi)};
}

Interval MinI(const Interval& a, const Interval& b) {
  // The ±∞ sentinels are the int64 extremes, so plain min/max is exact.
  return Interval{std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval MaxI(const Interval& a, const Interval& b) {
  return Interval{std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

// ----------------------------- the walker ----------------------------------

namespace {

using Tag = AbstractValue::Tag;

Tag TagOfBasicType(const ast::TypePtr& t) {
  if (t == nullptr || t->kind != ast::Type::Kind::kBasic) {
    return Tag::kUnknown;
  }
  if (t->name == "int") return Tag::kInt;
  if (t->name == "float" || t->name == "double") return Tag::kDouble;
  if (t->name == "bool") return Tag::kBool;
  if (t->name == "string") return Tag::kString;
  return Tag::kUnknown;
}

/// Variable names assigned (Assign/Incr to a plain var, or Decl)
/// anywhere under `s` — the widening frontier for loop bodies.
void CollectAssignedScalars(const Stmt& s, std::set<std::string>* out) {
  if (s.is<Stmt::Assign>()) {
    const auto& d = s.as<Stmt::Assign>().dest;
    if (d->is_var()) out->insert(d->var().name);
    return;
  }
  if (s.is<Stmt::Incr>()) {
    const auto& d = s.as<Stmt::Incr>().dest;
    if (d->is_var()) out->insert(d->var().name);
    return;
  }
  if (s.is<Stmt::Decl>()) {
    out->insert(s.as<Stmt::Decl>().name);
    return;
  }
  if (s.is<Stmt::ForRange>()) {
    out->insert(s.as<Stmt::ForRange>().var);
    CollectAssignedScalars(*s.as<Stmt::ForRange>().body, out);
    return;
  }
  if (s.is<Stmt::ForEach>()) {
    out->insert(s.as<Stmt::ForEach>().var);
    CollectAssignedScalars(*s.as<Stmt::ForEach>().body, out);
    return;
  }
  if (s.is<Stmt::While>()) {
    CollectAssignedScalars(*s.as<Stmt::While>().body, out);
    return;
  }
  if (s.is<Stmt::If>()) {
    const auto& node = s.as<Stmt::If>();
    CollectAssignedScalars(*node.then_branch, out);
    if (node.else_branch != nullptr) {
      CollectAssignedScalars(*node.else_branch, out);
    }
    return;
  }
  if (s.is<Stmt::Block>()) {
    for (const auto& child : s.as<Stmt::Block>().stmts) {
      CollectAssignedScalars(*child, out);
    }
  }
}

class AbstractInterpreter {
 public:
  explicit AbstractInterpreter(const AbsintOptions& options)
      : options_(options) {}

  AbsintResult Run(const ast::Program& program) {
    for (const auto& s : program.stmts) ExecStmt(*s);
    SortAndDedupe(&result_.diagnostics);
    return std::move(result_);
  }

 private:
  struct ArrayInfo {
    /// Declared vector/matrix: dense index semantics, negative subscript
    /// writes are out of bounds. map/bag keys are arbitrary.
    bool dense = false;
  };
  using Env = std::map<std::string, AbstractValue>;

  // ---- flow-insensitive summary ----

  void Bind(const std::string& name, const AbstractValue& v) {
    env_[name] = v;
    if (v.tag == Tag::kInt) {
      auto it = result_.int_scalars.find(name);
      if (it == result_.int_scalars.end()) {
        result_.int_scalars[name] = v.range;
      } else {
        it->second = JoinI(it->second, v.range);
      }
    }
  }

  AbstractValue Lookup(const std::string& name) const {
    auto it = env_.find(name);
    return it == env_.end() ? AbstractValue::Unknown() : it->second;
  }

  // ---- concrete witness sampling ----

  /// Evaluates an integer expression to a concrete value under the
  /// current sample environment (loop indexes at their first iteration,
  /// constant scalars at their value, unconstrained scalars at a value
  /// clamped into their interval). Records every variable it touched in
  /// `used` so the witness environment binds exactly what the reference
  /// interpreter needs to replay the fault.
  std::optional<int64_t> ConcreteEval(const ast::ExprPtr& e,
                                      std::map<std::string, int64_t>* used) {
    if (e == nullptr) return std::nullopt;
    if (e->is<Expr::IntConst>()) return e->as<Expr::IntConst>().value;
    if (e->is<Expr::LVal>()) {
      const ast::LValuePtr& d = e->as<Expr::LVal>().lvalue;
      if (!d->is_var()) return std::nullopt;
      const std::string& name = d->var().name;
      auto it = sample_.find(name);
      if (it != sample_.end()) {
        (*used)[name] = it->second;
        return it->second;
      }
      AbstractValue v = Lookup(name);
      if (v.tag != Tag::kInt) return std::nullopt;
      // Any value in the interval witnesses the fault (the abstract
      // claim holds for all of them); pick 0 clamped into range.
      int64_t pick = 0;
      if (!v.range.Contains(0)) {
        pick = v.range.lo != Interval::kNegInf ? v.range.lo : v.range.hi;
        if (pick == Interval::kPosInf || pick == Interval::kNegInf) {
          return std::nullopt;
        }
      }
      (*used)[name] = pick;
      return pick;
    }
    if (e->is<Expr::Un>()) {
      const auto& un = e->as<Expr::Un>();
      if (un.op != UnOp::kNeg) return std::nullopt;
      auto v = ConcreteEval(un.operand, used);
      if (!v.has_value()) return std::nullopt;
      return -*v;
    }
    if (e->is<Expr::Bin>()) {
      const auto& bin = e->as<Expr::Bin>();
      auto l = ConcreteEval(bin.lhs, used);
      auto r = ConcreteEval(bin.rhs, used);
      if (!l.has_value() || !r.has_value()) return std::nullopt;
      switch (bin.op) {
        case BinOp::kAdd:
          return *l + *r;
        case BinOp::kSub:
          return *l - *r;
        case BinOp::kMul:
          return *l * *r;
        case BinOp::kDiv:
          if (*r == 0) return std::nullopt;
          return *l / *r;
        case BinOp::kMod:
          if (*r == 0) return std::nullopt;
          return *l % *r;
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Builds the witness iteration vector: enclosing loop indexes
  /// outermost-first, then any other variables the concrete evaluation
  /// consulted, name-sorted.
  std::vector<std::pair<std::string, int64_t>> WitnessEnv(
      const std::map<std::string, int64_t>& used) {
    std::vector<std::pair<std::string, int64_t>> env;
    std::set<std::string> taken;
    for (const auto& [var, val] : loop_stack_) {
      auto it = used.find(var);
      if (it != used.end()) {
        env.emplace_back(var, it->second);
        taken.insert(var);
      }
    }
    for (const auto& [var, val] : used) {
      if (taken.count(var) == 0) env.emplace_back(var, val);
    }
    return env;
  }

  void Emit(const char* code, SourceLocation loc, std::string message,
            std::string hint, Witness witness) {
    if (!emit_) return;
    result_.diagnostics.push_back(Diagnostic{code, Severity::kError, loc,
                                             std::move(message),
                                             std::move(hint),
                                             std::move(witness)});
  }

  // ---- abstract expression evaluation ----

  AbstractValue EvalExpr(const Expr& e) {
    if (e.is<Expr::IntConst>()) {
      return AbstractValue::Int(Interval::Const(e.as<Expr::IntConst>().value));
    }
    if (e.is<Expr::DoubleConst>()) return AbstractValue::OfTag(Tag::kDouble);
    if (e.is<Expr::BoolConst>()) {
      return AbstractValue{Tag::kBool,
                           Interval::Const(e.as<Expr::BoolConst>().value)};
    }
    if (e.is<Expr::StringConst>()) return AbstractValue::OfTag(Tag::kString);
    if (e.is<Expr::LVal>()) return EvalRead(*e.as<Expr::LVal>().lvalue);
    if (e.is<Expr::Un>()) {
      const auto& un = e.as<Expr::Un>();
      AbstractValue v = EvalExpr(*un.operand);
      if (un.op == UnOp::kNot) return AbstractValue::OfTag(Tag::kBool);
      if (v.tag == Tag::kInt) return AbstractValue::Int(NegI(v.range));
      if (v.tag == Tag::kDouble) return v;
      return AbstractValue::Unknown();
    }
    if (e.is<Expr::Bin>()) return EvalBin(e);
    if (e.is<Expr::TupleCons>()) {
      for (const auto& el : e.as<Expr::TupleCons>().elems) EvalExpr(*el);
      return AbstractValue::Unknown();
    }
    if (e.is<Expr::RecordCons>()) {
      for (const auto& [name, el] : e.as<Expr::RecordCons>().fields) {
        EvalExpr(*el);
      }
      return AbstractValue::Unknown();
    }
    if (e.is<Expr::Call>()) {
      const auto& call = e.as<Expr::Call>();
      std::vector<AbstractValue> args;
      for (const auto& a : call.args) args.push_back(EvalExpr(*a));
      if (call.function == "abs" && args.size() == 1 &&
          args[0].tag == Tag::kInt) {
        Interval r = args[0].range;
        Interval mag = MaxI(r, NegI(r));
        return AbstractValue::Int(Interval{std::max<int64_t>(0, mag.lo),
                                           std::max<int64_t>(0, mag.hi)});
      }
      // Every other builtin produces a double.
      return AbstractValue::OfTag(Tag::kDouble);
    }
    return AbstractValue::Unknown();
  }

  AbstractValue EvalBin(const Expr& e) {
    const auto& bin = e.as<Expr::Bin>();
    AbstractValue l = EvalExpr(*bin.lhs);
    AbstractValue r = EvalExpr(*bin.rhs);
    bool both_int = l.tag == Tag::kInt && r.tag == Tag::kInt;
    switch (bin.op) {
      case BinOp::kAdd:
        if (both_int) return AbstractValue::Int(AddI(l.range, r.range));
        break;
      case BinOp::kSub:
        if (both_int) return AbstractValue::Int(SubI(l.range, r.range));
        break;
      case BinOp::kMul:
        if (both_int) return AbstractValue::Int(MulI(l.range, r.range));
        break;
      case BinOp::kMin:
        if (both_int) return AbstractValue::Int(MinI(l.range, r.range));
        break;
      case BinOp::kMax:
        if (both_int) return AbstractValue::Int(MaxI(l.range, r.range));
        break;
      case BinOp::kDiv:
      case BinOp::kMod:
        // Integer division/modulo by a provably-zero divisor is a runtime
        // error on every execution path that reaches it (D202). Double
        // division never errors, so both operands must be proven ints.
        if (both_int && r.range.IsZero() && clean_ && reachable_) {
          std::map<std::string, int64_t> used;
          std::optional<int64_t> probe = ConcreteEval(bin.rhs, &used);
          if (!probe.has_value() || *probe == 0) {
            Witness w;
            w.kind = "zero-divisor";
            w.array = bin.rhs->ToString();
            w.write_iteration = WitnessEnv(used);
            Emit(diag::kZeroDivisor,
                 e.loc.line > 0 ? e.loc : cur_loc_,
                 StrCat("integer ",
                        bin.op == BinOp::kDiv ? "division" : "modulo",
                        " by '", bin.rhs->ToString(),
                        "', which provably evaluates to 0 (interval ",
                        r.range.ToString(), ")"),
                 "this division faults on every execution; guard it with "
                 "an if or fix the divisor expression",
                 std::move(w));
          }
        }
        if (both_int) return AbstractValue::OfTag(Tag::kInt);
        break;
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        // Disjoint constant-bounded intervals decide the comparison.
        AbstractValue out = AbstractValue{Tag::kBool, Interval{0, 1}};
        if (both_int) {
          const Interval& a = l.range;
          const Interval& b = r.range;
          auto decide = [&out](bool v) {
            out.range = Interval::Const(v ? 1 : 0);
          };
          switch (bin.op) {
            case BinOp::kLt:
              if (a.hi < b.lo) decide(true);
              if (a.lo >= b.hi) decide(false);
              break;
            case BinOp::kLe:
              if (a.hi <= b.lo) decide(true);
              if (a.lo > b.hi) decide(false);
              break;
            case BinOp::kGt:
              if (a.lo > b.hi) decide(true);
              if (a.hi <= b.lo) decide(false);
              break;
            case BinOp::kGe:
              if (a.lo >= b.hi) decide(true);
              if (a.hi < b.lo) decide(false);
              break;
            case BinOp::kEq:
              if (a.IsConst() && b.IsConst() && a.lo == b.lo) decide(true);
              if (a.hi < b.lo || b.hi < a.lo) decide(false);
              break;
            case BinOp::kNe:
              if (a.hi < b.lo || b.hi < a.lo) decide(true);
              if (a.IsConst() && b.IsConst() && a.lo == b.lo) decide(false);
              break;
            default:
              break;
          }
        }
        return out;
      }
      case BinOp::kAnd:
      case BinOp::kOr: {
        AbstractValue out = AbstractValue{Tag::kBool, Interval{0, 1}};
        if (l.tag == Tag::kBool && r.tag == Tag::kBool) {
          bool lt = l.range == Interval::Const(1);
          bool lf = l.range == Interval::Const(0);
          bool rt = r.range == Interval::Const(1);
          bool rf = r.range == Interval::Const(0);
          if (bin.op == BinOp::kAnd) {
            if (lt && rt) out.range = Interval::Const(1);
            if (lf || rf) out.range = Interval::Const(0);
          } else {
            if (lt || rt) out.range = Interval::Const(1);
            if (lf && rf) out.range = Interval::Const(0);
          }
        }
        return out;
      }
      case BinOp::kArgmin:
        return AbstractValue::Unknown();
    }
    // Arithmetic over doubles (or mixed/unknown operands) stays a double
    // when either side is definitely one, otherwise unknown.
    if (l.tag == Tag::kDouble || r.tag == Tag::kDouble) {
      return AbstractValue::OfTag(Tag::kDouble);
    }
    return AbstractValue::Unknown();
  }

  AbstractValue EvalRead(const LValue& d) {
    if (d.is_var()) return Lookup(d.var().name);
    if (d.is_index()) {
      for (const auto& ix : d.index().indices) EvalExpr(*ix);
      // An element read may be absent under the lifted semantics: every
      // fault downstream of it in evaluation order is unreachable.
      clean_ = false;
      return AbstractValue::Unknown();
    }
    EvalRead(*d.proj().base);
    return AbstractValue::Unknown();
  }

  // ---- statements ----

  /// D201: a write through `dest` (a plain index into a declared
  /// vector/matrix) whose subscript is provably negative in some
  /// dimension. Preconditions mirror the reference interpreter exactly:
  /// the statement must be provably reachable and no possibly-absent
  /// array read may precede the write in evaluation order.
  void CheckIndexedWrite(const LValue& dest) {
    if (!dest.is_index()) return;
    const auto& ix = dest.index();
    auto ai = arrays_.find(ix.array);
    if (ai == arrays_.end() || !ai->second.dense) return;
    std::vector<AbstractValue> dims;
    for (const auto& e : ix.indices) dims.push_back(EvalExpr(*e));
    if (!clean_ || !reachable_) return;
    for (size_t k = 0; k < dims.size(); ++k) {
      if (dims[k].tag != Tag::kInt || !dims[k].range.IsNegative()) continue;
      // Materialize the concrete element the first execution writes.
      std::map<std::string, int64_t> used;
      std::vector<int64_t> element;
      bool concrete = true;
      for (const auto& e : ix.indices) {
        auto v = ConcreteEval(e, &used);
        if (!v.has_value()) {
          concrete = false;
          break;
        }
        element.push_back(*v);
      }
      if (!concrete) return;  // keep the no-witness-no-claim discipline
      Witness w;
      w.kind = "oob-write";
      w.array = ix.array;
      w.write_iteration = WitnessEnv(used);
      w.element = std::move(element);
      Emit(diag::kOutOfBoundsWrite, cur_loc_,
           StrCat("write to ", dest.ToString(), " is out of bounds: ",
                  "subscript ", k + 1, " has interval ",
                  dims[k].range.ToString(), ", provably negative for a ",
                  "declared ", ix.indices.size() > 1 ? "matrix" : "vector"),
           "the subscript is negative on every execution; fix the index "
           "arithmetic or the loop bounds",
           std::move(w));
      return;
    }
  }

  void ExecSimple(const Stmt& s) {
    clean_ = true;
    cur_loc_ = s.loc;
    if (s.is<Stmt::Decl>()) {
      const auto& node = s.as<Stmt::Decl>();
      if (node.type != nullptr && node.type->IsCollection()) {
        arrays_[node.name] = ArrayInfo{node.type->name == "vector" ||
                                       node.type->name == "matrix"};
        return;
      }
      AbstractValue v = node.init != nullptr ? EvalExpr(*node.init)
                                             : AbstractValue::Unknown();
      Tag declared = TagOfBasicType(node.type);
      if (declared != Tag::kUnknown && v.tag != declared) {
        v = AbstractValue::OfTag(declared);
      }
      Bind(node.name, v);
      return;
    }
    if (s.is<Stmt::Assign>()) {
      const auto& node = s.as<Stmt::Assign>();
      AbstractValue v = EvalExpr(*node.value);
      if (node.dest->is_var()) {
        const std::string& name = node.dest->var().name;
        if (arrays_.count(name) == 0) Bind(name, v);
        return;
      }
      CheckIndexedWrite(*node.dest);
      return;
    }
    if (s.is<Stmt::Incr>()) {
      const auto& node = s.as<Stmt::Incr>();
      AbstractValue v = EvalExpr(*node.value);
      if (node.dest->is_var()) {
        const std::string& name = node.dest->var().name;
        if (arrays_.count(name) != 0) return;
        AbstractValue old = Lookup(name);
        Bind(name, ApplyIncr(node.op, old, v));
        return;
      }
      CheckIndexedWrite(*node.dest);
      return;
    }
  }

  static AbstractValue ApplyIncr(BinOp op, const AbstractValue& old,
                                 const AbstractValue& v) {
    bool both_int = old.tag == Tag::kInt && v.tag == Tag::kInt;
    switch (op) {
      case BinOp::kAdd:
        if (both_int) return AbstractValue::Int(AddI(old.range, v.range));
        break;
      case BinOp::kMul:
        if (both_int) return AbstractValue::Int(MulI(old.range, v.range));
        break;
      case BinOp::kMin:
        if (both_int) return AbstractValue::Int(MinI(old.range, v.range));
        break;
      case BinOp::kMax:
        if (both_int) return AbstractValue::Int(MaxI(old.range, v.range));
        break;
      case BinOp::kAnd:
      case BinOp::kOr:
        return AbstractValue{Tag::kBool, Interval{0, 1}};
      default:
        break;
    }
    if (old.tag == Tag::kDouble || v.tag == Tag::kDouble) {
      return AbstractValue::OfTag(Tag::kDouble);
    }
    if (both_int) return AbstractValue::OfTag(Tag::kInt);
    return AbstractValue::Unknown();
  }

  void JoinEnvInto(const Env& other) {
    // Pointwise join; names missing on either side become unknown.
    for (auto& [name, v] : env_) {
      auto it = other.find(name);
      if (it == other.end()) {
        v = AbstractValue::Unknown();
        continue;
      }
      const AbstractValue& o = it->second;
      if (v.tag != o.tag) {
        v = AbstractValue::Unknown();
      } else if (v.tag == Tag::kInt || v.tag == Tag::kBool) {
        v.range = JoinI(v.range, o.range);
      }
    }
    for (const auto& [name, v] : other) {
      if (env_.count(name) == 0) env_[name] = AbstractValue::Unknown();
    }
  }

  /// Analyzes a loop body to fixpoint: silent passes with widening until
  /// the abstract environment stabilizes, then one reporting pass. The
  /// widening jumps each growing bound to ±∞, so convergence is fast;
  /// a defensive cap tops out every body-assigned variable.
  void AnalyzeLoopBody(const Stmt& body, bool body_provably_runs) {
    bool saved_emit = emit_;
    bool saved_reach = reachable_;
    emit_ = false;
    reachable_ = false;
    for (int round = 0; round < 16; ++round) {
      Env pre = env_;
      ExecStmt(body);
      JoinEnvInto(pre);
      bool stable = env_ == pre;
      for (auto& [name, v] : env_) {
        auto it = pre.find(name);
        if (it == pre.end()) continue;
        if ((v.tag == Tag::kInt || v.tag == Tag::kBool) &&
            v.tag == it->second.tag) {
          v.range = WidenI(it->second.range, v.range);
        }
      }
      if (stable) break;
      if (round == 15) {
        std::set<std::string> assigned;
        CollectAssignedScalars(body, &assigned);
        for (const std::string& name : assigned) {
          env_[name] = AbstractValue::Unknown();
        }
      }
    }
    emit_ = saved_emit;
    reachable_ = saved_reach && body_provably_runs;
    ExecStmt(body);
    reachable_ = saved_reach;
  }

  void ExecStmt(const Stmt& s) {
    if (s.is<Stmt::Decl>() || s.is<Stmt::Assign>() || s.is<Stmt::Incr>()) {
      ExecSimple(s);
      return;
    }
    if (s.is<Stmt::Block>()) {
      for (const auto& child : s.as<Stmt::Block>().stmts) ExecStmt(*child);
      return;
    }
    if (s.is<Stmt::If>()) {
      const auto& node = s.as<Stmt::If>();
      clean_ = true;
      cur_loc_ = s.loc;
      AbstractValue cond = EvalExpr(*node.cond);
      bool cond_clean = clean_;
      bool provably_true =
          cond.tag == Tag::kBool && cond.range == Interval::Const(1);
      bool provably_false =
          cond.tag == Tag::kBool && cond.range == Interval::Const(0);
      if (provably_true) {
        bool saved = reachable_;
        reachable_ = reachable_ && cond_clean;
        ExecStmt(*node.then_branch);
        reachable_ = saved;
        return;
      }
      if (provably_false) {
        if (node.else_branch != nullptr) {
          bool saved = reachable_;
          reachable_ = reachable_ && cond_clean;
          ExecStmt(*node.else_branch);
          reachable_ = saved;
        }
        return;
      }
      bool saved = reachable_;
      reachable_ = false;
      Env pre = env_;
      ExecStmt(*node.then_branch);
      Env post_then = std::move(env_);
      env_ = std::move(pre);
      if (node.else_branch != nullptr) ExecStmt(*node.else_branch);
      JoinEnvInto(post_then);
      reachable_ = saved;
      return;
    }
    if (s.is<Stmt::ForRange>()) {
      const auto& node = s.as<Stmt::ForRange>();
      clean_ = true;
      cur_loc_ = s.loc;
      AbstractValue lo = EvalExpr(*node.lo);
      AbstractValue hi = EvalExpr(*node.hi);
      bool bounds_clean = clean_;
      Interval li = lo.tag == Tag::kInt ? lo.range : Interval::Top();
      Interval hri = hi.tag == Tag::kInt ? hi.range : Interval::Top();
      // The body provably runs iff lo <= hi for every concrete pair.
      bool runs = bounds_clean && lo.tag == Tag::kInt &&
                  hi.tag == Tag::kInt && li.hi != Interval::kPosInf &&
                  hri.lo != Interval::kNegInf && li.hi <= hri.lo;
      AbstractValue saved_var = Lookup(node.var);
      bool had_sample = sample_.count(node.var) != 0;
      int64_t old_sample = had_sample ? sample_[node.var] : 0;
      std::map<std::string, int64_t> probe_used;
      std::optional<int64_t> first = ConcreteEval(node.lo, &probe_used);
      if (first.has_value()) {
        sample_[node.var] = *first;
      } else {
        sample_.erase(node.var);
      }
      loop_stack_.emplace_back(node.var,
                               first.has_value() ? *first : int64_t{0});
      Env before_loop = env_;
      Bind(node.var, AbstractValue::Int(Interval{li.lo, hri.hi}));
      AnalyzeLoopBody(*node.body, runs);
      if (!runs) JoinEnvInto(before_loop);
      loop_stack_.pop_back();
      if (had_sample) {
        sample_[node.var] = old_sample;
      } else {
        sample_.erase(node.var);
      }
      env_[node.var] = saved_var;
      return;
    }
    if (s.is<Stmt::ForEach>()) {
      const auto& node = s.as<Stmt::ForEach>();
      clean_ = true;
      cur_loc_ = s.loc;
      EvalExpr(*node.collection);
      AbstractValue saved_var = Lookup(node.var);
      Env before_loop = env_;
      env_[node.var] = AbstractValue::Unknown();
      AnalyzeLoopBody(*node.body, /*body_provably_runs=*/false);
      JoinEnvInto(before_loop);
      env_[node.var] = saved_var;
      return;
    }
    if (s.is<Stmt::While>()) {
      const auto& node = s.as<Stmt::While>();
      clean_ = true;
      cur_loc_ = s.loc;
      EvalExpr(*node.cond);
      Env before_loop = env_;
      AnalyzeLoopBody(*node.body, /*body_provably_runs=*/false);
      JoinEnvInto(before_loop);
      return;
    }
  }

  const AbsintOptions& options_;
  AbsintResult result_;
  Env env_;
  std::map<std::string, ArrayInfo> arrays_;
  std::map<std::string, int64_t> sample_;
  std::vector<std::pair<std::string, int64_t>> loop_stack_;
  SourceLocation cur_loc_;
  bool reachable_ = true;
  bool emit_ = true;
  bool clean_ = true;
};

}  // namespace

AbsintResult AnalyzeProgram(const ast::Program& program,
                            const AbsintOptions& options) {
  AbstractInterpreter interp(options);
  return interp.Run(program);
}

}  // namespace diablo::analysis
