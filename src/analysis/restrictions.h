#ifndef DIABLO_ANALYSIS_RESTRICTIONS_H_
#define DIABLO_ANALYSIS_RESTRICTIONS_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace diablo::analysis {

/// Rewrites assignments of the form `d := d ⊕ e` (for a commutative
/// monoid ⊕ and syntactically equal destinations) into the incremental
/// update `d ⊕= e`, as §3.5 classifies them. This runs before restriction
/// checking and translation so that the paper's own benchmark programs
/// (e.g. `eq := eq && v == x`) are recognized as incremental.
ast::Program CanonicalizeIncrements(const ast::Program& program);

/// One Definition 3.1 violation, with the offending statement rendered.
struct RestrictionViolation {
  std::string message;
  SourceLocation loc;
};

/// The outcome of checking a program against the parallelization
/// restrictions of Definition 3.1.
struct RestrictionReport {
  bool ok = true;
  std::vector<RestrictionViolation> violations;

  std::string ToString() const;
};

/// Checks every parallelizable for-loop of `program` against
/// Definition 3.1:
///
///  1. the destination of every non-incremental update is affine and
///     covers all enclosing loop indexes;
///  2. no two statements have overlapping write/aggregate vs read
///     destinations, except
///     (a) a read of the same location after a write, and
///     (b) a read of the same location after an increment whose shared
///         context equals the destination's indexes.
///
/// Additional structural rules enforced here:
///  * declarations may not appear inside for-loops;
///  * nested for-loops must use distinct index variables (the paper
///    renames duplicates; we require the programmer to);
///  * a for-range loop containing a while-loop is treated as sequential
///    (not checked, translated to sequential target code);
///  * a for-in loop containing a while-loop is rejected as unsupported.
///
/// Call with the canonicalized program (CanonicalizeIncrements).
RestrictionReport CheckProgram(const ast::Program& program);

/// Convenience wrapper returning a RestrictionViolation status listing
/// all violations, or OK.
Status CheckRestrictions(const ast::Program& program);

/// True when `stmt` (a for-loop) contains a while-loop anywhere in its
/// body, which forces sequential execution of the whole loop nest.
bool ContainsWhile(const ast::Stmt& stmt);

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_RESTRICTIONS_H_
