#include "analysis/affine.h"

#include "analysis/lvalues.h"

namespace diablo::analysis {

using ast::Expr;
using runtime::BinOp;
using runtime::UnOp;

bool UsesLoopIndex(const ast::ExprPtr& e,
                   const std::set<std::string>& loop_indexes) {
  std::vector<ast::LValuePtr> reads;
  CollectExprReads(e, &reads);
  for (const auto& d : reads) {
    if (d->is_var() && loop_indexes.count(d->var().name) != 0) return true;
  }
  return false;
}

bool IsAffineExpr(const ast::ExprPtr& e,
                  const std::set<std::string>& loop_indexes) {
  if (e == nullptr) return false;
  // Anything that does not mention a loop index is a loop constant c0.
  if (!UsesLoopIndex(e, loop_indexes)) return true;
  if (e->is<Expr::LVal>()) {
    const auto& d = e->as<Expr::LVal>().lvalue;
    // A bare loop index i (coefficient 1).
    return d->is_var() && loop_indexes.count(d->var().name) != 0;
  }
  if (e->is<Expr::Un>()) {
    const auto& u = e->as<Expr::Un>();
    return u.op == UnOp::kNeg && IsAffineExpr(u.operand, loop_indexes);
  }
  if (e->is<Expr::Bin>()) {
    const auto& b = e->as<Expr::Bin>();
    switch (b.op) {
      case BinOp::kAdd:
      case BinOp::kSub:
        return IsAffineExpr(b.lhs, loop_indexes) &&
               IsAffineExpr(b.rhs, loop_indexes);
      case BinOp::kMul:
        // c * affine or affine * c.
        if (!UsesLoopIndex(b.lhs, loop_indexes)) {
          return IsAffineExpr(b.rhs, loop_indexes);
        }
        if (!UsesLoopIndex(b.rhs, loop_indexes)) {
          return IsAffineExpr(b.lhs, loop_indexes);
        }
        return false;
      default:
        return false;
    }
  }
  return false;
}

bool IsAffineDest(const ast::LValuePtr& d,
                  const std::vector<std::string>& context) {
  std::set<std::string> ctx(context.begin(), context.end());
  // Every loop index of the context must appear in the destination.
  std::set<std::string> used = IndexesOf(d, ctx);
  for (const std::string& i : context) {
    if (used.count(i) == 0) return false;
  }
  // Every array index expression must itself be affine.
  const ast::LValue* cur = d.get();
  while (cur != nullptr) {
    if (cur->is_index()) {
      for (const auto& e : cur->index().indices) {
        if (!IsAffineExpr(e, ctx)) return false;
      }
      break;
    }
    if (cur->is_proj()) {
      cur = cur->proj().base.get();
      continue;
    }
    break;  // plain variable
  }
  return true;
}

}  // namespace diablo::analysis
