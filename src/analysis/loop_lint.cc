#include "analysis/loop_lint.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "analysis/affine.h"
#include "analysis/lvalues.h"
#include "analysis/restrictions.h"
#include "common/strings.h"

namespace diablo::analysis {

using ast::Expr;
using ast::LValue;
using ast::Stmt;
using runtime::BinOp;
using runtime::UnOp;

namespace {

// ------------------------- witness search ----------------------------------

/// Constant integer bounds of a for-range loop index, when the program
/// spells them as literals.
struct Bounds {
  bool known = false;
  int64_t lo = 0;
  int64_t hi = 0;
};

std::optional<int64_t> ConstInt(const ast::ExprPtr& e) {
  if (e == nullptr) return std::nullopt;
  if (e->is<Expr::IntConst>()) return e->as<Expr::IntConst>().value;
  if (e->is<Expr::Un>() && e->as<Expr::Un>().op == UnOp::kNeg) {
    auto inner = ConstInt(e->as<Expr::Un>().operand);
    if (inner.has_value()) return -*inner;
  }
  return std::nullopt;
}

/// Records the literal bounds of every for-range index under `s`.
void CollectBounds(const Stmt& s, std::map<std::string, Bounds>* out) {
  if (s.is<Stmt::ForRange>()) {
    const auto& node = s.as<Stmt::ForRange>();
    Bounds b;
    auto lo = ConstInt(node.lo);
    auto hi = ConstInt(node.hi);
    if (lo.has_value() && hi.has_value() && *lo <= *hi) {
      b = {true, *lo, *hi};
    }
    (*out)[node.var] = b;
    CollectBounds(*node.body, out);
    return;
  }
  if (s.is<Stmt::ForEach>()) {
    const auto& node = s.as<Stmt::ForEach>();
    (*out)[node.var] = Bounds{};
    CollectBounds(*node.body, out);
    return;
  }
  if (s.is<Stmt::While>()) {
    CollectBounds(*s.as<Stmt::While>().body, out);
    return;
  }
  if (s.is<Stmt::If>()) {
    const auto& node = s.as<Stmt::If>();
    CollectBounds(*node.then_branch, out);
    if (node.else_branch != nullptr) CollectBounds(*node.else_branch, out);
    return;
  }
  if (s.is<Stmt::Block>()) {
    for (const auto& child : s.as<Stmt::Block>().stmts) {
      CollectBounds(*child, out);
    }
  }
}

/// Evaluates an integer index expression under a loop-index environment.
/// Bails (nullopt) on anything beyond integer arithmetic over constants
/// and bound loop indexes: scalars, doubles, calls, array reads.
std::optional<int64_t> EvalIndexExpr(
    const ast::ExprPtr& e, const std::map<std::string, int64_t>& env) {
  if (e == nullptr) return std::nullopt;
  if (e->is<Expr::IntConst>()) return e->as<Expr::IntConst>().value;
  if (e->is<Expr::LVal>()) {
    const ast::LValuePtr& d = e->as<Expr::LVal>().lvalue;
    if (!d->is_var()) return std::nullopt;
    auto it = env.find(d->var().name);
    if (it == env.end()) return std::nullopt;
    return it->second;
  }
  if (e->is<Expr::Un>()) {
    const auto& un = e->as<Expr::Un>();
    if (un.op != UnOp::kNeg) return std::nullopt;
    auto v = EvalIndexExpr(un.operand, env);
    if (!v.has_value()) return std::nullopt;
    return -*v;
  }
  if (e->is<Expr::Bin>()) {
    const auto& bin = e->as<Expr::Bin>();
    auto l = EvalIndexExpr(bin.lhs, env);
    auto r = EvalIndexExpr(bin.rhs, env);
    if (!l.has_value() || !r.has_value()) return std::nullopt;
    switch (bin.op) {
      case BinOp::kAdd:
        return *l + *r;
      case BinOp::kSub:
        return *l - *r;
      case BinOp::kMul:
        return *l * *r;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

/// An affine form c0 + Σ coeff[v]·v over integer loop indexes, for the
/// GCD solvability pre-filter.
struct AffineForm {
  std::map<std::string, int64_t> coeff;
  int64_t c0 = 0;
};

std::optional<AffineForm> ExtractAffine(const ast::ExprPtr& e,
                                        const std::set<std::string>& vars) {
  if (e == nullptr) return std::nullopt;
  if (e->is<Expr::IntConst>()) {
    AffineForm f;
    f.c0 = e->as<Expr::IntConst>().value;
    return f;
  }
  if (e->is<Expr::LVal>()) {
    const ast::LValuePtr& d = e->as<Expr::LVal>().lvalue;
    if (!d->is_var() || vars.count(d->var().name) == 0) return std::nullopt;
    AffineForm f;
    f.coeff[d->var().name] = 1;
    return f;
  }
  if (e->is<Expr::Un>()) {
    const auto& un = e->as<Expr::Un>();
    if (un.op != UnOp::kNeg) return std::nullopt;
    auto f = ExtractAffine(un.operand, vars);
    if (!f.has_value()) return std::nullopt;
    for (auto& [v, c] : f->coeff) c = -c;
    f->c0 = -f->c0;
    return f;
  }
  if (e->is<Expr::Bin>()) {
    const auto& bin = e->as<Expr::Bin>();
    auto l = ExtractAffine(bin.lhs, vars);
    auto r = ExtractAffine(bin.rhs, vars);
    if (!l.has_value() || !r.has_value()) return std::nullopt;
    if (bin.op == BinOp::kAdd || bin.op == BinOp::kSub) {
      int64_t sign = bin.op == BinOp::kAdd ? 1 : -1;
      for (const auto& [v, c] : r->coeff) l->coeff[v] += sign * c;
      l->c0 += sign * r->c0;
      return l;
    }
    if (bin.op == BinOp::kMul) {
      // One side must be a pure constant.
      const AffineForm* cst = l->coeff.empty() ? &*l : nullptr;
      const AffineForm* other = cst == &*l ? &*r : nullptr;
      if (cst == nullptr && r->coeff.empty()) {
        cst = &*r;
        other = &*l;
      }
      if (cst == nullptr || other == nullptr) return std::nullopt;
      AffineForm f;
      for (const auto& [v, c] : other->coeff) f.coeff[v] = c * cst->c0;
      f.c0 = other->c0 * cst->c0;
      return f;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

/// True when the linear Diophantine equation Σ ai·xi = rhs has an integer
/// solution (ignoring domain bounds): gcd(ai) divides rhs.
bool GcdSolvable(const std::vector<int64_t>& coeffs, int64_t rhs) {
  int64_t g = 0;
  for (int64_t c : coeffs) g = std::gcd(g, c < 0 ? -c : c);
  if (g == 0) return rhs == 0;
  return rhs % g == 0;
}

/// The index expressions of a destination, stripping projections
/// (closest[i].index accesses element closest[i]); empty for scalars.
std::vector<ast::ExprPtr> IndexExprsOf(const ast::LValuePtr& d) {
  const ast::LValuePtr* cur = &d;
  while ((*cur)->is_proj()) cur = &(*cur)->proj().base;
  if ((*cur)->is_index()) return (*cur)->index().indices;
  return {};
}

/// Searches the bounded index domain for two iteration vectors under
/// which `d1` (written or incremented under context `ctx1`) and `d2`
/// (accessed under `ctx2`) resolve to the same element. The two vectors
/// must differ on at least one shared index variable — the race the
/// distributed translation cannot order.
std::optional<Witness> FindWitness(const ast::LValuePtr& d1,
                                   const std::vector<std::string>& ctx1,
                                   const ast::LValuePtr& d2,
                                   const std::vector<std::string>& ctx2,
                                   bool conflict_is_write,
                                   const std::map<std::string, Bounds>& bounds,
                                   const LoopLintOptions& options) {
  if (ctx1.empty() && ctx2.empty()) return std::nullopt;
  std::vector<ast::ExprPtr> idx1 = IndexExprsOf(d1);
  std::vector<ast::ExprPtr> idx2 = IndexExprsOf(d2);
  if (idx1.size() != idx2.size()) return std::nullopt;

  // GCD pre-filter: when both subscripts are affine with known integer
  // coefficients, the per-dimension equation
  //   Σ a1_v·x_v − Σ a2_v·y_v = c2 − c1
  // must be solvable over ℤ for a witness to exist at all.
  {
    std::set<std::string> v1(ctx1.begin(), ctx1.end());
    std::set<std::string> v2(ctx2.begin(), ctx2.end());
    for (size_t k = 0; k < idx1.size(); ++k) {
      auto a1 = ExtractAffine(idx1[k], v1);
      auto a2 = ExtractAffine(idx2[k], v2);
      if (!a1.has_value() || !a2.has_value()) continue;
      std::vector<int64_t> coeffs;
      for (const auto& [v, c] : a1->coeff) coeffs.push_back(c);
      for (const auto& [v, c] : a2->coeff) coeffs.push_back(-c);
      if (!GcdSolvable(coeffs, a2->c0 - a1->c0)) return std::nullopt;
    }
  }

  auto domain_of = [&](const std::string& var) {
    std::pair<int64_t, int64_t> dom{0, options.max_domain - 1};
    auto it = bounds.find(var);
    if (it != bounds.end() && it->second.known) {
      dom.first = it->second.lo;
      dom.second =
          std::min(it->second.hi, it->second.lo + options.max_domain - 1);
    }
    return dom;
  };

  std::set<std::string> shared;
  for (const auto& v : ctx1) {
    if (std::find(ctx2.begin(), ctx2.end(), v) != ctx2.end()) {
      shared.insert(v);
    }
  }

  // Odometer enumeration of both iteration vectors, lexicographic in
  // (ctx1, ctx2) order so the first hit is deterministic.
  std::vector<std::string> all_vars;
  std::vector<std::pair<int64_t, int64_t>> doms;
  for (const auto& v : ctx1) {
    all_vars.push_back(v);
    doms.push_back(domain_of(v));
  }
  for (const auto& v : ctx2) {
    all_vars.push_back(v);
    doms.push_back(domain_of(v));
  }
  std::vector<int64_t> cur;
  for (const auto& d : doms) cur.push_back(d.first);

  long long tried = 0;
  while (true) {
    if (++tried > options.max_combinations) return std::nullopt;
    std::map<std::string, int64_t> env1, env2;
    for (size_t i = 0; i < ctx1.size(); ++i) env1[ctx1[i]] = cur[i];
    for (size_t i = 0; i < ctx2.size(); ++i) {
      env2[ctx2[i]] = cur[ctx1.size() + i];
    }
    bool distinct = shared.empty();
    for (const auto& v : shared) {
      if (env1[v] != env2[v]) distinct = true;
    }
    if (distinct) {
      bool match = true;
      std::vector<int64_t> element;
      for (size_t k = 0; k < idx1.size() && match; ++k) {
        auto e1 = EvalIndexExpr(idx1[k], env1);
        auto e2 = EvalIndexExpr(idx2[k], env2);
        if (!e1.has_value() || !e2.has_value() || *e1 != *e2) {
          match = false;
        } else {
          element.push_back(*e1);
        }
      }
      if (match) {
        Witness w;
        w.array = d1->RootName();
        for (const auto& v : ctx1) w.write_iteration.push_back({v, env1[v]});
        for (const auto& v : ctx2) w.read_iteration.push_back({v, env2[v]});
        w.conflict_is_write = conflict_is_write;
        w.element = std::move(element);
        return w;
      }
    }
    // Advance the odometer.
    size_t i = cur.size();
    while (i > 0) {
      --i;
      if (cur[i] < doms[i].second) {
        ++cur[i];
        break;
      }
      cur[i] = doms[i].first;
      if (i == 0) return std::nullopt;
    }
    if (cur.empty()) return std::nullopt;
  }
}

// ------------------------- the linter ---------------------------------------

const ast::LValuePtr& StripProjections(const ast::LValuePtr& d) {
  const ast::LValuePtr* cur = &d;
  while ((*cur)->is_proj()) cur = &(*cur)->proj().base;
  return *cur;
}

class LoopLinter {
 public:
  LoopLinter(std::vector<Diagnostic>* diags, const LoopLintOptions& options)
      : diags_(diags), options_(options) {}

  void Run(const ast::Program& program) {
    CollectDeclaredNames(program);
    std::set<std::string> loop_vars;
    for (const auto& s : program.stmts) {
      CheckStructure(*s, /*inside_for=*/false, &loop_vars);
    }
    for (const auto& s : program.stmts) {
      CheckTopLevel(*s);
    }
  }

 private:
  void Emit(const char* code, Severity severity, SourceLocation loc,
            std::string message, std::string hint = "",
            std::optional<Witness> witness = std::nullopt) {
    diags_->push_back(Diagnostic{code, severity, loc, std::move(message),
                                 std::move(hint), std::move(witness)});
  }

  void CollectDeclaredNames(const ast::Program& program) {
    // Every `var` declaration anywhere in the program; used by the
    // shadowed-index advisory.
    std::vector<const Stmt*> work;
    for (const auto& s : program.stmts) work.push_back(s.get());
    while (!work.empty()) {
      const Stmt* s = work.back();
      work.pop_back();
      if (s->is<Stmt::Decl>()) {
        declared_.insert(s->as<Stmt::Decl>().name);
      } else if (s->is<Stmt::ForRange>()) {
        work.push_back(s->as<Stmt::ForRange>().body.get());
      } else if (s->is<Stmt::ForEach>()) {
        work.push_back(s->as<Stmt::ForEach>().body.get());
      } else if (s->is<Stmt::While>()) {
        work.push_back(s->as<Stmt::While>().body.get());
      } else if (s->is<Stmt::If>()) {
        work.push_back(s->as<Stmt::If>().then_branch.get());
        if (s->as<Stmt::If>().else_branch != nullptr) {
          work.push_back(s->as<Stmt::If>().else_branch.get());
        }
      } else if (s->is<Stmt::Block>()) {
        for (const auto& child : s->as<Stmt::Block>().stmts) {
          work.push_back(child.get());
        }
      }
    }
  }

  /// Structural rules: declarations in loops, duplicate/shadowed
  /// indexes, non-commutative self-updates.
  void CheckStructure(const Stmt& s, bool inside_for,
                      std::set<std::string>* loop_vars) {
    if (s.is<Stmt::Decl>()) {
      if (inside_for) {
        Emit(diag::kDeclInLoop, Severity::kError, s.loc,
             StrCat("declaration of '", s.as<Stmt::Decl>().name,
                    "' inside a for-loop"),
             "move the declaration above the loop (loop bodies run in "
             "parallel and cannot allocate per-iteration variables)");
      }
      return;
    }
    if (s.is<Stmt::Assign>() && inside_for) {
      // `d := d ⊖ e` with a non-commutative ⊖ survives canonicalization
      // as a plain assignment, and then races with itself. Flag the
      // likely intent before the dependence checker rejects it opaquely.
      const auto& node = s.as<Stmt::Assign>();
      if (node.value->is<Expr::Bin>()) {
        const auto& bin = node.value->as<Expr::Bin>();
        auto matches = [&](const ast::ExprPtr& side) {
          return side->is<Expr::LVal>() &&
                 LValueEquals(side->as<Expr::LVal>().lvalue, node.dest);
        };
        if (!runtime::IsCommutativeMonoid(bin.op) &&
            (matches(bin.lhs) || matches(bin.rhs))) {
          Emit(diag::kNonCommutativeUpdate, Severity::kWarning, s.loc,
               StrCat("self-update of ", node.dest->ToString(),
                      " with non-commutative operator '",
                      runtime::BinOpName(bin.op),
                      "' cannot be parallelized as an incremental update"),
               "accumulate with a commutative monoid (+, *, min, max, "
               "&&, ||) or rewrite the reduction algebraically");
        }
      }
    }
    if (s.is<Stmt::ForRange>() || s.is<Stmt::ForEach>()) {
      const std::string& var = s.is<Stmt::ForRange>()
                                   ? s.as<Stmt::ForRange>().var
                                   : s.as<Stmt::ForEach>().var;
      if (!loop_vars->insert(var).second) {
        Emit(diag::kDuplicateIndex, Severity::kError, s.loc,
             StrCat("duplicate loop index variable '", var,
                    "'; rename the inner loop variable"),
             "the paper renames duplicate indexes; here the programmer "
             "must");
      } else if (declared_.count(var) != 0) {
        Emit(diag::kShadowedIndex, Severity::kWarning, s.loc,
             StrCat("loop index '", var, "' shadows a declared variable"),
             "rename the loop index so reads inside the loop cannot be "
             "confused with the outer variable");
      }
      const Stmt& body = s.is<Stmt::ForRange>()
                             ? *s.as<Stmt::ForRange>().body
                             : *s.as<Stmt::ForEach>().body;
      bool sequential = ContainsWhile(s);
      CheckStructure(body, /*inside_for=*/inside_for || !sequential,
                     loop_vars);
      loop_vars->erase(var);
      return;
    }
    if (s.is<Stmt::While>()) {
      CheckStructure(*s.as<Stmt::While>().body, inside_for, loop_vars);
      return;
    }
    if (s.is<Stmt::If>()) {
      const auto& node = s.as<Stmt::If>();
      CheckStructure(*node.then_branch, inside_for, loop_vars);
      if (node.else_branch != nullptr) {
        CheckStructure(*node.else_branch, inside_for, loop_vars);
      }
      return;
    }
    if (s.is<Stmt::Block>()) {
      for (const auto& child : s.as<Stmt::Block>().stmts) {
        CheckStructure(*child, inside_for, loop_vars);
      }
    }
  }

  void CheckTopLevel(const Stmt& s) {
    if (s.is<Stmt::ForRange>() || s.is<Stmt::ForEach>()) {
      if (ContainsWhile(s)) {
        if (s.is<Stmt::ForEach>()) {
          Emit(diag::kForInWhile, Severity::kError, s.loc,
               "for-in loop contains a while-loop and cannot be "
               "parallelized or sequentialized",
               "hoist the while-loop out of the for-in, or iterate with "
               "a bounded for-range loop");
        }
        return;
      }
      CheckLoop(s);
      return;
    }
    if (s.is<Stmt::While>()) {
      CheckTopLevel(*s.as<Stmt::While>().body);
      return;
    }
    if (s.is<Stmt::If>()) {
      const auto& node = s.as<Stmt::If>();
      CheckTopLevel(*node.then_branch);
      if (node.else_branch != nullptr) CheckTopLevel(*node.else_branch);
      return;
    }
    if (s.is<Stmt::Block>()) {
      for (const auto& child : s.as<Stmt::Block>().stmts) {
        CheckTopLevel(*child);
      }
      return;
    }
  }

  /// Definition 3.1 over one parallelizable for-loop, with witnesses.
  void CheckLoop(const Stmt& loop) {
    std::vector<StmtAccessInfo> accesses = CollectAccesses(loop);
    std::map<std::string, Bounds> bounds;
    CollectBounds(loop, &bounds);

    // Restriction 1: non-incremental update destinations must be affine
    // and cover every enclosing loop index. A destination that fails is
    // its own race: two iterations write the same element.
    for (const StmtAccessInfo& info : accesses) {
      for (const ast::LValuePtr& d : info.writers) {
        if (IsAffineDest(d, info.context)) continue;
        std::set<std::string> ctx_set(info.context.begin(),
                                      info.context.end());
        bool indexes_affine = true;
        for (const ast::ExprPtr& e : IndexExprsOf(d)) {
          if (UsesLoopIndex(e, ctx_set) && !IsAffineExpr(e, ctx_set)) {
            indexes_affine = false;
          }
        }
        const char* code =
            indexes_affine ? diag::kDestMissesIndexes : diag::kNonAffineDest;
        std::string hint =
            indexes_affine
                ? "every enclosing loop index must appear in the "
                  "destination subscript; add an array dimension per "
                  "index (the paper's §3.2 vectorization rewrite)"
                : "destination subscripts must be affine (c0 + c1*i + "
                  "...) in the loop indexes";
        Emit(code, Severity::kError,
             info.stmt != nullptr ? info.stmt->loc : SourceLocation{},
             StrCat("destination ", d->ToString(),
                    " of a non-incremental update is not affine in "
                    "loop indexes (",
                    Join(info.context, ","), ")"),
             std::move(hint),
             FindWitness(d, info.context, d, info.context,
                         /*conflict_is_write=*/true, bounds, options_));
      }
    }

    // Restriction 2: write/aggregate vs read dependences between
    // statements, modulo exceptions (a) and (b).
    for (const StmtAccessInfo& s1 : accesses) {
      std::set<std::string> ctx1(s1.context.begin(), s1.context.end());
      for (const StmtAccessInfo& s2 : accesses) {
        std::set<std::string> ctx2(s2.context.begin(), s2.context.end());
        for (const ast::LValuePtr& d2 : s2.readers) {
          const ast::LValuePtr& d2_base = StripProjections(d2);
          // Exception (a): write then read of the same location.
          for (const ast::LValuePtr& d1 : s1.writers) {
            if (!Overlap(d1, d2)) continue;
            if (LValueEquals(d1, d2_base) && s1.seq < s2.seq) continue;
            Emit(diag::kWriteReadRecurrence, Severity::kError,
                 s2.stmt != nullptr ? s2.stmt->loc : SourceLocation{},
                 StrCat("recurrence: ", d2->ToString(), " is read but ",
                        d1->ToString(), " is written in the same loop"),
                 "copy the array into a fresh one first and read the "
                 "copy (the paper's §3.2 stencil rewrite)",
                 FindWitness(d1, s1.context, d2_base, s2.context,
                             /*conflict_is_write=*/false, bounds, options_));
          }
          // Exception (b): increment then read of the same location.
          for (const ast::LValuePtr& d1 : s1.aggregators) {
            if (!Overlap(d1, d2)) continue;
            if (LValueEquals(d1, d2_base) && s1.seq < s2.seq &&
                IsAffineDest(d2_base, s2.context)) {
              std::set<std::string> inter;
              for (const std::string& v : ctx1) {
                if (ctx2.count(v) != 0) inter.insert(v);
              }
              std::set<std::string> all_indexes = ctx1;
              all_indexes.insert(ctx2.begin(), ctx2.end());
              if (inter == IndexesOf(d1, all_indexes)) continue;
            }
            Emit(diag::kIncrReadRecurrence, Severity::kError,
                 s2.stmt != nullptr ? s2.stmt->loc : SourceLocation{},
                 StrCat("recurrence: ", d2->ToString(), " is read but ",
                        d1->ToString(), " is incremented in the same loop"),
                 "read an increment only under the exact index context "
                 "that produced it (Definition 3.1, exception (b)), or "
                 "split the loop in two",
                 FindWitness(d1, s1.context, d2_base, s2.context,
                             /*conflict_is_write=*/false, bounds, options_));
          }
        }
      }
    }

    // Advisory: non-affine read subscripts are outside the dependence
    // analysis; the checker treats them conservatively by root name.
    for (const StmtAccessInfo& info : accesses) {
      std::set<std::string> ctx_set(info.context.begin(),
                                    info.context.end());
      for (const ast::LValuePtr& d : info.readers) {
        if (!d->is_index()) continue;
        for (const ast::ExprPtr& e : d->index().indices) {
          if (UsesLoopIndex(e, ctx_set) && !IsAffineExpr(e, ctx_set)) {
            Emit(diag::kNonAffineRead, Severity::kWarning,
                 info.stmt != nullptr ? info.stmt->loc : SourceLocation{},
                 StrCat("read subscript of ", d->ToString(),
                        " is not affine in loop indexes (",
                        Join(info.context, ","), ")"),
                 "non-affine subscripts are matched only by array name; "
                 "prefer affine access patterns for precise analysis");
            break;
          }
        }
      }
    }
  }

  std::vector<Diagnostic>* diags_;
  const LoopLintOptions& options_;
  std::set<std::string> declared_;
};

}  // namespace

std::vector<Diagnostic> LintLoops(const ast::Program& program,
                                  const LoopLintOptions& options) {
  std::vector<Diagnostic> diags;
  LoopLinter linter(&diags, options);
  linter.Run(program);
  SortAndDedupe(&diags);
  return diags;
}

}  // namespace diablo::analysis
