#ifndef DIABLO_ANALYSIS_LVALUES_H_
#define DIABLO_ANALYSIS_LVALUES_H_

#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace diablo::analysis {

/// Structural equality of AST expressions / L-values ("d1 = d2" in the
/// paper's Definition 3.1 exceptions).
bool ExprEquals(const ast::ExprPtr& a, const ast::ExprPtr& b);
bool LValueEquals(const ast::LValuePtr& a, const ast::LValuePtr& b);

/// The L-value access sets of one update statement (paper §3.2):
/// aggregators A (incremented destinations), writers W (assigned
/// destinations), readers R (everything read, including destination index
/// expressions such as W[i] inside V[W[i]]).
struct StmtAccessInfo {
  /// The Incr or Assign statement itself.
  const ast::Stmt* stmt = nullptr;
  /// Pre-order sequence number — "s1 precedes s2" iff seq1 < seq2.
  int seq = 0;
  /// Enclosing for-loop index variables, outermost first (context(s)).
  std::vector<std::string> context;
  std::vector<ast::LValuePtr> aggregators;
  std::vector<ast::LValuePtr> writers;
  std::vector<ast::LValuePtr> readers;
};

/// Walks a statement tree and collects the access sets of every update
/// statement inside it, with contexts and sequence numbers. `outer_context`
/// seeds the loop-index context (empty at program top level).
std::vector<StmtAccessInfo> CollectAccesses(
    const ast::Stmt& root, std::vector<std::string> outer_context = {});

/// Collects the L-values read by an expression into `out`.
void CollectExprReads(const ast::ExprPtr& e,
                      std::vector<ast::LValuePtr>* out);

/// Two destinations overlap when they can denote the same storage: both
/// rooted at the same variable/array name (a sound over-approximation of
/// the paper's overlap relation).
bool Overlap(const ast::LValuePtr& a, const ast::LValuePtr& b);

/// The set of loop-index variables (from `loop_indexes`) appearing
/// anywhere in `d` — the paper's indexes(d).
std::set<std::string> IndexesOf(const ast::LValuePtr& d,
                                const std::set<std::string>& loop_indexes);

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_LVALUES_H_
