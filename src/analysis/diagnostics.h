#ifndef DIABLO_ANALYSIS_DIAGNOSTICS_H_
#define DIABLO_ANALYSIS_DIAGNOSTICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace diablo::analysis {

// ---------------------------------------------------------------------------
// Structured diagnostics shared by the loop-level (Definition 3.1) and
// plan-level (DISC algebra) analyzers. Every diagnostic carries a stable
// code so tools and golden tests can match on it:
//
//   D0xx  loop-level errors (the program is rejected for distribution)
//   D1xx  loop-level advisories (accepted, but worth a look)
//   D2xx  proven semantic errors from abstract interpretation (rejected;
//         each carries a concrete witness the reference interpreter
//         confirms)
//   P0xx  plan-level shuffle statistics (notes)
//   P1xx  plan-level advisories (missed optimizations / expensive shapes)
//   P2xx  plan-level cost advisories backed by interval evidence
//
// The full catalog with examples lives in docs/diagnostics.md.
// ---------------------------------------------------------------------------

namespace diag {
// Loop-level errors.
inline constexpr char kWriteReadRecurrence[] = "D001";
inline constexpr char kIncrReadRecurrence[] = "D002";
inline constexpr char kNonAffineDest[] = "D003";
inline constexpr char kDestMissesIndexes[] = "D004";
inline constexpr char kDeclInLoop[] = "D005";
inline constexpr char kDuplicateIndex[] = "D006";
inline constexpr char kForInWhile[] = "D007";
// Loop-level advisories.
inline constexpr char kShadowedIndex[] = "D101";
inline constexpr char kNonCommutativeUpdate[] = "D102";
inline constexpr char kNonAffineRead[] = "D103";
// Proven semantic errors (abstract interpretation / merge algebra).
inline constexpr char kOutOfBoundsWrite[] = "D201";
inline constexpr char kZeroDivisor[] = "D202";
inline constexpr char kNonAssociativeMerge[] = "D203";
// Plan-level statistics.
inline constexpr char kStmtShuffles[] = "P001";
inline constexpr char kProgramShuffles[] = "P002";
// Plan-level advisories.
inline constexpr char kGroupByReduce[] = "P101";
inline constexpr char kFilterAboveJoin[] = "P102";
inline constexpr char kMissedFusion[] = "P103";
inline constexpr char kEmptyMerge[] = "P104";
inline constexpr char kCartesianProduct[] = "P105";
// Plan-level cost advisories (interval evidence).
inline constexpr char kKeyCardinality[] = "P201";
inline constexpr char kBroadcastJoinHint[] = "P202";
}  // namespace diag

enum class Severity { kNote, kWarning, kError };

/// "note" / "warning" / "error".
const char* SeverityName(Severity s);

/// A concrete two-iteration race witness attached to a dependence
/// diagnostic: two iteration-vector assignments under which both accesses
/// resolve to the same array element (Definition 3.1 is violated *for a
/// reason*, and this is the reason).
struct Witness {
  /// Witness flavor. Empty for the classic race witness (schema-stable
  /// with pre-D2xx tools); "oob-write" (D201: write_iteration is the
  /// faulting environment, element the out-of-bounds subscript),
  /// "zero-divisor" (D202: array holds the divisor expression text,
  /// write_iteration the environment under which it evaluates to 0),
  /// "nonassoc" (D203: array holds the operator name, write_iteration
  /// binds a,b,c with the counterexample triple).
  std::string kind;
  /// Root variable both accesses touch.
  std::string array;
  /// Iteration vector of the writing (or incrementing) access: loop index
  /// variable -> value, outermost loop first.
  std::vector<std::pair<std::string, int64_t>> write_iteration;
  /// Iteration vector of the conflicting access (a read, or a second
  /// write for self-conflicting destinations).
  std::vector<std::pair<std::string, int64_t>> read_iteration;
  /// True when the conflicting access is another write of the same
  /// destination rather than a read.
  bool conflict_is_write = false;
  /// The common element's index vector (empty for scalar destinations).
  std::vector<int64_t> element;

  /// "V[1]" or the bare variable name for scalars.
  std::string ElementString() const;
  /// "write at i=2 and read at i=1 both touch V[1]".
  std::string ToString() const;
};

struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  SourceLocation loc;
  std::string message;
  /// Optional fix suggestion shown under the message.
  std::string hint;
  std::optional<Witness> witness;
};

/// Sorts by source location (then code, then message) and drops exact
/// duplicates, making reports deterministic across runs.
void SortAndDedupe(std::vector<Diagnostic>* diags);

bool HasErrors(const std::vector<Diagnostic>& diags);
int CountSeverity(const std::vector<Diagnostic>& diags, Severity s);

/// Renders one diagnostic as human-readable text:
///
///   prog.diablo:2:3: error: D001: recurrence: ...
///     V[i] := (V[i-1] + V[i+1]) / 2.0;
///     ^
///     witness: write at i=2 and read at i=1 both touch V[1]
///     hint: copy V into a second array first (see §3.2)
///
/// `source` is the program text used for the caret line (may be empty);
/// `filename` defaults to "<input>" when empty.
std::string RenderText(const Diagnostic& d, const std::string& source,
                       const std::string& filename);
std::string RenderTextAll(const std::vector<Diagnostic>& diags,
                          const std::string& source,
                          const std::string& filename);

/// Renders one diagnostic as a single JSON object with a schema-stable
/// key order: code, severity, line, column, message, then optionally
/// hint and witness. The witness object has keys array, element,
/// element_string, conflict, write, read. Plan-statistics diagnostics
/// (P0xx) additionally carry a trailing "location" object —
/// {"file":...,"line":N,"column":N} — the same provenance schema the
/// runtime tracer stamps on stage spans, so lint findings and trace
/// spans join on one location shape (docs/diagnostics.md).
std::string RenderJson(const Diagnostic& d, const std::string& filename);
std::string RenderJson(const Diagnostic& d);

/// {"file":"...","diagnostics":[...],"errors":N,"warnings":N,"notes":N}
std::string RenderJsonAll(const std::vector<Diagnostic>& diags,
                          const std::string& filename);

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_DIAGNOSTICS_H_
