#include "analysis/lvalues.h"

namespace diablo::analysis {

using ast::Expr;
using ast::LValue;
using ast::Stmt;

bool LValueEquals(const ast::LValuePtr& a, const ast::LValuePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->node.index() != b->node.index()) return false;
  if (a->is_var()) return a->var().name == b->var().name;
  if (a->is_proj()) {
    return a->proj().field == b->proj().field &&
           LValueEquals(a->proj().base, b->proj().base);
  }
  const auto& x = a->index();
  const auto& y = b->index();
  if (x.array != y.array || x.indices.size() != y.indices.size()) {
    return false;
  }
  for (size_t i = 0; i < x.indices.size(); ++i) {
    if (!ExprEquals(x.indices[i], y.indices[i])) return false;
  }
  return true;
}

bool ExprEquals(const ast::ExprPtr& a, const ast::ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->node.index() != b->node.index()) return false;
  if (a->is<Expr::LVal>()) {
    return LValueEquals(a->as<Expr::LVal>().lvalue, b->as<Expr::LVal>().lvalue);
  }
  if (a->is<Expr::Bin>()) {
    const auto& x = a->as<Expr::Bin>();
    const auto& y = b->as<Expr::Bin>();
    return x.op == y.op && ExprEquals(x.lhs, y.lhs) && ExprEquals(x.rhs, y.rhs);
  }
  if (a->is<Expr::Un>()) {
    const auto& x = a->as<Expr::Un>();
    const auto& y = b->as<Expr::Un>();
    return x.op == y.op && ExprEquals(x.operand, y.operand);
  }
  if (a->is<Expr::TupleCons>()) {
    const auto& x = a->as<Expr::TupleCons>().elems;
    const auto& y = b->as<Expr::TupleCons>().elems;
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!ExprEquals(x[i], y[i])) return false;
    }
    return true;
  }
  if (a->is<Expr::RecordCons>()) {
    const auto& x = a->as<Expr::RecordCons>().fields;
    const auto& y = b->as<Expr::RecordCons>().fields;
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].first != y[i].first || !ExprEquals(x[i].second, y[i].second)) {
        return false;
      }
    }
    return true;
  }
  if (a->is<Expr::IntConst>()) {
    return a->as<Expr::IntConst>().value == b->as<Expr::IntConst>().value;
  }
  if (a->is<Expr::DoubleConst>()) {
    return a->as<Expr::DoubleConst>().value ==
           b->as<Expr::DoubleConst>().value;
  }
  if (a->is<Expr::BoolConst>()) {
    return a->as<Expr::BoolConst>().value == b->as<Expr::BoolConst>().value;
  }
  if (a->is<Expr::StringConst>()) {
    return a->as<Expr::StringConst>().value ==
           b->as<Expr::StringConst>().value;
  }
  const auto& x = a->as<Expr::Call>();
  const auto& y = b->as<Expr::Call>();
  if (x.function != y.function || x.args.size() != y.args.size()) {
    return false;
  }
  for (size_t i = 0; i < x.args.size(); ++i) {
    if (!ExprEquals(x.args[i], y.args[i])) return false;
  }
  return true;
}

namespace {

/// Collects the L-values read *inside* an L-value: its index expressions
/// and, for projections, the indices of the base.
void CollectLValueInnerReads(const ast::LValuePtr& d,
                             std::vector<ast::LValuePtr>* out) {
  if (d->is_index()) {
    for (const auto& e : d->index().indices) CollectExprReads(e, out);
  } else if (d->is_proj()) {
    CollectLValueInnerReads(d->proj().base, out);
  }
}

}  // namespace

void CollectExprReads(const ast::ExprPtr& e,
                      std::vector<ast::LValuePtr>* out) {
  if (e == nullptr) return;
  if (e->is<Expr::LVal>()) {
    const ast::LValuePtr& d = e->as<Expr::LVal>().lvalue;
    out->push_back(d);
    CollectLValueInnerReads(d, out);
    return;
  }
  if (e->is<Expr::Bin>()) {
    CollectExprReads(e->as<Expr::Bin>().lhs, out);
    CollectExprReads(e->as<Expr::Bin>().rhs, out);
    return;
  }
  if (e->is<Expr::Un>()) {
    CollectExprReads(e->as<Expr::Un>().operand, out);
    return;
  }
  if (e->is<Expr::TupleCons>()) {
    for (const auto& c : e->as<Expr::TupleCons>().elems) {
      CollectExprReads(c, out);
    }
    return;
  }
  if (e->is<Expr::RecordCons>()) {
    for (const auto& [unused, c] : e->as<Expr::RecordCons>().fields) {
      CollectExprReads(c, out);
    }
    return;
  }
  if (e->is<Expr::Call>()) {
    for (const auto& c : e->as<Expr::Call>().args) CollectExprReads(c, out);
    return;
  }
  // Constants: nothing to read.
}

bool Overlap(const ast::LValuePtr& a, const ast::LValuePtr& b) {
  return a != nullptr && b != nullptr && a->RootName() == b->RootName();
}

namespace {

void CollectIndexNames(const ast::ExprPtr& e,
                       const std::set<std::string>& loop_indexes,
                       std::set<std::string>* out) {
  std::vector<ast::LValuePtr> reads;
  CollectExprReads(e, &reads);
  for (const auto& d : reads) {
    if (d->is_var() && loop_indexes.count(d->var().name) != 0) {
      out->insert(d->var().name);
    }
  }
}

}  // namespace

std::set<std::string> IndexesOf(const ast::LValuePtr& d,
                                const std::set<std::string>& loop_indexes) {
  std::set<std::string> out;
  if (d->is_index()) {
    for (const auto& e : d->index().indices) {
      CollectIndexNames(e, loop_indexes, &out);
    }
  } else if (d->is_proj()) {
    std::set<std::string> base = IndexesOf(d->proj().base, loop_indexes);
    out.insert(base.begin(), base.end());
  }
  return out;
}

namespace {

struct Collector {
  std::vector<StmtAccessInfo>* out;
  int seq = 0;

  void Walk(const Stmt& s, std::vector<std::string>& context) {
    if (s.is<Stmt::Incr>()) {
      const auto& node = s.as<Stmt::Incr>();
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      info.aggregators.push_back(node.dest);
      CollectLValueInnerReadsPublic(node.dest, &info.readers);
      CollectExprReads(node.value, &info.readers);
      out->push_back(std::move(info));
      return;
    }
    if (s.is<Stmt::Assign>()) {
      const auto& node = s.as<Stmt::Assign>();
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      info.writers.push_back(node.dest);
      CollectLValueInnerReadsPublic(node.dest, &info.readers);
      CollectExprReads(node.value, &info.readers);
      out->push_back(std::move(info));
      return;
    }
    if (s.is<Stmt::Decl>()) {
      const auto& node = s.as<Stmt::Decl>();
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      info.writers.push_back(ast::LValue::MakeVar(node.name, s.loc));
      CollectExprReads(node.init, &info.readers);
      out->push_back(std::move(info));
      return;
    }
    if (s.is<Stmt::ForRange>()) {
      const auto& node = s.as<Stmt::ForRange>();
      // Loop bounds are read once; record them as a read-only statement.
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      CollectExprReads(node.lo, &info.readers);
      CollectExprReads(node.hi, &info.readers);
      if (!info.readers.empty()) out->push_back(std::move(info));
      context.push_back(node.var);
      Walk(*node.body, context);
      context.pop_back();
      return;
    }
    if (s.is<Stmt::ForEach>()) {
      const auto& node = s.as<Stmt::ForEach>();
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      CollectExprReads(node.collection, &info.readers);
      if (!info.readers.empty()) out->push_back(std::move(info));
      context.push_back(node.var);
      Walk(*node.body, context);
      context.pop_back();
      return;
    }
    if (s.is<Stmt::While>()) {
      const auto& node = s.as<Stmt::While>();
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      CollectExprReads(node.cond, &info.readers);
      if (!info.readers.empty()) out->push_back(std::move(info));
      Walk(*node.body, context);
      return;
    }
    if (s.is<Stmt::If>()) {
      const auto& node = s.as<Stmt::If>();
      StmtAccessInfo info;
      info.stmt = &s;
      info.seq = seq++;
      info.context = context;
      CollectExprReads(node.cond, &info.readers);
      if (!info.readers.empty()) out->push_back(std::move(info));
      Walk(*node.then_branch, context);
      if (node.else_branch != nullptr) Walk(*node.else_branch, context);
      return;
    }
    for (const auto& child : s.as<Stmt::Block>().stmts) {
      Walk(*child, context);
    }
  }

  static void CollectLValueInnerReadsPublic(const ast::LValuePtr& d,
                                            std::vector<ast::LValuePtr>* out) {
    if (d->is_index()) {
      for (const auto& e : d->index().indices) CollectExprReads(e, out);
    } else if (d->is_proj()) {
      CollectLValueInnerReadsPublic(d->proj().base, out);
    }
  }
};

}  // namespace

std::vector<StmtAccessInfo> CollectAccesses(
    const ast::Stmt& root, std::vector<std::string> outer_context) {
  std::vector<StmtAccessInfo> out;
  Collector collector{&out};
  collector.Walk(root, outer_context);
  return out;
}

}  // namespace diablo::analysis
