#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace diablo::analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Witness::ElementString() const {
  if (element.empty()) return array;
  std::vector<std::string> idx;
  for (int64_t v : element) idx.push_back(std::to_string(v));
  return StrCat(array, "[", Join(idx, ","), "]");
}

namespace {

std::string IterationString(
    const std::vector<std::pair<std::string, int64_t>>& iter) {
  if (iter.empty()) return "()";
  std::vector<std::string> parts;
  for (const auto& [var, val] : iter) {
    parts.push_back(StrCat(var, "=", val));
  }
  return Join(parts, ",");
}

}  // namespace

std::string Witness::ToString() const {
  if (kind == "oob-write") {
    return StrCat("write at ", IterationString(write_iteration),
                  " touches ", ElementString());
  }
  if (kind == "zero-divisor") {
    return StrCat("divisor ", array, " = 0 at ",
                  IterationString(write_iteration));
  }
  if (kind == "nonassoc") {
    return StrCat("counterexample ", IterationString(write_iteration),
                  ": (a ", array, " b) ", array, " c != a ", array,
                  " (b ", array, " c)");
  }
  return StrCat(conflict_is_write ? "writes at " : "write at ",
                IterationString(write_iteration),
                conflict_is_write ? " and " : " and read at ",
                IterationString(read_iteration), " both touch ",
                ElementString());
}

void SortAndDedupe(std::vector<Diagnostic>* diags) {
  auto key = [](const Diagnostic& d) {
    return std::make_tuple(d.loc.line, d.loc.column, d.code, d.message);
  };
  std::stable_sort(diags->begin(), diags->end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
  diags->erase(std::unique(diags->begin(), diags->end(),
                           [&](const Diagnostic& a, const Diagnostic& b) {
                             return key(a) == key(b);
                           }),
               diags->end());
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return CountSeverity(diags, Severity::kError) > 0;
}

int CountSeverity(const std::vector<Diagnostic>& diags, Severity s) {
  int n = 0;
  for (const auto& d : diags) {
    if (d.severity == s) ++n;
  }
  return n;
}

namespace {

/// The 1-based `line` of `source`, or empty when out of range.
std::string SourceLine(const std::string& source, int line) {
  if (line < 1) return "";
  size_t pos = 0;
  for (int i = 1; i < line; ++i) {
    pos = source.find('\n', pos);
    if (pos == std::string::npos) return "";
    ++pos;
  }
  size_t end = source.find('\n', pos);
  return source.substr(pos, end == std::string::npos ? std::string::npos
                                                     : end - pos);
}

}  // namespace

std::string RenderText(const Diagnostic& d, const std::string& source,
                       const std::string& filename) {
  std::string out =
      StrCat(filename.empty() ? "<input>" : filename, ":", d.loc.line, ":",
             d.loc.column, ": ", SeverityName(d.severity), ": ", d.code,
             ": ", d.message, "\n");
  std::string line = SourceLine(source, d.loc.line);
  if (!line.empty()) {
    out += StrCat("  ", line, "\n");
    std::string caret = "  ";
    for (int i = 1; i < d.loc.column; ++i) {
      caret += (static_cast<size_t>(i - 1) < line.size() &&
                line[i - 1] == '\t')
                   ? '\t'
                   : ' ';
    }
    out += caret + "^\n";
  }
  if (d.witness.has_value()) {
    out += StrCat("  witness: ", d.witness->ToString(), "\n");
  }
  if (!d.hint.empty()) {
    out += StrCat("  hint: ", d.hint, "\n");
  }
  return out;
}

std::string RenderTextAll(const std::vector<Diagnostic>& diags,
                          const std::string& source,
                          const std::string& filename) {
  std::string out;
  for (const auto& d : diags) out += RenderText(d, source, filename);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string JsonIteration(
    const std::vector<std::pair<std::string, int64_t>>& iter) {
  std::vector<std::string> parts;
  for (const auto& [var, val] : iter) {
    parts.push_back(StrCat("\"", JsonEscape(var), "\":", val));
  }
  return StrCat("{", Join(parts, ","), "}");
}

}  // namespace

std::string RenderJson(const Diagnostic& d, const std::string& filename) {
  std::string out = StrCat(
      "{\"code\":\"", JsonEscape(d.code), "\",\"severity\":\"",
      SeverityName(d.severity), "\",\"line\":", d.loc.line,
      ",\"column\":", d.loc.column, ",\"message\":\"",
      JsonEscape(d.message), "\"");
  if (!d.hint.empty()) {
    out += StrCat(",\"hint\":\"", JsonEscape(d.hint), "\"");
  }
  if (d.witness.has_value()) {
    const Witness& w = *d.witness;
    std::vector<std::string> elem;
    for (int64_t v : w.element) elem.push_back(std::to_string(v));
    // The "kind" key appears only for D2xx witnesses, keeping the
    // classic race-witness object byte-stable for existing consumers.
    out += StrCat(",\"witness\":{",
                  w.kind.empty()
                      ? std::string()
                      : StrCat("\"kind\":\"", JsonEscape(w.kind), "\","),
                  "\"array\":\"", JsonEscape(w.array),
                  "\",\"element\":[", Join(elem, ","),
                  "],\"element_string\":\"", JsonEscape(w.ElementString()),
                  "\",\"conflict\":\"", w.conflict_is_write ? "write" : "read",
                  "\",\"write\":", JsonIteration(w.write_iteration),
                  ",\"read\":", JsonIteration(w.read_iteration), "}");
  }
  // Plan-statistics lints share the tracer's location schema so a P0xx
  // finding and a stage span for the same statement join on one shape.
  if (d.code.size() >= 2 && d.code[0] == 'P' && d.code[1] == '0') {
    out += StrCat(",\"location\":{\"file\":\"", JsonEscape(filename),
                  "\",\"line\":", d.loc.line, ",\"column\":", d.loc.column,
                  "}");
  }
  out += "}";
  return out;
}

std::string RenderJson(const Diagnostic& d) { return RenderJson(d, ""); }

std::string RenderJsonAll(const std::vector<Diagnostic>& diags,
                          const std::string& filename) {
  std::vector<std::string> items;
  for (const auto& d : diags) items.push_back(RenderJson(d, filename));
  return StrCat("{\"file\":\"", JsonEscape(filename),
                "\",\"diagnostics\":[", Join(items, ","),
                "],\"errors\":", CountSeverity(diags, Severity::kError),
                ",\"warnings\":", CountSeverity(diags, Severity::kWarning),
                ",\"notes\":", CountSeverity(diags, Severity::kNote), "}");
}

}  // namespace diablo::analysis
