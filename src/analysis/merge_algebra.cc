#include "analysis/merge_algebra.h"

#include <utility>

#include "analysis/lvalues.h"
#include "analysis/restrictions.h"
#include "common/strings.h"
#include "runtime/value.h"

namespace diablo::analysis {

using ast::Expr;
using ast::Stmt;
using runtime::BinOp;
using runtime::Value;

namespace {

std::optional<Value> TryEval(BinOp op, const Value& a, const Value& b) {
  auto r = runtime::EvalBinOp(op, a, b);
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

bool Same(const Value& a, const Value& b) { return a.Compare(b) == 0; }

/// One operand grid for the bounded search. Integers cover enough of the
/// truncated-division lattice to refute -, /, % (e.g. (4%3)%2 != 4%(3%2));
/// booleans cover the logical/comparison operators whose integer
/// applications all type-error.
std::vector<Value> SearchGrid(bool bools) {
  std::vector<Value> grid;
  if (bools) {
    grid.push_back(Value::MakeBool(false));
    grid.push_back(Value::MakeBool(true));
    return grid;
  }
  for (int64_t v = -4; v <= 4; ++v) grid.push_back(Value::MakeInt(v));
  return grid;
}

int64_t AsWitnessInt(const Value& v) {
  // Counterexamples are reported as integers; booleans map to 0/1.
  if (v.is_bool()) return v.AsBool() ? 1 : 0;
  return v.AsInt();
}

}  // namespace

OpAlgebra CheckOperatorAlgebra(BinOp op) {
  OpAlgebra out;
  out.op = op;
  // Proof by pattern match: the commutative-monoid table the update
  // canonicalizer already trusts, plus argmin. Argmin's left bias on
  // equal scores would look like a commutativity counterexample to the
  // bounded search, but the language defines ties as left-biased and
  // the engine folds deterministically in boxed arrival order, so the
  // monoid holds over the quotient that matters (distinct scores).
  if (runtime::IsCommutativeMonoid(op) || op == BinOp::kArgmin) {
    out.associative = AlgebraVerdict::kProven;
    out.commutative = AlgebraVerdict::kProven;
    return out;
  }
  for (bool bools : {false, true}) {
    std::vector<Value> grid = SearchGrid(bools);
    // Associativity: (a op b) op c vs a op (b op c); triples where either
    // side errors (type mismatch, division by zero) are skipped — the
    // law is only claimed over defined applications.
    if (out.associative != AlgebraVerdict::kRefuted) {
      for (const Value& a : grid) {
        for (const Value& b : grid) {
          for (const Value& c : grid) {
            auto ab = TryEval(op, a, b);
            if (!ab.has_value()) continue;
            auto l = TryEval(op, *ab, c);
            auto bc = TryEval(op, b, c);
            if (!l.has_value() || !bc.has_value()) continue;
            auto r = TryEval(op, a, *bc);
            if (!r.has_value()) continue;
            if (!Same(*l, *r)) {
              out.associative = AlgebraVerdict::kRefuted;
              out.assoc_counterexample = {AsWitnessInt(a), AsWitnessInt(b),
                                          AsWitnessInt(c)};
              break;
            }
          }
          if (out.associative == AlgebraVerdict::kRefuted) break;
        }
        if (out.associative == AlgebraVerdict::kRefuted) break;
      }
    }
    if (out.commutative != AlgebraVerdict::kRefuted) {
      for (const Value& a : grid) {
        for (const Value& b : grid) {
          auto l = TryEval(op, a, b);
          auto r = TryEval(op, b, a);
          if (!l.has_value() || !r.has_value()) continue;
          if (!Same(*l, *r)) {
            out.commutative = AlgebraVerdict::kRefuted;
            out.comm_counterexample = {AsWitnessInt(a), AsWitnessInt(b)};
            break;
          }
        }
        if (out.commutative == AlgebraVerdict::kRefuted) break;
      }
    }
  }
  return out;
}

namespace {

void WalkForMerges(const Stmt& s, bool inside_for,
                   std::vector<Diagnostic>* out) {
  if (s.is<Stmt::Assign>() && inside_for) {
    const auto& node = s.as<Stmt::Assign>();
    if (!node.value->is<Expr::Bin>()) return;
    const auto& bin = node.value->as<Expr::Bin>();
    auto matches = [&](const ast::ExprPtr& side) {
      return side->is<Expr::LVal>() &&
             LValueEquals(side->as<Expr::LVal>().lvalue, node.dest);
    };
    if (!matches(bin.lhs) && !matches(bin.rhs)) return;
    // A self-update surviving CanonicalizeIncrements has a non-monoid
    // operator; decide whether that is provable rather than guessed.
    OpAlgebra alg = CheckOperatorAlgebra(bin.op);
    const char* name = runtime::BinOpName(bin.op);
    if (alg.associative == AlgebraVerdict::kRefuted) {
      const auto& [a, b, c] = *alg.assoc_counterexample;
      Witness w;
      w.kind = "nonassoc";
      w.array = name;
      w.write_iteration = {{"a", a}, {"b", b}, {"c", c}};
      out->push_back(Diagnostic{
          diag::kNonAssociativeMerge, Severity::kError, s.loc,
          StrCat("self-update of ", node.dest->ToString(),
                 " merges with '", name,
                 "', which is not associative: the parallel reduction "
                 "this loop translates to would be order-dependent"),
          "rewrite the accumulation with an associative, commutative "
          "operator (+, *, min, max, &&, ||) or hoist the update out "
          "of the parallel loop",
          Witness(w)});
      return;
    }
    if (alg.commutative == AlgebraVerdict::kRefuted) {
      const auto& [a, b] = *alg.comm_counterexample;
      Witness w;
      w.kind = "nonassoc";
      w.array = name;
      w.write_iteration = {{"a", a}, {"b", b}};
      out->push_back(Diagnostic{
          diag::kNonAssociativeMerge, Severity::kError, s.loc,
          StrCat("self-update of ", node.dest->ToString(),
                 " merges with '", name,
                 "', which is not commutative: partitions combine in an "
                 "unspecified order"),
          "rewrite the accumulation with an associative, commutative "
          "operator (+, *, min, max, &&, ||) or hoist the update out "
          "of the parallel loop",
          Witness(w)});
    }
    return;
  }
  if (s.is<Stmt::ForRange>() || s.is<Stmt::ForEach>()) {
    const Stmt& body = s.is<Stmt::ForRange>() ? *s.as<Stmt::ForRange>().body
                                              : *s.as<Stmt::ForEach>().body;
    // For-loops containing a while run sequentially on the driver
    // (restrictions.cc), so their merges never feed a reduceByKey.
    bool parallel = !ContainsWhile(s);
    WalkForMerges(body, inside_for || parallel, out);
    return;
  }
  if (s.is<Stmt::While>()) {
    WalkForMerges(*s.as<Stmt::While>().body, inside_for, out);
    return;
  }
  if (s.is<Stmt::If>()) {
    const auto& node = s.as<Stmt::If>();
    WalkForMerges(*node.then_branch, inside_for, out);
    if (node.else_branch != nullptr) {
      WalkForMerges(*node.else_branch, inside_for, out);
    }
    return;
  }
  if (s.is<Stmt::Block>()) {
    for (const auto& child : s.as<Stmt::Block>().stmts) {
      WalkForMerges(*child, inside_for, out);
    }
  }
}

}  // namespace

std::vector<Diagnostic> LintMergeOperators(const ast::Program& program) {
  std::vector<Diagnostic> out;
  for (const auto& s : program.stmts) {
    WalkForMerges(*s, /*inside_for=*/false, &out);
  }
  SortAndDedupe(&out);
  return out;
}

}  // namespace diablo::analysis
