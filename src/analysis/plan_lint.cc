#include "analysis/plan_lint.h"

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "plan/plan.h"
#include "runtime/dataset.h"
#include "runtime/value.h"

namespace diablo::analysis {

using comp::CExpr;
using comp::CExprPtr;
using comp::CompPtr;
using comp::TargetStmt;
using comp::TargetStmtPtr;
using plan::CompPlan;
using plan::StreamOp;

namespace {

/// What evaluating one comprehension-calculus expression costs: the wide
/// (shuffling) stages it runs, in pipeline order.
struct WideStage {
  std::string label;
  /// Row width (slots) at the shuffle, for the ~bytes/row estimate.
  int row_slots = 0;
  /// Estimated serialized bytes per shuffled row. Typed stages
  /// (reduceByKey with an inferred ColumnSchema) use the real column
  /// widths; everything else prices row_slots at --bytes-per-slot.
  int64_t row_bytes = 0;
};

/// Row-count upper bounds; kUnboundedRows = no static bound.
constexpr int64_t kUnboundedRows = Interval::kPosInf;

int64_t MulRows(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  if (a > kUnboundedRows / b) return kUnboundedRows;
  return a * b;
}

int64_t AddRows(int64_t a, int64_t b) {
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  if (a > kUnboundedRows - b) return kUnboundedRows;
  return a + b;
}

struct ExprFacts {
  std::vector<WideStage> stages;
  /// Upper bound on the rows of an array-valued expression (merge,
  /// comprehension, array variable); kUnboundedRows when unknown.
  int64_t max_rows = kUnboundedRows;
};

/// Three-value emptiness for the P104 (merge into empty array) advisory.
enum class Emptiness { kEmpty, kNonEmpty, kUnknown };

/// True when `e` contains `⊕/v` for some v in `vars` (a reduction of a
/// group-by-lifted bag — the reduceByKey shape).
bool ContainsReduceOfVar(const CExprPtr& e,
                         const std::set<std::string>& vars) {
  if (e == nullptr) return false;
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    if (r.arg != nullptr && r.arg->is<CExpr::Var>() &&
        vars.count(r.arg->as<CExpr::Var>().name) != 0) {
      return true;
    }
    return ContainsReduceOfVar(r.arg, vars);
  }
  if (e->is<CExpr::Bin>()) {
    return ContainsReduceOfVar(e->as<CExpr::Bin>().lhs, vars) ||
           ContainsReduceOfVar(e->as<CExpr::Bin>().rhs, vars);
  }
  if (e->is<CExpr::Un>()) {
    return ContainsReduceOfVar(e->as<CExpr::Un>().operand, vars);
  }
  if (e->is<CExpr::TupleCons>()) {
    for (const auto& el : e->as<CExpr::TupleCons>().elems) {
      if (ContainsReduceOfVar(el, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::RecordCons>()) {
    for (const auto& [name, el] : e->as<CExpr::RecordCons>().fields) {
      if (ContainsReduceOfVar(el, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Proj>()) {
    return ContainsReduceOfVar(e->as<CExpr::Proj>().base, vars);
  }
  if (e->is<CExpr::Call>()) {
    for (const auto& a : e->as<CExpr::Call>().args) {
      if (ContainsReduceOfVar(a, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Nested>()) {
    const CompPtr& c = e->as<CExpr::Nested>().comp;
    if (ContainsReduceOfVar(c->head, vars)) return true;
    for (const auto& q : c->qualifiers) {
      if (ContainsReduceOfVar(q.expr, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Merge>()) {
    return ContainsReduceOfVar(e->as<CExpr::Merge>().left, vars) ||
           ContainsReduceOfVar(e->as<CExpr::Merge>().right, vars);
  }
  if (e->is<CExpr::BagCons>()) {
    for (const auto& el : e->as<CExpr::BagCons>().elems) {
      if (ContainsReduceOfVar(el, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Range>()) {
    return ContainsReduceOfVar(e->as<CExpr::Range>().lo, vars) ||
           ContainsReduceOfVar(e->as<CExpr::Range>().hi, vars);
  }
  return false;
}

/// Collects the names of variables assigned anywhere under `stmts`
/// (for the while-body widening of the emptiness lattice).
void CollectAssignedVars(const std::vector<TargetStmtPtr>& stmts,
                         std::set<std::string>* out) {
  for (const auto& s : stmts) {
    if (s->is<TargetStmt::Assign>()) {
      out->insert(s->as<TargetStmt::Assign>().var);
    } else if (s->is<TargetStmt::While>()) {
      CollectAssignedVars(s->as<TargetStmt::While>().body, out);
    }
  }
}

void CollectDeclaredArrays(const std::vector<TargetStmtPtr>& stmts,
                           std::set<std::string>* out) {
  for (const auto& s : stmts) {
    if (s->is<TargetStmt::Declare>()) {
      if (s->as<TargetStmt::Declare>().is_array) {
        out->insert(s->as<TargetStmt::Declare>().var);
      }
    } else if (s->is<TargetStmt::While>()) {
      CollectDeclaredArrays(s->as<TargetStmt::While>().body, out);
    }
  }
}

class PlanLinter {
 public:
  PlanLinter(const std::set<std::string>& array_vars,
             const PlanLintOptions& options)
      : options_(options) {
    for (const std::string& v : array_vars) {
      arrays_[v] = runtime::Dataset();
    }
    state_.engine = nullptr;
    state_.scalars = &scalars_;
    state_.arrays = &arrays_;
  }

  PlanLintResult Run(const comp::TargetProgram& target) {
    std::set<std::string> declared;
    CollectDeclaredArrays(target.stmts, &declared);
    for (const std::string& v : declared) {
      if (arrays_.count(v) == 0) arrays_[v] = runtime::Dataset();
    }
    WalkStmts(target.stmts);
    // P103: a narrow-only producer whose array feeds exactly one scan and
    // no join could have been fused into its consumer.
    for (const auto& [var, info] : producers_) {
      if (!info.narrow) continue;
      if (scan_consumers_[var] != 1 || other_consumers_[var] != 0) continue;
      Emit(diag::kMissedFusion, Severity::kWarning, consumer_loc_[var],
           StrCat("array '", var,
                  "' is built by a narrow pipeline (line ", info.loc.line,
                  ") and scanned by a single consumer; the intermediate "
                  "array is a missed narrow-fusion opportunity"),
           "inline the producer comprehension into its consumer to avoid "
           "materializing and re-scanning the array");
    }
    Emit(diag::kProgramShuffles, Severity::kNote, SourceLocation{},
         StrCat("program runs ", total_wide_,
                " wide (shuffle) stage(s) per pass; while-loop bodies "
                "counted once"),
         "");
    PlanLintResult result;
    SortAndDedupe(&diags_);
    result.diagnostics = std::move(diags_);
    result.total_wide_stages = total_wide_;
    return result;
  }

 private:
  void Emit(const char* code, Severity severity, SourceLocation loc,
            std::string message, std::string hint) {
    diags_.push_back(Diagnostic{code, severity, loc, std::move(message),
                                std::move(hint), std::nullopt});
  }

  Emptiness StateOf(const std::string& var) const {
    auto it = empties_.find(var);
    return it == empties_.end() ? Emptiness::kUnknown : it->second;
  }

  /// The prior-run stage measured for a wide stage of the statement at
  /// `loc`, or null (no --profile-in, or a stale profile).
  const runtime::ProfileStage* Measured(const std::string& label_fragment,
                                        SourceLocation loc) const {
    if (options_.profile == nullptr) return nullptr;
    return options_.profile->FindStage(options_.profile_file, loc.line,
                                       loc.column, label_fragment);
  }

  // ---- interval-backed cost evidence (P201/P202) ----

  /// Serialized bytes of one column of tag `t`: the width the engine
  /// charges per typed entry, or --bytes-per-slot for boxed/unknown.
  int64_t ColumnWidth(runtime::ColumnTag t) const {
    switch (t) {
      case runtime::ColumnTag::kBool:
        return 1;
      case runtime::ColumnTag::kInt64:
      case runtime::ColumnTag::kDouble:
        return 8;
      default:
        return options_.bytes_per_slot;
    }
  }

  /// Bytes of one (key, value) pair row under `schema`: a 4-byte kind
  /// header plus both column widths — exactly Value::SerializedBytes of
  /// the boxed pair row, which is also what TypedRows::EntryBytes
  /// charges for typed shuffles.
  int64_t PairRowBytes(const runtime::ColumnSchema& schema) const {
    return 4 + ColumnWidth(schema.key) + ColumnWidth(schema.value);
  }

  /// Interval of an integer-valued comprehension expression under the
  /// absint scalar facts. Top when no facts were supplied or the
  /// expression reads anything the abstract interpreter cannot bound.
  Interval EvalCExprInterval(const CExprPtr& e) const {
    if (e == nullptr) return Interval::Top();
    if (e->is<CExpr::IntConst>()) {
      return Interval::Const(e->as<CExpr::IntConst>().value);
    }
    if (e->is<CExpr::Var>()) {
      if (options_.int_scalars == nullptr) return Interval::Top();
      auto it = options_.int_scalars->find(e->as<CExpr::Var>().name);
      return it == options_.int_scalars->end() ? Interval::Top()
                                               : it->second;
    }
    if (e->is<CExpr::Un>()) {
      const auto& un = e->as<CExpr::Un>();
      if (un.op == runtime::UnOp::kNeg) {
        return NegI(EvalCExprInterval(un.operand));
      }
      return Interval::Top();
    }
    if (e->is<CExpr::Bin>()) {
      const auto& bin = e->as<CExpr::Bin>();
      Interval l = EvalCExprInterval(bin.lhs);
      Interval r = EvalCExprInterval(bin.rhs);
      switch (bin.op) {
        case runtime::BinOp::kAdd:
          return AddI(l, r);
        case runtime::BinOp::kSub:
          return SubI(l, r);
        case runtime::BinOp::kMul:
          return MulI(l, r);
        case runtime::BinOp::kMin:
          return MinI(l, r);
        case runtime::BinOp::kMax:
          return MaxI(l, r);
        default:
          return Interval::Top();
      }
    }
    return Interval::Top();
  }

  /// Upper bound on the rows a range generator [lo, hi] produces.
  int64_t RangeRowBound(const CExprPtr& lo, const CExprPtr& hi) const {
    Interval l = EvalCExprInterval(lo);
    Interval h = EvalCExprInterval(hi);
    if (l.lo == Interval::kNegInf || h.hi == Interval::kPosInf) {
      return kUnboundedRows;
    }
    int64_t n = h.hi - l.lo + 1;
    return n < 0 ? 0 : n;
  }

  int64_t ArrayRowBound(const std::string& var) const {
    auto it = array_rows_.find(var);
    return it == array_rows_.end() ? kUnboundedRows : it->second;
  }

  void WalkStmts(const std::vector<TargetStmtPtr>& stmts) {
    for (const auto& s : stmts) {
      if (s->is<TargetStmt::Declare>()) {
        const auto& d = s->as<TargetStmt::Declare>();
        empties_[d.var] = (d.is_array && d.init == nullptr)
                              ? Emptiness::kEmpty
                              : Emptiness::kNonEmpty;
        if (d.is_array && d.init == nullptr) array_rows_[d.var] = 0;
        if (d.init != nullptr) {
          ExprFacts facts = AnalyzeExpr(d.init, s->loc);
          if (d.is_array) array_rows_[d.var] = facts.max_rows;
          Report(StrCat("initializer of '", d.var, "'"), facts, s->loc);
        }
        continue;
      }
      if (s->is<TargetStmt::Assign>()) {
        const auto& a = s->as<TargetStmt::Assign>();
        ExprFacts facts = AnalyzeExpr(a.value, s->loc);
        Report(StrCat("assignment to '", a.var, "'"), facts, s->loc);
        if (a.is_array) {
          array_rows_[a.var] = facts.max_rows;
          // Producer bookkeeping for P103: narrow when the update's
          // comprehensions shuffled nothing (the only wide stage is the
          // merge itself, or none at all).
          bool narrow = true;
          for (const WideStage& w : facts.stages) {
            if (w.label.rfind("merge", 0) != 0) narrow = false;
          }
          producers_[a.var] = Producer{s->loc, narrow};
        }
        empties_[a.var] = Emptiness::kNonEmpty;
        continue;
      }
      if (s->is<TargetStmt::While>()) {
        const auto& w = s->as<TargetStmt::While>();
        ExprFacts facts = AnalyzeExpr(w.cond, s->loc);
        Report("while condition", facts, s->loc);
        // Widen: anything assigned in the body has unknown emptiness on
        // every iteration after the first (a re-declaration inside the
        // body resets it to empty each time round).
        std::set<std::string> assigned;
        CollectAssignedVars(w.body, &assigned);
        for (const std::string& v : assigned) {
          empties_[v] = Emptiness::kUnknown;
          // Row bounds widen the same way: a body assignment may grow
          // the array on every iteration.
          array_rows_[v] = kUnboundedRows;
        }
        WalkStmts(w.body);
        continue;
      }
    }
  }

  /// Emits the per-statement P001 shuffle note when `facts` has any wide
  /// stage, and adds them to the program total.
  void Report(const std::string& what, const ExprFacts& facts,
              SourceLocation loc) {
    total_wide_ += static_cast<int>(facts.stages.size());
    if (facts.stages.empty()) return;
    std::vector<std::string> parts;
    for (const WideStage& w : facts.stages) {
      int64_t bytes = w.row_bytes > 0
                          ? w.row_bytes
                          : w.row_slots * options_.bytes_per_slot;
      std::string part = StrCat(w.label, " (~", bytes, " B/row)");
      // Measured evidence from --profile-in, rendered next to the static
      // estimate so the two are directly comparable.
      if (const runtime::ProfileStage* m = Measured(w.label, loc)) {
        part = StrCat(part, " [measured ", m->shuffle_bytes,
                      " B shuffled]");
      }
      parts.push_back(part);
    }
    Emit(diag::kStmtShuffles, Severity::kNote, loc,
         StrCat(what, " runs ", facts.stages.size(), " wide stage(s): ",
                Join(parts, ", ")),
         "");
  }

  ExprFacts AnalyzeExpr(const CExprPtr& e, SourceLocation loc) {
    ExprFacts facts;
    AnalyzeExprInto(e, loc, &facts);
    return facts;
  }

  void Append(ExprFacts* into, const ExprFacts& from) {
    into->stages.insert(into->stages.end(), from.stages.begin(),
                        from.stages.end());
  }

  void AnalyzeExprInto(const CExprPtr& e, SourceLocation loc,
                       ExprFacts* facts) {
    if (e == nullptr) return;
    if (e->is<CExpr::Merge>()) {
      const auto& m = e->as<CExpr::Merge>();
      ExprFacts left = AnalyzeExpr(m.left, loc);
      ExprFacts right = AnalyzeExpr(m.right, loc);
      Append(facts, left);
      Append(facts, right);
      facts->max_rows = AddRows(left.max_rows, right.max_rows);
      std::string left_var;
      if (m.left != nullptr && m.left->is<CExpr::Var>()) {
        left_var = m.left->as<CExpr::Var>().name;
      }
      if (!left_var.empty() && StateOf(left_var) == Emptiness::kEmpty) {
        Emit(diag::kEmptyMerge, Severity::kWarning, loc,
             StrCat("merge into provably empty array '", left_var,
                    "': the coGroup's left side has no rows here"),
             "build the array directly from the comprehension instead of "
             "merging into an empty one (saves one wide stage per "
             "update)");
      }
      facts->stages.push_back(WideStage{
          left_var.empty() ? "merge" : StrCat("merge[", left_var, "]"), 2});
      return;
    }
    if (e->is<CExpr::Nested>()) {
      AnalyzeComp(e->as<CExpr::Nested>().comp, loc, facts);
      return;
    }
    if (e->is<CExpr::Var>()) {
      facts->max_rows = ArrayRowBound(e->as<CExpr::Var>().name);
      return;
    }
    if (e->is<CExpr::Reduce>()) {
      // Engine::Reduce over a distributed operand is narrow (tree
      // aggregation, no shuffle): only the operand's stages count.
      AnalyzeExprInto(e->as<CExpr::Reduce>().arg, loc, facts);
      return;
    }
    if (e->is<CExpr::Bin>()) {
      AnalyzeExprInto(e->as<CExpr::Bin>().lhs, loc, facts);
      AnalyzeExprInto(e->as<CExpr::Bin>().rhs, loc, facts);
      return;
    }
    if (e->is<CExpr::Un>()) {
      AnalyzeExprInto(e->as<CExpr::Un>().operand, loc, facts);
      return;
    }
    if (e->is<CExpr::TupleCons>()) {
      for (const auto& el : e->as<CExpr::TupleCons>().elems) {
        AnalyzeExprInto(el, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::RecordCons>()) {
      for (const auto& [name, el] : e->as<CExpr::RecordCons>().fields) {
        AnalyzeExprInto(el, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::Proj>()) {
      AnalyzeExprInto(e->as<CExpr::Proj>().base, loc, facts);
      return;
    }
    if (e->is<CExpr::Call>()) {
      for (const auto& a : e->as<CExpr::Call>().args) {
        AnalyzeExprInto(a, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::BagCons>()) {
      for (const auto& el : e->as<CExpr::BagCons>().elems) {
        AnalyzeExprInto(el, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::Range>()) {
      AnalyzeExprInto(e->as<CExpr::Range>().lo, loc, facts);
      AnalyzeExprInto(e->as<CExpr::Range>().hi, loc, facts);
      return;
    }
    // Var and constants cost nothing.
  }

  /// Plans a comprehension with the real planner (static state: empty
  /// placeholder datasets, no engine) and folds its wide operators into
  /// `facts`, emitting shape advisories along the way.
  void AnalyzeComp(const CompPtr& comp, SourceLocation loc,
                   ExprFacts* facts) {
    StatusOr<CompPlan> planned = plan::BuildPlan(comp, state_);
    if (!planned.ok()) {
      // Unplannable here (e.g. driver-bound scalars missing in the
      // static state): fall back to scanning the comprehension's own
      // expressions for nested work.
      AnalyzeExprInto(comp->head, loc, facts);
      for (const auto& q : comp->qualifiers) {
        AnalyzeExprInto(q.expr, loc, facts);
      }
      return;
    }
    const CompPlan& plan = planned.value();
    // Upper bound on the rows flowing through the pipeline at the
    // current operator, from range-generator intervals and producer
    // array bounds. kUnboundedRows whenever anything is unknown.
    int64_t rows = 1;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      const StreamOp& op = plan.ops[i];
      int slots = static_cast<int>(op.schema_after.size());
      switch (op.kind) {
        case StreamOp::Kind::kSourceArray:
          scan_consumers_[op.array] += 1;
          consumer_loc_[op.array] = loc;
          rows = MulRows(rows, ArrayRowBound(op.array));
          break;
        case StreamOp::Kind::kJoinArray:
          other_consumers_[op.array] += 1;
          if (!plan.driver_only) {
            facts->stages.push_back(
                WideStage{StrCat("join[", op.array, "]"), slots});
            // P202: the built side is provably small — the runtime
            // planner would broadcast it instead of shuffling both
            // sides, and the static evidence says so ahead of any run.
            int64_t side = ArrayRowBound(op.array);
            if (side != kUnboundedRows &&
                side <= options_.broadcast_hint_max_rows) {
              std::string msg = StrCat(
                  "join over '", op.array, "' shuffles both sides, but '",
                  op.array, "' is bounded by ", side,
                  " row(s) (interval evidence): a broadcast join "
                  "would keep the large side narrow");
              if (const runtime::ProfileStage* m =
                      Measured(StrCat("join[", op.array, "]"), loc)) {
                msg = StrCat(msg, "; the prior run shuffled ",
                             m->shuffle_bytes, " B through this join "
                             "(--profile-in evidence)");
              }
              Emit(diag::kBroadcastJoinHint, Severity::kWarning, loc,
                   std::move(msg),
                   "run with an engine broadcast threshold of at least "
                   "the built side's bytes so the planner replicates "
                   "the small array instead of shuffling the stream");
            }
          }
          rows = MulRows(rows, ArrayRowBound(op.array));
          break;
        case StreamOp::Kind::kBroadcastJoinArray:
          other_consumers_[op.array] += 1;
          if (!plan.driver_only) {
            facts->stages.push_back(
                WideStage{StrCat("broadcastJoin[", op.array, "]"), slots});
          }
          rows = MulRows(rows, ArrayRowBound(op.array));
          break;
        case StreamOp::Kind::kCartesianArray:
          other_consumers_[op.array] += 1;
          rows = MulRows(rows, ArrayRowBound(op.array));
          if (!plan.driver_only) {
            facts->stages.push_back(
                WideStage{StrCat("cartesian[", op.array, "]"), slots});
            Emit(diag::kCartesianProduct, Severity::kWarning, loc,
                 StrCat("generator over '", op.array,
                        "' has no linking condition: cartesian product "
                        "(|stream| x |", op.array, "| rows)"),
                 "add an equality condition between the generator and "
                 "the stream so the planner can use a hash join");
          }
          break;
        case StreamOp::Kind::kGroupBy: {
          if (!plan.driver_only) {
            facts->stages.push_back(WideStage{"groupBy", slots});
          }
          // P101: the lifted bags are only ever reduced -> reduceByKey
          // (map-side combine) would shuffle one value per key instead
          // of the whole bag.
          std::set<std::string> lifted(op.lifted.begin(), op.lifted.end());
          bool reduced = ContainsReduceOfVar(plan.head, lifted);
          for (size_t j = i + 1; j < plan.ops.size() && !reduced; ++j) {
            reduced = ContainsReduceOfVar(plan.ops[j].expr, lifted) ||
                      ContainsReduceOfVar(plan.ops[j].expr2, lifted) ||
                      ContainsReduceOfVar(plan.ops[j].reduce_value, lifted);
          }
          if (reduced) {
            Emit(diag::kGroupByReduce, Severity::kWarning, loc,
                 StrCat("group-by lifts {", Join(op.lifted, ","),
                        "} into bags that are only reduced afterwards"),
                 "reduce while grouping (reduceByKey with map-side "
                 "combine) instead of materializing per-key bags");
          }
          break;
        }
        case StreamOp::Kind::kReduceByKey:
          if (!plan.driver_only) {
            // Typed byte estimate: the inferred ColumnSchema prices the
            // shuffled (key, value) rows at their real widths.
            int64_t row_bytes = PairRowBytes(op.schema);
            facts->stages.push_back(
                WideStage{"reduceByKey", slots, row_bytes});
            // P201: the key cardinality (and so the combined rows that
            // cross this shuffle) is interval-bounded upstream; a
            // --profile-in stage adds what the prior run actually saw.
            const runtime::ProfileStage* m = Measured("reduceByKey", loc);
            if (rows != kUnboundedRows) {
              std::string msg = StrCat(
                  "reduceByKey key cardinality is bounded by ", rows,
                  " (range-generator interval evidence); at most ~",
                  MulRows(rows, row_bytes), " B cross this shuffle");
              if (m != nullptr) {
                msg = StrCat(msg, "; measured ", m->hash_agg_keys,
                             " key(s), ", m->shuffle_bytes,
                             " B shuffled in the prior run");
              }
              Emit(diag::kKeyCardinality, Severity::kNote, loc,
                   std::move(msg), "");
            } else if (m != nullptr) {
              // No static bound, but the profile has the real numbers.
              Emit(diag::kKeyCardinality, Severity::kNote, loc,
                   StrCat("reduceByKey key cardinality measured at ",
                          m->hash_agg_keys, " key(s) in the prior run (",
                          m->shuffle_bytes,
                          " B shuffled; --profile-in evidence)"),
                   "");
            }
          }
          break;
        case StreamOp::Kind::kFilter: {
          // P102: a filter that only needs variables already in scope
          // below the preceding join should run before it.
          int join_at = -1;
          for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
            StreamOp::Kind k = plan.ops[j].kind;
            if (k == StreamOp::Kind::kJoinArray ||
                k == StreamOp::Kind::kBroadcastJoinArray ||
                k == StreamOp::Kind::kCartesianArray) {
              join_at = j;
              break;
            }
          }
          if (join_at > 0) {
            std::set<std::string> before(
                plan.ops[join_at - 1].schema_after.begin(),
                plan.ops[join_at - 1].schema_after.end());
            std::set<std::string> in_scope(
                plan.ops[i - 1].schema_after.begin(),
                plan.ops[i - 1].schema_after.end());
            bool pushable = true;
            bool uses_stream = false;
            for (const std::string& v : comp::FreeVars(op.expr)) {
              if (in_scope.count(v) == 0) continue;  // outer binding
              uses_stream = true;
              if (before.count(v) == 0) pushable = false;
            }
            if (pushable && uses_stream) {
              Emit(diag::kFilterAboveJoin, Severity::kWarning, loc,
                   StrCat("filter ", op.expr->ToString(),
                          " only reads variables bound before the ",
                          plan.ops[join_at].kind ==
                                  StreamOp::Kind::kCartesianArray
                              ? "cartesian product"
                              : "join",
                          " over '", plan.ops[join_at].array,
                          "' and could run below it"),
                   "filtering before the join shrinks the shuffled "
                   "stream");
            }
          }
          break;
        }
        case StreamOp::Kind::kSourceRange:
          rows = MulRows(rows, RangeRowBound(op.expr, op.expr2));
          break;
        case StreamOp::Kind::kIterateBag:
          // A flatMap over an explicit range(lo,hi) domain (the planner's
          // form for inner range loops) is as bounded as a source range;
          // any other bag expression is unknown.
          if (op.expr != nullptr && op.expr->is<comp::CExpr::Range>()) {
            const auto& r = op.expr->as<comp::CExpr::Range>();
            rows = MulRows(rows, RangeRowBound(r.lo, r.hi));
          } else {
            rows = kUnboundedRows;
          }
          break;
        case StreamOp::Kind::kLet:
          break;
      }
      // Nested comprehensions inside operator expressions (e.g. a
      // distributed reduce in a driver-only pipeline) still cost.
      AnalyzeExprInto(op.expr, loc, facts);
      AnalyzeExprInto(op.expr2, loc, facts);
      for (const auto& k : op.left_keys) AnalyzeExprInto(k, loc, facts);
      for (const auto& k : op.right_keys) AnalyzeExprInto(k, loc, facts);
      AnalyzeExprInto(op.reduce_value, loc, facts);
    }
    AnalyzeExprInto(plan.head, loc, facts);
    facts->max_rows = rows;
  }

  struct Producer {
    SourceLocation loc;
    bool narrow = false;
  };

  const PlanLintOptions& options_;
  std::map<std::string, runtime::Value> scalars_;
  std::map<std::string, runtime::Dataset> arrays_;
  plan::ExecState state_;

  std::vector<Diagnostic> diags_;
  int total_wide_ = 0;
  std::map<std::string, Emptiness> empties_;
  /// Static row-count upper bounds for arrays (kUnboundedRows = unknown).
  std::map<std::string, int64_t> array_rows_;
  std::map<std::string, Producer> producers_;
  std::map<std::string, int> scan_consumers_;
  std::map<std::string, int> other_consumers_;
  std::map<std::string, SourceLocation> consumer_loc_;
};

}  // namespace

PlanLintResult LintTargetProgram(const comp::TargetProgram& target,
                                 const std::set<std::string>& array_vars,
                                 const PlanLintOptions& options) {
  PlanLinter linter(array_vars, options);
  return linter.Run(target);
}

}  // namespace diablo::analysis
