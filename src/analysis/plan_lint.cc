#include "analysis/plan_lint.h"

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "plan/plan.h"
#include "runtime/dataset.h"
#include "runtime/value.h"

namespace diablo::analysis {

using comp::CExpr;
using comp::CExprPtr;
using comp::CompPtr;
using comp::TargetStmt;
using comp::TargetStmtPtr;
using plan::CompPlan;
using plan::StreamOp;

namespace {

/// What evaluating one comprehension-calculus expression costs: the wide
/// (shuffling) stages it runs, in pipeline order.
struct WideStage {
  std::string label;
  /// Row width (slots) at the shuffle, for the ~bytes/row estimate.
  int row_slots = 0;
};

struct ExprFacts {
  std::vector<WideStage> stages;
};

/// Three-value emptiness for the P104 (merge into empty array) advisory.
enum class Emptiness { kEmpty, kNonEmpty, kUnknown };

/// True when `e` contains `⊕/v` for some v in `vars` (a reduction of a
/// group-by-lifted bag — the reduceByKey shape).
bool ContainsReduceOfVar(const CExprPtr& e,
                         const std::set<std::string>& vars) {
  if (e == nullptr) return false;
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    if (r.arg != nullptr && r.arg->is<CExpr::Var>() &&
        vars.count(r.arg->as<CExpr::Var>().name) != 0) {
      return true;
    }
    return ContainsReduceOfVar(r.arg, vars);
  }
  if (e->is<CExpr::Bin>()) {
    return ContainsReduceOfVar(e->as<CExpr::Bin>().lhs, vars) ||
           ContainsReduceOfVar(e->as<CExpr::Bin>().rhs, vars);
  }
  if (e->is<CExpr::Un>()) {
    return ContainsReduceOfVar(e->as<CExpr::Un>().operand, vars);
  }
  if (e->is<CExpr::TupleCons>()) {
    for (const auto& el : e->as<CExpr::TupleCons>().elems) {
      if (ContainsReduceOfVar(el, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::RecordCons>()) {
    for (const auto& [name, el] : e->as<CExpr::RecordCons>().fields) {
      if (ContainsReduceOfVar(el, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Proj>()) {
    return ContainsReduceOfVar(e->as<CExpr::Proj>().base, vars);
  }
  if (e->is<CExpr::Call>()) {
    for (const auto& a : e->as<CExpr::Call>().args) {
      if (ContainsReduceOfVar(a, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Nested>()) {
    const CompPtr& c = e->as<CExpr::Nested>().comp;
    if (ContainsReduceOfVar(c->head, vars)) return true;
    for (const auto& q : c->qualifiers) {
      if (ContainsReduceOfVar(q.expr, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Merge>()) {
    return ContainsReduceOfVar(e->as<CExpr::Merge>().left, vars) ||
           ContainsReduceOfVar(e->as<CExpr::Merge>().right, vars);
  }
  if (e->is<CExpr::BagCons>()) {
    for (const auto& el : e->as<CExpr::BagCons>().elems) {
      if (ContainsReduceOfVar(el, vars)) return true;
    }
    return false;
  }
  if (e->is<CExpr::Range>()) {
    return ContainsReduceOfVar(e->as<CExpr::Range>().lo, vars) ||
           ContainsReduceOfVar(e->as<CExpr::Range>().hi, vars);
  }
  return false;
}

/// Collects the names of variables assigned anywhere under `stmts`
/// (for the while-body widening of the emptiness lattice).
void CollectAssignedVars(const std::vector<TargetStmtPtr>& stmts,
                         std::set<std::string>* out) {
  for (const auto& s : stmts) {
    if (s->is<TargetStmt::Assign>()) {
      out->insert(s->as<TargetStmt::Assign>().var);
    } else if (s->is<TargetStmt::While>()) {
      CollectAssignedVars(s->as<TargetStmt::While>().body, out);
    }
  }
}

void CollectDeclaredArrays(const std::vector<TargetStmtPtr>& stmts,
                           std::set<std::string>* out) {
  for (const auto& s : stmts) {
    if (s->is<TargetStmt::Declare>()) {
      if (s->as<TargetStmt::Declare>().is_array) {
        out->insert(s->as<TargetStmt::Declare>().var);
      }
    } else if (s->is<TargetStmt::While>()) {
      CollectDeclaredArrays(s->as<TargetStmt::While>().body, out);
    }
  }
}

class PlanLinter {
 public:
  PlanLinter(const std::set<std::string>& array_vars,
             const PlanLintOptions& options)
      : options_(options) {
    for (const std::string& v : array_vars) {
      arrays_[v] = runtime::Dataset();
    }
    state_.engine = nullptr;
    state_.scalars = &scalars_;
    state_.arrays = &arrays_;
  }

  PlanLintResult Run(const comp::TargetProgram& target) {
    std::set<std::string> declared;
    CollectDeclaredArrays(target.stmts, &declared);
    for (const std::string& v : declared) {
      if (arrays_.count(v) == 0) arrays_[v] = runtime::Dataset();
    }
    WalkStmts(target.stmts);
    // P103: a narrow-only producer whose array feeds exactly one scan and
    // no join could have been fused into its consumer.
    for (const auto& [var, info] : producers_) {
      if (!info.narrow) continue;
      if (scan_consumers_[var] != 1 || other_consumers_[var] != 0) continue;
      Emit(diag::kMissedFusion, Severity::kWarning, consumer_loc_[var],
           StrCat("array '", var,
                  "' is built by a narrow pipeline (line ", info.loc.line,
                  ") and scanned by a single consumer; the intermediate "
                  "array is a missed narrow-fusion opportunity"),
           "inline the producer comprehension into its consumer to avoid "
           "materializing and re-scanning the array");
    }
    Emit(diag::kProgramShuffles, Severity::kNote, SourceLocation{},
         StrCat("program runs ", total_wide_,
                " wide (shuffle) stage(s) per pass; while-loop bodies "
                "counted once"),
         "");
    PlanLintResult result;
    SortAndDedupe(&diags_);
    result.diagnostics = std::move(diags_);
    result.total_wide_stages = total_wide_;
    return result;
  }

 private:
  void Emit(const char* code, Severity severity, SourceLocation loc,
            std::string message, std::string hint) {
    diags_.push_back(Diagnostic{code, severity, loc, std::move(message),
                                std::move(hint), std::nullopt});
  }

  Emptiness StateOf(const std::string& var) const {
    auto it = empties_.find(var);
    return it == empties_.end() ? Emptiness::kUnknown : it->second;
  }

  void WalkStmts(const std::vector<TargetStmtPtr>& stmts) {
    for (const auto& s : stmts) {
      if (s->is<TargetStmt::Declare>()) {
        const auto& d = s->as<TargetStmt::Declare>();
        empties_[d.var] = (d.is_array && d.init == nullptr)
                              ? Emptiness::kEmpty
                              : Emptiness::kNonEmpty;
        if (d.init != nullptr) {
          ExprFacts facts = AnalyzeExpr(d.init, s->loc);
          Report(StrCat("initializer of '", d.var, "'"), facts, s->loc);
        }
        continue;
      }
      if (s->is<TargetStmt::Assign>()) {
        const auto& a = s->as<TargetStmt::Assign>();
        ExprFacts facts = AnalyzeExpr(a.value, s->loc);
        Report(StrCat("assignment to '", a.var, "'"), facts, s->loc);
        if (a.is_array) {
          // Producer bookkeeping for P103: narrow when the update's
          // comprehensions shuffled nothing (the only wide stage is the
          // merge itself, or none at all).
          bool narrow = true;
          for (const WideStage& w : facts.stages) {
            if (w.label.rfind("merge", 0) != 0) narrow = false;
          }
          producers_[a.var] = Producer{s->loc, narrow};
        }
        empties_[a.var] = Emptiness::kNonEmpty;
        continue;
      }
      if (s->is<TargetStmt::While>()) {
        const auto& w = s->as<TargetStmt::While>();
        ExprFacts facts = AnalyzeExpr(w.cond, s->loc);
        Report("while condition", facts, s->loc);
        // Widen: anything assigned in the body has unknown emptiness on
        // every iteration after the first (a re-declaration inside the
        // body resets it to empty each time round).
        std::set<std::string> assigned;
        CollectAssignedVars(w.body, &assigned);
        for (const std::string& v : assigned) {
          empties_[v] = Emptiness::kUnknown;
        }
        WalkStmts(w.body);
        continue;
      }
    }
  }

  /// Emits the per-statement P001 shuffle note when `facts` has any wide
  /// stage, and adds them to the program total.
  void Report(const std::string& what, const ExprFacts& facts,
              SourceLocation loc) {
    total_wide_ += static_cast<int>(facts.stages.size());
    if (facts.stages.empty()) return;
    std::vector<std::string> parts;
    for (const WideStage& w : facts.stages) {
      parts.push_back(StrCat(w.label, " (~",
                             w.row_slots * options_.bytes_per_slot,
                             " B/row)"));
    }
    Emit(diag::kStmtShuffles, Severity::kNote, loc,
         StrCat(what, " runs ", facts.stages.size(), " wide stage(s): ",
                Join(parts, ", ")),
         "");
  }

  ExprFacts AnalyzeExpr(const CExprPtr& e, SourceLocation loc) {
    ExprFacts facts;
    AnalyzeExprInto(e, loc, &facts);
    return facts;
  }

  void Append(ExprFacts* into, const ExprFacts& from) {
    into->stages.insert(into->stages.end(), from.stages.begin(),
                        from.stages.end());
  }

  void AnalyzeExprInto(const CExprPtr& e, SourceLocation loc,
                       ExprFacts* facts) {
    if (e == nullptr) return;
    if (e->is<CExpr::Merge>()) {
      const auto& m = e->as<CExpr::Merge>();
      AnalyzeExprInto(m.left, loc, facts);
      AnalyzeExprInto(m.right, loc, facts);
      std::string left_var;
      if (m.left != nullptr && m.left->is<CExpr::Var>()) {
        left_var = m.left->as<CExpr::Var>().name;
      }
      if (!left_var.empty() && StateOf(left_var) == Emptiness::kEmpty) {
        Emit(diag::kEmptyMerge, Severity::kWarning, loc,
             StrCat("merge into provably empty array '", left_var,
                    "': the coGroup's left side has no rows here"),
             "build the array directly from the comprehension instead of "
             "merging into an empty one (saves one wide stage per "
             "update)");
      }
      facts->stages.push_back(WideStage{
          left_var.empty() ? "merge" : StrCat("merge[", left_var, "]"), 2});
      return;
    }
    if (e->is<CExpr::Nested>()) {
      AnalyzeComp(e->as<CExpr::Nested>().comp, loc, facts);
      return;
    }
    if (e->is<CExpr::Reduce>()) {
      // Engine::Reduce over a distributed operand is narrow (tree
      // aggregation, no shuffle): only the operand's stages count.
      AnalyzeExprInto(e->as<CExpr::Reduce>().arg, loc, facts);
      return;
    }
    if (e->is<CExpr::Bin>()) {
      AnalyzeExprInto(e->as<CExpr::Bin>().lhs, loc, facts);
      AnalyzeExprInto(e->as<CExpr::Bin>().rhs, loc, facts);
      return;
    }
    if (e->is<CExpr::Un>()) {
      AnalyzeExprInto(e->as<CExpr::Un>().operand, loc, facts);
      return;
    }
    if (e->is<CExpr::TupleCons>()) {
      for (const auto& el : e->as<CExpr::TupleCons>().elems) {
        AnalyzeExprInto(el, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::RecordCons>()) {
      for (const auto& [name, el] : e->as<CExpr::RecordCons>().fields) {
        AnalyzeExprInto(el, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::Proj>()) {
      AnalyzeExprInto(e->as<CExpr::Proj>().base, loc, facts);
      return;
    }
    if (e->is<CExpr::Call>()) {
      for (const auto& a : e->as<CExpr::Call>().args) {
        AnalyzeExprInto(a, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::BagCons>()) {
      for (const auto& el : e->as<CExpr::BagCons>().elems) {
        AnalyzeExprInto(el, loc, facts);
      }
      return;
    }
    if (e->is<CExpr::Range>()) {
      AnalyzeExprInto(e->as<CExpr::Range>().lo, loc, facts);
      AnalyzeExprInto(e->as<CExpr::Range>().hi, loc, facts);
      return;
    }
    // Var and constants cost nothing.
  }

  /// Plans a comprehension with the real planner (static state: empty
  /// placeholder datasets, no engine) and folds its wide operators into
  /// `facts`, emitting shape advisories along the way.
  void AnalyzeComp(const CompPtr& comp, SourceLocation loc,
                   ExprFacts* facts) {
    StatusOr<CompPlan> planned = plan::BuildPlan(comp, state_);
    if (!planned.ok()) {
      // Unplannable here (e.g. driver-bound scalars missing in the
      // static state): fall back to scanning the comprehension's own
      // expressions for nested work.
      AnalyzeExprInto(comp->head, loc, facts);
      for (const auto& q : comp->qualifiers) {
        AnalyzeExprInto(q.expr, loc, facts);
      }
      return;
    }
    const CompPlan& plan = planned.value();
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      const StreamOp& op = plan.ops[i];
      int slots = static_cast<int>(op.schema_after.size());
      switch (op.kind) {
        case StreamOp::Kind::kSourceArray:
          scan_consumers_[op.array] += 1;
          consumer_loc_[op.array] = loc;
          break;
        case StreamOp::Kind::kJoinArray:
          other_consumers_[op.array] += 1;
          if (!plan.driver_only) {
            facts->stages.push_back(
                WideStage{StrCat("join[", op.array, "]"), slots});
          }
          break;
        case StreamOp::Kind::kBroadcastJoinArray:
          other_consumers_[op.array] += 1;
          if (!plan.driver_only) {
            facts->stages.push_back(
                WideStage{StrCat("broadcastJoin[", op.array, "]"), slots});
          }
          break;
        case StreamOp::Kind::kCartesianArray:
          other_consumers_[op.array] += 1;
          if (!plan.driver_only) {
            facts->stages.push_back(
                WideStage{StrCat("cartesian[", op.array, "]"), slots});
            Emit(diag::kCartesianProduct, Severity::kWarning, loc,
                 StrCat("generator over '", op.array,
                        "' has no linking condition: cartesian product "
                        "(|stream| x |", op.array, "| rows)"),
                 "add an equality condition between the generator and "
                 "the stream so the planner can use a hash join");
          }
          break;
        case StreamOp::Kind::kGroupBy: {
          if (!plan.driver_only) {
            facts->stages.push_back(WideStage{"groupBy", slots});
          }
          // P101: the lifted bags are only ever reduced -> reduceByKey
          // (map-side combine) would shuffle one value per key instead
          // of the whole bag.
          std::set<std::string> lifted(op.lifted.begin(), op.lifted.end());
          bool reduced = ContainsReduceOfVar(plan.head, lifted);
          for (size_t j = i + 1; j < plan.ops.size() && !reduced; ++j) {
            reduced = ContainsReduceOfVar(plan.ops[j].expr, lifted) ||
                      ContainsReduceOfVar(plan.ops[j].expr2, lifted) ||
                      ContainsReduceOfVar(plan.ops[j].reduce_value, lifted);
          }
          if (reduced) {
            Emit(diag::kGroupByReduce, Severity::kWarning, loc,
                 StrCat("group-by lifts {", Join(op.lifted, ","),
                        "} into bags that are only reduced afterwards"),
                 "reduce while grouping (reduceByKey with map-side "
                 "combine) instead of materializing per-key bags");
          }
          break;
        }
        case StreamOp::Kind::kReduceByKey:
          if (!plan.driver_only) {
            facts->stages.push_back(WideStage{"reduceByKey", slots});
          }
          break;
        case StreamOp::Kind::kFilter: {
          // P102: a filter that only needs variables already in scope
          // below the preceding join should run before it.
          int join_at = -1;
          for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
            StreamOp::Kind k = plan.ops[j].kind;
            if (k == StreamOp::Kind::kJoinArray ||
                k == StreamOp::Kind::kBroadcastJoinArray ||
                k == StreamOp::Kind::kCartesianArray) {
              join_at = j;
              break;
            }
          }
          if (join_at > 0) {
            std::set<std::string> before(
                plan.ops[join_at - 1].schema_after.begin(),
                plan.ops[join_at - 1].schema_after.end());
            std::set<std::string> in_scope(
                plan.ops[i - 1].schema_after.begin(),
                plan.ops[i - 1].schema_after.end());
            bool pushable = true;
            bool uses_stream = false;
            for (const std::string& v : comp::FreeVars(op.expr)) {
              if (in_scope.count(v) == 0) continue;  // outer binding
              uses_stream = true;
              if (before.count(v) == 0) pushable = false;
            }
            if (pushable && uses_stream) {
              Emit(diag::kFilterAboveJoin, Severity::kWarning, loc,
                   StrCat("filter ", op.expr->ToString(),
                          " only reads variables bound before the ",
                          plan.ops[join_at].kind ==
                                  StreamOp::Kind::kCartesianArray
                              ? "cartesian product"
                              : "join",
                          " over '", plan.ops[join_at].array,
                          "' and could run below it"),
                   "filtering before the join shrinks the shuffled "
                   "stream");
            }
          }
          break;
        }
        case StreamOp::Kind::kSourceRange:
        case StreamOp::Kind::kIterateBag:
        case StreamOp::Kind::kLet:
          break;
      }
      // Nested comprehensions inside operator expressions (e.g. a
      // distributed reduce in a driver-only pipeline) still cost.
      AnalyzeExprInto(op.expr, loc, facts);
      AnalyzeExprInto(op.expr2, loc, facts);
      for (const auto& k : op.left_keys) AnalyzeExprInto(k, loc, facts);
      for (const auto& k : op.right_keys) AnalyzeExprInto(k, loc, facts);
      AnalyzeExprInto(op.reduce_value, loc, facts);
    }
    AnalyzeExprInto(plan.head, loc, facts);
  }

  struct Producer {
    SourceLocation loc;
    bool narrow = false;
  };

  const PlanLintOptions& options_;
  std::map<std::string, runtime::Value> scalars_;
  std::map<std::string, runtime::Dataset> arrays_;
  plan::ExecState state_;

  std::vector<Diagnostic> diags_;
  int total_wide_ = 0;
  std::map<std::string, Emptiness> empties_;
  std::map<std::string, Producer> producers_;
  std::map<std::string, int> scan_consumers_;
  std::map<std::string, int> other_consumers_;
  std::map<std::string, SourceLocation> consumer_loc_;
};

}  // namespace

PlanLintResult LintTargetProgram(const comp::TargetProgram& target,
                                 const std::set<std::string>& array_vars,
                                 const PlanLintOptions& options) {
  PlanLinter linter(array_vars, options);
  return linter.Run(target);
}

}  // namespace diablo::analysis
