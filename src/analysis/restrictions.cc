#include "analysis/restrictions.h"

#include <set>

#include "analysis/affine.h"
#include "analysis/lvalues.h"
#include "ast/printer.h"
#include "common/strings.h"

namespace diablo::analysis {

using ast::Expr;
using ast::LValue;
using ast::Stmt;
using ast::StmtPtr;
using runtime::BinOp;

// --------------------------- canonicalization ------------------------------

namespace {

StmtPtr CanonicalizeStmt(const StmtPtr& s) {
  if (s->is<Stmt::Assign>()) {
    const auto& node = s->as<Stmt::Assign>();
    // d := d ⊕ e  or  d := e ⊕ d  (⊕ commutative)  =>  d ⊕= e.
    if (node.value->is<Expr::Bin>()) {
      const auto& bin = node.value->as<Expr::Bin>();
      if (runtime::IsCommutativeMonoid(bin.op)) {
        auto side_matches = [&](const ast::ExprPtr& side) {
          return side->is<Expr::LVal>() &&
                 LValueEquals(side->as<Expr::LVal>().lvalue, node.dest);
        };
        if (side_matches(bin.lhs)) {
          return Stmt::MakeIncr(node.dest, bin.op, bin.rhs, s->loc);
        }
        if (side_matches(bin.rhs)) {
          return Stmt::MakeIncr(node.dest, bin.op, bin.lhs, s->loc);
        }
      }
    }
    return s;
  }
  if (s->is<Stmt::ForRange>()) {
    const auto& node = s->as<Stmt::ForRange>();
    return Stmt::MakeForRange(node.var, node.lo, node.hi,
                              CanonicalizeStmt(node.body), s->loc);
  }
  if (s->is<Stmt::ForEach>()) {
    const auto& node = s->as<Stmt::ForEach>();
    return Stmt::MakeForEach(node.var, node.collection,
                             CanonicalizeStmt(node.body), s->loc);
  }
  if (s->is<Stmt::While>()) {
    const auto& node = s->as<Stmt::While>();
    return Stmt::MakeWhile(node.cond, CanonicalizeStmt(node.body), s->loc);
  }
  if (s->is<Stmt::If>()) {
    const auto& node = s->as<Stmt::If>();
    return Stmt::MakeIf(node.cond, CanonicalizeStmt(node.then_branch),
                        node.else_branch != nullptr
                            ? CanonicalizeStmt(node.else_branch)
                            : nullptr,
                        s->loc);
  }
  if (s->is<Stmt::Block>()) {
    std::vector<StmtPtr> stmts;
    for (const auto& child : s->as<Stmt::Block>().stmts) {
      stmts.push_back(CanonicalizeStmt(child));
    }
    return Stmt::MakeBlock(std::move(stmts), s->loc);
  }
  return s;
}

}  // namespace

ast::Program CanonicalizeIncrements(const ast::Program& program) {
  ast::Program out;
  for (const auto& s : program.stmts) out.stmts.push_back(CanonicalizeStmt(s));
  return out;
}

// --------------------------- helpers ----------------------------------------

bool ContainsWhile(const Stmt& stmt) {
  if (stmt.is<Stmt::While>()) return true;
  if (stmt.is<Stmt::ForRange>()) {
    return ContainsWhile(*stmt.as<Stmt::ForRange>().body);
  }
  if (stmt.is<Stmt::ForEach>()) {
    return ContainsWhile(*stmt.as<Stmt::ForEach>().body);
  }
  if (stmt.is<Stmt::If>()) {
    const auto& node = stmt.as<Stmt::If>();
    if (ContainsWhile(*node.then_branch)) return true;
    return node.else_branch != nullptr && ContainsWhile(*node.else_branch);
  }
  if (stmt.is<Stmt::Block>()) {
    for (const auto& child : stmt.as<Stmt::Block>().stmts) {
      if (ContainsWhile(*child)) return true;
    }
  }
  return false;
}

namespace {

/// Strips projection links: closest[i].index reduces to closest[i]. Used
/// for the d1 = d2 comparison in exceptions (a)/(b), where reading a
/// field of the written/incremented location is as good as reading the
/// location itself.
const ast::LValuePtr& StripProjections(const ast::LValuePtr& d) {
  const ast::LValuePtr* cur = &d;
  while ((*cur)->is_proj()) cur = &(*cur)->proj().base;
  return *cur;
}

class Checker {
 public:
  explicit Checker(RestrictionReport* report) : report_(report) {}

  void CheckTopLevel(const Stmt& s) {
    if (s.is<Stmt::ForRange>() || s.is<Stmt::ForEach>()) {
      if (ContainsWhile(s)) {
        // A for-loop enclosing a while-loop runs sequentially. for-in
        // loops over distributed arrays cannot be sequentialized on the
        // driver, so they are rejected.
        if (s.is<Stmt::ForEach>()) {
          Violation(s.loc,
                    "for-in loop contains a while-loop and cannot be "
                    "parallelized or sequentialized");
        }
        return;
      }
      CheckLoop(s);
      return;
    }
    if (s.is<Stmt::While>()) {
      CheckTopLevel(*s.as<Stmt::While>().body);
      return;
    }
    if (s.is<Stmt::If>()) {
      const auto& node = s.as<Stmt::If>();
      CheckTopLevel(*node.then_branch);
      if (node.else_branch != nullptr) CheckTopLevel(*node.else_branch);
      return;
    }
    if (s.is<Stmt::Block>()) {
      for (const auto& child : s.as<Stmt::Block>().stmts) {
        CheckTopLevel(*child);
      }
      return;
    }
    // Assignments/declarations outside loops are always fine.
  }

  void CheckStructure(const Stmt& s, bool inside_for,
                      std::set<std::string>* loop_vars) {
    if (s.is<Stmt::Decl>()) {
      if (inside_for) {
        Violation(s.loc, StrCat("declaration of '", s.as<Stmt::Decl>().name,
                                "' inside a for-loop"));
      }
      return;
    }
    if (s.is<Stmt::ForRange>() || s.is<Stmt::ForEach>()) {
      const std::string& var = s.is<Stmt::ForRange>()
                                   ? s.as<Stmt::ForRange>().var
                                   : s.as<Stmt::ForEach>().var;
      if (!loop_vars->insert(var).second) {
        Violation(s.loc, StrCat("duplicate loop index variable '", var,
                                "'; rename the inner loop variable"));
      }
      const Stmt& body = s.is<Stmt::ForRange>()
                             ? *s.as<Stmt::ForRange>().body
                             : *s.as<Stmt::ForEach>().body;
      // A for-loop containing a while-loop runs sequentially, where
      // declarations are as legal as at top level.
      bool sequential = ContainsWhile(s);
      CheckStructure(body, /*inside_for=*/inside_for || !sequential,
                     loop_vars);
      loop_vars->erase(var);
      return;
    }
    if (s.is<Stmt::While>()) {
      CheckStructure(*s.as<Stmt::While>().body, inside_for, loop_vars);
      return;
    }
    if (s.is<Stmt::If>()) {
      const auto& node = s.as<Stmt::If>();
      CheckStructure(*node.then_branch, inside_for, loop_vars);
      if (node.else_branch != nullptr) {
        CheckStructure(*node.else_branch, inside_for, loop_vars);
      }
      return;
    }
    if (s.is<Stmt::Block>()) {
      for (const auto& child : s.as<Stmt::Block>().stmts) {
        CheckStructure(*child, inside_for, loop_vars);
      }
    }
  }

 private:
  void Violation(SourceLocation loc, std::string message) {
    report_->ok = false;
    report_->violations.push_back({std::move(message), loc});
  }

  /// Definition 3.1 over one parallelizable for-loop.
  void CheckLoop(const Stmt& loop) {
    std::vector<StmtAccessInfo> accesses = CollectAccesses(loop);

    // Restriction 1: non-incremental update destinations must be affine.
    for (const StmtAccessInfo& info : accesses) {
      for (const ast::LValuePtr& d : info.writers) {
        if (!IsAffineDest(d, info.context)) {
          Violation(info.stmt->loc,
                    StrCat("destination ", d->ToString(),
                           " of a non-incremental update is not affine in "
                           "loop indexes (",
                           Join(info.context, ","), ")"));
        }
      }
    }

    // Restriction 2: dependencies between statements.
    for (const StmtAccessInfo& s1 : accesses) {
      std::set<std::string> ctx1(s1.context.begin(), s1.context.end());
      for (const StmtAccessInfo& s2 : accesses) {
        std::set<std::string> ctx2(s2.context.begin(), s2.context.end());
        for (const ast::LValuePtr& d2 : s2.readers) {
          const ast::LValuePtr& d2_base = StripProjections(d2);
          // Exception (a): write then read of the same location.
          for (const ast::LValuePtr& d1 : s1.writers) {
            if (!Overlap(d1, d2)) continue;
            if (LValueEquals(d1, d2_base) && s1.seq < s2.seq) continue;
            Violation(s2.stmt != nullptr ? s2.stmt->loc : SourceLocation{},
                      StrCat("recurrence: ", d2->ToString(), " is read but ",
                             d1->ToString(),
                             " is written in the same loop"));
          }
          // Exception (b): increment then read of the same location.
          for (const ast::LValuePtr& d1 : s1.aggregators) {
            if (!Overlap(d1, d2)) continue;
            if (LValueEquals(d1, d2_base) && s1.seq < s2.seq &&
                IsAffineDest(d2_base, s2.context)) {
              std::set<std::string> inter;
              for (const std::string& v : ctx1) {
                if (ctx2.count(v) != 0) inter.insert(v);
              }
              std::set<std::string> all_indexes = ctx1;
              all_indexes.insert(ctx2.begin(), ctx2.end());
              if (inter == IndexesOf(d1, all_indexes)) continue;
            }
            Violation(s2.stmt != nullptr ? s2.stmt->loc : SourceLocation{},
                      StrCat("recurrence: ", d2->ToString(), " is read but ",
                             d1->ToString(),
                             " is incremented in the same loop"));
          }
        }
      }
    }
  }

  RestrictionReport* report_;
};

}  // namespace

std::string RestrictionReport::ToString() const {
  if (ok) return "OK";
  std::vector<std::string> lines;
  for (const auto& v : violations) {
    lines.push_back(StrCat(v.message, " (", LocationString(v.loc), ")"));
  }
  return Join(lines, "\n");
}

RestrictionReport CheckProgram(const ast::Program& program) {
  RestrictionReport report;
  Checker checker(&report);
  std::set<std::string> loop_vars;
  for (const auto& s : program.stmts) {
    checker.CheckStructure(*s, /*inside_for=*/false, &loop_vars);
  }
  for (const auto& s : program.stmts) {
    checker.CheckTopLevel(*s);
  }
  return report;
}

Status CheckRestrictions(const ast::Program& program) {
  RestrictionReport report = CheckProgram(program);
  if (report.ok) return Status::OK();
  return Status::RestrictionViolation(report.ToString());
}

}  // namespace diablo::analysis
