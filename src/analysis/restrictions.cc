#include "analysis/restrictions.h"

#include "analysis/absint.h"
#include "analysis/loop_lint.h"
#include "analysis/lvalues.h"
#include "analysis/merge_algebra.h"
#include "common/strings.h"

namespace diablo::analysis {

using ast::Expr;
using ast::Stmt;
using ast::StmtPtr;

// --------------------------- canonicalization ------------------------------

namespace {

StmtPtr CanonicalizeStmt(const StmtPtr& s) {
  if (s->is<Stmt::Assign>()) {
    const auto& node = s->as<Stmt::Assign>();
    // d := d ⊕ e  or  d := e ⊕ d  (⊕ commutative)  =>  d ⊕= e.
    if (node.value->is<Expr::Bin>()) {
      const auto& bin = node.value->as<Expr::Bin>();
      if (runtime::IsCommutativeMonoid(bin.op)) {
        auto side_matches = [&](const ast::ExprPtr& side) {
          return side->is<Expr::LVal>() &&
                 LValueEquals(side->as<Expr::LVal>().lvalue, node.dest);
        };
        if (side_matches(bin.lhs)) {
          return Stmt::MakeIncr(node.dest, bin.op, bin.rhs, s->loc);
        }
        if (side_matches(bin.rhs)) {
          return Stmt::MakeIncr(node.dest, bin.op, bin.lhs, s->loc);
        }
      }
    }
    return s;
  }
  if (s->is<Stmt::ForRange>()) {
    const auto& node = s->as<Stmt::ForRange>();
    return Stmt::MakeForRange(node.var, node.lo, node.hi,
                              CanonicalizeStmt(node.body), s->loc);
  }
  if (s->is<Stmt::ForEach>()) {
    const auto& node = s->as<Stmt::ForEach>();
    return Stmt::MakeForEach(node.var, node.collection,
                             CanonicalizeStmt(node.body), s->loc);
  }
  if (s->is<Stmt::While>()) {
    const auto& node = s->as<Stmt::While>();
    return Stmt::MakeWhile(node.cond, CanonicalizeStmt(node.body), s->loc);
  }
  if (s->is<Stmt::If>()) {
    const auto& node = s->as<Stmt::If>();
    return Stmt::MakeIf(node.cond, CanonicalizeStmt(node.then_branch),
                        node.else_branch != nullptr
                            ? CanonicalizeStmt(node.else_branch)
                            : nullptr,
                        s->loc);
  }
  if (s->is<Stmt::Block>()) {
    std::vector<StmtPtr> stmts;
    for (const auto& child : s->as<Stmt::Block>().stmts) {
      stmts.push_back(CanonicalizeStmt(child));
    }
    return Stmt::MakeBlock(std::move(stmts), s->loc);
  }
  return s;
}

}  // namespace

ast::Program CanonicalizeIncrements(const ast::Program& program) {
  ast::Program out;
  for (const auto& s : program.stmts) out.stmts.push_back(CanonicalizeStmt(s));
  return out;
}

// --------------------------- helpers ----------------------------------------

bool ContainsWhile(const Stmt& stmt) {
  if (stmt.is<Stmt::While>()) return true;
  if (stmt.is<Stmt::ForRange>()) {
    return ContainsWhile(*stmt.as<Stmt::ForRange>().body);
  }
  if (stmt.is<Stmt::ForEach>()) {
    return ContainsWhile(*stmt.as<Stmt::ForEach>().body);
  }
  if (stmt.is<Stmt::If>()) {
    const auto& node = stmt.as<Stmt::If>();
    if (ContainsWhile(*node.then_branch)) return true;
    return node.else_branch != nullptr && ContainsWhile(*node.else_branch);
  }
  if (stmt.is<Stmt::Block>()) {
    for (const auto& child : stmt.as<Stmt::Block>().stmts) {
      if (ContainsWhile(*child)) return true;
    }
  }
  return false;
}

// --------------------------- checking ---------------------------------------

std::string RestrictionReport::ToString() const {
  if (ok) return "OK";
  std::vector<std::string> lines;
  for (const auto& v : violations) {
    lines.push_back(StrCat(v.message, " (", LocationString(v.loc), ")"));
  }
  return Join(lines, "\n");
}

RestrictionReport CheckProgram(const ast::Program& program) {
  // The Definition 3.1 checker proper lives in the loop linter, which
  // reports rich diagnostics (stable codes, race witnesses, hints).
  // The report keeps only the error-severity subset as plain messages,
  // already sorted by source location and deduplicated.
  RestrictionReport report;
  std::vector<Diagnostic> diags = LintLoops(program);
  // Proven semantic errors (D2xx): statically out-of-bounds writes and
  // zero divisors from the abstract interpreter, non-associative merges
  // from the algebra checker. Each carries a concrete witness.
  for (Diagnostic& d : AnalyzeProgram(program).diagnostics) {
    diags.push_back(std::move(d));
  }
  for (Diagnostic& d : LintMergeOperators(program)) {
    diags.push_back(std::move(d));
  }
  SortAndDedupe(&diags);
  for (const Diagnostic& d : diags) {
    if (d.severity != Severity::kError) continue;
    report.ok = false;
    report.violations.push_back({d.message, d.loc});
  }
  return report;
}

Status CheckRestrictions(const ast::Program& program) {
  RestrictionReport report = CheckProgram(program);
  if (report.ok) return Status::OK();
  return Status::RestrictionViolation(report.ToString());
}

}  // namespace diablo::analysis
