#ifndef DIABLO_ANALYSIS_ABSINT_H_
#define DIABLO_ANALYSIS_ABSINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "ast/ast.h"

namespace diablo::analysis {

// ---------------------------------------------------------------------------
// Abstract interpretation over the loop AST (DESIGN.md §16).
//
// One lattice serves three classic domains at once: an integer interval
// [lo, hi] with ±∞ sentinels subsumes the constant domain (point
// intervals) and the sign domain (half-lines), so constant propagation
// and sign reasoning fall out of the same join/widen machinery the plan
// linter already uses for its emptiness lattice (P104). The walk is
// flow-sensitive with two-pass widening through loop bodies, and tracks
// *provable reachability* separately so error diagnostics (D2xx) only
// fire on statements that are guaranteed to execute — the reference
// interpreter's lifted semantics make anything downstream of an array
// read skippable, and a D2xx must never fire on a program the
// interpreter executes successfully.
// ---------------------------------------------------------------------------

/// An integer interval with -∞/+∞ encoded as the int64 extremes. The
/// empty interval (lo > hi) never occurs here: bottom is simply "not an
/// int" at the AbstractValue layer.
struct Interval {
  static constexpr int64_t kNegInf = INT64_MIN;
  static constexpr int64_t kPosInf = INT64_MAX;

  int64_t lo = kNegInf;
  int64_t hi = kPosInf;

  static Interval Top() { return Interval{}; }
  static Interval Const(int64_t v) { return Interval{v, v}; }
  static Interval Of(int64_t lo, int64_t hi) { return Interval{lo, hi}; }

  bool IsConst() const { return lo == hi; }
  bool IsTop() const { return lo == kNegInf && hi == kPosInf; }
  /// Sign-domain projections (derived; the interval is the one lattice).
  bool IsNonNegative() const { return lo >= 0; }
  bool IsNegative() const { return hi < 0; }
  bool IsZero() const { return lo == 0 && hi == 0; }
  bool Contains(int64_t v) const { return lo <= v && v <= hi; }

  bool operator==(const Interval& o) const {
    return lo == o.lo && hi == o.hi;
  }

  /// "[0,9]", "[0,+inf)", "(-inf,+inf)", "{3}" for constants.
  std::string ToString() const;
};

/// Least upper bound. (Suffixed like the arithmetic helpers: the bare
/// name would collide with the string Join in common/strings.h.)
Interval JoinI(const Interval& a, const Interval& b);
/// Standard widening: bounds that grew since `prev` jump to ±∞.
Interval WidenI(const Interval& prev, const Interval& next);
/// Saturating interval arithmetic (a bound hitting an extreme stays ∞).
Interval AddI(const Interval& a, const Interval& b);
Interval SubI(const Interval& a, const Interval& b);
Interval MulI(const Interval& a, const Interval& b);
Interval NegI(const Interval& a);
Interval MinI(const Interval& a, const Interval& b);
Interval MaxI(const Interval& a, const Interval& b);

/// The abstract value of a scalar expression: a shape tag plus, for
/// integers, the interval. kUnknown is bottom-as-top: nothing is claimed.
struct AbstractValue {
  enum class Tag { kUnknown, kInt, kDouble, kBool, kString };
  Tag tag = Tag::kUnknown;
  Interval range;  // meaningful only when tag == kInt

  static AbstractValue Unknown() { return AbstractValue{}; }
  static AbstractValue Int(Interval r) {
    return AbstractValue{Tag::kInt, r};
  }
  static AbstractValue OfTag(Tag t) { return AbstractValue{t, {}}; }

  bool operator==(const AbstractValue& o) const {
    return tag == o.tag && range == o.range;
  }
};

struct AbsintOptions {
  /// Upper bound on concrete witness values searched per free variable
  /// when materializing a D2xx witness environment (defensive only; the
  /// witness is normally pinned by the interval itself).
  int max_witness_candidates = 8;
};

struct AbsintResult {
  /// D201 (statically out-of-bounds array write) and D202 (provably-zero
  /// integer divisor) errors, each with a concrete witness environment.
  std::vector<Diagnostic> diagnostics;
  /// Flow-insensitive summary: for every integer scalar (declared
  /// variables and loop indexes), the join of every value it ever holds,
  /// after widening. Sound for downstream consumers that cannot match
  /// program points — plan_lint uses it to bound range-generator
  /// cardinalities (P201/P202).
  std::map<std::string, Interval> int_scalars;
};

/// Runs the interval/constant/sign analysis over `program` (canonicalized
/// with CanonicalizeIncrements, like LintLoops). Conservative by
/// construction: a diagnostic is only emitted when the faulting statement
/// is provably reachable, evaluation provably reaches the faulting
/// operation (no possibly-absent array read earlier in evaluation order),
/// and the fault holds for *every* concrete execution.
AbsintResult AnalyzeProgram(const ast::Program& program,
                            const AbsintOptions& options = {});

}  // namespace diablo::analysis

#endif  // DIABLO_ANALYSIS_ABSINT_H_
