#include "plan/plan.h"

#include "common/strings.h"

namespace diablo::plan {

std::string StreamOp::ToString() const {
  switch (kind) {
    case Kind::kSourceArray:
      return StrCat("sourceArray ", array, " as ", pattern.ToString());
    case Kind::kSourceRange:
      return StrCat("sourceRange ", pattern.ToString(), " in [",
                    expr->ToString(), ",", expr2->ToString(), "]");
    case Kind::kJoinArray:
    case Kind::kBroadcastJoinArray: {
      std::vector<std::string> lk, rk;
      for (const auto& e : left_keys) lk.push_back(e->ToString());
      for (const auto& e : right_keys) rk.push_back(e->ToString());
      return StrCat(kind == Kind::kBroadcastJoinArray ? "broadcastJoin "
                                                      : "join ",
                    array, " as ", pattern.ToString(), " on (",
                    Join(lk, ","), ") == (", Join(rk, ","), ")");
    }
    case Kind::kCartesianArray:
      return StrCat("cartesian ", array, " as ", pattern.ToString());
    case Kind::kIterateBag:
      return StrCat("iterate ", pattern.ToString(), " <- ",
                    expr->ToString());
    case Kind::kFilter:
      return StrCat("filter ", expr->ToString());
    case Kind::kLet:
      return StrCat("let ", pattern.ToString(), " = ", expr->ToString());
    case Kind::kGroupBy:
      return StrCat("groupBy key=", expr->ToString(), " as ",
                    pattern.ToString(), " lifting [", Join(lifted, ","), "]");
    case Kind::kReduceByKey:
      return StrCat("reduceByKey key=", expr->ToString(), " as ",
                    pattern.ToString(), " ", runtime::BinOpName(reduce_op),
                    "/", reduce_value->ToString(), " -> ", lifted[0]);
  }
  return "?";
}

int CompPlan::NumShuffles() const {
  int n = 0;
  for (const StreamOp& op : ops) {
    switch (op.kind) {
      case StreamOp::Kind::kJoinArray:
      case StreamOp::Kind::kGroupBy:
      case StreamOp::Kind::kReduceByKey:
        ++n;
        break;
      default:
        break;
    }
  }
  return n;
}

std::string CompPlan::ToString() const {
  std::string out = driver_only ? "plan (driver-only):\n" : "plan:\n";
  for (const StreamOp& op : ops) {
    out += "  " + op.ToString() + "\n";
  }
  out += "  yield " + head->ToString() + "\n";
  return out;
}

}  // namespace diablo::plan
