#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/strings.h"
#include "plan/plan.h"
#include "runtime/array.h"

namespace diablo::plan {

using comp::CExpr;
using comp::CExprPtr;
using comp::Pattern;
using runtime::BinOp;
using runtime::Dataset;
using runtime::Value;
using runtime::ValueVec;

namespace {

constexpr int64_t kMaxLocalRange = 1 << 24;

// --------------------------- pattern binding --------------------------------

/// Destructures `value` by `pattern`, appending bound components (in
/// Pattern::Vars() order, skipping "_") to `out`.
Status BindPattern(const Pattern& pattern, const Value& value,
                   ValueVec* out) {
  if (!pattern.is_tuple) {
    if (pattern.var != "_") out->push_back(value);
    return Status::OK();
  }
  if (!value.is_tuple() || value.tuple().size() != pattern.elems.size()) {
    return Status::RuntimeError(
        StrCat("pattern ", pattern.ToString(), " does not match value ",
               value.ToString()));
  }
  for (size_t i = 0; i < pattern.elems.size(); ++i) {
    DIABLO_RETURN_IF_ERROR(
        BindPattern(pattern.elems[i], value.tuple()[i], out));
  }
  return Status::OK();
}

// --------------------------- expression evaluation ---------------------------

/// Evaluates a comprehension expression against a row of `schema`-ordered
/// `values`, falling back to driver scalars. When `allow_subplans` is
/// true (driver context), nested comprehensions are planned and executed;
/// in row context they are an error (the normalizer flattens them away).
struct EvalCtx {
  const std::vector<std::string>* schema;
  const ValueVec* values;
  const ExecState* state;
  bool allow_subplans;
};

StatusOr<Value> EvalExpr(const CExprPtr& e, const EvalCtx& ctx);

StatusOr<Value> EvalCallExpr(const CExpr::Call& call, const EvalCtx& ctx) {
  std::vector<Value> args;
  for (const auto& a : call.args) {
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(a, ctx));
    args.push_back(std::move(v));
  }
  auto num = [&](size_t i) { return args[i].ToDouble(); };
  auto need_numeric = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::RuntimeError(StrCat("builtin ", call.function,
                                         " expects ", n, " argument(s)"));
    }
    for (const Value& v : args) {
      if (!v.is_numeric()) {
        return Status::RuntimeError(StrCat("builtin ", call.function,
                                           " applied to ", v.ToString()));
      }
    }
    return Status::OK();
  };
  if (call.function == "inRange") {
    DIABLO_RETURN_IF_ERROR(need_numeric(3));
    return Value::MakeBool(num(0) >= num(1) && num(0) <= num(2));
  }
  if (call.function == "sqrt") {
    DIABLO_RETURN_IF_ERROR(need_numeric(1));
    return Value::MakeDouble(std::sqrt(num(0)));
  }
  if (call.function == "abs") {
    DIABLO_RETURN_IF_ERROR(need_numeric(1));
    if (args[0].is_int()) return Value::MakeInt(std::llabs(args[0].AsInt()));
    return Value::MakeDouble(std::fabs(num(0)));
  }
  if (call.function == "exp") {
    DIABLO_RETURN_IF_ERROR(need_numeric(1));
    return Value::MakeDouble(std::exp(num(0)));
  }
  if (call.function == "log") {
    DIABLO_RETURN_IF_ERROR(need_numeric(1));
    return Value::MakeDouble(std::log(num(0)));
  }
  if (call.function == "pow") {
    DIABLO_RETURN_IF_ERROR(need_numeric(2));
    return Value::MakeDouble(std::pow(num(0), num(1)));
  }
  if (call.function == "floor") {
    DIABLO_RETURN_IF_ERROR(need_numeric(1));
    return Value::MakeDouble(std::floor(num(0)));
  }
  return Status::RuntimeError(
      StrCat("unknown builtin '", call.function, "'"));
}

StatusOr<Value> EvalExpr(const CExprPtr& e, const EvalCtx& ctx) {
  if (e->is<CExpr::Var>()) {
    const std::string& name = e->as<CExpr::Var>().name;
    if (ctx.schema != nullptr) {
      for (size_t i = 0; i < ctx.schema->size(); ++i) {
        if ((*ctx.schema)[i] == name) return (*ctx.values)[i];
      }
    }
    if (ctx.state->scalars != nullptr) {
      auto it = ctx.state->scalars->find(name);
      if (it != ctx.state->scalars->end()) return it->second;
    }
    if (ctx.state->arrays != nullptr &&
        ctx.state->arrays->count(name) != 0) {
      if (!ctx.allow_subplans) {
        return Status::RuntimeError(
            StrCat("distributed array '", name,
                   "' used as a value inside a row expression"));
      }
      // Materialize the array as a bag of pairs (driver context only).
      DIABLO_ASSIGN_OR_RETURN(
          ValueVec rows,
          ctx.state->engine->Collect(ctx.state->arrays->at(name)));
      return Value::MakeBag(std::move(rows));
    }
    return Status::RuntimeError(StrCat("unbound variable '", name, "'"));
  }
  if (e->is<CExpr::IntConst>()) {
    return Value::MakeInt(e->as<CExpr::IntConst>().value);
  }
  if (e->is<CExpr::DoubleConst>()) {
    return Value::MakeDouble(e->as<CExpr::DoubleConst>().value);
  }
  if (e->is<CExpr::BoolConst>()) {
    return Value::MakeBool(e->as<CExpr::BoolConst>().value);
  }
  if (e->is<CExpr::StringConst>()) {
    return Value::MakeString(e->as<CExpr::StringConst>().value);
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    DIABLO_ASSIGN_OR_RETURN(Value l, EvalExpr(b.lhs, ctx));
    // Short-circuit booleans.
    if (b.op == BinOp::kAnd && l.is_bool() && !l.AsBool()) {
      return Value::MakeBool(false);
    }
    if (b.op == BinOp::kOr && l.is_bool() && l.AsBool()) {
      return Value::MakeBool(true);
    }
    DIABLO_ASSIGN_OR_RETURN(Value r, EvalExpr(b.rhs, ctx));
    return runtime::EvalBinOp(b.op, l, r);
  }
  if (e->is<CExpr::Un>()) {
    const auto& u = e->as<CExpr::Un>();
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(u.operand, ctx));
    return runtime::EvalUnOp(u.op, v);
  }
  if (e->is<CExpr::TupleCons>()) {
    ValueVec elems;
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(c, ctx));
      elems.push_back(std::move(v));
    }
    return Value::MakeTuple(std::move(elems));
  }
  if (e->is<CExpr::RecordCons>()) {
    runtime::FieldVec fields;
    for (const auto& [n, c] : e->as<CExpr::RecordCons>().fields) {
      DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(c, ctx));
      fields.emplace_back(n, std::move(v));
    }
    return Value::MakeRecord(std::move(fields));
  }
  if (e->is<CExpr::Proj>()) {
    const auto& p = e->as<CExpr::Proj>();
    DIABLO_ASSIGN_OR_RETURN(Value base, EvalExpr(p.base, ctx));
    if (base.is_record()) {
      const Value* f = base.FindField(p.field);
      if (f == nullptr) {
        return Status::RuntimeError(StrCat("record ", base.ToString(),
                                           " has no field '", p.field, "'"));
      }
      return *f;
    }
    if (base.is_tuple() && p.field.size() >= 2 && p.field[0] == '_') {
      int idx = std::atoi(p.field.c_str() + 1);
      if (idx >= 1 && static_cast<size_t>(idx) <= base.tuple().size()) {
        return base.tuple()[static_cast<size_t>(idx) - 1];
      }
    }
    return Status::RuntimeError(StrCat("cannot project .", p.field,
                                       " out of ", base.ToString()));
  }
  if (e->is<CExpr::Call>()) return EvalCallExpr(e->as<CExpr::Call>(), ctx);
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    // Driver context: reduce a distributed comprehension without
    // collecting it.
    if (ctx.allow_subplans && r.arg->is<CExpr::Nested>()) {
      DIABLO_ASSIGN_OR_RETURN(
          CompPlan sub,
          BuildPlan(r.arg->as<CExpr::Nested>().comp, *ctx.state));
      DIABLO_ASSIGN_OR_RETURN(Dataset ds, ExecutePlan(sub, *ctx.state));
      BinOp op = r.op;
      // The BinOp overload lets the engine fold with native arithmetic
      // under EngineConfig::columnar (bit-identical to EvalBinOp).
      DIABLO_ASSIGN_OR_RETURN(
          std::optional<Value> acc,
          ctx.state->engine->Reduce(
              ds, op, StrCat("reduce[", runtime::BinOpName(op), "]")));
      if (acc.has_value()) return *acc;
      return runtime::MonoidIdentity(op, Value::MakeInt(0));
    }
    DIABLO_ASSIGN_OR_RETURN(Value bag, EvalExpr(r.arg, ctx));
    if (!bag.is_bag()) {
      return Status::RuntimeError(
          StrCat("reduction ", runtime::BinOpName(r.op), "/ applied to ",
                 bag.ToString()));
    }
    return runtime::ReduceBag(r.op, bag.bag());
  }
  if (e->is<CExpr::Nested>()) {
    if (!ctx.allow_subplans) {
      return Status::RuntimeError(
          "nested comprehension in a row expression (normalizer should "
          "have flattened it)");
    }
    DIABLO_ASSIGN_OR_RETURN(
        CompPlan sub, BuildPlan(e->as<CExpr::Nested>().comp, *ctx.state));
    DIABLO_ASSIGN_OR_RETURN(Dataset ds, ExecutePlan(sub, *ctx.state));
    DIABLO_ASSIGN_OR_RETURN(ValueVec rows, ctx.state->engine->Collect(ds));
    return Value::MakeBag(std::move(rows));
  }
  if (e->is<CExpr::Range>()) {
    const auto& r = e->as<CExpr::Range>();
    DIABLO_ASSIGN_OR_RETURN(Value lo, EvalExpr(r.lo, ctx));
    DIABLO_ASSIGN_OR_RETURN(Value hi, EvalExpr(r.hi, ctx));
    if (!lo.is_int() || !hi.is_int()) {
      return Status::RuntimeError("range bounds must be integers");
    }
    int64_t a = lo.AsInt(), b = hi.AsInt();
    if (b - a + 1 > kMaxLocalRange) {
      return Status::RuntimeError("range too large to materialize per-row");
    }
    ValueVec elems;
    for (int64_t i = a; i <= b; ++i) elems.push_back(Value::MakeInt(i));
    return Value::MakeBag(std::move(elems));
  }
  if (e->is<CExpr::Merge>()) {
    if (!ctx.allow_subplans) {
      return Status::RuntimeError("array merge in a row expression");
    }
    DIABLO_ASSIGN_OR_RETURN(Dataset ds, EvalArrayExpr(e, *ctx.state));
    DIABLO_ASSIGN_OR_RETURN(ValueVec rows, ctx.state->engine->Collect(ds));
    return Value::MakeBag(std::move(rows));
  }
  // BagCons.
  ValueVec elems;
  for (const auto& c : e->as<CExpr::BagCons>().elems) {
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(c, ctx));
    elems.push_back(std::move(v));
  }
  return Value::MakeBag(std::move(elems));
}

// --------------------------- plan execution ---------------------------------

/// Builds a row-evaluation callback for engine operators.
EvalCtx RowCtx(const std::vector<std::string>& schema, const ValueVec& values,
               const ExecState& state) {
  return EvalCtx{&schema, &values, &state, /*allow_subplans=*/false};
}

}  // namespace

StatusOr<Dataset> ExecutePlan(const CompPlan& plan, const ExecState& state) {
  runtime::Engine& engine = *state.engine;
  std::vector<std::string> prefix_schema;
  ValueVec prefix;
  std::optional<Dataset> ds;
  std::vector<std::string> schema;  // schema of rows in ds

  auto driver_ctx = [&]() {
    return EvalCtx{&prefix_schema, &prefix, &state, /*allow_subplans=*/true};
  };

  // Seeds the distributed stream from the driver prefix when a wide
  // operator arrives before any generator.
  auto ensure_ds = [&]() {
    if (!ds.has_value()) {
      ds = engine.Parallelize({Value::MakeTuple(prefix)}, 1);
      schema = prefix_schema;
    }
  };

  for (size_t oi = 0; oi < plan.ops.size(); ++oi) {
    const StreamOp& op = plan.ops[oi];
    switch (op.kind) {
      case StreamOp::Kind::kLet: {
        if (!ds.has_value()) {
          DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(op.expr, driver_ctx()));
          DIABLO_RETURN_IF_ERROR(BindPattern(op.pattern, v, &prefix));
          for (const std::string& name : op.pattern.Vars()) {
            prefix_schema.push_back(name);
          }
          break;
        }
        const std::vector<std::string> in_schema = schema;
        const Pattern pattern = op.pattern;
        const CExprPtr expr = op.expr;
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Map(
                    *ds,
                    [&state, in_schema, pattern, expr](
                        const Value& row) -> StatusOr<Value> {
                      DIABLO_ASSIGN_OR_RETURN(
                          Value v,
                          EvalExpr(expr, RowCtx(in_schema, row.tuple(),
                                                state)));
                      ValueVec out = row.tuple();
                      DIABLO_RETURN_IF_ERROR(BindPattern(pattern, v, &out));
                      return Value::MakeTuple(std::move(out));
                    },
                    "let"));
        break;
      }
      case StreamOp::Kind::kFilter: {
        if (!ds.has_value()) {
          DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(op.expr, driver_ctx()));
          if (!v.is_bool()) {
            return Status::RuntimeError(
                StrCat("condition evaluated to ", v.ToString()));
          }
          if (!v.AsBool()) return Dataset();  // statically empty
          break;
        }
        const std::vector<std::string> in_schema = schema;
        const CExprPtr expr = op.expr;
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Filter(
                    *ds,
                    [&state, in_schema, expr](
                        const Value& row) -> StatusOr<bool> {
                      DIABLO_ASSIGN_OR_RETURN(
                          Value v,
                          EvalExpr(expr, RowCtx(in_schema, row.tuple(),
                                                state)));
                      if (!v.is_bool()) {
                        return Status::RuntimeError(
                            StrCat("condition evaluated to ", v.ToString()));
                      }
                      return v.AsBool();
                    },
                    "filter"));
        break;
      }
      case StreamOp::Kind::kSourceArray: {
        auto it = state.arrays->find(op.array);
        if (it == state.arrays->end()) {
          return Status::RuntimeError(
              StrCat("unknown array '", op.array, "'"));
        }
        const Pattern pattern = op.pattern;
        const ValueVec pre = prefix;
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Map(
                    it->second,
                    [pattern, pre](const Value& row) -> StatusOr<Value> {
                      ValueVec out = pre;
                      DIABLO_RETURN_IF_ERROR(BindPattern(pattern, row, &out));
                      return Value::MakeTuple(std::move(out));
                    },
                    StrCat("scan[", op.array, "]")));
        break;
      }
      case StreamOp::Kind::kSourceRange: {
        DIABLO_ASSIGN_OR_RETURN(Value lo, EvalExpr(op.expr, driver_ctx()));
        DIABLO_ASSIGN_OR_RETURN(Value hi, EvalExpr(op.expr2, driver_ctx()));
        if (!lo.is_int() || !hi.is_int()) {
          return Status::RuntimeError("range bounds must be integers");
        }
        Dataset range = engine.Range(lo.AsInt(), hi.AsInt());
        const ValueVec pre = prefix;
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Map(
                    range,
                    [pre](const Value& row) -> StatusOr<Value> {
                      ValueVec out = pre;
                      out.push_back(row);
                      return Value::MakeTuple(std::move(out));
                    },
                    "range"));
        break;
      }
      case StreamOp::Kind::kIterateBag: {
        const Pattern pattern = op.pattern;
        const CExprPtr expr = op.expr;
        if (!ds.has_value()) {
          DIABLO_ASSIGN_OR_RETURN(Value bag, EvalExpr(expr, driver_ctx()));
          if (!bag.is_bag()) {
            return Status::RuntimeError(
                StrCat("generator domain is not a bag: ", bag.ToString()));
          }
          ValueVec rows;
          rows.reserve(bag.bag().size());
          for (const Value& elem : bag.bag()) {
            ValueVec out = prefix;
            DIABLO_RETURN_IF_ERROR(BindPattern(pattern, elem, &out));
            rows.push_back(Value::MakeTuple(std::move(out)));
          }
          ds = engine.Parallelize(std::move(rows));
            break;
        }
        const std::vector<std::string> in_schema = schema;
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.FlatMap(
                    *ds,
                    [&state, in_schema, pattern, expr](
                        const Value& row) -> StatusOr<ValueVec> {
                      EvalCtx ctx = RowCtx(in_schema, row.tuple(), state);
                      DIABLO_ASSIGN_OR_RETURN(Value bag,
                                              EvalExpr(expr, ctx));
                      if (!bag.is_bag()) {
                        return Status::RuntimeError(StrCat(
                            "generator domain is not a bag: ",
                            bag.ToString()));
                      }
                      ValueVec out;
                      out.reserve(bag.bag().size());
                      for (const Value& elem : bag.bag()) {
                        ValueVec r = row.tuple();
                        DIABLO_RETURN_IF_ERROR(
                            BindPattern(pattern, elem, &r));
                        out.push_back(Value::MakeTuple(std::move(r)));
                      }
                      return out;
                    },
                    "iterate"));
        break;
      }
      case StreamOp::Kind::kJoinArray: {
        ensure_ds();
        auto it = state.arrays->find(op.array);
        if (it == state.arrays->end()) {
          return Status::RuntimeError(
              StrCat("unknown array '", op.array, "'"));
        }
        const std::vector<std::string> in_schema = schema;
        const std::vector<CExprPtr> left_keys = op.left_keys;
        const std::vector<CExprPtr> right_keys = op.right_keys;
        const Pattern pattern = op.pattern;
        const std::vector<std::string> right_schema = pattern.Vars();
        // Key the existing stream.
        DIABLO_ASSIGN_OR_RETURN(
            Dataset left,
            engine.Map(
                *ds,
                [&state, in_schema, left_keys](
                    const Value& row) -> StatusOr<Value> {
                  EvalCtx ctx = RowCtx(in_schema, row.tuple(), state);
                  ValueVec key;
                  for (const auto& ke : left_keys) {
                    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(ke, ctx));
                    key.push_back(std::move(v));
                  }
                  return Value::MakePair(
                      key.size() == 1 ? key[0]
                                      : Value::MakeTuple(std::move(key)),
                      row);
                },
                "joinKeyL"));
        // Key the new generator.
        DIABLO_ASSIGN_OR_RETURN(
            Dataset right,
            engine.Map(
                it->second,
                [&state, right_schema, right_keys, pattern](
                    const Value& row) -> StatusOr<Value> {
                  ValueVec bound;
                  DIABLO_RETURN_IF_ERROR(BindPattern(pattern, row, &bound));
                  EvalCtx ctx = RowCtx(right_schema, bound, state);
                  ValueVec key;
                  for (const auto& ke : right_keys) {
                    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(ke, ctx));
                    key.push_back(std::move(v));
                  }
                  return Value::MakePair(
                      key.size() == 1 ? key[0]
                                      : Value::MakeTuple(std::move(key)),
                      Value::MakeTuple(std::move(bound)));
                },
                StrCat("joinKeyR[", op.array, "]")));
        DIABLO_ASSIGN_OR_RETURN(
            Dataset joined,
            engine.Join(left, right, StrCat("join[", op.array, "]")));
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Map(
                    joined,
                    [](const Value& row) -> StatusOr<Value> {
                      const Value& pair = row.tuple()[1];
                      ValueVec out = pair.tuple()[0].tuple();
                      for (const Value& v : pair.tuple()[1].tuple()) {
                        out.push_back(v);
                      }
                      return Value::MakeTuple(std::move(out));
                    },
                    "joinMerge"));
        break;
      }
      case StreamOp::Kind::kBroadcastJoinArray: {
        ensure_ds();
        auto it = state.arrays->find(op.array);
        if (it == state.arrays->end()) {
          return Status::RuntimeError(
              StrCat("unknown array '", op.array, "'"));
        }
        // Build a driver-side hash table keyed by the right key exprs,
        // shipped (conceptually) to every worker.
        const std::vector<std::string> right_schema = op.pattern.Vars();
        auto table = std::make_shared<
            std::unordered_map<Value, std::vector<ValueVec>,
                               runtime::ValueHash>>();
        DIABLO_ASSIGN_OR_RETURN(ValueVec build_rows,
                                state.engine->Collect(it->second));
        for (const Value& row : build_rows) {
          ValueVec bound;
          DIABLO_RETURN_IF_ERROR(BindPattern(op.pattern, row, &bound));
          EvalCtx ctx = RowCtx(right_schema, bound, state);
          ValueVec key;
          for (const auto& ke : op.right_keys) {
            DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(ke, ctx));
            key.push_back(std::move(v));
          }
          Value k = key.size() == 1 ? key[0]
                                    : Value::MakeTuple(std::move(key));
          (*table)[k].push_back(std::move(bound));
        }
        const std::vector<std::string> in_schema = schema;
        const std::vector<CExprPtr> left_keys = op.left_keys;
        int64_t build_bytes = it->second.TotalBytes();
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.FlatMap(
                    *ds,
                    [&state, in_schema, left_keys, table](
                        const Value& row) -> StatusOr<ValueVec> {
                      EvalCtx ctx = RowCtx(in_schema, row.tuple(), state);
                      ValueVec key;
                      for (const auto& ke : left_keys) {
                        DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(ke, ctx));
                        key.push_back(std::move(v));
                      }
                      Value k = key.size() == 1
                                    ? key[0]
                                    : Value::MakeTuple(std::move(key));
                      ValueVec out;
                      auto hit = table->find(k);
                      if (hit == table->end()) return out;
                      for (const ValueVec& bound : hit->second) {
                        ValueVec r = row.tuple();
                        for (const Value& v : bound) r.push_back(v);
                        out.push_back(Value::MakeTuple(std::move(r)));
                      }
                      return out;
                    },
                    StrCat("broadcastJoin[", op.array, "]")));
        // Charge the one-time ship of the build side to every worker.
        runtime::StageStats ship;
        ship.label = StrCat("broadcastJoin[", op.array, "].ship");
        ship.wide = true;
        ship.shuffle_bytes =
            build_bytes * engine.config().cluster.num_workers;
        engine.RecordPlannerStage(std::move(ship));
        break;
      }
      case StreamOp::Kind::kCartesianArray: {
        ensure_ds();
        auto it = state.arrays->find(op.array);
        if (it == state.arrays->end()) {
          return Status::RuntimeError(
              StrCat("unknown array '", op.array, "'"));
        }
        // Broadcast the array: every row of the stream is combined with
        // every array element (a nested-loop / broadcast join).
        DIABLO_ASSIGN_OR_RETURN(ValueVec broadcast,
                                engine.Collect(it->second));
        std::vector<ValueVec> bound_rows;
        bound_rows.reserve(broadcast.size());
        for (const Value& row : broadcast) {
          ValueVec bound;
          DIABLO_RETURN_IF_ERROR(BindPattern(op.pattern, row, &bound));
          bound_rows.push_back(std::move(bound));
        }
        // Force any pending chain so the product accounting below sees
        // the stream's logical row count.
        DIABLO_ASSIGN_OR_RETURN(ds, engine.Force(*ds));
        int64_t left_rows = ds->TotalRows();
        int64_t right_bytes = it->second.TotalBytes();
        auto shared =
            std::make_shared<std::vector<ValueVec>>(std::move(bound_rows));
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.FlatMap(
                    *ds,
                    [shared](const Value& row) -> StatusOr<ValueVec> {
                      ValueVec out;
                      out.reserve(shared->size());
                      for (const ValueVec& extra : *shared) {
                        ValueVec r = row.tuple();
                        for (const Value& v : extra) r.push_back(v);
                        out.push_back(Value::MakeTuple(std::move(r)));
                      }
                      return out;
                    },
                    StrCat("cartesian[", op.array, "]")));
        // Account the product work and the broadcast traffic (the
        // FlatMap stage only charged |left| rows).
        runtime::StageStats extra;
        extra.label = StrCat("cartesian[", op.array, "].product");
        extra.wide = true;
        extra.map_work.assign(
            static_cast<size_t>(engine.config().num_partitions),
            left_rows * static_cast<int64_t>(shared->size()) /
                std::max(1, engine.config().num_partitions));
        extra.shuffle_bytes =
            right_bytes * engine.config().cluster.num_workers;
        engine.RecordPlannerStage(std::move(extra));
        break;
      }
      case StreamOp::Kind::kGroupBy: {
        ensure_ds();
        const std::vector<std::string> in_schema = schema;
        const CExprPtr key_expr = op.expr;
        const std::vector<std::string> lifted = op.lifted;
        std::vector<size_t> positions;
        for (const std::string& v : lifted) {
          for (size_t i = 0; i < in_schema.size(); ++i) {
            if (in_schema[i] == v) positions.push_back(i);
          }
        }
        DIABLO_ASSIGN_OR_RETURN(
            Dataset keyed,
            engine.Map(
                *ds,
                [&state, in_schema, key_expr, positions](
                    const Value& row) -> StatusOr<Value> {
                  EvalCtx ctx = RowCtx(in_schema, row.tuple(), state);
                  DIABLO_ASSIGN_OR_RETURN(Value key,
                                          EvalExpr(key_expr, ctx));
                  ValueVec payload;
                  payload.reserve(positions.size());
                  for (size_t p : positions) {
                    payload.push_back(row.tuple()[p]);
                  }
                  return Value::MakePair(key,
                                         Value::MakeTuple(std::move(payload)));
                },
                "groupKey"));
        DIABLO_ASSIGN_OR_RETURN(Dataset grouped,
                                engine.GroupByKey(keyed, "groupBy"));
        const Pattern pattern = op.pattern;
        size_t nlifted = lifted.size();
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Map(
                    grouped,
                    [pattern, nlifted](const Value& row) -> StatusOr<Value> {
                      ValueVec out;
                      DIABLO_RETURN_IF_ERROR(
                          BindPattern(pattern, row.tuple()[0], &out));
                      const ValueVec& group = row.tuple()[1].bag();
                      for (size_t i = 0; i < nlifted; ++i) {
                        ValueVec column;
                        column.reserve(group.size());
                        for (const Value& tup : group) {
                          column.push_back(tup.tuple()[i]);
                        }
                        out.push_back(Value::MakeBag(std::move(column)));
                      }
                      return Value::MakeTuple(std::move(out));
                    },
                    "groupLift"));
        break;
      }
      case StreamOp::Kind::kReduceByKey: {
        ensure_ds();
        const std::vector<std::string> in_schema = schema;
        const CExprPtr key_expr = op.expr;
        const CExprPtr value_expr = op.reduce_value;
        DIABLO_ASSIGN_OR_RETURN(
            Dataset keyed,
            engine.Map(
                *ds,
                [&state, in_schema, key_expr, value_expr](
                    const Value& row) -> StatusOr<Value> {
                  EvalCtx ctx = RowCtx(in_schema, row.tuple(), state);
                  DIABLO_ASSIGN_OR_RETURN(Value key,
                                          EvalExpr(key_expr, ctx));
                  DIABLO_ASSIGN_OR_RETURN(Value val,
                                          EvalExpr(value_expr, ctx));
                  return Value::MakePair(key, val);
                },
                "reduceKey"));
        DIABLO_ASSIGN_OR_RETURN(
            Dataset reduced,
            engine.ReduceByKey(
                keyed, op.reduce_op,
                StrCat("reduceByKey[", runtime::BinOpName(op.reduce_op), "]"),
                op.schema));
        const Pattern pattern = op.pattern;
        DIABLO_ASSIGN_OR_RETURN(
            ds, engine.Map(
                    reduced,
                    [pattern](const Value& row) -> StatusOr<Value> {
                      ValueVec out;
                      DIABLO_RETURN_IF_ERROR(
                          BindPattern(pattern, row.tuple()[0], &out));
                      out.push_back(row.tuple()[1]);
                      return Value::MakeTuple(std::move(out));
                    },
                    "reduceBind"));
        break;
      }
    }
    schema = op.schema_after;
  }

  // Yield the head per surviving row.
  if (!ds.has_value()) {
    DIABLO_ASSIGN_OR_RETURN(Value v, EvalExpr(plan.head, driver_ctx()));
    return engine.Parallelize({std::move(v)}, 1);
  }
  const std::vector<std::string> in_schema = schema;
  const CExprPtr head = plan.head;
  return engine.Map(
      *ds,
      [&state, in_schema, head](const Value& row) -> StatusOr<Value> {
        return EvalExpr(head, RowCtx(in_schema, row.tuple(), state));
      },
      "yield");
}

// --------------------------- driver / array entry points --------------------

StatusOr<Value> EvalDriverExpr(const CExprPtr& e, const ExecState& state) {
  std::vector<std::string> empty_schema;
  ValueVec empty_values;
  EvalCtx ctx{&empty_schema, &empty_values, &state, /*allow_subplans=*/true};
  return EvalExpr(e, ctx);
}

StatusOr<Dataset> EvalArrayExpr(const CExprPtr& e, const ExecState& state) {
  runtime::Engine& engine = *state.engine;
  if (e->is<CExpr::Var>()) {
    const std::string& name = e->as<CExpr::Var>().name;
    auto it = state.arrays->find(name);
    if (it != state.arrays->end()) return it->second;
    return Status::RuntimeError(StrCat("unknown array '", name, "'"));
  }
  if (e->is<CExpr::BagCons>()) {
    ValueVec rows;
    for (const auto& c : e->as<CExpr::BagCons>().elems) {
      DIABLO_ASSIGN_OR_RETURN(Value v, EvalDriverExpr(c, state));
      rows.push_back(std::move(v));
    }
    return engine.Parallelize(std::move(rows));
  }
  if (e->is<CExpr::Nested>()) {
    DIABLO_ASSIGN_OR_RETURN(CompPlan plan,
                            BuildPlan(e->as<CExpr::Nested>().comp, state));
    return ExecutePlan(plan, state);
  }
  if (e->is<CExpr::Merge>()) {
    const auto& m = e->as<CExpr::Merge>();
    DIABLO_ASSIGN_OR_RETURN(Dataset left, EvalArrayExpr(m.left, state));
    DIABLO_ASSIGN_OR_RETURN(Dataset right, EvalArrayExpr(m.right, state));
    if (!m.has_op) return runtime::ArrayMerge(engine, left, right);
    // Combining merge: old ⊕ delta per key, one side alone passes through.
    BinOp op = m.op;
    DIABLO_ASSIGN_OR_RETURN(Dataset grouped,
                            engine.CoGroup(left, right, "mergeInc"));
    return engine.FlatMap(
        grouped,
        [op](const Value& row) -> StatusOr<ValueVec> {
          const Value& key = row.tuple()[0];
          const ValueVec& olds = row.tuple()[1].tuple()[0].bag();
          const ValueVec& deltas = row.tuple()[1].tuple()[1].bag();
          ValueVec out;
          if (deltas.empty()) {
            if (!olds.empty()) {
              out.push_back(Value::MakePair(key, olds.back()));
            }
            return out;
          }
          DIABLO_ASSIGN_OR_RETURN(Value acc, runtime::ReduceBag(op, deltas));
          if (!olds.empty()) {
            DIABLO_ASSIGN_OR_RETURN(acc,
                                    runtime::EvalBinOp(op, olds.back(), acc));
          }
          out.push_back(Value::MakePair(key, std::move(acc)));
          return out;
        },
        "mergeInc.combine");
  }
  return Status::RuntimeError(
      StrCat("expression is not array-valued: ", e->ToString()));
}

}  // namespace diablo::plan
