#ifndef DIABLO_PLAN_PLAN_H_
#define DIABLO_PLAN_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "comp/comp.h"
#include "runtime/dataset.h"
#include "runtime/engine.h"

namespace diablo::runtime {
class ProfileData;  // runtime/profile.h (--profile-in feedback)
}  // namespace diablo::runtime

namespace diablo::plan {

/// One operator of a comprehension plan. A plan is a linear pipeline over
/// a stream of environment rows (tuples of bound-variable values, ordered
/// by `schema_after`).
struct StreamOp {
  enum class Kind {
    /// First generator over a distributed array: destructure (key, value)
    /// rows by `pattern`.
    kSourceArray,
    /// First generator over range(lo, hi) with driver-evaluable bounds.
    kSourceRange,
    /// Subsequent generator over an array joined to the stream on
    /// equality keys (a distributed hash join).
    kJoinArray,
    /// Same join, but the array is small enough (engine config
    /// broadcast_join_threshold_bytes) to ship to every worker: the
    /// stream is probed in place, without shuffling (paper §7 future
    /// work).
    kBroadcastJoinArray,
    /// Subsequent generator over an array with no linking condition: the
    /// array is broadcast and nested-looped (a cartesian product).
    kCartesianArray,
    /// Generator over a bag-valued expression of the current row (or a
    /// driver bag when the stream is empty): flatMap.
    kIterateBag,
    /// Condition: filter rows.
    kFilter,
    /// Let-binding: extend rows with a computed value.
    kLet,
    /// Group rows by a key, lifting `lifted` variables to bags.
    kGroupBy,
    /// Group rows by a key and reduce one expression with a commutative
    /// operator (Spark reduceByKey, with map-side combine).
    kReduceByKey,
  };

  Kind kind;

  /// kSourceArray/kJoinArray/kCartesianArray: the array name.
  std::string array;
  /// Generator/let/group-by binding pattern.
  comp::Pattern pattern;
  /// kSourceRange/kIterateBag/kFilter/kLet: the operand expression.
  /// kGroupBy/kReduceByKey: the key expression.
  comp::CExprPtr expr;
  comp::CExprPtr expr2;  // kSourceRange: hi bound
  /// kJoinArray: key expressions over the existing stream (left) and over
  /// the new generator's pattern variables (right).
  std::vector<comp::CExprPtr> left_keys;
  std::vector<comp::CExprPtr> right_keys;
  /// kGroupBy: variables lifted to bags. kReduceByKey: `lifted[0]` names
  /// the result variable.
  std::vector<std::string> lifted;
  /// kReduceByKey: the reduced expression and operator.
  comp::CExprPtr reduce_value;
  runtime::BinOp reduce_op = runtime::BinOp::kAdd;
  /// kReduceByKey: static (key, value) column types inferred from the
  /// comprehension by AnnotatePlanSchemas (plan/schema.h). kUnknown
  /// fields make the engine detect types from the data; a definitely
  /// non-numeric value type lets it skip the typed attempt entirely.
  runtime::ColumnSchema schema;

  /// Variables in scope after this operator, in row order.
  std::vector<std::string> schema_after;

  /// Source location of the loop statement this operator was translated
  /// from (line 0 = unknown). Flows into StageStats and trace spans.
  SourceLocation loc{0, 0};

  std::string ToString() const;
};

/// An executable comprehension plan: a pipeline and a head expression
/// evaluated per surviving row.
struct CompPlan {
  std::vector<StreamOp> ops;
  comp::CExprPtr head;
  /// True when the comprehension touches no distributed array: it can be
  /// evaluated entirely on the driver.
  bool driver_only = false;
  /// Source location of the originating loop statement (line 0 =
  /// unknown), stamped by BuildPlan from the executor's current
  /// statement.
  SourceLocation loc{0, 0};

  /// Number of shuffling (wide) operators in the pipeline.
  int NumShuffles() const;
  std::string ToString() const;
};

/// Read-only view of the executor state a plan runs against.
struct ExecState {
  runtime::Engine* engine = nullptr;
  const std::map<std::string, runtime::Value>* scalars = nullptr;
  const std::map<std::string, runtime::Dataset>* arrays = nullptr;
  /// Prior-run profile (--profile-in), or null. When set, plan-time cost
  /// decisions (broadcast-vs-hash join) weigh the profile's measured
  /// stage facts against static estimates; a stale profile simply fails
  /// every provenance lookup and the static rules stand.
  const runtime::ProfileData* profile = nullptr;
};

/// Compiles a flat (normalized) comprehension into a plan. `is_array`
/// decides which generator domains are distributed datasets.
StatusOr<CompPlan> BuildPlan(const comp::CompPtr& comp,
                             const ExecState& state);

/// Runs a plan, returning the result dataset (one row per head value).
StatusOr<runtime::Dataset> ExecutePlan(const CompPlan& plan,
                                       const ExecState& state);

/// Evaluates a comprehension-calculus expression on the driver: no row
/// context; nested comprehensions are planned and executed, and bags are
/// materialized. `Reduce` over a distributed nested comprehension is
/// evaluated with a distributed reduce (no collect).
StatusOr<runtime::Value> EvalDriverExpr(const comp::CExprPtr& e,
                                        const ExecState& state);

/// Evaluates a dataset-valued expression (array variable, comprehension,
/// merge, empty bag) to a Dataset of (key, value) rows.
StatusOr<runtime::Dataset> EvalArrayExpr(const comp::CExprPtr& e,
                                         const ExecState& state);

}  // namespace diablo::plan

#endif  // DIABLO_PLAN_PLAN_H_
