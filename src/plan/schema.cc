#include "plan/schema.h"

namespace diablo::plan {

namespace {

using comp::CExpr;
using comp::CExprPtr;
using runtime::BinOp;
using runtime::ColumnTag;
using runtime::UnOp;

bool IsNumericTag(ColumnTag t) {
  return t == ColumnTag::kInt64 || t == ColumnTag::kDouble;
}

/// The tag of a binary operation, mirroring EvalBinOp's promotion rules
/// (runtime/operators.cc): comparisons and logic yield bool; arithmetic
/// over two ints stays int64, over any double promotes to double; `+`
/// concatenates strings. Anything whose operand types are unknown (or
/// whose semantics vary by kind, like tuple lifting) stays kUnknown.
ColumnTag InferBinType(const CExpr::Bin& bin, const TypeEnv& env) {
  switch (bin.op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kAnd:
    case BinOp::kOr:
      return ColumnTag::kBool;
    default:
      break;
  }
  ColumnTag l = InferExprType(bin.lhs, env);
  ColumnTag r = InferExprType(bin.rhs, env);
  if (bin.op == BinOp::kAdd && l == ColumnTag::kString &&
      r == ColumnTag::kString) {
    return ColumnTag::kString;
  }
  if (!IsNumericTag(l) || !IsNumericTag(r)) return ColumnTag::kUnknown;
  if (l == ColumnTag::kInt64 && r == ColumnTag::kInt64) {
    return ColumnTag::kInt64;
  }
  return ColumnTag::kDouble;
}

ColumnTag InferCallType(const CExpr::Call& call, const TypeEnv& env) {
  // Builtins of plan/evaluator.cc EvalCallExpr.
  if (call.function == "inRange") return ColumnTag::kBool;
  if (call.function == "sqrt" || call.function == "exp" ||
      call.function == "log" || call.function == "pow" ||
      call.function == "floor") {
    return ColumnTag::kDouble;
  }
  if (call.function == "abs" && call.args.size() == 1) {
    // abs keeps int64 ints; anything else lands on the double branch.
    ColumnTag a = InferExprType(call.args[0], env);
    return IsNumericTag(a) ? a : ColumnTag::kUnknown;
  }
  return ColumnTag::kUnknown;
}

}  // namespace

ColumnTag InferExprType(const CExprPtr& e, const TypeEnv& env) {
  if (e == nullptr) return ColumnTag::kUnknown;
  if (e->is<CExpr::IntConst>()) return ColumnTag::kInt64;
  if (e->is<CExpr::DoubleConst>()) return ColumnTag::kDouble;
  if (e->is<CExpr::BoolConst>()) return ColumnTag::kBool;
  if (e->is<CExpr::StringConst>()) return ColumnTag::kString;
  if (e->is<CExpr::Var>()) {
    auto it = env.find(e->as<CExpr::Var>().name);
    return it == env.end() ? ColumnTag::kUnknown : it->second;
  }
  if (e->is<CExpr::Bin>()) return InferBinType(e->as<CExpr::Bin>(), env);
  if (e->is<CExpr::Un>()) {
    const auto& un = e->as<CExpr::Un>();
    if (un.op == UnOp::kNot) return ColumnTag::kBool;
    // kNeg preserves the numeric kind of its operand.
    ColumnTag t = InferExprType(un.operand, env);
    return IsNumericTag(t) ? t : ColumnTag::kUnknown;
  }
  if (e->is<CExpr::Call>()) return InferCallType(e->as<CExpr::Call>(), env);
  // Tuples, records, projections, reductions, nested comprehensions,
  // bags: not scalar columns (or not statically resolvable).
  return ColumnTag::kUnknown;
}

void AnnotatePlanSchemas(CompPlan* plan) {
  TypeEnv env;
  for (StreamOp& op : plan->ops) {
    switch (op.kind) {
      case StreamOp::Kind::kSourceRange:
        // range(lo, hi) binds an int64 counter.
        if (!op.pattern.is_tuple) env[op.pattern.var] = ColumnTag::kInt64;
        break;
      case StreamOp::Kind::kIterateBag:
        // A flatMap over an explicit range(lo,hi) domain binds an int64
        // counter, exactly like kSourceRange (the planner's form for
        // inner range loops).
        if (op.expr != nullptr && op.expr->is<CExpr::Range>() &&
            !op.pattern.is_tuple) {
          env[op.pattern.var] = ColumnTag::kInt64;
          break;
        }
        [[fallthrough]];
      case StreamOp::Kind::kSourceArray:
      case StreamOp::Kind::kJoinArray:
      case StreamOp::Kind::kBroadcastJoinArray:
      case StreamOp::Kind::kCartesianArray:
        // Element types come from runtime data: bind the pattern's
        // variables as unknown (overwriting any shadowed binding).
        for (const std::string& v : op.pattern.Vars()) {
          env[v] = ColumnTag::kUnknown;
        }
        break;
      case StreamOp::Kind::kFilter:
        break;
      case StreamOp::Kind::kLet:
        if (!op.pattern.is_tuple) {
          env[op.pattern.var] = InferExprType(op.expr, env);
        } else {
          for (const std::string& v : op.pattern.Vars()) {
            env[v] = ColumnTag::kUnknown;
          }
        }
        break;
      case StreamOp::Kind::kGroupBy: {
        ColumnTag key = InferExprType(op.expr, env);
        env.clear();
        if (!op.pattern.is_tuple) env[op.pattern.var] = key;
        // Lifted variables become bags — never scalar columns.
        for (const std::string& v : op.lifted) {
          env[v] = ColumnTag::kUnknown;
        }
        break;
      }
      case StreamOp::Kind::kReduceByKey: {
        op.schema.key = InferExprType(op.expr, env);
        op.schema.value = InferExprType(op.reduce_value, env);
        env.clear();
        if (!op.pattern.is_tuple) env[op.pattern.var] = op.schema.key;
        if (!op.lifted.empty()) env[op.lifted[0]] = op.schema.value;
        break;
      }
    }
  }
}

}  // namespace diablo::plan
