#include <optional>
#include <set>

#include "common/strings.h"
#include "plan/plan.h"
#include "plan/schema.h"
#include "runtime/profile.h"

namespace diablo::plan {

using comp::CExpr;
using comp::CExprPtr;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;

namespace {

bool IsArrayVar(const CExprPtr& e, const ExecState& state,
                const std::set<std::string>& schema) {
  return e->is<CExpr::Var>() && schema.count(e->as<CExpr::Var>().name) == 0 &&
         state.arrays != nullptr &&
         state.arrays->count(e->as<CExpr::Var>().name) != 0;
}

/// Rewrites every occurrence of `⊕/var` in `e` to `replacement`; fails
/// (returns nullptr) if `var` occurs outside such a reduction or under a
/// different operator than previously seen.
CExprPtr RewriteReduces(const CExprPtr& e, const std::string& var,
                        std::optional<BinOp>* op, const CExprPtr& replacement,
                        bool* failed) {
  if (e == nullptr || *failed) return e;
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    if (r.arg->is<CExpr::Var>() && r.arg->as<CExpr::Var>().name == var) {
      if (op->has_value() && **op != r.op) {
        *failed = true;
        return e;
      }
      *op = r.op;
      return replacement;
    }
    CExprPtr arg = RewriteReduces(r.arg, var, op, replacement, failed);
    return comp::MakeReduce(r.op, arg);
  }
  if (e->is<CExpr::Var>()) {
    if (e->as<CExpr::Var>().name == var) *failed = true;
    return e;
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    return comp::MakeBin(b.op,
                         RewriteReduces(b.lhs, var, op, replacement, failed),
                         RewriteReduces(b.rhs, var, op, replacement, failed));
  }
  if (e->is<CExpr::Un>()) {
    const auto& u = e->as<CExpr::Un>();
    return comp::MakeUn(u.op,
                        RewriteReduces(u.operand, var, op, replacement, failed));
  }
  if (e->is<CExpr::TupleCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      elems.push_back(RewriteReduces(c, var, op, replacement, failed));
    }
    return comp::MakeTuple(std::move(elems));
  }
  if (e->is<CExpr::RecordCons>()) {
    std::vector<std::pair<std::string, CExprPtr>> fields;
    for (const auto& [n, c] : e->as<CExpr::RecordCons>().fields) {
      fields.emplace_back(n, RewriteReduces(c, var, op, replacement, failed));
    }
    return comp::MakeRecord(std::move(fields));
  }
  if (e->is<CExpr::Proj>()) {
    const auto& p = e->as<CExpr::Proj>();
    return comp::MakeProj(RewriteReduces(p.base, var, op, replacement, failed),
                          p.field);
  }
  if (e->is<CExpr::Call>()) {
    const auto& c = e->as<CExpr::Call>();
    std::vector<CExprPtr> args;
    for (const auto& a : c.args) {
      args.push_back(RewriteReduces(a, var, op, replacement, failed));
    }
    return comp::MakeCall(c.function, std::move(args));
  }
  // Nested comprehensions or other structures mentioning the lifted bag
  // are too complex for the reduceByKey rewrite.
  std::set<std::string> fv = comp::FreeVars(e);
  if (fv.count(var) != 0) *failed = true;
  return e;
}

}  // namespace

StatusOr<CompPlan> BuildPlan(const comp::CompPtr& comp,
                             const ExecState& state) {
  CompPlan plan;
  plan.head = comp->head;
  // Provenance: the executor sets the engine's current statement before
  // planning, so every plan (and through it every stage) knows the loop
  // statement it came from.
  if (state.engine != nullptr) {
    const runtime::EngineProvenance& prov = state.engine->provenance();
    plan.loc = SourceLocation{prov.line, prov.column};
  }
  std::vector<std::string> schema;
  std::set<std::string> schema_set;
  std::set<size_t> consumed;
  bool has_source = false;

  const std::vector<Qualifier>& quals = comp->qualifiers;

  // Every variable bound anywhere in this comprehension: names outside
  // this set resolve to driver scalars/arrays, names inside it are only
  // usable once their binder has run.
  std::set<std::string> comp_bound;
  for (const Qualifier& q : quals) {
    if (q.kind != Qualifier::Kind::kCondition) {
      for (const std::string& v : q.pattern.Vars()) comp_bound.insert(v);
    }
  }

  auto extend_schema = [&](const Pattern& p) {
    for (const std::string& v : p.Vars()) {
      schema.push_back(v);
      schema_set.insert(v);
    }
  };

  for (size_t i = 0; i < quals.size(); ++i) {
    if (consumed.count(i) != 0) continue;
    const Qualifier& q = quals[i];
    StreamOp op;

    switch (q.kind) {
      case Qualifier::Kind::kGenerator: {
        if (IsArrayVar(q.expr, state, schema_set)) {
          const std::string& array = q.expr->as<CExpr::Var>().name;
          if (!has_source) {
            op.kind = StreamOp::Kind::kSourceArray;
            op.array = array;
            op.pattern = q.pattern;
            extend_schema(q.pattern);
          } else {
            // Look for equality conditions linking the new generator to
            // the existing stream (up to the next group-by).
            std::vector<std::string> new_vars = q.pattern.Vars();
            std::set<std::string> new_set(new_vars.begin(), new_vars.end());
            std::vector<CExprPtr> left_keys, right_keys;
            std::vector<size_t> used_conds;
            for (size_t j = i + 1; j < quals.size(); ++j) {
              if (quals[j].kind == Qualifier::Kind::kGroupBy) break;
              if (quals[j].kind != Qualifier::Kind::kCondition) continue;
              if (consumed.count(j) != 0) continue;
              if (!quals[j].expr->is<CExpr::Bin>()) continue;
              const auto& eq = quals[j].expr->as<CExpr::Bin>();
              if (eq.op != BinOp::kEq) continue;
              auto uses_new = [&](const CExprPtr& e) {
                for (const std::string& v : comp::FreeVars(e)) {
                  if (new_set.count(v) != 0) return true;
                }
                return false;
              };
              auto all_known = [&](const CExprPtr& e) {
                // Everything resolvable before the join: stream schema or
                // driver scalars (constants). Variables bound by *later*
                // qualifiers disqualify the condition.
                for (const std::string& v : comp::FreeVars(e)) {
                  if (schema_set.count(v) != 0) continue;
                  if (comp_bound.count(v) != 0) return false;
                }
                return true;
              };
              auto right_side = [&](const CExprPtr& e) {
                if (!uses_new(e)) return false;
                for (const std::string& v : comp::FreeVars(e)) {
                  if (new_set.count(v) != 0) continue;
                  if (schema_set.count(v) != 0 || comp_bound.count(v) != 0) {
                    return false;
                  }
                }
                return true;
              };
              if (all_known(eq.lhs) && right_side(eq.rhs)) {
                left_keys.push_back(eq.lhs);
                right_keys.push_back(eq.rhs);
                used_conds.push_back(j);
              } else if (all_known(eq.rhs) && right_side(eq.lhs)) {
                left_keys.push_back(eq.rhs);
                right_keys.push_back(eq.lhs);
                used_conds.push_back(j);
              }
            }
            if (!left_keys.empty()) {
              // Broadcast small build sides when the engine allows it.
              int64_t threshold =
                  state.engine != nullptr
                      ? state.engine->config().broadcast_join_threshold_bytes
                      : 0;
              const int64_t build_bytes =
                  state.arrays->at(array).TotalBytes();
              bool broadcast = threshold > 0 && build_bytes <= threshold;
              // Profile feedback (--profile-in, DESIGN.md §17): when a
              // prior run measured THIS join (matched by the statement's
              // file:line:column provenance plus the stage label), weigh
              // shipping the build side to every worker against the
              // bytes the hash join actually shuffled, instead of the
              // static threshold alone. A prior broadcast is sticky: its
              // profile measured ship bytes, not shuffle bytes, so
              // re-comparing would flip the decision back and forth
              // between runs. A stale profile matches nothing and the
              // static rule above stands.
              if (state.profile != nullptr && state.engine != nullptr) {
                const runtime::EngineProvenance& prov =
                    state.engine->provenance();
                if (state.profile->FindStage(
                        prov.file, prov.line, prov.column,
                        StrCat("broadcastJoin[", array, "]")) != nullptr) {
                  broadcast = true;
                  state.engine->RecordCostDecision();
                } else if (const runtime::ProfileStage* measured =
                               state.profile->FindStage(
                                   prov.file, prov.line, prov.column,
                                   StrCat("join[", array, "]"));
                           measured != nullptr) {
                  const int workers =
                      state.engine->config().cluster.num_workers;
                  broadcast =
                      build_bytes * workers < measured->shuffle_bytes;
                  state.engine->RecordCostDecision();
                }
              }
              op.kind = broadcast ? StreamOp::Kind::kBroadcastJoinArray
                                  : StreamOp::Kind::kJoinArray;
              op.array = array;
              op.pattern = q.pattern;
              op.left_keys = std::move(left_keys);
              op.right_keys = std::move(right_keys);
              for (size_t j : used_conds) consumed.insert(j);
            } else {
              op.kind = StreamOp::Kind::kCartesianArray;
              op.array = array;
              op.pattern = q.pattern;
            }
            extend_schema(q.pattern);
          }
          has_source = true;
          break;
        }
        if (q.expr->is<CExpr::Range>() && !has_source) {
          const auto& r = q.expr->as<CExpr::Range>();
          bool bounds_local = true;
          for (const std::string& v : comp::FreeVars(r.lo)) {
            if (schema_set.count(v) != 0) bounds_local = false;
          }
          for (const std::string& v : comp::FreeVars(r.hi)) {
            if (schema_set.count(v) != 0) bounds_local = false;
          }
          if (bounds_local && !q.pattern.is_tuple) {
            op.kind = StreamOp::Kind::kSourceRange;
            op.pattern = q.pattern;
            op.expr = r.lo;
            op.expr2 = r.hi;
            extend_schema(q.pattern);
            has_source = true;
            break;
          }
        }
        // Generic generator over a bag-valued expression.
        op.kind = StreamOp::Kind::kIterateBag;
        op.pattern = q.pattern;
        op.expr = q.expr;
        extend_schema(q.pattern);
        has_source = true;
        break;
      }
      case Qualifier::Kind::kCondition:
        op.kind = StreamOp::Kind::kFilter;
        op.expr = q.expr;
        break;
      case Qualifier::Kind::kLet:
        op.kind = StreamOp::Kind::kLet;
        op.pattern = q.pattern;
        op.expr = q.expr;
        extend_schema(q.pattern);
        break;
      case Qualifier::Kind::kGroupBy: {
        if (q.expr == nullptr) {
          return Status::RuntimeError(
              "group-by without an explicit key expression");
        }
        // Variables used after the group-by (lifted to bags). Variables
        // rebound by the group-by pattern resolve to the key, not to a
        // lifted bag.
        std::vector<std::string> pattern_vars = q.pattern.Vars();
        std::set<std::string> pattern_set(pattern_vars.begin(),
                                          pattern_vars.end());
        std::vector<std::string> used;
        for (const std::string& v : schema) {
          if (pattern_set.count(v) != 0) continue;
          bool is_used = comp::FreeVars(plan.head).count(v) != 0;
          for (size_t j = i + 1; !is_used && j < quals.size(); ++j) {
            if (quals[j].expr != nullptr &&
                comp::FreeVars(quals[j].expr).count(v) != 0) {
              is_used = true;
            }
          }
          if (is_used) used.push_back(v);
        }
        // Try the reduceByKey special form: a single lifted variable used
        // only as ⊕/v.
        bool rewrote = false;
        if (used.size() == 1 && i + 1 == quals.size()) {
          const std::string& v = used[0];
          std::optional<BinOp> red_op;
          bool failed = false;
          std::string result = v + "$red";
          CExprPtr new_head = RewriteReduces(
              plan.head, v, &red_op, comp::MakeVar(result), &failed);
          if (!failed && red_op.has_value()) {
            op.kind = StreamOp::Kind::kReduceByKey;
            op.expr = q.expr;
            op.pattern = q.pattern;
            op.reduce_value = comp::MakeVar(v);
            op.reduce_op = *red_op;
            op.lifted = {result};
            plan.head = new_head;
            schema.clear();
            schema_set.clear();
            extend_schema(q.pattern);
            schema.push_back(result);
            schema_set.insert(result);
            rewrote = true;
          }
        }
        if (!rewrote) {
          op.kind = StreamOp::Kind::kGroupBy;
          op.expr = q.expr;
          op.pattern = q.pattern;
          op.lifted = used;
          schema.clear();
          schema_set.clear();
          extend_schema(q.pattern);
          for (const std::string& v : used) {
            schema.push_back(v);
            schema_set.insert(v);
          }
        }
        break;
      }
    }
    op.schema_after = schema;
    plan.ops.push_back(std::move(op));
  }

  plan.driver_only = !has_source;
  for (StreamOp& op : plan.ops) op.loc = plan.loc;
  AnnotatePlanSchemas(&plan);
  return plan;
}

}  // namespace diablo::plan
