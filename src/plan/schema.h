#ifndef DIABLO_PLAN_SCHEMA_H_
#define DIABLO_PLAN_SCHEMA_H_

#include <map>
#include <string>

#include "comp/comp.h"
#include "plan/plan.h"
#include "runtime/column_batch.h"

namespace diablo::plan {

/// Static column-type inference over comprehension expressions
/// (runtime/column_batch.h ColumnTag). Conservative: kUnknown whenever
/// the type depends on runtime values (array contents, bag elements,
/// heterogeneous branches). The engine treats kUnknown as "try typed,
/// detect from the data", so an imprecise answer costs nothing; only a
/// *wrong* definite answer could, and the rules below never produce one.
///
/// Environment: variable name -> inferred tag for the pattern variables
/// bound upstream in the pipeline. Missing names infer as kUnknown.
using TypeEnv = std::map<std::string, runtime::ColumnTag>;

/// The static scalar type of `e` under `env`, or kUnknown.
runtime::ColumnTag InferExprType(const comp::CExprPtr& e, const TypeEnv& env);

/// Fills StreamOp::schema for every kReduceByKey operator of `plan` by
/// walking the pipeline once, tracking what each operator binds:
/// range generators bind int64 counters, lets bind their rhs type,
/// groupings rebind key/value variables. Called by BuildPlan; idempotent.
void AnnotatePlanSchemas(CompPlan* plan);

}  // namespace diablo::plan

#endif  // DIABLO_PLAN_SCHEMA_H_
