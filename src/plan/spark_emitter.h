#ifndef DIABLO_PLAN_SPARK_EMITTER_H_
#define DIABLO_PLAN_SPARK_EMITTER_H_

#include <string>

#include "plan/plan.h"

namespace diablo::plan {

/// Renders a comprehension plan as chained pseudo-Spark code, the way
/// the paper displays generated programs (Appendix B). Purely cosmetic —
/// the emitted text is documentation of the physical plan, not
/// compilable Scala — but it makes `diablo_dump --spark` output read
/// like the paper's listings:
///
///   R = M.filter(((i,k),m) => inRange(i,0,(n-1)))
///        .join(N on (k) == (a))
///        .map(... => ((i,j), (m*n)))
///        .reduceByKey(_+_)
std::string ToSparkLike(const CompPlan& plan);

}  // namespace diablo::plan

#endif  // DIABLO_PLAN_SPARK_EMITTER_H_
