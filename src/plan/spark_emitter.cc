#include "plan/spark_emitter.h"

#include <sstream>

#include "common/strings.h"

namespace diablo::plan {

namespace {

std::string KeyList(const std::vector<comp::CExprPtr>& keys) {
  std::vector<std::string> parts;
  for (const auto& k : keys) parts.push_back(k->ToString());
  return Join(parts, ",");
}

}  // namespace

std::string ToSparkLike(const CompPlan& plan) {
  std::ostringstream os;
  if (plan.driver_only) {
    os << "driver {";
    for (const StreamOp& op : plan.ops) os << " " << op.ToString() << ";";
    os << " yield " << plan.head->ToString() << " }";
    return os.str();
  }
  bool first = true;
  auto chain = [&](const std::string& call) {
    if (first) {
      os << call;
      first = false;
    } else {
      os << "\n  ." << call;
    }
  };
  for (const StreamOp& op : plan.ops) {
    switch (op.kind) {
      case StreamOp::Kind::kSourceArray:
        chain(op.array);
        break;
      case StreamOp::Kind::kSourceRange:
        chain(StrCat("sc.range(", op.expr->ToString(), ", ",
                     op.expr2->ToString(), ")"));
        break;
      case StreamOp::Kind::kJoinArray:
        chain(StrCat("map(row => ((", KeyList(op.left_keys), "), row))"));
        chain(StrCat("join(", op.array, ".map(", op.pattern.ToString(),
                     " => ((", KeyList(op.right_keys), "), ",
                     op.pattern.ToString(), ")))"));
        chain("map { case (_, (row, extra)) => row ++ extra }");
        break;
      case StreamOp::Kind::kBroadcastJoinArray:
        chain(StrCat("mapPartitions(probe broadcast(", op.array, ") on (",
                     KeyList(op.left_keys), ") == (",
                     KeyList(op.right_keys), "))"));
        break;
      case StreamOp::Kind::kCartesianArray:
        chain(StrCat("cartesian(broadcast(", op.array, ") as ",
                     op.pattern.ToString(), ")"));
        break;
      case StreamOp::Kind::kIterateBag:
        chain(StrCat("flatMap(row => ", op.expr->ToString(), " as ",
                     op.pattern.ToString(), ")"));
        break;
      case StreamOp::Kind::kFilter:
        chain(StrCat("filter(row => ", op.expr->ToString(), ")"));
        break;
      case StreamOp::Kind::kLet:
        chain(StrCat("map(row => row + (", op.pattern.ToString(), " = ",
                     op.expr->ToString(), "))"));
        break;
      case StreamOp::Kind::kGroupBy:
        chain(StrCat("map(row => (", op.expr->ToString(), ", (",
                     Join(op.lifted, ","), ")))"));
        chain("groupByKey()");
        break;
      case StreamOp::Kind::kReduceByKey:
        chain(StrCat("map(row => (", op.expr->ToString(), ", ",
                     op.reduce_value->ToString(), "))"));
        chain(StrCat("reduceByKey(_", runtime::BinOpName(op.reduce_op),
                     "_)"));
        break;
    }
  }
  if (first) {
    // Driver-only plan.
    os << "driver { " << plan.head->ToString() << " }";
    return os.str();
  }
  chain(StrCat("map(row => ", plan.head->ToString(), ")"));
  return os.str();
}

}  // namespace diablo::plan
