#ifndef DIABLO_EXEC_TARGET_EXECUTOR_H_
#define DIABLO_EXEC_TARGET_EXECUTOR_H_

#include <map>
#include <string>

#include <set>

#include "common/status.h"
#include "comp/comp.h"
#include "plan/plan.h"
#include "runtime/engine.h"
#include "tiles/tiles.h"
#include "translate/translate.h"

namespace diablo::exec {

/// Executes translated target code (§3.8) against the distributed engine.
///
/// Scalars live on the driver; arrays are distributed datasets of
/// (key, value) rows. Each target assignment is planned (plan::BuildPlan)
/// and executed when reached, so arrays declared mid-program (e.g. inside
/// a while-loop, as in the paper's PageRank) are visible to later
/// statements of the same run.
class TargetExecutor {
 public:
  /// Host inputs: bag values are arrays of (key, value) pairs, everything
  /// else is a scalar.
  using Bindings = std::map<std::string, runtime::Value>;

  explicit TargetExecutor(runtime::Engine* engine) : engine_(engine) {}

  /// Packed-array mode (paper §5): the named matrices are stored as
  /// dense tiles instead of sparse elements, transparently to the
  /// program. Scans unpack tiles on the fly (narrow); incremental `⊳+`
  /// merges pack the delta and combine tile-by-tile with the shuffle-free
  /// zip merge; other updates fall back to sparse-and-repack. Tiled
  /// matrices are dense within their tiles: absent elements read as 0,
  /// which is the §5 semantics (`form` zero-fills), so use this for
  /// dense matrix workloads.
  void EnableTiledStorage(std::set<std::string> arrays,
                          const tiles::TileConfig& config) {
    tiled_names_ = std::move(arrays);
    tile_config_ = config;
  }

  /// Program (file) name used as the provenance `file` on trace spans
  /// and stage stats; empty renders as "<program>".
  void SetProgramName(std::string name) { program_name_ = std::move(name); }

  /// Prior-run profile for cost feedback (--profile-in); the pointer
  /// must outlive the executor. Null (the default) keeps every plan
  /// decision on its static rule.
  void SetProfile(const runtime::ProfileData* profile) {
    profile_ = profile;
  }

  /// Runs a target program. `inputs` bind the program's free variables.
  Status Run(const comp::TargetProgram& program, const Bindings& inputs);

  /// Final value of a driver scalar.
  StatusOr<runtime::Value> GetScalar(const std::string& name) const;

  /// Final contents of an array as a bag of (key, value) pairs sorted by
  /// key (collected to the driver).
  StatusOr<runtime::Value> GetArray(const std::string& name) const;

  /// Direct access to a result dataset (no collect).
  StatusOr<runtime::Dataset> GetArrayDataset(const std::string& name) const;

  /// Number of target statements executed (loop iterations included).
  int64_t statements_executed() const { return statements_executed_; }

 private:
  Status ExecStmt(const comp::TargetStmtPtr& stmt);
  /// Evaluation state handed to the planner/evaluator. Returns a
  /// reference to the long-lived member below: row closures capture the
  /// state by address and survive inside lineage recompute closures, so
  /// it must outlive every statement, not just the current one.
  const plan::ExecState& State();

  bool IsTiled(const std::string& name) const {
    return tiled_names_.count(name) != 0;
  }
  /// Stores a freshly computed sparse dataset into `name`, packing it
  /// when the array is tiled.
  Status StoreArray(const std::string& name, runtime::Dataset sparse);
  /// Handles an array assignment whose value is `old ⊳+ delta` on a
  /// tiled destination: packs the delta and zip-merges, no shuffle of
  /// the stored tiles. Returns false when the value has another shape
  /// (caller falls back to the sparse path).
  StatusOr<bool> TryTiledIncrementalMerge(const std::string& name,
                                          const comp::CExprPtr& value);
  /// Re-unpacks any dirty tiled array referenced by `e` into the sparse
  /// view the planner reads (lazy: merges mark arrays dirty instead of
  /// unpacking eagerly).
  Status RefreshReferencedArrays(const comp::CExprPtr& e);
  Status RefreshArray(const std::string& name) const;
  /// End-of-loop-iteration hook: when the engine runs with fault
  /// injection, checkpoints every live array whose lineage has grown to
  /// FaultConfig::lineage_checkpoint_depth operators, bounding recovery
  /// cost in iterative programs (PageRank-style loops would otherwise
  /// accumulate one lineage chain per iteration). No-op otherwise.
  Status CheckpointLoopArrays();

  runtime::Engine* engine_;
  std::string program_name_;
  const runtime::ProfileData* profile_ = nullptr;
  std::map<std::string, runtime::Value> scalars_;
  /// Sparse views read by the planner. For tiled arrays this is a cache
  /// of Unpack(tiled_[name]), invalidated through dirty_.
  mutable std::map<std::string, runtime::Dataset> arrays_;
  /// Authoritative tiled representation for arrays in tiled_names_.
  mutable std::map<std::string, runtime::Dataset> tiled_;
  mutable std::set<std::string> dirty_;
  std::set<std::string> tiled_names_;
  tiles::TileConfig tile_config_;
  int64_t statements_executed_ = 0;
  /// Lives as long as the executor; see State().
  plan::ExecState state_;
};

}  // namespace diablo::exec

#endif  // DIABLO_EXEC_TARGET_EXECUTOR_H_
