#include "exec/reference_interpreter.h"

#include <cmath>

#include "common/strings.h"

namespace diablo::exec {

using ast::Expr;
using ast::LValue;
using ast::Stmt;
using runtime::BinOp;
using runtime::Value;
using runtime::ValueVec;

namespace {

/// Projects a field out of a record, or `_N` out of a tuple.
StatusOr<Value> ProjectField(const Value& v, const std::string& field) {
  if (v.is_record()) {
    const Value* f = v.FindField(field);
    if (f == nullptr) {
      return Status::RuntimeError(
          StrCat("record ", v.ToString(), " has no field '", field, "'"));
    }
    return *f;
  }
  if (v.is_tuple() && field.size() >= 2 && field[0] == '_') {
    int idx = std::atoi(field.c_str() + 1);
    if (idx >= 1 && static_cast<size_t>(idx) <= v.tuple().size()) {
      return v.tuple()[static_cast<size_t>(idx) - 1];
    }
    return Status::RuntimeError(
        StrCat("tuple ", v.ToString(), " has no component ", field));
  }
  return Status::RuntimeError(StrCat("projection .", field,
                                     " applied to non-record value ",
                                     v.ToString()));
}

/// Rebuilds `cur` with the value at `path` replaced by `v`.
StatusOr<Value> UpdateFieldPath(const Value& cur,
                                const std::vector<std::string>& path,
                                size_t at, const Value& v) {
  if (at == path.size()) return v;
  const std::string& field = path[at];
  if (cur.is_record()) {
    runtime::FieldVec fields = cur.fields();
    for (auto& [name, val] : fields) {
      if (name == field) {
        DIABLO_ASSIGN_OR_RETURN(val, UpdateFieldPath(val, path, at + 1, v));
        return Value::MakeRecord(std::move(fields));
      }
    }
    return Status::RuntimeError(
        StrCat("record ", cur.ToString(), " has no field '", field, "'"));
  }
  if (cur.is_tuple() && field.size() >= 2 && field[0] == '_') {
    int idx = std::atoi(field.c_str() + 1);
    if (idx >= 1 && static_cast<size_t>(idx) <= cur.tuple().size()) {
      ValueVec elems = cur.tuple();
      DIABLO_ASSIGN_OR_RETURN(
          elems[static_cast<size_t>(idx) - 1],
          UpdateFieldPath(elems[static_cast<size_t>(idx) - 1], path, at + 1,
                          v));
      return Value::MakeTuple(std::move(elems));
    }
  }
  return Status::RuntimeError(StrCat("cannot update field '", field,
                                     "' of value ", cur.ToString()));
}

bool IsCollectionConstructor(const std::string& name) {
  return name == "vector" || name == "matrix" || name == "map" ||
         name == "bag";
}

}  // namespace

// ----------------------------- expressions --------------------------------

StatusOr<ReferenceInterpreter::Lifted> ReferenceInterpreter::EvalExpr(
    const Expr& e) {
  if (e.is<Expr::LVal>()) return EvalLValueRead(*e.as<Expr::LVal>().lvalue);
  if (e.is<Expr::IntConst>()) {
    return Lifted::Of(Value::MakeInt(e.as<Expr::IntConst>().value));
  }
  if (e.is<Expr::DoubleConst>()) {
    return Lifted::Of(Value::MakeDouble(e.as<Expr::DoubleConst>().value));
  }
  if (e.is<Expr::BoolConst>()) {
    return Lifted::Of(Value::MakeBool(e.as<Expr::BoolConst>().value));
  }
  if (e.is<Expr::StringConst>()) {
    return Lifted::Of(Value::MakeString(e.as<Expr::StringConst>().value));
  }
  if (e.is<Expr::Bin>()) {
    const auto& b = e.as<Expr::Bin>();
    DIABLO_ASSIGN_OR_RETURN(Lifted l, EvalExpr(*b.lhs));
    if (!l.present) return Lifted::Absent();
    DIABLO_ASSIGN_OR_RETURN(Lifted r, EvalExpr(*b.rhs));
    if (!r.present) return Lifted::Absent();
    DIABLO_ASSIGN_OR_RETURN(Value v, runtime::EvalBinOp(b.op, l.value, r.value));
    return Lifted::Of(std::move(v));
  }
  if (e.is<Expr::Un>()) {
    const auto& u = e.as<Expr::Un>();
    DIABLO_ASSIGN_OR_RETURN(Lifted l, EvalExpr(*u.operand));
    if (!l.present) return Lifted::Absent();
    DIABLO_ASSIGN_OR_RETURN(Value v, runtime::EvalUnOp(u.op, l.value));
    return Lifted::Of(std::move(v));
  }
  if (e.is<Expr::TupleCons>()) {
    ValueVec elems;
    for (const auto& child : e.as<Expr::TupleCons>().elems) {
      DIABLO_ASSIGN_OR_RETURN(Lifted l, EvalExpr(*child));
      if (!l.present) return Lifted::Absent();
      elems.push_back(std::move(l.value));
    }
    return Lifted::Of(Value::MakeTuple(std::move(elems)));
  }
  if (e.is<Expr::RecordCons>()) {
    runtime::FieldVec fields;
    for (const auto& [name, child] : e.as<Expr::RecordCons>().fields) {
      DIABLO_ASSIGN_OR_RETURN(Lifted l, EvalExpr(*child));
      if (!l.present) return Lifted::Absent();
      fields.emplace_back(name, std::move(l.value));
    }
    return Lifted::Of(Value::MakeRecord(std::move(fields)));
  }
  return EvalCall(e.as<Expr::Call>());
}

StatusOr<ReferenceInterpreter::Lifted> ReferenceInterpreter::EvalCall(
    const Expr::Call& call) {
  if (IsCollectionConstructor(call.function) && call.args.empty()) {
    return Status::RuntimeError(
        StrCat("collection constructor ", call.function,
               "() is only valid as a declaration initializer"));
  }
  std::vector<Value> args;
  for (const auto& a : call.args) {
    DIABLO_ASSIGN_OR_RETURN(Lifted l, EvalExpr(*a));
    if (!l.present) return Lifted::Absent();
    args.push_back(std::move(l.value));
  }
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::RuntimeError(StrCat("builtin ", call.function,
                                         " expects ", n, " argument(s)"));
    }
    for (const Value& v : args) {
      if (!v.is_numeric()) {
        return Status::RuntimeError(StrCat("builtin ", call.function,
                                           " applied to ", v.ToString()));
      }
    }
    return Status::OK();
  };
  if (call.function == "sqrt") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Lifted::Of(Value::MakeDouble(std::sqrt(args[0].ToDouble())));
  }
  if (call.function == "abs") {
    DIABLO_RETURN_IF_ERROR(need(1));
    if (args[0].is_int()) {
      return Lifted::Of(Value::MakeInt(std::llabs(args[0].AsInt())));
    }
    return Lifted::Of(Value::MakeDouble(std::fabs(args[0].AsDouble())));
  }
  if (call.function == "exp") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Lifted::Of(Value::MakeDouble(std::exp(args[0].ToDouble())));
  }
  if (call.function == "log") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Lifted::Of(Value::MakeDouble(std::log(args[0].ToDouble())));
  }
  if (call.function == "pow") {
    DIABLO_RETURN_IF_ERROR(need(2));
    return Lifted::Of(
        Value::MakeDouble(std::pow(args[0].ToDouble(), args[1].ToDouble())));
  }
  if (call.function == "floor") {
    DIABLO_RETURN_IF_ERROR(need(1));
    return Lifted::Of(Value::MakeDouble(std::floor(args[0].ToDouble())));
  }
  return Status::RuntimeError(
      StrCat("unknown function '", call.function, "'"));
}

StatusOr<ReferenceInterpreter::Lifted> ReferenceInterpreter::EvalLValueRead(
    const LValue& d) {
  DIABLO_ASSIGN_OR_RETURN(ResolvedDest rd, ResolveDest(d));
  if (!rd.index_present) return Lifted::Absent();
  Value current;
  if (rd.indexed) {
    auto it = rd.var->array.elems.find(rd.key);
    if (it == rd.var->array.elems.end()) return Lifted::Absent();
    current = it->second;
  } else {
    if (rd.var->is_array) {
      // Whole-array read: materialize as a bag of pairs.
      ValueVec pairs;
      pairs.reserve(rd.var->array.elems.size());
      for (const auto& [k, v] : rd.var->array.elems) {
        pairs.push_back(Value::MakePair(k, v));
      }
      current = Value::MakeBag(std::move(pairs));
    } else {
      current = rd.var->scalar.value;
    }
  }
  for (const std::string& field : rd.field_path) {
    DIABLO_ASSIGN_OR_RETURN(current, ProjectField(current, field));
  }
  return Lifted::Of(std::move(current));
}

// ----------------------------- destinations -------------------------------

ReferenceInterpreter::Variable& ReferenceInterpreter::VarSlot(
    const std::string& name) {
  return vars_[name];
}

StatusOr<ReferenceInterpreter::ResolvedDest> ReferenceInterpreter::ResolveDest(
    const LValue& d) {
  if (d.is_var()) {
    auto it = vars_.find(d.var().name);
    if (it == vars_.end()) {
      return Status::RuntimeError(
          StrCat("undefined variable '", d.var().name, "'"));
    }
    ResolvedDest rd;
    rd.var = &it->second;
    return rd;
  }
  if (d.is_index()) {
    const auto& ix = d.index();
    auto it = vars_.find(ix.array);
    if (it == vars_.end()) {
      return Status::RuntimeError(
          StrCat("undefined array '", ix.array, "'"));
    }
    if (!it->second.is_array) {
      return Status::RuntimeError(
          StrCat("indexing non-array variable '", ix.array, "'"));
    }
    ResolvedDest rd;
    rd.var = &it->second;
    rd.indexed = true;
    ValueVec keys;
    for (const auto& e : ix.indices) {
      DIABLO_ASSIGN_OR_RETURN(Lifted l, EvalExpr(*e));
      if (!l.present) {
        rd.index_present = false;
        return rd;
      }
      keys.push_back(std::move(l.value));
    }
    rd.key = keys.size() == 1 ? keys[0] : Value::MakeTuple(std::move(keys));
    return rd;
  }
  // Projection: resolve the base, then extend the field path.
  DIABLO_ASSIGN_OR_RETURN(ResolvedDest rd, ResolveDest(*d.proj().base));
  rd.field_path.push_back(d.proj().field);
  return rd;
}

// ----------------------------- statements ---------------------------------

namespace {

/// Dense (declared vector/matrix) arrays reject writes at negative
/// integer subscripts — the out-of-bounds fault the abstract interpreter
/// proves statically as D201. Reads of such elements stay absent.
Status CheckDenseWrite(bool dense, const LValue& dest, const Value& key) {
  if (!dense) return Status::OK();
  auto check_one = [&](const Value& k) {
    if (k.is_int() && k.AsInt() < 0) {
      return Status::RuntimeError(
          StrCat("out-of-bounds write to dense array '", dest.RootName(),
                 "': subscript ", k.AsInt(), " is negative"));
    }
    return Status::OK();
  };
  if (key.is_tuple()) {
    for (const Value& k : key.tuple()) {
      DIABLO_RETURN_IF_ERROR(check_one(k));
    }
    return Status::OK();
  }
  return check_one(key);
}

}  // namespace

Status ReferenceInterpreter::ExecAssign(const LValue& dest, const Value& v) {
  DIABLO_ASSIGN_OR_RETURN(ResolvedDest rd, ResolveDest(dest));
  if (!rd.index_present) return Status::OK();  // lifted: no destination
  if (rd.indexed) {
    if (rd.field_path.empty()) {
      DIABLO_RETURN_IF_ERROR(CheckDenseWrite(rd.var->dense, dest, rd.key));
      rd.var->array.elems.insert_or_assign(rd.key, v);
      return Status::OK();
    }
    auto it = rd.var->array.elems.find(rd.key);
    if (it == rd.var->array.elems.end()) return Status::OK();  // lifted
    DIABLO_ASSIGN_OR_RETURN(it->second,
                            UpdateFieldPath(it->second, rd.field_path, 0, v));
    return Status::OK();
  }
  if (rd.field_path.empty()) {
    if (rd.var->is_array) {
      // Whole-array replacement from a bag of pairs.
      if (!v.is_bag()) {
        return Status::RuntimeError(
            StrCat("assigning non-bag ", v.ToString(), " to array variable"));
      }
      rd.var->array.elems.clear();
      for (const Value& pair : v.bag()) {
        if (!pair.is_tuple() || pair.tuple().size() != 2) {
          return Status::RuntimeError("array assignment row is not a pair");
        }
        rd.var->array.elems.insert_or_assign(pair.tuple()[0],
                                             pair.tuple()[1]);
      }
      return Status::OK();
    }
    rd.var->scalar.value = v;
    return Status::OK();
  }
  DIABLO_ASSIGN_OR_RETURN(
      rd.var->scalar.value,
      UpdateFieldPath(rd.var->scalar.value, rd.field_path, 0, v));
  return Status::OK();
}

Status ReferenceInterpreter::ExecIncr(const LValue& dest, BinOp op,
                                      const Value& v) {
  DIABLO_ASSIGN_OR_RETURN(ResolvedDest rd, ResolveDest(dest));
  if (!rd.index_present) return Status::OK();
  if (rd.indexed) {
    auto it = rd.var->array.elems.find(rd.key);
    if (rd.field_path.empty()) {
      DIABLO_RETURN_IF_ERROR(CheckDenseWrite(rd.var->dense, dest, rd.key));
      if (it == rd.var->array.elems.end()) {
        // Missing element: start from the monoid identity.
        DIABLO_ASSIGN_OR_RETURN(
            Value combined,
            runtime::EvalBinOp(op, runtime::MonoidIdentity(op, v), v));
        rd.var->array.elems.emplace(rd.key, std::move(combined));
      } else {
        DIABLO_ASSIGN_OR_RETURN(it->second,
                                runtime::EvalBinOp(op, it->second, v));
      }
      return Status::OK();
    }
    if (it == rd.var->array.elems.end()) return Status::OK();  // lifted
    Value cur = it->second;
    for (const std::string& f : rd.field_path) {
      DIABLO_ASSIGN_OR_RETURN(cur, ProjectField(cur, f));
    }
    DIABLO_ASSIGN_OR_RETURN(Value combined, runtime::EvalBinOp(op, cur, v));
    DIABLO_ASSIGN_OR_RETURN(
        it->second, UpdateFieldPath(it->second, rd.field_path, 0, combined));
    return Status::OK();
  }
  // Scalar destination.
  Value cur = rd.var->scalar.value;
  for (const std::string& f : rd.field_path) {
    DIABLO_ASSIGN_OR_RETURN(cur, ProjectField(cur, f));
  }
  DIABLO_ASSIGN_OR_RETURN(Value combined, runtime::EvalBinOp(op, cur, v));
  if (rd.field_path.empty()) {
    rd.var->scalar.value = std::move(combined);
  } else {
    DIABLO_ASSIGN_OR_RETURN(
        rd.var->scalar.value,
        UpdateFieldPath(rd.var->scalar.value, rd.field_path, 0, combined));
  }
  return Status::OK();
}

Status ReferenceInterpreter::ExecStmt(const Stmt& s) {
  ++iterations_;
  if (s.is<Stmt::Incr>()) {
    const auto& node = s.as<Stmt::Incr>();
    DIABLO_ASSIGN_OR_RETURN(Lifted v, EvalExpr(*node.value));
    if (!v.present) return Status::OK();
    return ExecIncr(*node.dest, node.op, v.value);
  }
  if (s.is<Stmt::Assign>()) {
    const auto& node = s.as<Stmt::Assign>();
    DIABLO_ASSIGN_OR_RETURN(Lifted v, EvalExpr(*node.value));
    if (!v.present) return Status::OK();
    return ExecAssign(*node.dest, v.value);
  }
  if (s.is<Stmt::Decl>()) {
    const auto& node = s.as<Stmt::Decl>();
    Variable& var = VarSlot(node.name);
    if (node.type != nullptr && node.type->IsCollection()) {
      var.is_array = true;
      var.dense =
          node.type->name == "vector" || node.type->name == "matrix";
      var.array.elems.clear();
      // A collection initializer (vector()/map()/...) means "empty".
      return Status::OK();
    }
    var.is_array = false;
    if (node.init != nullptr) {
      DIABLO_ASSIGN_OR_RETURN(Lifted v, EvalExpr(*node.init));
      if (!v.present) {
        return Status::RuntimeError(
            StrCat("initializer of '", node.name, "' has no value"));
      }
      var.scalar.value = std::move(v.value);
    }
    return Status::OK();
  }
  if (s.is<Stmt::ForRange>()) {
    const auto& node = s.as<Stmt::ForRange>();
    DIABLO_ASSIGN_OR_RETURN(Lifted lo, EvalExpr(*node.lo));
    DIABLO_ASSIGN_OR_RETURN(Lifted hi, EvalExpr(*node.hi));
    if (!lo.present || !hi.present) return Status::OK();
    if (!lo.value.is_int() || !hi.value.is_int()) {
      return Status::RuntimeError("for-loop bounds must be integers");
    }
    // The loop variable shadows any previous binding.
    Variable saved = VarSlot(node.var);
    for (int64_t i = lo.value.AsInt(); i <= hi.value.AsInt(); ++i) {
      Variable& slot = VarSlot(node.var);
      slot.is_array = false;
      slot.scalar.value = Value::MakeInt(i);
      DIABLO_RETURN_IF_ERROR(ExecStmt(*node.body));
    }
    VarSlot(node.var) = std::move(saved);
    return Status::OK();
  }
  if (s.is<Stmt::ForEach>()) {
    const auto& node = s.as<Stmt::ForEach>();
    DIABLO_ASSIGN_OR_RETURN(Lifted coll, EvalExpr(*node.collection));
    if (!coll.present) return Status::OK();
    if (!coll.value.is_bag()) {
      return Status::RuntimeError("for-in expects a collection");
    }
    Variable saved = VarSlot(node.var);
    for (const Value& pair : coll.value.bag()) {
      if (!pair.is_tuple() || pair.tuple().size() != 2) {
        return Status::RuntimeError(
            "for-in collection rows must be (index, value) pairs");
      }
      Variable& slot = VarSlot(node.var);
      slot.is_array = false;
      slot.scalar.value = pair.tuple()[1];
      DIABLO_RETURN_IF_ERROR(ExecStmt(*node.body));
    }
    VarSlot(node.var) = std::move(saved);
    return Status::OK();
  }
  if (s.is<Stmt::While>()) {
    const auto& node = s.as<Stmt::While>();
    for (;;) {
      DIABLO_ASSIGN_OR_RETURN(Lifted cond, EvalExpr(*node.cond));
      if (!cond.present) return Status::OK();
      if (!cond.value.is_bool()) {
        return Status::RuntimeError("while condition must be boolean");
      }
      if (!cond.value.AsBool()) return Status::OK();
      DIABLO_RETURN_IF_ERROR(ExecStmt(*node.body));
    }
  }
  if (s.is<Stmt::If>()) {
    const auto& node = s.as<Stmt::If>();
    DIABLO_ASSIGN_OR_RETURN(Lifted cond, EvalExpr(*node.cond));
    if (!cond.present) return Status::OK();  // lifted: no branch runs
    if (!cond.value.is_bool()) {
      return Status::RuntimeError("if condition must be boolean");
    }
    if (cond.value.AsBool()) return ExecStmt(*node.then_branch);
    if (node.else_branch != nullptr) return ExecStmt(*node.else_branch);
    return Status::OK();
  }
  const auto& block = s.as<Stmt::Block>();
  for (const auto& child : block.stmts) {
    DIABLO_RETURN_IF_ERROR(ExecStmt(*child));
  }
  return Status::OK();
}

// ----------------------------- driver --------------------------------------

Status ReferenceInterpreter::Run(const ast::Program& program,
                                 const Bindings& inputs) {
  vars_.clear();
  iterations_ = 0;
  for (const auto& [name, value] : inputs) {
    Variable& var = VarSlot(name);
    if (value.is_bag()) {
      var.is_array = true;
      for (const Value& pair : value.bag()) {
        if (!pair.is_tuple() || pair.tuple().size() != 2) {
          return Status::InvalidArgument(
              StrCat("input array '", name,
                     "' must contain (key,value) pairs, got ",
                     pair.ToString()));
        }
        var.array.elems.insert_or_assign(pair.tuple()[0], pair.tuple()[1]);
      }
    } else {
      var.is_array = false;
      var.scalar.value = value;
    }
  }
  for (const auto& s : program.stmts) {
    DIABLO_RETURN_IF_ERROR(ExecStmt(*s));
  }
  return Status::OK();
}

StatusOr<Value> ReferenceInterpreter::GetScalar(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end() || it->second.is_array) {
    return Status::InvalidArgument(StrCat("no scalar variable '", name, "'"));
  }
  return it->second.scalar.value;
}

StatusOr<Value> ReferenceInterpreter::GetArray(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end() || !it->second.is_array) {
    return Status::InvalidArgument(StrCat("no array variable '", name, "'"));
  }
  ValueVec pairs;
  pairs.reserve(it->second.array.elems.size());
  for (const auto& [k, v] : it->second.array.elems) {
    pairs.push_back(Value::MakePair(k, v));
  }
  return Value::MakeBag(std::move(pairs));
}

}  // namespace diablo::exec
