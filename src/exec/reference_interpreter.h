#ifndef DIABLO_EXEC_REFERENCE_INTERPRETER_H_
#define DIABLO_EXEC_REFERENCE_INTERPRETER_H_

#include <map>
#include <string>
#include <unordered_map>

#include "ast/ast.h"
#include "common/status.h"
#include "runtime/value.h"

namespace diablo::exec {

/// The sequential reference semantics of the loop language — a direct
/// implementation of the denotational semantics of Figure 4 / Appendix A.
///
/// This interpreter executes programs exactly as written, one loop
/// iteration at a time, and is the ground truth the translated distributed
/// programs are validated against (Theorem A.1, soundness).
///
/// Value conventions:
///  * Sparse arrays (vector/matrix/map/bag variables) are key-value maps.
///    The host binds them as bags of (key, value) pairs.
///  * Reading a missing array element yields the *empty bag* under the
///    paper's lifted semantics (§3.4): any statement whose right-hand side
///    or destination indexes read a missing element does nothing.
///  * Exception (shared with the translated programs): the *current value*
///    of the destination of an incremental update `d ⊕= e` defaults to the
///    identity of ⊕ when the element does not exist yet. Without this
///    convention the paper's own WordCount (`C[w] += 1` on an initially
///    empty map) would never insert anything.
class ReferenceInterpreter {
 public:
  /// Host-provided inputs: bag values are treated as sparse arrays (their
  /// elements must be (key, value) pairs), everything else as scalars.
  using Bindings = std::map<std::string, runtime::Value>;

  /// Runs `program` with the given input bindings. On success the final
  /// state is queryable through GetScalar / GetArray.
  Status Run(const ast::Program& program, const Bindings& inputs);

  /// The final value of a scalar variable.
  StatusOr<runtime::Value> GetScalar(const std::string& name) const;

  /// The final contents of an array variable as a bag of (key, value)
  /// pairs sorted by key.
  StatusOr<runtime::Value> GetArray(const std::string& name) const;

  /// Number of loop-body iterations executed (for tests and benchmarks).
  int64_t iterations() const { return iterations_; }

 private:
  struct ArrayVar {
    std::map<runtime::Value, runtime::Value> elems;
  };
  struct ScalarVar {
    runtime::Value value;
  };
  /// Either a scalar or an array; arrays are mutable in place.
  struct Variable {
    bool is_array = false;
    /// Declared vector/matrix: dense index semantics. Writing a negative
    /// integer subscript is out of bounds (maps/bags keep arbitrary
    /// keys). Reads of absent elements stay lifted no-ops either way.
    bool dense = false;
    ScalarVar scalar;
    ArrayVar array;
  };

  /// An expression result under the lifted semantics: present or absent.
  struct Lifted {
    bool present = false;
    runtime::Value value;

    static Lifted Absent() { return Lifted{}; }
    static Lifted Of(runtime::Value v) {
      Lifted l;
      l.present = true;
      l.value = std::move(v);
      return l;
    }
  };

  StatusOr<Lifted> EvalExpr(const ast::Expr& e);
  StatusOr<Lifted> EvalLValueRead(const ast::LValue& d);
  StatusOr<Lifted> EvalCall(const ast::Expr::Call& call);

  Status ExecStmt(const ast::Stmt& s);
  Status ExecAssign(const ast::LValue& dest, const runtime::Value& v);
  Status ExecIncr(const ast::LValue& dest, runtime::BinOp op,
                  const runtime::Value& v);

  /// Resolves the array element / scalar slot a destination denotes.
  /// Returns the variable, plus the index key for array destinations and
  /// the field path for projections.
  struct ResolvedDest {
    Variable* var = nullptr;
    bool indexed = false;
    runtime::Value key;                  // valid when indexed
    std::vector<std::string> field_path; // outermost-first projections
    bool index_present = true;           // false if an index expr was absent
  };
  StatusOr<ResolvedDest> ResolveDest(const ast::LValue& d);

  Variable& VarSlot(const std::string& name);

  std::unordered_map<std::string, Variable> vars_;
  int64_t iterations_ = 0;
};

}  // namespace diablo::exec

#endif  // DIABLO_EXEC_REFERENCE_INTERPRETER_H_
