#include "exec/target_executor.h"

#include <algorithm>

#include "common/strings.h"

namespace diablo::exec {

using comp::TargetStmt;
using runtime::Dataset;
using runtime::Value;
using runtime::ValueVec;

namespace {

/// Human-readable label for a statement's trace span.
std::string StmtLabel(const comp::TargetStmtPtr& stmt) {
  if (stmt->is<TargetStmt::Declare>()) {
    return StrCat("declare ", stmt->as<TargetStmt::Declare>().var);
  }
  if (stmt->is<TargetStmt::Assign>()) {
    return StrCat("assign ", stmt->as<TargetStmt::Assign>().var);
  }
  return "while";
}

/// Installs statement provenance on the engine for the current scope and
/// restores the previous provenance on exit (While bodies re-enter).
class ProvenanceScope {
 public:
  ProvenanceScope(runtime::Engine* engine, runtime::EngineProvenance p)
      : engine_(engine), prev_(engine->SwapProvenance(std::move(p))) {}
  ~ProvenanceScope() { engine_->SwapProvenance(std::move(prev_)); }
  ProvenanceScope(const ProvenanceScope&) = delete;
  ProvenanceScope& operator=(const ProvenanceScope&) = delete;

 private:
  runtime::Engine* engine_;
  runtime::EngineProvenance prev_;
};

}  // namespace

const plan::ExecState& TargetExecutor::State() {
  state_.engine = engine_;
  state_.scalars = &scalars_;
  state_.arrays = &arrays_;
  state_.profile = profile_;
  return state_;
}

Status TargetExecutor::StoreArray(const std::string& name, Dataset sparse) {
  // Stored arrays are materialization boundaries: the plan's trailing
  // narrow operators (the translated comprehension's flatMap/map/filter
  // tail) run here as one fused stage — vectorized over column batches
  // when every operator in the chain carries a kernel
  // (EngineConfig::columnar), per-row otherwise — and everything
  // downstream (planner size estimates, tile packing, direct partition
  // reads) sees real rows.
  DIABLO_ASSIGN_OR_RETURN(sparse, engine_->Force(sparse));
  if (!IsTiled(name)) {
    arrays_[name] = std::move(sparse);
    return Status::OK();
  }
  DIABLO_ASSIGN_OR_RETURN(Dataset tiled,
                          tiles::Pack(*engine_, sparse, tile_config_));
  tiled_[name] = std::move(tiled);
  dirty_.insert(name);
  arrays_[name] = Dataset();  // placeholder until refreshed
  return Status::OK();
}

Status TargetExecutor::RefreshArray(const std::string& name) const {
  if (dirty_.count(name) == 0) return Status::OK();
  DIABLO_ASSIGN_OR_RETURN(
      Dataset unpacked,
      tiles::Unpack(*engine_, tiled_.at(name), tile_config_));
  // The sparse view is read directly (partition scans, size estimates),
  // so run the unpack chain now.
  DIABLO_ASSIGN_OR_RETURN(unpacked, engine_->Force(unpacked));
  arrays_[name] = std::move(unpacked);
  dirty_.erase(name);
  return Status::OK();
}

Status TargetExecutor::RefreshReferencedArrays(const comp::CExprPtr& e) {
  if (dirty_.empty() || e == nullptr) return Status::OK();
  for (const std::string& name : comp::FreeVars(e)) {
    if (dirty_.count(name) != 0) {
      DIABLO_RETURN_IF_ERROR(RefreshArray(name));
    }
  }
  return Status::OK();
}

StatusOr<bool> TargetExecutor::TryTiledIncrementalMerge(
    const std::string& name, const comp::CExprPtr& value) {
  // Shape: Merge(Var name, delta) with combining op +, produced by
  // rule (15a) for additive updates.
  if (!value->is<comp::CExpr::Merge>()) return false;
  const auto& merge = value->as<comp::CExpr::Merge>();
  if (!merge.has_op || merge.op != runtime::BinOp::kAdd) return false;
  if (!merge.left->is<comp::CExpr::Var>() ||
      merge.left->as<comp::CExpr::Var>().name != name) {
    return false;
  }
  auto it = tiled_.find(name);
  if (it == tiled_.end()) return false;
  DIABLO_RETURN_IF_ERROR(RefreshReferencedArrays(merge.right));
  DIABLO_ASSIGN_OR_RETURN(Dataset delta,
                          plan::EvalArrayExpr(merge.right, State()));
  // Pack the delta on the same partitioner and combine tile-by-tile.
  // Zero-filled tile slots are the + identity, so elementwise addition
  // implements old ⊳+ delta exactly. The stored tiles never shuffle and
  // the sparse view is only re-unpacked when something reads it.
  DIABLO_ASSIGN_OR_RETURN(Dataset packed_delta,
                          tiles::Pack(*engine_, delta, tile_config_));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset merged, tiles::ZipMergeAdd(*engine_, it->second, packed_delta));
  tiled_[name] = std::move(merged);
  dirty_.insert(name);
  arrays_[name] = Dataset();
  return true;
}

Status TargetExecutor::Run(const comp::TargetProgram& program,
                           const Bindings& inputs) {
  scalars_.clear();
  arrays_.clear();
  tiled_.clear();
  statements_executed_ = 0;
  // The run span is the root of the trace; input materialization below
  // happens inside it but outside any statement span, so reports group
  // those stages as setup.
  runtime::ScopedSpan run_span(
      engine_->trace(), runtime::SpanKind::kRun,
      program_name_.empty() ? "run" : StrCat("run ", program_name_));
  for (const auto& [name, value] : inputs) {
    if (value.is_bag()) {
      ValueVec rows = value.bag();
      for (const Value& row : rows) {
        if (!row.is_tuple() || row.tuple().size() != 2) {
          return Status::InvalidArgument(
              StrCat("input array '", name,
                     "' must contain (key,value) pairs, got ",
                     row.ToString()));
        }
      }
      DIABLO_RETURN_IF_ERROR(
          StoreArray(name, engine_->Parallelize(std::move(rows))));
    } else {
      scalars_[name] = value;
    }
  }
  for (const auto& stmt : program.stmts) {
    DIABLO_RETURN_IF_ERROR(ExecStmt(stmt));
  }
  return Status::OK();
}

Status TargetExecutor::ExecStmt(const comp::TargetStmtPtr& stmt) {
  ++statements_executed_;
  std::string label = StmtLabel(stmt);
  runtime::ScopedSpan stmt_span(engine_->trace(),
                                runtime::SpanKind::kStatement, label);
  stmt_span.SetLocation(program_name_, stmt->loc.line, stmt->loc.column);
  if (runtime::EventLog* events = engine_->config().events) {
    runtime::Event e;
    e.name = "statement";
    e.src_file = program_name_;
    e.src_line = stmt->loc.line;
    e.src_column = stmt->loc.column;
    e.strs.emplace_back("label", label);
    events->Emit(std::move(e));
  }
  ProvenanceScope provenance(
      engine_, runtime::EngineProvenance{program_name_, stmt->loc.line,
                                         stmt->loc.column, std::move(label)});
  if (stmt->is<TargetStmt::Declare>()) {
    const auto& d = stmt->as<TargetStmt::Declare>();
    if (d.is_array) {
      arrays_[d.var] = Dataset();
      if (IsTiled(d.var)) {
        tiled_[d.var] = Dataset();
        dirty_.erase(d.var);
      }
      return Status::OK();
    }
    if (d.init != nullptr) {
      DIABLO_RETURN_IF_ERROR(RefreshReferencedArrays(d.init));
      DIABLO_ASSIGN_OR_RETURN(Value bag,
                              plan::EvalDriverExpr(d.init, State()));
      if (!bag.is_bag() || bag.bag().size() != 1) {
        return Status::RuntimeError(
            StrCat("initializer of '", d.var,
                   "' did not produce a single value: ", bag.ToString()));
      }
      scalars_[d.var] = bag.bag()[0];
    } else {
      scalars_[d.var] = Value::MakeUnit();
    }
    return Status::OK();
  }
  if (stmt->is<TargetStmt::Assign>()) {
    const auto& a = stmt->as<TargetStmt::Assign>();
    if (a.is_array) {
      if (IsTiled(a.var)) {
        DIABLO_ASSIGN_OR_RETURN(bool handled,
                                TryTiledIncrementalMerge(a.var, a.value));
        if (handled) return Status::OK();
      }
      DIABLO_RETURN_IF_ERROR(RefreshReferencedArrays(a.value));
      DIABLO_ASSIGN_OR_RETURN(Dataset ds,
                              plan::EvalArrayExpr(a.value, State()));
      return StoreArray(a.var, std::move(ds));
    }
    DIABLO_RETURN_IF_ERROR(RefreshReferencedArrays(a.value));
    DIABLO_ASSIGN_OR_RETURN(Value bag, plan::EvalDriverExpr(a.value, State()));
    if (!bag.is_bag()) {
      return Status::RuntimeError(
          StrCat("scalar assignment to '", a.var,
                 "' produced a non-bag value: ", bag.ToString()));
    }
    if (bag.bag().empty()) return Status::OK();  // lifted: no update
    if (bag.bag().size() > 1) {
      return Status::RuntimeError(
          StrCat("scalar assignment to '", a.var, "' produced ",
                 bag.bag().size(), " values"));
    }
    scalars_[a.var] = bag.bag()[0];
    return Status::OK();
  }
  const auto& w = stmt->as<TargetStmt::While>();
  for (;;) {
    DIABLO_RETURN_IF_ERROR(RefreshReferencedArrays(w.cond));
    DIABLO_ASSIGN_OR_RETURN(Value cond, plan::EvalDriverExpr(w.cond, State()));
    if (!cond.is_bag()) {
      return Status::RuntimeError("while condition did not lift to a bag");
    }
    if (cond.bag().empty()) return Status::OK();
    if (!cond.bag()[0].is_bool()) {
      return Status::RuntimeError(
          StrCat("while condition evaluated to ", cond.bag()[0].ToString()));
    }
    if (!cond.bag()[0].AsBool()) return Status::OK();
    for (const auto& child : w.body) {
      DIABLO_RETURN_IF_ERROR(ExecStmt(child));
    }
    DIABLO_RETURN_IF_ERROR(CheckpointLoopArrays());
  }
}

Status TargetExecutor::CheckpointLoopArrays() {
  const runtime::EngineConfig& config = engine_->config();
  const int threshold = config.faults.lineage_checkpoint_depth;
  if (!config.faults.enabled() || threshold <= 0) return Status::OK();
  for (auto& [name, ds] : arrays_) {
    // Dirty entries are stale sparse views of tiled arrays; they are
    // rebuilt from the tiled store on next use, so nothing to protect.
    if (dirty_.count(name) != 0) continue;
    if (ds.lineage_depth() < threshold) continue;
    DIABLO_ASSIGN_OR_RETURN(
        ds, engine_->Checkpoint(ds, StrCat("checkpoint[", name, "]")));
  }
  return Status::OK();
}

StatusOr<Value> TargetExecutor::GetScalar(const std::string& name) const {
  auto it = scalars_.find(name);
  if (it == scalars_.end()) {
    return Status::InvalidArgument(StrCat("no scalar variable '", name, "'"));
  }
  return it->second;
}

StatusOr<Value> TargetExecutor::GetArray(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    return Status::InvalidArgument(StrCat("no array variable '", name, "'"));
  }
  DIABLO_RETURN_IF_ERROR(RefreshArray(name));
  DIABLO_ASSIGN_OR_RETURN(ValueVec rows, engine_->Collect(it->second));
  std::sort(rows.begin(), rows.end());
  return Value::MakeBag(std::move(rows));
}

StatusOr<Dataset> TargetExecutor::GetArrayDataset(
    const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    return Status::InvalidArgument(StrCat("no array variable '", name, "'"));
  }
  DIABLO_RETURN_IF_ERROR(RefreshArray(name));
  return it->second;
}

}  // namespace diablo::exec
