#include "translate/translate.h"

#include "analysis/restrictions.h"
#include "common/strings.h"

namespace diablo::translate {

using ast::Expr;
using ast::LValue;
using ast::Stmt;
using comp::CExprPtr;
using comp::CompPtr;
using comp::Pattern;
using comp::Qualifier;
using comp::TargetStmtPtr;
using runtime::BinOp;
using runtime::UnOp;

// ----------------------------- variable table ------------------------------

namespace {

void InferVarsExpr(const ast::ExprPtr& e, std::map<std::string, VarInfo>* vars);

void InferVarsLValue(const ast::LValuePtr& d,
                     std::map<std::string, VarInfo>* vars) {
  if (d->is_var()) return;
  if (d->is_proj()) {
    InferVarsLValue(d->proj().base, vars);
    return;
  }
  (*vars)[d->index().array].is_array = true;
  for (const auto& e : d->index().indices) InferVarsExpr(e, vars);
}

void InferVarsExpr(const ast::ExprPtr& e,
                   std::map<std::string, VarInfo>* vars) {
  if (e == nullptr) return;
  if (e->is<Expr::LVal>()) {
    InferVarsLValue(e->as<Expr::LVal>().lvalue, vars);
    return;
  }
  if (e->is<Expr::Bin>()) {
    InferVarsExpr(e->as<Expr::Bin>().lhs, vars);
    InferVarsExpr(e->as<Expr::Bin>().rhs, vars);
    return;
  }
  if (e->is<Expr::Un>()) {
    InferVarsExpr(e->as<Expr::Un>().operand, vars);
    return;
  }
  if (e->is<Expr::TupleCons>()) {
    for (const auto& c : e->as<Expr::TupleCons>().elems) InferVarsExpr(c, vars);
    return;
  }
  if (e->is<Expr::RecordCons>()) {
    for (const auto& [unused, c] : e->as<Expr::RecordCons>().fields) {
      InferVarsExpr(c, vars);
    }
    return;
  }
  if (e->is<Expr::Call>()) {
    for (const auto& c : e->as<Expr::Call>().args) InferVarsExpr(c, vars);
    return;
  }
}

void InferVarsStmt(const ast::StmtPtr& s,
                   std::map<std::string, VarInfo>* vars) {
  if (s->is<Stmt::Incr>()) {
    InferVarsLValue(s->as<Stmt::Incr>().dest, vars);
    InferVarsExpr(s->as<Stmt::Incr>().value, vars);
    return;
  }
  if (s->is<Stmt::Assign>()) {
    InferVarsLValue(s->as<Stmt::Assign>().dest, vars);
    InferVarsExpr(s->as<Stmt::Assign>().value, vars);
    return;
  }
  if (s->is<Stmt::Decl>()) {
    const auto& node = s->as<Stmt::Decl>();
    VarInfo& info = (*vars)[node.name];
    info.declared = true;
    info.is_array = node.type != nullptr && node.type->IsCollection();
    InferVarsExpr(node.init, vars);
    return;
  }
  if (s->is<Stmt::ForRange>()) {
    const auto& node = s->as<Stmt::ForRange>();
    InferVarsExpr(node.lo, vars);
    InferVarsExpr(node.hi, vars);
    InferVarsStmt(node.body, vars);
    return;
  }
  if (s->is<Stmt::ForEach>()) {
    const auto& node = s->as<Stmt::ForEach>();
    // A for-in domain that is a plain variable is an array input.
    if (node.collection->is<Expr::LVal>() &&
        node.collection->as<Expr::LVal>().lvalue->is_var()) {
      (*vars)[node.collection->as<Expr::LVal>().lvalue->var().name].is_array =
          true;
    }
    InferVarsExpr(node.collection, vars);
    InferVarsStmt(node.body, vars);
    return;
  }
  if (s->is<Stmt::While>()) {
    InferVarsExpr(s->as<Stmt::While>().cond, vars);
    InferVarsStmt(s->as<Stmt::While>().body, vars);
    return;
  }
  if (s->is<Stmt::If>()) {
    const auto& node = s->as<Stmt::If>();
    InferVarsExpr(node.cond, vars);
    InferVarsStmt(node.then_branch, vars);
    if (node.else_branch != nullptr) InferVarsStmt(node.else_branch, vars);
    return;
  }
  for (const auto& child : s->as<Stmt::Block>().stmts) {
    InferVarsStmt(child, vars);
  }
}

}  // namespace

std::map<std::string, VarInfo> InferVars(const ast::Program& program) {
  std::map<std::string, VarInfo> vars;
  for (const auto& s : program.stmts) InferVarsStmt(s, &vars);
  return vars;
}

// ----------------------------- Figure 2: E ---------------------------------

StatusOr<CExprPtr> Rules::E(const Expr& e) {
  // (11g) constants.
  if (e.is<Expr::IntConst>()) {
    return comp::MakeBag({comp::MakeInt(e.as<Expr::IntConst>().value)});
  }
  if (e.is<Expr::DoubleConst>()) {
    return comp::MakeBag({comp::MakeDouble(e.as<Expr::DoubleConst>().value)});
  }
  if (e.is<Expr::BoolConst>()) {
    return comp::MakeBag({comp::MakeBool(e.as<Expr::BoolConst>().value)});
  }
  if (e.is<Expr::StringConst>()) {
    return comp::MakeBag({comp::MakeString(e.as<Expr::StringConst>().value)});
  }
  // (11a)-(11c) destinations.
  if (e.is<Expr::LVal>()) return LValueRead(*e.as<Expr::LVal>().lvalue);
  // (11d) binary operations.
  if (e.is<Expr::Bin>()) {
    const auto& b = e.as<Expr::Bin>();
    DIABLO_ASSIGN_OR_RETURN(CExprPtr l, E(*b.lhs));
    DIABLO_ASSIGN_OR_RETURN(CExprPtr r, E(*b.rhs));
    std::string v1 = names_.Fresh(), v2 = names_.Fresh();
    return comp::MakeNested(comp::MakeComp(
        comp::MakeBin(b.op, comp::MakeVar(v1), comp::MakeVar(v2)),
        {Qualifier::Generator(Pattern::Var(v1), l),
         Qualifier::Generator(Pattern::Var(v2), r)}));
  }
  if (e.is<Expr::Un>()) {
    const auto& u = e.as<Expr::Un>();
    DIABLO_ASSIGN_OR_RETURN(CExprPtr operand, E(*u.operand));
    std::string v = names_.Fresh();
    return comp::MakeNested(comp::MakeComp(
        comp::MakeUn(u.op, comp::MakeVar(v)),
        {Qualifier::Generator(Pattern::Var(v), operand)}));
  }
  // (11e) tuples.
  if (e.is<Expr::TupleCons>()) {
    std::vector<Qualifier> quals;
    std::vector<CExprPtr> parts;
    for (const auto& child : e.as<Expr::TupleCons>().elems) {
      DIABLO_ASSIGN_OR_RETURN(CExprPtr domain, E(*child));
      std::string v = names_.Fresh();
      quals.push_back(Qualifier::Generator(Pattern::Var(v), domain));
      parts.push_back(comp::MakeVar(v));
    }
    return comp::MakeNested(
        comp::MakeComp(comp::MakeTuple(std::move(parts)), std::move(quals)));
  }
  // (11f) records.
  if (e.is<Expr::RecordCons>()) {
    std::vector<Qualifier> quals;
    std::vector<std::pair<std::string, CExprPtr>> parts;
    for (const auto& [name, child] : e.as<Expr::RecordCons>().fields) {
      DIABLO_ASSIGN_OR_RETURN(CExprPtr domain, E(*child));
      std::string v = names_.Fresh();
      quals.push_back(Qualifier::Generator(Pattern::Var(v), domain));
      parts.emplace_back(name, comp::MakeVar(v));
    }
    return comp::MakeNested(
        comp::MakeComp(comp::MakeRecord(std::move(parts)), std::move(quals)));
  }
  // Builtin calls lift pointwise like (11d).
  const auto& call = e.as<Expr::Call>();
  if (!ast::IsBuiltinFunction(call.function)) {
    return Status::TranslationError(
        StrCat("unknown function '", call.function, "' in expression"));
  }
  std::vector<Qualifier> quals;
  std::vector<CExprPtr> args;
  for (const auto& child : call.args) {
    DIABLO_ASSIGN_OR_RETURN(CExprPtr domain, E(*child));
    std::string v = names_.Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(v), domain));
    args.push_back(comp::MakeVar(v));
  }
  return comp::MakeNested(comp::MakeComp(
      comp::MakeCall(call.function, std::move(args)), std::move(quals)));
}

StatusOr<CExprPtr> Rules::LValueRead(const LValue& d) {
  // (11a) a variable lifts to the singleton bag {V}.
  if (d.is_var()) {
    return comp::MakeBag({comp::MakeVar(d.var().name)});
  }
  // (11b) projection.
  if (d.is_proj()) {
    DIABLO_ASSIGN_OR_RETURN(CExprPtr base, LValueRead(*d.proj().base));
    std::string v = names_.Fresh();
    return comp::MakeNested(comp::MakeComp(
        comp::MakeProj(comp::MakeVar(v), d.proj().field),
        {Qualifier::Generator(Pattern::Var(v), base)}));
  }
  // (11c) array indexing:
  // { v | k1 <- E[e1], ..., ((i1,..,in),v) <- V, i1 = k1, ... }.
  const auto& ix = d.index();
  auto it = vars_.find(ix.array);
  if (it != vars_.end() && !it->second.is_array) {
    return Status::TranslationError(
        StrCat("indexing non-array variable '", ix.array, "'"));
  }
  std::vector<Qualifier> quals;
  std::vector<std::string> keys;
  for (const auto& idx : ix.indices) {
    DIABLO_ASSIGN_OR_RETURN(CExprPtr domain, E(*idx));
    std::string k = names_.Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(k), domain));
    keys.push_back(k);
  }
  std::vector<Pattern> index_pats;
  std::vector<std::string> index_vars;
  for (size_t i = 0; i < ix.indices.size(); ++i) {
    std::string iv = names_.Fresh();
    index_pats.push_back(Pattern::Var(iv));
    index_vars.push_back(iv);
  }
  std::string v = names_.Fresh();
  Pattern row = Pattern::Tuple(
      {index_pats.size() == 1 ? index_pats[0]
                              : Pattern::Tuple(index_pats),
       Pattern::Var(v)});
  quals.push_back(Qualifier::Generator(row, comp::MakeVar(ix.array)));
  for (size_t i = 0; i < keys.size(); ++i) {
    quals.push_back(Qualifier::Condition(comp::MakeBin(
        BinOp::kEq, comp::MakeVar(index_vars[i]), comp::MakeVar(keys[i]))));
  }
  return comp::MakeNested(
      comp::MakeComp(comp::MakeVar(v), std::move(quals)));
}

// ----------------------------- Figure 2: K ---------------------------------

StatusOr<CExprPtr> Rules::K(const LValue& d) {
  // (12a) scalar destination: the unit key.
  if (d.is_var()) {
    return comp::MakeBag({comp::MakeTuple({})});
  }
  // (12b) projection: same index as the base.
  if (d.is_proj()) return K(*d.proj().base);
  // (12c) array destination: E[(e1,...,en)].
  const auto& ix = d.index();
  if (ix.indices.size() == 1) {
    return E(*ix.indices[0]);
  }
  std::vector<Qualifier> quals;
  std::vector<CExprPtr> parts;
  for (const auto& idx : ix.indices) {
    DIABLO_ASSIGN_OR_RETURN(CExprPtr domain, E(*idx));
    std::string v = names_.Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(v), domain));
    parts.push_back(comp::MakeVar(v));
  }
  return comp::MakeNested(
      comp::MakeComp(comp::MakeTuple(std::move(parts)), std::move(quals)));
}

// ----------------------------- Figure 2: D ---------------------------------

StatusOr<CExprPtr> Rules::D(const LValue& d, const CExprPtr& k) {
  // (13a).
  if (d.is_var()) {
    return comp::MakeBag({comp::MakeVar(d.var().name)});
  }
  // (13b).
  if (d.is_proj()) {
    DIABLO_ASSIGN_OR_RETURN(CExprPtr base, D(*d.proj().base, k));
    std::string v = names_.Fresh();
    return comp::MakeNested(comp::MakeComp(
        comp::MakeProj(comp::MakeVar(v), d.proj().field),
        {Qualifier::Generator(Pattern::Var(v), base)}));
  }
  // (13c) { v | ((i1,...,in),v) <- V, (i1,...,in) = k }.
  const auto& ix = d.index();
  std::vector<Pattern> index_pats;
  std::vector<CExprPtr> index_vars;
  for (size_t i = 0; i < ix.indices.size(); ++i) {
    std::string iv = names_.Fresh();
    index_pats.push_back(Pattern::Var(iv));
    index_vars.push_back(comp::MakeVar(iv));
  }
  std::string v = names_.Fresh();
  Pattern row = Pattern::Tuple(
      {index_pats.size() == 1 ? index_pats[0] : Pattern::Tuple(index_pats),
       Pattern::Var(v)});
  CExprPtr key = index_vars.size() == 1 ? index_vars[0]
                                        : comp::MakeTuple(index_vars);
  return comp::MakeNested(comp::MakeComp(
      comp::MakeVar(v),
      {Qualifier::Generator(row, comp::MakeVar(ix.array)),
       Qualifier::Condition(comp::MakeBin(BinOp::kEq, key, k))}));
}

// ----------------------------- Figure 2: S ---------------------------------

namespace {

class Translator {
 public:
  explicit Translator(std::map<std::string, VarInfo> vars)
      : vars_(std::move(vars)), rules_(vars_) {}

  StatusOr<std::vector<TargetStmtPtr>> S(const Stmt& s,
                                         const std::vector<Qualifier>& q);

  const std::map<std::string, VarInfo>& vars() const { return vars_; }

 private:
  bool IsArray(const std::string& name) const {
    auto it = vars_.find(name);
    return it != vars_.end() && it->second.is_array;
  }

  StatusOr<std::vector<TargetStmtPtr>> TranslateIncr(
      const Stmt::Incr& node, const std::vector<Qualifier>& q,
      SourceLocation loc);
  StatusOr<std::vector<TargetStmtPtr>> TranslateAssign(
      const Stmt::Assign& node, const std::vector<Qualifier>& q,
      SourceLocation loc);
  StatusOr<std::vector<TargetStmtPtr>> TranslateSequentialFor(
      const Stmt::ForRange& node, SourceLocation loc);

  std::map<std::string, VarInfo> vars_;
  Rules rules_;
};

StatusOr<std::vector<TargetStmtPtr>> Translator::TranslateIncr(
    const Stmt::Incr& node, const std::vector<Qualifier>& q,
    SourceLocation loc) {
  if (!runtime::IsCommutativeMonoid(node.op)) {
    return Status::TranslationError(
        StrCat("incremental update operator '", runtime::BinOpName(node.op),
               "' is not a commutative monoid"));
  }
  const LValue& dest = *node.dest;
  if (dest.is_proj()) {
    return Status::Unsupported(
        StrCat("incremental update to record field ", dest.ToString(),
               " is not supported by the translator"));
  }
  DIABLO_ASSIGN_OR_RETURN(CExprPtr value, rules_.E(*node.value));
  if (dest.is_index()) {
    const std::string& array = dest.index().array;
    if (!IsArray(array)) {
      return Status::TranslationError(
          StrCat("indexing non-array variable '", array, "'"));
    }
    // Rule (15a), coGroup form:
    //   V := V ⊳⊕ { (k, ⊕/v) | q, v <- E[e], k <- K[d], group by k }.
    std::vector<Qualifier> quals = q;
    std::string v = rules_.names().Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(v), value));
    DIABLO_ASSIGN_OR_RETURN(CExprPtr key, rules_.K(dest));
    std::string k = rules_.names().Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(k), key));
    // Explicit key expression: "group by k : k" (the display form
    // "group by k" of the paper). Pattern rebinds k to the key.
    quals.push_back(Qualifier::GroupBy(Pattern::Var(k), comp::MakeVar(k)));
    CompPtr delta = comp::MakeComp(
        comp::MakeTuple(
            {comp::MakeVar(k), comp::MakeReduce(node.op, comp::MakeVar(v))}),
        std::move(quals));
    return std::vector<TargetStmtPtr>{comp::MakeAssign(
        array,
        comp::MakeMergeOp(node.op, comp::MakeVar(array),
                          comp::MakeNested(delta)),
        /*is_array=*/true, loc)};
  }
  // Scalar destination (group key is the unit tuple; Rule (16) later
  // removes the group-by):
  //   n := { n ⊕ (⊕/v) | q, v <- E[e], group by k : () }.
  const std::string& var = dest.var().name;
  if (IsArray(var)) {
    return Status::TranslationError(
        StrCat("incremental update to whole array '", var, "'"));
  }
  std::vector<Qualifier> quals = q;
  std::string v = rules_.names().Fresh();
  quals.push_back(Qualifier::Generator(Pattern::Var(v), value));
  std::string k = rules_.names().Fresh();
  quals.push_back(Qualifier::GroupBy(Pattern::Var(k), comp::MakeTuple({})));
  CompPtr update = comp::MakeComp(
      comp::MakeBin(node.op, comp::MakeVar(var),
                    comp::MakeReduce(node.op, comp::MakeVar(v))),
      std::move(quals));
  return std::vector<TargetStmtPtr>{comp::MakeAssign(
      var, comp::MakeNested(update), /*is_array=*/false, loc)};
}

StatusOr<std::vector<TargetStmtPtr>> Translator::TranslateAssign(
    const Stmt::Assign& node, const std::vector<Qualifier>& q,
    SourceLocation loc) {
  const LValue& dest = *node.dest;
  if (dest.is_proj()) {
    return Status::Unsupported(
        StrCat("assignment to record field ", dest.ToString(),
               " is not supported by the translator (",
               LocationString(loc), ")"));
  }
  if (dest.is_index()) {
    const std::string& array = dest.index().array;
    if (!IsArray(array)) {
      return Status::TranslationError(
          StrCat("indexing non-array variable '", array, "'"));
    }
    // Rule (15b): V := V ⊳ { (k, v) | q, v <- E[e], k <- K[d] }.
    DIABLO_ASSIGN_OR_RETURN(CExprPtr value, rules_.E(*node.value));
    std::vector<Qualifier> quals = q;
    std::string v = rules_.names().Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(v), value));
    DIABLO_ASSIGN_OR_RETURN(CExprPtr key, rules_.K(dest));
    std::string k = rules_.names().Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(k), key));
    CompPtr update = comp::MakeComp(
        comp::MakeTuple({comp::MakeVar(k), comp::MakeVar(v)}),
        std::move(quals));
    return std::vector<TargetStmtPtr>{comp::MakeAssign(
        array,
        comp::MakeMerge(comp::MakeVar(array), comp::MakeNested(update)),
        /*is_array=*/true, loc)};
  }
  const std::string& var = dest.var().name;
  if (IsArray(var)) {
    // Whole-array assignment: only copying another array or resetting to
    // an empty collection is meaningful in bulk.
    if (node.value->is<Expr::LVal>() &&
        node.value->as<Expr::LVal>().lvalue->is_var()) {
      const std::string& src =
          node.value->as<Expr::LVal>().lvalue->var().name;
      if (!IsArray(src)) {
        return Status::TranslationError(
            StrCat("assigning scalar '", src, "' to array '", var, "'"));
      }
      return std::vector<TargetStmtPtr>{comp::MakeAssign(
          var, comp::MakeVar(src), /*is_array=*/true, loc)};
    }
    if (node.value->is<Expr::Call>() &&
        node.value->as<Expr::Call>().args.empty()) {
      return std::vector<TargetStmtPtr>{comp::MakeAssign(
          var, comp::MakeBag({}), /*is_array=*/true, loc)};
    }
    return Status::Unsupported(
        StrCat("whole-array assignment to '", var,
               "' from a computed expression (", LocationString(loc), ")"));
  }
  // Scalar assignment: var := { v | q, v <- E[e] }.
  DIABLO_ASSIGN_OR_RETURN(CExprPtr value, rules_.E(*node.value));
  std::vector<Qualifier> quals = q;
  std::string v = rules_.names().Fresh();
  quals.push_back(Qualifier::Generator(Pattern::Var(v), value));
  CompPtr update = comp::MakeComp(comp::MakeVar(v), std::move(quals));
  return std::vector<TargetStmtPtr>{comp::MakeAssign(
      var, comp::MakeNested(update), /*is_array=*/false, loc)};
}

StatusOr<std::vector<TargetStmtPtr>> Translator::TranslateSequentialFor(
    const Stmt::ForRange& node, SourceLocation loc) {
  // A for-range loop containing a while-loop runs sequentially:
  //   v := lo; while (v <= hi) { body; v := v + 1 }.
  DIABLO_ASSIGN_OR_RETURN(CExprPtr lo, rules_.E(*node.lo));
  DIABLO_ASSIGN_OR_RETURN(CExprPtr hi, rules_.E(*node.hi));
  std::vector<TargetStmtPtr> out;
  out.push_back(comp::MakeDeclare(node.var, /*is_array=*/false, lo, loc));
  std::string h = rules_.names().Fresh();
  CExprPtr cond = comp::MakeNested(comp::MakeComp(
      comp::MakeBin(BinOp::kLe, comp::MakeVar(node.var), comp::MakeVar(h)),
      {Qualifier::Generator(Pattern::Var(h), hi)}));
  DIABLO_ASSIGN_OR_RETURN(std::vector<TargetStmtPtr> body, S(*node.body, {}));
  body.push_back(comp::MakeAssign(
      node.var,
      comp::MakeBag({comp::MakeBin(BinOp::kAdd, comp::MakeVar(node.var),
                                   comp::MakeInt(1))}),
      /*is_array=*/false, loc));
  out.push_back(comp::MakeWhile(cond, std::move(body), loc));
  return out;
}

StatusOr<std::vector<TargetStmtPtr>> Translator::S(
    const Stmt& s, const std::vector<Qualifier>& q) {
  // (15a) incremental update.
  if (s.is<Stmt::Incr>()) return TranslateIncr(s.as<Stmt::Incr>(), q, s.loc);
  // (15b) assignment.
  if (s.is<Stmt::Assign>()) {
    return TranslateAssign(s.as<Stmt::Assign>(), q, s.loc);
  }
  // (15c) declaration.
  if (s.is<Stmt::Decl>()) {
    const auto& node = s.as<Stmt::Decl>();
    if (!q.empty()) {
      return Status::TranslationError(
          StrCat("declaration of '", node.name, "' inside a for-loop"));
    }
    auto it = vars_.find(node.name);
    bool is_array = it != vars_.end() && it->second.is_array;
    CExprPtr init;
    if (!is_array && node.init != nullptr) {
      DIABLO_ASSIGN_OR_RETURN(init, rules_.E(*node.init));
    }
    return std::vector<TargetStmtPtr>{
        comp::MakeDeclare(node.name, is_array, init, s.loc)};
  }
  // (15d) for-range.
  if (s.is<Stmt::ForRange>()) {
    const auto& node = s.as<Stmt::ForRange>();
    if (analysis::ContainsWhile(*node.body)) {
      if (!q.empty()) {
        return Status::TranslationError(
            "sequential for-loop nested inside a parallel for-loop");
      }
      return TranslateSequentialFor(node, s.loc);
    }
    DIABLO_ASSIGN_OR_RETURN(CExprPtr lo, rules_.E(*node.lo));
    DIABLO_ASSIGN_OR_RETURN(CExprPtr hi, rules_.E(*node.hi));
    std::vector<Qualifier> quals = q;
    std::string v1 = rules_.names().Fresh();
    std::string v2 = rules_.names().Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(v1), lo));
    quals.push_back(Qualifier::Generator(Pattern::Var(v2), hi));
    quals.push_back(Qualifier::Generator(
        Pattern::Var(node.var),
        comp::MakeRange(comp::MakeVar(v1), comp::MakeVar(v2))));
    return S(*node.body, quals);
  }
  // (15e) for-in.
  if (s.is<Stmt::ForEach>()) {
    const auto& node = s.as<Stmt::ForEach>();
    if (analysis::ContainsWhile(*node.body)) {
      return Status::Unsupported(
          "for-in loop containing a while-loop cannot be translated");
    }
    DIABLO_ASSIGN_OR_RETURN(CExprPtr domain, rules_.E(*node.collection));
    std::vector<Qualifier> quals = q;
    std::string a = rules_.names().Fresh();
    std::string i = rules_.names().Fresh();
    quals.push_back(Qualifier::Generator(Pattern::Var(a), domain));
    quals.push_back(Qualifier::Generator(
        Pattern::Tuple({Pattern::Var(i), Pattern::Var(node.var)}),
        comp::MakeVar(a)));
    return S(*node.body, quals);
  }
  // (15f) while.
  if (s.is<Stmt::While>()) {
    const auto& node = s.as<Stmt::While>();
    if (!q.empty()) {
      return Status::TranslationError(
          "while-loop nested inside a parallel for-loop");
    }
    DIABLO_ASSIGN_OR_RETURN(CExprPtr cond, rules_.E(*node.cond));
    DIABLO_ASSIGN_OR_RETURN(std::vector<TargetStmtPtr> body,
                            S(*node.body, {}));
    return std::vector<TargetStmtPtr>{
        comp::MakeWhile(cond, std::move(body), s.loc)};
  }
  // (15g) conditional.
  if (s.is<Stmt::If>()) {
    const auto& node = s.as<Stmt::If>();
    DIABLO_ASSIGN_OR_RETURN(CExprPtr cond, rules_.E(*node.cond));
    std::vector<Qualifier> then_q = q;
    std::string p = rules_.names().Fresh();
    then_q.push_back(Qualifier::Generator(Pattern::Var(p), cond));
    then_q.push_back(Qualifier::Condition(comp::MakeVar(p)));
    DIABLO_ASSIGN_OR_RETURN(std::vector<TargetStmtPtr> out,
                            S(*node.then_branch, then_q));
    if (node.else_branch != nullptr) {
      std::vector<Qualifier> else_q = q;
      std::string p2 = rules_.names().Fresh();
      else_q.push_back(Qualifier::Generator(Pattern::Var(p2), cond));
      else_q.push_back(
          Qualifier::Condition(comp::MakeUn(UnOp::kNot, comp::MakeVar(p2))));
      DIABLO_ASSIGN_OR_RETURN(std::vector<TargetStmtPtr> els,
                              S(*node.else_branch, else_q));
      for (auto& stmt : els) out.push_back(std::move(stmt));
    }
    return out;
  }
  // (15h) block.
  std::vector<TargetStmtPtr> out;
  for (const auto& child : s.as<Stmt::Block>().stmts) {
    DIABLO_ASSIGN_OR_RETURN(std::vector<TargetStmtPtr> stmts, S(*child, q));
    for (auto& stmt : stmts) out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace

StatusOr<TranslationResult> Translate(const ast::Program& program) {
  TranslationResult result;
  result.vars = InferVars(program);
  Translator translator(result.vars);
  for (const auto& s : program.stmts) {
    DIABLO_ASSIGN_OR_RETURN(std::vector<TargetStmtPtr> stmts,
                            translator.S(*s, {}));
    for (auto& stmt : stmts) result.program.stmts.push_back(std::move(stmt));
  }
  return result;
}

}  // namespace diablo::translate
