#ifndef DIABLO_TRANSLATE_TRANSLATE_H_
#define DIABLO_TRANSLATE_TRANSLATE_H_

#include <map>
#include <string>

#include "ast/ast.h"
#include "common/status.h"
#include "comp/comp.h"

namespace diablo::translate {

/// What the translator learned about each program variable.
struct VarInfo {
  /// Arrays become distributed datasets; everything else is a driver
  /// scalar.
  bool is_array = false;
  /// Declared in the program (vs. a free input bound by the host).
  bool declared = false;
};

/// The result of translating a loop-based program: target code (§3.8)
/// plus the variable table the executor needs.
struct TranslationResult {
  comp::TargetProgram program;
  std::map<std::string, VarInfo> vars;
};

/// Translates a loop-based program to target code by the compositional
/// rules of Figure 2 (functions E, K, D, U, S).
///
/// The input program must already satisfy the restrictions of
/// Definition 3.1 (see analysis::CheckRestrictions); Translate itself only
/// performs the structural checks it needs.
///
/// Deviations from the literal Figure-2 rules, documented in DESIGN.md:
///  * Rule (15a)'s old-value join `w <- D[d](k)` is emitted as the
///    combining array merge `V ⊳⊕ delta` (implemented as one coGroup,
///    exactly how the paper implements ⊳ on Spark). Missing elements
///    default to the identity of ⊕.
///  * A for-range loop whose body contains a while-loop is lowered to
///    sequential target code (the paper treats such loops as
///    while-loops).
///  * Incremental/plain updates whose destination is a record field of an
///    array element are not translated (kUnsupported).
StatusOr<TranslationResult> Translate(const ast::Program& program);

/// Exposed pieces of the Figure-2 semantic functions, used by tests to
/// check the paper's worked derivations (§3.9) rule by rule. All operate
/// on an expression context that maps array names; see Translate for the
/// driver.
class Rules {
 public:
  explicit Rules(std::map<std::string, VarInfo> vars)
      : vars_(std::move(vars)), names_("v") {}

  /// E[e]: lifts an expression to a bag-valued comprehension term
  /// (Equations 11a-11g).
  StatusOr<comp::CExprPtr> E(const ast::Expr& e);

  /// K[d]: the destination-index term of an L-value (Equations 12a-12c).
  StatusOr<comp::CExprPtr> K(const ast::LValue& d);

  /// D[d](k): recovers the current destination value from index k
  /// (Equations 13a-13c).
  StatusOr<comp::CExprPtr> D(const ast::LValue& d, const comp::CExprPtr& k);

  comp::NameGen& names() { return names_; }

 private:
  StatusOr<comp::CExprPtr> LValueRead(const ast::LValue& d);

  std::map<std::string, VarInfo> vars_;
  comp::NameGen names_;
};

/// Scans a program and infers the variable table: declared variables take
/// their declared kind; undeclared names are arrays iff they are indexed
/// or iterated with for-in.
std::map<std::string, VarInfo> InferVars(const ast::Program& program);

}  // namespace diablo::translate

#endif  // DIABLO_TRANSLATE_TRANSLATE_H_
