#include "parser/lexer.h"

#include <cctype>
#include <unordered_map>

namespace diablo::parser {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kVar: return "'var'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kDo: return "'do'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kPlusEq: return "'+='";
    case TokenKind::kMinusEq: return "'-='";
    case TokenKind::kStarEq: return "'*='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kKeywords = new std::unordered_map<std::string, TokenKind>{
      {"var", TokenKind::kVar},   {"for", TokenKind::kFor},
      {"in", TokenKind::kIn},     {"do", TokenKind::kDo},
      {"while", TokenKind::kWhile}, {"if", TokenKind::kIf},
      {"else", TokenKind::kElse}, {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
  };
  return *kKeywords;
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  SourceLocation loc;
  size_t i = 0;
  const size_t n = source.size();

  auto peek = [&](size_t k = 0) -> char {
    return i + k < n ? source[i + k] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++loc.line;
      loc.column = 1;
    } else {
      ++loc.column;
    }
    ++i;
  };
  auto push = [&](TokenKind kind, std::string text, SourceLocation at) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.loc = at;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    SourceLocation at = loc;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_' || peek() == '\'')) {
        word.push_back(peek());
        advance();
      }
      auto it = Keywords().find(word);
      push(it != Keywords().end() ? it->second : TokenKind::kIdent, word, at);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
        num.push_back(peek());
        advance();
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_double = true;
        num.push_back('.');
        advance();
        while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
          num.push_back(peek());
          advance();
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        size_t save = i;
        std::string exp;
        exp.push_back(peek());
        advance();
        if (peek() == '+' || peek() == '-') {
          exp.push_back(peek());
          advance();
        }
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
            exp.push_back(peek());
            advance();
          }
          num += exp;
        } else {
          // Not an exponent after all ("10elems" style); rewind.
          while (i > save) {
            --i;
            --loc.column;
          }
        }
      }
      Token t;
      t.loc = at;
      t.text = num;
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(num);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::stoll(num);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      while (i < n && peek() != '"') {
        if (peek() == '\\' && i + 1 < n) {
          advance();
          char esc = peek();
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default: text.push_back(esc); break;
          }
          advance();
          continue;
        }
        text.push_back(peek());
        advance();
      }
      if (i >= n) {
        return Status::ParseError(
            StrCat("unterminated string literal at ", LocationString(at)));
      }
      advance();  // closing quote
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.loc = at;
      tokens.push_back(std::move(t));
      continue;
    }
    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two(':', '=')) { advance(); advance(); push(TokenKind::kAssign, ":=", at); continue; }
    if (two('+', '=')) { advance(); advance(); push(TokenKind::kPlusEq, "+=", at); continue; }
    if (two('-', '=')) { advance(); advance(); push(TokenKind::kMinusEq, "-=", at); continue; }
    if (two('*', '=')) { advance(); advance(); push(TokenKind::kStarEq, "*=", at); continue; }
    if (two('=', '=')) { advance(); advance(); push(TokenKind::kEqEq, "==", at); continue; }
    if (two('!', '=')) { advance(); advance(); push(TokenKind::kNe, "!=", at); continue; }
    if (two('<', '=')) { advance(); advance(); push(TokenKind::kLe, "<=", at); continue; }
    if (two('>', '=')) { advance(); advance(); push(TokenKind::kGe, ">=", at); continue; }
    if (two('&', '&')) { advance(); advance(); push(TokenKind::kAndAnd, "&&", at); continue; }
    if (two('|', '|')) { advance(); advance(); push(TokenKind::kOrOr, "||", at); continue; }
    switch (c) {
      case '(': advance(); push(TokenKind::kLParen, "(", at); continue;
      case ')': advance(); push(TokenKind::kRParen, ")", at); continue;
      case '[': advance(); push(TokenKind::kLBracket, "[", at); continue;
      case ']': advance(); push(TokenKind::kRBracket, "]", at); continue;
      case '{': advance(); push(TokenKind::kLBrace, "{", at); continue;
      case '}': advance(); push(TokenKind::kRBrace, "}", at); continue;
      case ',': advance(); push(TokenKind::kComma, ",", at); continue;
      case ';': advance(); push(TokenKind::kSemi, ";", at); continue;
      case ':': advance(); push(TokenKind::kColon, ":", at); continue;
      case '.': advance(); push(TokenKind::kDot, ".", at); continue;
      case '=': advance(); push(TokenKind::kEq, "=", at); continue;
      case '<': advance(); push(TokenKind::kLt, "<", at); continue;
      case '>': advance(); push(TokenKind::kGt, ">", at); continue;
      case '+': advance(); push(TokenKind::kPlus, "+", at); continue;
      case '-': advance(); push(TokenKind::kMinus, "-", at); continue;
      case '*': advance(); push(TokenKind::kStar, "*", at); continue;
      case '/': advance(); push(TokenKind::kSlash, "/", at); continue;
      case '%': advance(); push(TokenKind::kPercent, "%", at); continue;
      case '!': advance(); push(TokenKind::kBang, "!", at); continue;
      default:
        return Status::ParseError(
            StrCat("unexpected character '", std::string(1, c), "' at ",
                   LocationString(at)));
    }
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.loc = loc;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace diablo::parser
