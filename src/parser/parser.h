#ifndef DIABLO_PARSER_PARSER_H_
#define DIABLO_PARSER_PARSER_H_

#include <string>

#include "ast/ast.h"
#include "common/status.h"

namespace diablo::parser {

/// Parses loop-language source (Figure 1 syntax) into a Program.
///
/// Statement syntax, following the paper's listings:
///
///   var C: map[string,int] = map();
///   for i = 0, n-1 do { ... }
///   for v in V do ...
///   while (e) ...
///   if (e) s1 else s2
///   d := e;          d += e;          d *= e;
///   d min= e;        d max= e;        d argmin= e;
///   d -= e;          # sugar for d += -(e)
///
/// Expressions: arithmetic/comparison/boolean operators with the usual
/// precedence, array indexing `A[i,j]`, record/tuple projection `p.red` /
/// `p._1`, tuple `(a,b)` and record `<A=1,B=2>` construction, builtin
/// calls `sqrt(x)`, `min(a,b)`, `max(a,b)`, `argmin(a,b)`.
///
/// Empty-collection initializers: vector(), matrix(), map(), bag().
StatusOr<ast::Program> ParseProgram(const std::string& source);

/// Parses a single expression (used in tests).
StatusOr<ast::ExprPtr> ParseExpr(const std::string& source);

}  // namespace diablo::parser

#endif  // DIABLO_PARSER_PARSER_H_
