#ifndef DIABLO_PARSER_LEXER_H_
#define DIABLO_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"

namespace diablo::parser {

enum class TokenKind {
  kIdent,
  kInt,
  kDouble,
  kString,
  // Keywords.
  kVar, kFor, kIn, kDo, kWhile, kIf, kElse, kTrue, kFalse,
  // Punctuation and operators.
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kSemi, kColon, kDot,
  kAssign,      // :=
  kPlusEq,      // +=
  kMinusEq,     // -=
  kStarEq,      // *=
  kEq,          // =   (for-loop bounds, record fields, declarations)
  kEqEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAndAnd, kOrOr, kBang,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  SourceLocation loc;
};

/// The name of a token kind, for error messages.
const char* TokenKindName(TokenKind kind);

/// Tokenizes loop-language source. Comments run from '#' or '//' to end of
/// line. Returns a token list ending with kEof, or a ParseError with the
/// offending location.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace diablo::parser

#endif  // DIABLO_PARSER_LEXER_H_
