#include "parser/parser.h"

#include <vector>

#include "parser/lexer.h"

namespace diablo::parser {

using ast::Expr;
using ast::ExprPtr;
using ast::LValue;
using ast::LValuePtr;
using ast::Stmt;
using ast::StmtPtr;
using ast::Type;
using ast::TypePtr;
using runtime::BinOp;
using runtime::UnOp;

namespace {

/// Recursive-descent parser over a pre-tokenized stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ast::Program> ParseProgram() {
    ast::Program program;
    while (!Check(TokenKind::kEof)) {
      DIABLO_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
      program.stmts.push_back(std::move(s));
    }
    return program;
  }

  StatusOr<ExprPtr> ParseSingleExpr() {
    DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!Check(TokenKind::kEof)) {
      return Error(StrCat("trailing input after expression, found ",
                          TokenKindName(Peek().kind)));
    }
    return e;
  }

 private:
  // ------------------------------ helpers ---------------------------------

  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrCat(msg, " at ", LocationString(Peek().loc)));
  }
  StatusOr<Token> Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Error(StrCat("expected ", TokenKindName(kind), ", found ",
                          TokenKindName(Peek().kind),
                          Peek().text.empty() ? "" : StrCat(" '", Peek().text, "'")));
    }
    return Advance();
  }

  // ------------------------------ types -----------------------------------

  StatusOr<TypePtr> ParseType() {
    if (Match(TokenKind::kLParen)) {
      std::vector<TypePtr> elems;
      do {
        DIABLO_ASSIGN_OR_RETURN(TypePtr t, ParseType());
        elems.push_back(std::move(t));
      } while (Match(TokenKind::kComma));
      DIABLO_ASSIGN_OR_RETURN(Token unused, Expect(TokenKind::kRParen));
      (void)unused;
      return Type::Tuple(std::move(elems));
    }
    if (Match(TokenKind::kLt)) {
      std::vector<std::pair<std::string, TypePtr>> fields;
      do {
        DIABLO_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
        DIABLO_ASSIGN_OR_RETURN(Token colon, Expect(TokenKind::kColon));
        (void)colon;
        DIABLO_ASSIGN_OR_RETURN(TypePtr t, ParseType());
        fields.emplace_back(name.text, std::move(t));
      } while (Match(TokenKind::kComma));
      DIABLO_ASSIGN_OR_RETURN(Token gt, Expect(TokenKind::kGt));
      (void)gt;
      return Type::Record(std::move(fields));
    }
    DIABLO_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
    if (Match(TokenKind::kLBracket)) {
      std::vector<TypePtr> params;
      do {
        DIABLO_ASSIGN_OR_RETURN(TypePtr t, ParseType());
        params.push_back(std::move(t));
      } while (Match(TokenKind::kComma));
      DIABLO_ASSIGN_OR_RETURN(Token rb, Expect(TokenKind::kRBracket));
      (void)rb;
      return Type::Parametric(name.text, std::move(params));
    }
    return Type::Basic(name.text);
  }

  // ---------------------------- expressions -------------------------------

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    DIABLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Check(TokenKind::kOrOr)) {
      SourceLocation loc = Advance().loc;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::MakeBin(BinOp::kOr, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    DIABLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCompare());
    while (Check(TokenKind::kAndAnd)) {
      SourceLocation loc = Advance().loc;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCompare());
      lhs = Expr::MakeBin(BinOp::kAnd, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseCompare() {
    DIABLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinOp op;
    switch (Peek().kind) {
      case TokenKind::kEqEq: op = BinOp::kEq; break;
      case TokenKind::kNe: op = BinOp::kNe; break;
      case TokenKind::kLt: op = BinOp::kLt; break;
      case TokenKind::kLe: op = BinOp::kLe; break;
      case TokenKind::kGt: op = BinOp::kGt; break;
      case TokenKind::kGe: op = BinOp::kGe; break;
      default:
        return lhs;
    }
    SourceLocation loc = Advance().loc;
    DIABLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::MakeBin(op, std::move(lhs), std::move(rhs), loc);
  }

  StatusOr<ExprPtr> ParseAdditive() {
    DIABLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      BinOp op;
      if (Check(TokenKind::kPlus)) {
        op = BinOp::kAdd;
      } else if (Check(TokenKind::kMinus)) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      SourceLocation loc = Advance().loc;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBin(op, std::move(lhs), std::move(rhs), loc);
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    DIABLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (Check(TokenKind::kStar)) {
        op = BinOp::kMul;
      } else if (Check(TokenKind::kSlash)) {
        op = BinOp::kDiv;
      } else if (Check(TokenKind::kPercent)) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      SourceLocation loc = Advance().loc;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBin(op, std::move(lhs), std::move(rhs), loc);
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      SourceLocation loc = Advance().loc;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::MakeUn(UnOp::kNeg, std::move(e), loc);
    }
    if (Check(TokenKind::kBang)) {
      SourceLocation loc = Advance().loc;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::MakeUn(UnOp::kNot, std::move(e), loc);
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Advance();
        return Expr::MakeInt(tok.int_value, tok.loc);
      }
      case TokenKind::kDouble: {
        Advance();
        return Expr::MakeDouble(tok.double_value, tok.loc);
      }
      case TokenKind::kString: {
        Advance();
        return Expr::MakeString(tok.text, tok.loc);
      }
      case TokenKind::kTrue: {
        Advance();
        return Expr::MakeBool(true, tok.loc);
      }
      case TokenKind::kFalse: {
        Advance();
        return Expr::MakeBool(false, tok.loc);
      }
      case TokenKind::kLParen: {
        Advance();
        std::vector<ExprPtr> elems;
        if (!Check(TokenKind::kRParen)) {
          do {
            DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            elems.push_back(std::move(e));
          } while (Match(TokenKind::kComma));
        }
        DIABLO_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen));
        (void)rp;
        if (elems.size() == 1) return elems[0];  // parenthesized expression
        return Expr::MakeTuple(std::move(elems), tok.loc);
      }
      case TokenKind::kLt: {
        // Record constructor <A = e, B = e>. Field values parse at
        // additive precedence so the closing '>' is not taken as a
        // comparison; parenthesize comparisons inside records.
        Advance();
        std::vector<std::pair<std::string, ExprPtr>> fields;
        do {
          DIABLO_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
          DIABLO_ASSIGN_OR_RETURN(Token eq, Expect(TokenKind::kEq));
          (void)eq;
          DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
          fields.emplace_back(name.text, std::move(e));
        } while (Match(TokenKind::kComma));
        DIABLO_ASSIGN_OR_RETURN(Token gt, Expect(TokenKind::kGt));
        (void)gt;
        return Expr::MakeRecord(std::move(fields), tok.loc);
      }
      case TokenKind::kIdent:
        return ParseIdentExpr();
      default:
        return Error(StrCat("expected expression, found ",
                            TokenKindName(tok.kind)));
    }
  }

  /// Identifier-led expression: variable, call, array index, projections.
  StatusOr<ExprPtr> ParseIdentExpr() {
    Token name = Advance();
    if (Check(TokenKind::kLParen)) {
      Advance();
      std::vector<ExprPtr> args;
      if (!Check(TokenKind::kRParen)) {
        do {
          DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          args.push_back(std::move(e));
        } while (Match(TokenKind::kComma));
      }
      DIABLO_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen));
      (void)rp;
      // min/max/argmin calls are binary operators in disguise.
      if ((name.text == "min" || name.text == "max" ||
           name.text == "argmin") &&
          args.size() == 2) {
        BinOp op = name.text == "min"  ? BinOp::kMin
                   : name.text == "max" ? BinOp::kMax
                                         : BinOp::kArgmin;
        return Expr::MakeBin(op, args[0], args[1], name.loc);
      }
      return Expr::MakeCall(name.text, std::move(args), name.loc);
    }
    DIABLO_ASSIGN_OR_RETURN(LValuePtr lv, ParseLValueTail(name));
    return Expr::MakeLValue(std::move(lv), name.loc);
  }

  /// Parses the [indices] / .field chain after an identifier.
  StatusOr<LValuePtr> ParseLValueTail(const Token& name) {
    LValuePtr lv;
    if (Check(TokenKind::kLBracket)) {
      Advance();
      std::vector<ExprPtr> indices;
      do {
        DIABLO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        indices.push_back(std::move(e));
      } while (Match(TokenKind::kComma));
      DIABLO_ASSIGN_OR_RETURN(Token rb, Expect(TokenKind::kRBracket));
      (void)rb;
      lv = LValue::MakeIndex(name.text, std::move(indices), name.loc);
    } else {
      lv = LValue::MakeVar(name.text, name.loc);
    }
    while (Check(TokenKind::kDot)) {
      Advance();
      // Allow numeric tuple projections `._1` (lexed as ident "_1") or
      // plain field names.
      DIABLO_ASSIGN_OR_RETURN(Token field, Expect(TokenKind::kIdent));
      lv = LValue::MakeProj(std::move(lv), field.text, field.loc);
    }
    return lv;
  }

  // ----------------------------- statements -------------------------------

  StatusOr<StmtPtr> ParseStmt() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVar:
        return ParseDecl();
      case TokenKind::kFor:
        return ParseFor();
      case TokenKind::kWhile:
        return ParseWhile();
      case TokenKind::kIf:
        return ParseIf();
      case TokenKind::kLBrace:
        return ParseBlock();
      case TokenKind::kIdent:
        return ParseAssignment();
      default:
        return Error(StrCat("expected statement, found ",
                            TokenKindName(tok.kind)));
    }
  }

  StatusOr<StmtPtr> ParseDecl() {
    Token kw = Advance();  // var
    DIABLO_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
    DIABLO_ASSIGN_OR_RETURN(Token colon, Expect(TokenKind::kColon));
    (void)colon;
    DIABLO_ASSIGN_OR_RETURN(TypePtr type, ParseType());
    ExprPtr init;
    if (Match(TokenKind::kEq)) {
      DIABLO_ASSIGN_OR_RETURN(init, ParseExpr());
    }
    DIABLO_ASSIGN_OR_RETURN(Token semi, Expect(TokenKind::kSemi));
    (void)semi;
    return Stmt::MakeDecl(name.text, std::move(type), std::move(init), kw.loc);
  }

  StatusOr<StmtPtr> ParseFor() {
    Token kw = Advance();  // for
    DIABLO_ASSIGN_OR_RETURN(Token var, Expect(TokenKind::kIdent));
    if (Match(TokenKind::kEq)) {
      DIABLO_ASSIGN_OR_RETURN(ExprPtr lo, ParseExpr());
      DIABLO_ASSIGN_OR_RETURN(Token comma, Expect(TokenKind::kComma));
      (void)comma;
      DIABLO_ASSIGN_OR_RETURN(ExprPtr hi, ParseExpr());
      DIABLO_ASSIGN_OR_RETURN(Token dotok, Expect(TokenKind::kDo));
      (void)dotok;
      DIABLO_ASSIGN_OR_RETURN(StmtPtr body, ParseStmt());
      return Stmt::MakeForRange(var.text, std::move(lo), std::move(hi),
                                std::move(body), kw.loc);
    }
    DIABLO_ASSIGN_OR_RETURN(Token in, Expect(TokenKind::kIn));
    (void)in;
    DIABLO_ASSIGN_OR_RETURN(ExprPtr coll, ParseExpr());
    DIABLO_ASSIGN_OR_RETURN(Token dotok, Expect(TokenKind::kDo));
    (void)dotok;
    DIABLO_ASSIGN_OR_RETURN(StmtPtr body, ParseStmt());
    return Stmt::MakeForEach(var.text, std::move(coll), std::move(body),
                             kw.loc);
  }

  StatusOr<StmtPtr> ParseWhile() {
    Token kw = Advance();  // while
    DIABLO_ASSIGN_OR_RETURN(Token lp, Expect(TokenKind::kLParen));
    (void)lp;
    DIABLO_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    DIABLO_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen));
    (void)rp;
    DIABLO_ASSIGN_OR_RETURN(StmtPtr body, ParseStmt());
    return Stmt::MakeWhile(std::move(cond), std::move(body), kw.loc);
  }

  StatusOr<StmtPtr> ParseIf() {
    Token kw = Advance();  // if
    DIABLO_ASSIGN_OR_RETURN(Token lp, Expect(TokenKind::kLParen));
    (void)lp;
    DIABLO_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    DIABLO_ASSIGN_OR_RETURN(Token rp, Expect(TokenKind::kRParen));
    (void)rp;
    DIABLO_ASSIGN_OR_RETURN(StmtPtr then_branch, ParseStmt());
    StmtPtr else_branch;
    if (Match(TokenKind::kElse)) {
      DIABLO_ASSIGN_OR_RETURN(else_branch, ParseStmt());
    }
    return Stmt::MakeIf(std::move(cond), std::move(then_branch),
                        std::move(else_branch), kw.loc);
  }

  StatusOr<StmtPtr> ParseBlock() {
    Token lb = Advance();  // {
    std::vector<StmtPtr> stmts;
    while (!Check(TokenKind::kRBrace)) {
      if (Check(TokenKind::kEof)) return Error("unterminated block");
      DIABLO_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
      stmts.push_back(std::move(s));
    }
    Advance();                  // }
    Match(TokenKind::kSemi);    // optional trailing ';' as in "};"
    return Stmt::MakeBlock(std::move(stmts), lb.loc);
  }

  StatusOr<StmtPtr> ParseAssignment() {
    Token name = Advance();
    DIABLO_ASSIGN_OR_RETURN(LValuePtr dest, ParseLValueTail(name));
    const Token& op = Peek();
    // `d min= e`, `d max= e`, `d argmin= e`: identifier operator + '='.
    if (op.kind == TokenKind::kIdent && Peek(1).kind == TokenKind::kEq &&
        (op.text == "min" || op.text == "max" || op.text == "argmin")) {
      BinOp bop = op.text == "min"   ? BinOp::kMin
                  : op.text == "max" ? BinOp::kMax
                                     : BinOp::kArgmin;
      Advance();
      Advance();
      DIABLO_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      DIABLO_ASSIGN_OR_RETURN(Token semi, Expect(TokenKind::kSemi));
      (void)semi;
      return Stmt::MakeIncr(std::move(dest), bop, std::move(value), name.loc);
    }
    switch (op.kind) {
      case TokenKind::kAssign: {
        Advance();
        DIABLO_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
        DIABLO_ASSIGN_OR_RETURN(Token semi, Expect(TokenKind::kSemi));
        (void)semi;
        return Stmt::MakeAssign(std::move(dest), std::move(value), name.loc);
      }
      case TokenKind::kPlusEq:
      case TokenKind::kStarEq: {
        BinOp bop =
            op.kind == TokenKind::kPlusEq ? BinOp::kAdd : BinOp::kMul;
        Advance();
        DIABLO_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
        DIABLO_ASSIGN_OR_RETURN(Token semi, Expect(TokenKind::kSemi));
        (void)semi;
        return Stmt::MakeIncr(std::move(dest), bop, std::move(value),
                              name.loc);
      }
      case TokenKind::kMinusEq: {
        // d -= e  is sugar for  d += -(e), keeping ⊕ commutative.
        Advance();
        DIABLO_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
        DIABLO_ASSIGN_OR_RETURN(Token semi, Expect(TokenKind::kSemi));
        (void)semi;
        return Stmt::MakeIncr(std::move(dest), BinOp::kAdd,
                              Expr::MakeUn(UnOp::kNeg, std::move(value),
                                           op.loc),
                              name.loc);
      }
      default:
        return Error(StrCat("expected assignment operator, found ",
                            TokenKindName(op.kind)));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ast::Program> ParseProgram(const std::string& source) {
  DIABLO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

StatusOr<ast::ExprPtr> ParseExpr(const std::string& source) {
  DIABLO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseSingleExpr();
}

}  // namespace diablo::parser
