#ifndef DIABLO_AST_PRINTER_H_
#define DIABLO_AST_PRINTER_H_

#include <string>

#include "ast/ast.h"

namespace diablo::ast {

/// Pretty-prints a statement with indentation, one statement per line.
/// `indent` is the initial indentation depth.
std::string PrintStmt(const Stmt& stmt, int indent = 0);

/// Pretty-prints a whole program.
std::string PrintProgram(const Program& program);

}  // namespace diablo::ast

#endif  // DIABLO_AST_PRINTER_H_
