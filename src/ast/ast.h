#ifndef DIABLO_AST_AST_H_
#define DIABLO_AST_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/strings.h"
#include "runtime/operators.h"

namespace diablo::ast {

// ---------------------------------------------------------------------------
// Types (Figure 1).
//
//   t ::= v            basic type (int, float/double, bool, string)
//       | v[t...]      parametric type (vector[t], matrix[t], map[k,t], bag[t])
//       | (t1,...,tn)  tuple type
//       | <A1:t1,...>  record type
// ---------------------------------------------------------------------------

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct Type {
  enum class Kind { kBasic, kParametric, kTuple, kRecord };

  Kind kind = Kind::kBasic;
  /// Basic type name or parametric head ("vector", "matrix", "map", ...).
  std::string name;
  /// Parametric arguments or tuple element types.
  std::vector<TypePtr> params;
  /// Record fields.
  std::vector<std::pair<std::string, TypePtr>> fields;

  static TypePtr Basic(std::string name);
  static TypePtr Parametric(std::string name, std::vector<TypePtr> params);
  static TypePtr Tuple(std::vector<TypePtr> elems);
  static TypePtr Record(std::vector<std::pair<std::string, TypePtr>> fields);

  /// True for types whose values live as distributed datasets:
  /// vector[...], matrix[...], map[...], bag[...].
  bool IsCollection() const;

  /// Number of index dimensions of a collection type (vector/map: 1,
  /// matrix: 2); 0 for non-collections.
  int IndexArity() const;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expressions and destinations (L-values).
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;
struct LValue;
using LValuePtr = std::shared_ptr<const LValue>;

/// A destination (Figure 1):
///   d ::= v | d.A | v[e1,...,en]
struct LValue {
  struct Var {
    std::string name;
  };
  struct Proj {
    LValuePtr base;
    std::string field;
  };
  struct Index {
    std::string array;
    std::vector<ExprPtr> indices;
  };

  std::variant<Var, Proj, Index> node;
  SourceLocation loc;

  static LValuePtr MakeVar(std::string name, SourceLocation loc = {});
  static LValuePtr MakeProj(LValuePtr base, std::string field,
                            SourceLocation loc = {});
  static LValuePtr MakeIndex(std::string array, std::vector<ExprPtr> indices,
                             SourceLocation loc = {});

  bool is_var() const { return std::holds_alternative<Var>(node); }
  bool is_proj() const { return std::holds_alternative<Proj>(node); }
  bool is_index() const { return std::holds_alternative<Index>(node); }
  const Var& var() const { return std::get<Var>(node); }
  const Proj& proj() const { return std::get<Proj>(node); }
  const Index& index() const { return std::get<Index>(node); }

  /// The root variable name (V for V[e].A etc.).
  const std::string& RootName() const;

  std::string ToString() const;
};

/// An expression (Figure 1):
///   e ::= d | e1 ⋆ e2 | (e1,...,en) | <A1=e1,...> | const
/// plus unary operators and calls to a small set of builtin math
/// functions (sqrt, abs, exp, log, pow, floor) used by the benchmark
/// programs.
struct Expr {
  struct LVal {
    LValuePtr lvalue;
  };
  struct Bin {
    runtime::BinOp op;
    ExprPtr lhs;
    ExprPtr rhs;
  };
  struct Un {
    runtime::UnOp op;
    ExprPtr operand;
  };
  struct TupleCons {
    std::vector<ExprPtr> elems;
  };
  struct RecordCons {
    std::vector<std::pair<std::string, ExprPtr>> fields;
  };
  struct IntConst {
    int64_t value;
  };
  struct DoubleConst {
    double value;
  };
  struct BoolConst {
    bool value;
  };
  struct StringConst {
    std::string value;
  };
  struct Call {
    std::string function;
    std::vector<ExprPtr> args;
  };

  std::variant<LVal, Bin, Un, TupleCons, RecordCons, IntConst, DoubleConst,
               BoolConst, StringConst, Call>
      node;
  SourceLocation loc;

  static ExprPtr MakeLValue(LValuePtr d, SourceLocation loc = {});
  static ExprPtr MakeVar(std::string name, SourceLocation loc = {});
  static ExprPtr MakeBin(runtime::BinOp op, ExprPtr l, ExprPtr r,
                         SourceLocation loc = {});
  static ExprPtr MakeUn(runtime::UnOp op, ExprPtr e, SourceLocation loc = {});
  static ExprPtr MakeTuple(std::vector<ExprPtr> elems, SourceLocation loc = {});
  static ExprPtr MakeRecord(std::vector<std::pair<std::string, ExprPtr>> fields,
                            SourceLocation loc = {});
  static ExprPtr MakeInt(int64_t v, SourceLocation loc = {});
  static ExprPtr MakeDouble(double v, SourceLocation loc = {});
  static ExprPtr MakeBool(bool v, SourceLocation loc = {});
  static ExprPtr MakeString(std::string v, SourceLocation loc = {});
  static ExprPtr MakeCall(std::string fn, std::vector<ExprPtr> args,
                          SourceLocation loc = {});

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(node);
  }

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Statements (Figure 1).
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  /// d ⊕= e
  struct Incr {
    LValuePtr dest;
    runtime::BinOp op;
    ExprPtr value;
  };
  /// d := e
  struct Assign {
    LValuePtr dest;
    ExprPtr value;
  };
  /// var v : t = e
  struct Decl {
    std::string name;
    TypePtr type;
    ExprPtr init;  // may be null for collection types (empty array)
  };
  /// for v = e1, e2 do s
  struct ForRange {
    std::string var;
    ExprPtr lo;
    ExprPtr hi;
    StmtPtr body;
  };
  /// for v in e do s
  struct ForEach {
    std::string var;
    ExprPtr collection;
    StmtPtr body;
  };
  /// while (e) s
  struct While {
    ExprPtr cond;
    StmtPtr body;
  };
  /// if (e) s1 [else s2]
  struct If {
    ExprPtr cond;
    StmtPtr then_branch;
    StmtPtr else_branch;  // may be null
  };
  /// { s1; ...; sn }
  struct Block {
    std::vector<StmtPtr> stmts;
  };

  std::variant<Incr, Assign, Decl, ForRange, ForEach, While, If, Block> node;
  SourceLocation loc;

  static StmtPtr MakeIncr(LValuePtr d, runtime::BinOp op, ExprPtr e,
                          SourceLocation loc = {});
  static StmtPtr MakeAssign(LValuePtr d, ExprPtr e, SourceLocation loc = {});
  static StmtPtr MakeDecl(std::string name, TypePtr type, ExprPtr init,
                          SourceLocation loc = {});
  static StmtPtr MakeForRange(std::string var, ExprPtr lo, ExprPtr hi,
                              StmtPtr body, SourceLocation loc = {});
  static StmtPtr MakeForEach(std::string var, ExprPtr coll, StmtPtr body,
                             SourceLocation loc = {});
  static StmtPtr MakeWhile(ExprPtr cond, StmtPtr body, SourceLocation loc = {});
  static StmtPtr MakeIf(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch,
                        SourceLocation loc = {});
  static StmtPtr MakeBlock(std::vector<StmtPtr> stmts, SourceLocation loc = {});

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(node);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(node);
  }

  std::string ToString() const;
};

/// A whole loop-based program: a statement block with top-level
/// declarations. Undeclared free variables are inputs bound by the host.
struct Program {
  std::vector<StmtPtr> stmts;

  std::string ToString() const;
};

/// True when `name` is one of the builtin math functions callable from
/// expressions.
bool IsBuiltinFunction(const std::string& name);

}  // namespace diablo::ast

#endif  // DIABLO_AST_AST_H_
