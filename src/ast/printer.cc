#include "ast/printer.h"

#include <sstream>

namespace diablo::ast {

namespace {

std::string Ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

void PrintStmtTo(const Stmt& stmt, int indent, std::ostringstream& os);

}  // namespace

// ----------------------------- expressions --------------------------------

std::string LValue::ToString() const {
  if (is_var()) return var().name;
  if (is_proj()) return StrCat(proj().base->ToString(), ".", proj().field);
  std::vector<std::string> idx;
  for (const auto& e : index().indices) idx.push_back(e->ToString());
  return StrCat(index().array, "[", Join(idx, ","), "]");
}

std::string Expr::ToString() const {
  if (is<LVal>()) return as<LVal>().lvalue->ToString();
  if (is<Bin>()) {
    const auto& b = as<Bin>();
    return StrCat("(", b.lhs->ToString(), " ", runtime::BinOpName(b.op), " ",
                  b.rhs->ToString(), ")");
  }
  if (is<Un>()) {
    const auto& u = as<Un>();
    return StrCat(runtime::UnOpName(u.op), u.operand->ToString());
  }
  if (is<TupleCons>()) {
    std::vector<std::string> es;
    for (const auto& e : as<TupleCons>().elems) es.push_back(e->ToString());
    return StrCat("(", Join(es, ","), ")");
  }
  if (is<RecordCons>()) {
    std::vector<std::string> es;
    for (const auto& [n, e] : as<RecordCons>().fields) {
      es.push_back(StrCat(n, "=", e->ToString()));
    }
    return StrCat("<", Join(es, ","), ">");
  }
  if (is<IntConst>()) return StrCat(as<IntConst>().value);
  if (is<DoubleConst>()) {
    std::ostringstream os;
    os << as<DoubleConst>().value;
    std::string s = os.str();
    // Keep doubles visibly doubles.
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
      s += ".0";
    }
    return s;
  }
  if (is<BoolConst>()) return as<BoolConst>().value ? "true" : "false";
  if (is<StringConst>()) return StrCat("\"", as<StringConst>().value, "\"");
  const auto& c = as<Call>();
  std::vector<std::string> es;
  for (const auto& e : c.args) es.push_back(e->ToString());
  return StrCat(c.function, "(", Join(es, ","), ")");
}

// ----------------------------- statements ---------------------------------

namespace {

void PrintStmtTo(const Stmt& stmt, int indent, std::ostringstream& os) {
  if (stmt.is<Stmt::Incr>()) {
    const auto& s = stmt.as<Stmt::Incr>();
    os << Ind(indent) << s.dest->ToString() << " "
       << runtime::BinOpName(s.op) << "= " << s.value->ToString() << ";\n";
  } else if (stmt.is<Stmt::Assign>()) {
    const auto& s = stmt.as<Stmt::Assign>();
    os << Ind(indent) << s.dest->ToString() << " := " << s.value->ToString()
       << ";\n";
  } else if (stmt.is<Stmt::Decl>()) {
    const auto& s = stmt.as<Stmt::Decl>();
    os << Ind(indent) << "var " << s.name << ": " << s.type->ToString();
    if (s.init != nullptr) os << " = " << s.init->ToString();
    os << ";\n";
  } else if (stmt.is<Stmt::ForRange>()) {
    const auto& s = stmt.as<Stmt::ForRange>();
    os << Ind(indent) << "for " << s.var << " = " << s.lo->ToString() << ", "
       << s.hi->ToString() << " do\n";
    PrintStmtTo(*s.body, indent + 1, os);
  } else if (stmt.is<Stmt::ForEach>()) {
    const auto& s = stmt.as<Stmt::ForEach>();
    os << Ind(indent) << "for " << s.var << " in "
       << s.collection->ToString() << " do\n";
    PrintStmtTo(*s.body, indent + 1, os);
  } else if (stmt.is<Stmt::While>()) {
    const auto& s = stmt.as<Stmt::While>();
    os << Ind(indent) << "while (" << s.cond->ToString() << ")\n";
    PrintStmtTo(*s.body, indent + 1, os);
  } else if (stmt.is<Stmt::If>()) {
    const auto& s = stmt.as<Stmt::If>();
    os << Ind(indent) << "if (" << s.cond->ToString() << ")\n";
    PrintStmtTo(*s.then_branch, indent + 1, os);
    if (s.else_branch != nullptr) {
      os << Ind(indent) << "else\n";
      PrintStmtTo(*s.else_branch, indent + 1, os);
    }
  } else {
    const auto& s = stmt.as<Stmt::Block>();
    os << Ind(indent) << "{\n";
    for (const auto& child : s.stmts) PrintStmtTo(*child, indent + 1, os);
    os << Ind(indent) << "}\n";
  }
}

}  // namespace

std::string Stmt::ToString() const {
  std::ostringstream os;
  PrintStmtTo(*this, 0, os);
  return os.str();
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const auto& s : stmts) PrintStmtTo(*s, 0, os);
  return os.str();
}

std::string PrintStmt(const Stmt& stmt, int indent) {
  std::ostringstream os;
  PrintStmtTo(stmt, indent, os);
  return os.str();
}

std::string PrintProgram(const Program& program) { return program.ToString(); }

}  // namespace diablo::ast
