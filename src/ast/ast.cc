#include "ast/ast.h"

namespace diablo::ast {

// ----------------------------- Types --------------------------------------

TypePtr Type::Basic(std::string name) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kBasic;
  t->name = std::move(name);
  return t;
}

TypePtr Type::Parametric(std::string name, std::vector<TypePtr> params) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kParametric;
  t->name = std::move(name);
  t->params = std::move(params);
  return t;
}

TypePtr Type::Tuple(std::vector<TypePtr> elems) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kTuple;
  t->params = std::move(elems);
  return t;
}

TypePtr Type::Record(std::vector<std::pair<std::string, TypePtr>> fields) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kRecord;
  t->fields = std::move(fields);
  return t;
}

bool Type::IsCollection() const {
  return kind == Kind::kParametric &&
         (name == "vector" || name == "matrix" || name == "map" ||
          name == "bag");
}

int Type::IndexArity() const {
  if (!IsCollection()) return 0;
  if (name == "matrix") return 2;
  return 1;
}

std::string Type::ToString() const {
  switch (kind) {
    case Kind::kBasic:
      return name;
    case Kind::kParametric: {
      std::vector<std::string> ps;
      for (const auto& p : params) ps.push_back(p->ToString());
      return StrCat(name, "[", Join(ps, ","), "]");
    }
    case Kind::kTuple: {
      std::vector<std::string> ps;
      for (const auto& p : params) ps.push_back(p->ToString());
      return StrCat("(", Join(ps, ","), ")");
    }
    case Kind::kRecord: {
      std::vector<std::string> ps;
      for (const auto& [n, t] : fields) ps.push_back(StrCat(n, ":", t->ToString()));
      return StrCat("<", Join(ps, ","), ">");
    }
  }
  return "?";
}

// ----------------------------- L-values -----------------------------------

LValuePtr LValue::MakeVar(std::string name, SourceLocation loc) {
  auto d = std::make_shared<LValue>();
  d->node = Var{std::move(name)};
  d->loc = loc;
  return d;
}

LValuePtr LValue::MakeProj(LValuePtr base, std::string field,
                           SourceLocation loc) {
  auto d = std::make_shared<LValue>();
  d->node = Proj{std::move(base), std::move(field)};
  d->loc = loc;
  return d;
}

LValuePtr LValue::MakeIndex(std::string array, std::vector<ExprPtr> indices,
                            SourceLocation loc) {
  auto d = std::make_shared<LValue>();
  d->node = Index{std::move(array), std::move(indices)};
  d->loc = loc;
  return d;
}

const std::string& LValue::RootName() const {
  if (is_var()) return var().name;
  if (is_index()) return index().array;
  return proj().base->RootName();
}

// ----------------------------- Expressions --------------------------------

ExprPtr Expr::MakeLValue(LValuePtr d, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = LVal{std::move(d)};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeVar(std::string name, SourceLocation loc) {
  return MakeLValue(LValue::MakeVar(std::move(name), loc), loc);
}

ExprPtr Expr::MakeBin(runtime::BinOp op, ExprPtr l, ExprPtr r,
                      SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = Bin{op, std::move(l), std::move(r)};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeUn(runtime::UnOp op, ExprPtr operand, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = Un{op, std::move(operand)};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeTuple(std::vector<ExprPtr> elems, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = TupleCons{std::move(elems)};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeRecord(std::vector<std::pair<std::string, ExprPtr>> fields,
                         SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = RecordCons{std::move(fields)};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeInt(int64_t v, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = IntConst{v};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeDouble(double v, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = DoubleConst{v};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeBool(bool v, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = BoolConst{v};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeString(std::string v, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = StringConst{std::move(v)};
  e->loc = loc;
  return e;
}

ExprPtr Expr::MakeCall(std::string fn, std::vector<ExprPtr> args,
                       SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->node = Call{std::move(fn), std::move(args)};
  e->loc = loc;
  return e;
}

// ----------------------------- Statements ---------------------------------

StmtPtr Stmt::MakeIncr(LValuePtr d, runtime::BinOp op, ExprPtr e,
                       SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = Incr{std::move(d), op, std::move(e)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeAssign(LValuePtr d, ExprPtr e, SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = Assign{std::move(d), std::move(e)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeDecl(std::string name, TypePtr type, ExprPtr init,
                       SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = Decl{std::move(name), std::move(type), std::move(init)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeForRange(std::string var, ExprPtr lo, ExprPtr hi,
                           StmtPtr body, SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = ForRange{std::move(var), std::move(lo), std::move(hi),
                     std::move(body)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeForEach(std::string var, ExprPtr coll, StmtPtr body,
                          SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = ForEach{std::move(var), std::move(coll), std::move(body)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeWhile(ExprPtr cond, StmtPtr body, SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = While{std::move(cond), std::move(body)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeIf(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch,
                     SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = If{std::move(cond), std::move(then_branch), std::move(else_branch)};
  s->loc = loc;
  return s;
}

StmtPtr Stmt::MakeBlock(std::vector<StmtPtr> stmts, SourceLocation loc) {
  auto s = std::make_shared<Stmt>();
  s->node = Block{std::move(stmts)};
  s->loc = loc;
  return s;
}

bool IsBuiltinFunction(const std::string& name) {
  return name == "sqrt" || name == "abs" || name == "exp" || name == "log" ||
         name == "pow" || name == "floor";
}

}  // namespace diablo::ast
