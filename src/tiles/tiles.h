#ifndef DIABLO_TILES_TILES_H_
#define DIABLO_TILES_TILES_H_

#include "common/status.h"
#include "runtime/dataset.h"
#include "runtime/engine.h"

namespace diablo::tiles {

/// Packed (tiled) matrices — paper §5.
///
/// A sparse matrix is a dataset of ((i,j), v) rows. A *tiled* matrix
/// groups elements into fixed-size dense tiles: a dataset of
/// ((ti,tj), tile) rows where (ti,tj) is the tile grid coordinate and
/// `tile` is a bag of tile_rows*tile_cols doubles in row-major order
/// (missing elements are 0). Tiles are the unit of distribution.
struct TileConfig {
  int64_t tile_rows = 32;
  int64_t tile_cols = 32;
};

/// pack(M): sparse {((i,j),v)} -> tiled {((ti,tj), dense-tile)}.
/// Equivalent to the comprehension
///   { ((i/n, j/m), form(z, n*m)) | ((i,j),v) <- M,
///     let z = (i%n)*m + (j%m), group by (i/n, j/m) }.
/// One shuffle (a groupBy).
StatusOr<runtime::Dataset> Pack(runtime::Engine& engine,
                                const runtime::Dataset& sparse,
                                const TileConfig& config);

/// unpack(N): tiled -> sparse with every element of every tile emitted
/// (zeros included: a packed matrix is dense within its tiles). Narrow
/// (a flatMap, no shuffle).
StatusOr<runtime::Dataset> Unpack(runtime::Engine& engine,
                                  const runtime::Dataset& tiled,
                                  const TileConfig& config);

/// Re-partitions a keyed dataset so equal keys land in fixed partitions
/// (hash partitioning), enabling shuffle-free zip merges.
StatusOr<runtime::Dataset> PartitionByKey(runtime::Engine& engine,
                                          const runtime::Dataset& ds);

/// Tiled merge N ⊳' D: combines two *co-partitioned* tiled matrices
/// partition-by-partition without any shuffle (Spark's zipPartitions, as
/// §5 describes). Tiles present on both sides are combined elementwise
/// with +; tiles on one side pass through. Both inputs must have been
/// produced by PartitionByKey (or Pack, which partitions by tile key)
/// with the same partition count.
StatusOr<runtime::Dataset> ZipMergeAdd(runtime::Engine& engine,
                                       const runtime::Dataset& a,
                                       const runtime::Dataset& b);

/// Elementwise addition of two tiled matrices the slow way (coGroup, one
/// shuffle) — the baseline ZipMergeAdd avoids.
StatusOr<runtime::Dataset> CoGroupMergeAdd(runtime::Engine& engine,
                                           const runtime::Dataset& a,
                                           const runtime::Dataset& b);

/// Tiled matrix multiplication R = A × B on tile grid dimensions
/// (a_tiles_rows × k) · (k × b_tiles_cols): joins tiles on the shared
/// grid dimension, multiplies tile pairs densely, and reduces partial
/// tiles by key. Tiles must be square (tile_rows == tile_cols).
StatusOr<runtime::Dataset> TiledMatMul(runtime::Engine& engine,
                                       const runtime::Dataset& a,
                                       const runtime::Dataset& b,
                                       const TileConfig& config);

}  // namespace diablo::tiles

#endif  // DIABLO_TILES_TILES_H_
