#include "tiles/tiles.h"

#include <map>

#include "common/strings.h"
#include "runtime/array.h"

namespace diablo::tiles {

using runtime::Dataset;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;

namespace {

Status CheckElementRow(const Value& row) {
  if (!row.is_tuple() || row.tuple().size() != 2 ||
      !row.tuple()[0].is_tuple() || row.tuple()[0].tuple().size() != 2 ||
      !row.tuple()[0].tuple()[0].is_int() ||
      !row.tuple()[0].tuple()[1].is_int() || !row.tuple()[1].is_numeric()) {
    return Status::RuntimeError(
        StrCat("not a sparse matrix row: ", row.ToString()));
  }
  return Status::OK();
}

Status CheckTileRow(const Value& row, int64_t tile_size) {
  if (!row.is_tuple() || row.tuple().size() != 2 ||
      !row.tuple()[0].is_tuple() || row.tuple()[0].tuple().size() != 2 ||
      !row.tuple()[1].is_bag() ||
      static_cast<int64_t>(row.tuple()[1].bag().size()) != tile_size) {
    return Status::RuntimeError(
        StrCat("not a tiled matrix row: ", row.ToString()));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Dataset> Pack(Engine& engine, const Dataset& sparse,
                       const TileConfig& config) {
  const int64_t n = config.tile_rows, m = config.tile_cols;
  if (n <= 0 || m <= 0) {
    return Status::InvalidArgument("tile dimensions must be positive");
  }
  // ((i,j),v) -> ((ti,tj), (offset, v)).
  DIABLO_ASSIGN_OR_RETURN(
      Dataset keyed,
      engine.Map(
          sparse,
          [n, m](const Value& row) -> StatusOr<Value> {
            DIABLO_RETURN_IF_ERROR(CheckElementRow(row));
            int64_t i = row.tuple()[0].tuple()[0].AsInt();
            int64_t j = row.tuple()[0].tuple()[1].AsInt();
            if (i < 0 || j < 0) {
              return Status::RuntimeError("negative matrix index in Pack");
            }
            Value tile_key = runtime::MatrixKey(i / n, j / m);
            Value offset = Value::MakeInt((i % n) * m + (j % m));
            return Value::MakePair(
                tile_key, Value::MakePair(offset, row.tuple()[1]));
          },
          "pack.key"));
  DIABLO_ASSIGN_OR_RETURN(Dataset grouped,
                          engine.GroupByKey(keyed, "pack.group"));
  // form(z, n*m): scatter offsets into a dense row-major tile. The
  // groupBy already hash-partitioned the tiles by their coordinates (the
  // paper's "set the group-by partitioner" — our engine's groupBy output
  // partitioning is the key-hash partitioner), so packed matrices are
  // co-partitioned and zip-mergeable without a further shuffle.
  return engine.Map(
      grouped,
      [n, m](const Value& row) -> StatusOr<Value> {
        ValueVec tile(static_cast<size_t>(n * m), Value::MakeDouble(0.0));
        for (const Value& entry : row.tuple()[1].bag()) {
          int64_t offset = entry.tuple()[0].AsInt();
          tile[static_cast<size_t>(offset)] =
              Value::MakeDouble(entry.tuple()[1].ToDouble());
        }
        return Value::MakePair(row.tuple()[0],
                               Value::MakeBag(std::move(tile)));
      },
      "pack.form");
}

StatusOr<Dataset> Unpack(Engine& engine, const Dataset& tiled,
                         const TileConfig& config) {
  const int64_t n = config.tile_rows, m = config.tile_cols;
  // { ((ti*n + k/m, tj*m + k%m), v) | ((ti,tj), L) <- N, (k,v) <- scan(L) }.
  return engine.FlatMap(
      tiled,
      [n, m](const Value& row) -> StatusOr<ValueVec> {
        DIABLO_RETURN_IF_ERROR(CheckTileRow(row, n * m));
        int64_t ti = row.tuple()[0].tuple()[0].AsInt();
        int64_t tj = row.tuple()[0].tuple()[1].AsInt();
        const ValueVec& tile = row.tuple()[1].bag();
        ValueVec out;
        out.reserve(tile.size());
        for (int64_t k = 0; k < static_cast<int64_t>(tile.size()); ++k) {
          out.push_back(Value::MakePair(
              runtime::MatrixKey(ti * n + k / m, tj * m + k % m),
              tile[static_cast<size_t>(k)]));
        }
        return out;
      },
      "unpack");
}

StatusOr<Dataset> PartitionByKey(Engine& engine, const Dataset& ds) {
  // Implemented as a degenerate reduceByKey that never merges (every key
  // appears once per tile) — one shuffle that fixes the partitioning.
  return engine.ReduceByKey(
      ds,
      [](const Value& a, const Value& b) -> StatusOr<Value> {
        (void)a;
        return b;
      },
      "partitionBy");
}

StatusOr<Dataset> ZipMergeAdd(Engine& engine, const Dataset& in_a,
                              const Dataset& in_b) {
  // This merge reads partitions directly, so any pending fused chain
  // (Pack's trailing tile-forming map) must run first.
  DIABLO_ASSIGN_OR_RETURN(Dataset a, engine.Force(in_a));
  DIABLO_ASSIGN_OR_RETURN(Dataset b, engine.Force(in_b));
  // A fresh (never packed) side has zero partitions and contributes
  // nothing.
  if (a.num_partitions() == 0) return b;
  if (b.num_partitions() == 0) return a;
  if (a.num_partitions() != b.num_partitions()) {
    return Status::InvalidArgument(
        "ZipMergeAdd requires equally partitioned inputs");
  }
  // Partition-local merge: no shuffle. Equal tile keys are guaranteed to
  // be in equal partitions because both sides were hash-partitioned.
  std::vector<ValueVec> out(static_cast<size_t>(a.num_partitions()));
  std::vector<int64_t> work(out.size(), 0);
  for (int p = 0; p < a.num_partitions(); ++p) {
    std::map<Value, Value> merged;
    for (const Value& row : a.partition(p)) {
      merged.insert_or_assign(row.tuple()[0], row.tuple()[1]);
    }
    work[static_cast<size_t>(p)] =
        static_cast<int64_t>(a.partition(p).size()) +
        static_cast<int64_t>(b.partition(p).size());
    for (const Value& row : b.partition(p)) {
      auto it = merged.find(row.tuple()[0]);
      if (it == merged.end()) {
        merged.emplace(row.tuple()[0], row.tuple()[1]);
        continue;
      }
      // Elementwise tile addition.
      const ValueVec& x = it->second.bag();
      const ValueVec& y = row.tuple()[1].bag();
      if (x.size() != y.size()) {
        return Status::RuntimeError("tile size mismatch in ZipMergeAdd");
      }
      ValueVec sum;
      sum.reserve(x.size());
      for (size_t i = 0; i < x.size(); ++i) {
        sum.push_back(Value::MakeDouble(x[i].ToDouble() + y[i].ToDouble()));
      }
      it->second = Value::MakeBag(std::move(sum));
      work[static_cast<size_t>(p)] += static_cast<int64_t>(x.size());
    }
    for (auto& [key, tile] : merged) {
      out[static_cast<size_t>(p)].push_back(Value::MakePair(key, tile));
    }
  }
  engine.metrics().AddStage(
      {"zipMerge", /*wide=*/false, work, {}, /*shuffle_bytes=*/0});
  return Dataset(std::move(out));
}

StatusOr<Dataset> CoGroupMergeAdd(Engine& engine, const Dataset& a,
                                  const Dataset& b) {
  DIABLO_ASSIGN_OR_RETURN(Dataset grouped,
                          engine.CoGroup(a, b, "tileMerge.coGroup"));
  return engine.FlatMap(
      grouped,
      [](const Value& row) -> StatusOr<ValueVec> {
        const Value& key = row.tuple()[0];
        const ValueVec& xs = row.tuple()[1].tuple()[0].bag();
        const ValueVec& ys = row.tuple()[1].tuple()[1].bag();
        ValueVec out;
        if (xs.empty() && ys.empty()) return out;
        if (ys.empty()) {
          out.push_back(Value::MakePair(key, xs.back()));
          return out;
        }
        if (xs.empty()) {
          out.push_back(Value::MakePair(key, ys.back()));
          return out;
        }
        const ValueVec& x = xs.back().bag();
        const ValueVec& y = ys.back().bag();
        if (x.size() != y.size()) {
          return Status::RuntimeError("tile size mismatch in tile merge");
        }
        ValueVec sum;
        sum.reserve(x.size());
        for (size_t i = 0; i < x.size(); ++i) {
          sum.push_back(Value::MakeDouble(x[i].ToDouble() + y[i].ToDouble()));
        }
        out.push_back(Value::MakePair(key, Value::MakeBag(std::move(sum))));
        return out;
      },
      "tileMerge.combine");
}

StatusOr<Dataset> TiledMatMul(Engine& engine, const Dataset& a,
                              const Dataset& b, const TileConfig& config) {
  if (config.tile_rows != config.tile_cols) {
    return Status::InvalidArgument("TiledMatMul requires square tiles");
  }
  const int64_t t = config.tile_rows;
  // A tiles keyed by column grid coordinate, B tiles by row grid
  // coordinate, joined on the shared dimension.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset left,
      engine.Map(
          a,
          [t](const Value& row) -> StatusOr<Value> {
            DIABLO_RETURN_IF_ERROR(CheckTileRow(row, t * t));
            return Value::MakePair(
                row.tuple()[0].tuple()[1],
                Value::MakePair(row.tuple()[0].tuple()[0], row.tuple()[1]));
          },
          "tmm.keyA"));
  DIABLO_ASSIGN_OR_RETURN(
      Dataset right,
      engine.Map(
          b,
          [t](const Value& row) -> StatusOr<Value> {
            DIABLO_RETURN_IF_ERROR(CheckTileRow(row, t * t));
            return Value::MakePair(
                row.tuple()[0].tuple()[0],
                Value::MakePair(row.tuple()[0].tuple()[1], row.tuple()[1]));
          },
          "tmm.keyB"));
  DIABLO_ASSIGN_OR_RETURN(Dataset joined,
                          engine.Join(left, right, "tmm.join"));
  // Dense tile multiply per joined pair.
  DIABLO_ASSIGN_OR_RETURN(
      Dataset partial,
      engine.Map(
          joined,
          [t](const Value& row) -> StatusOr<Value> {
            const Value& pair = row.tuple()[1];
            int64_t ti = pair.tuple()[0].tuple()[0].AsInt();
            const ValueVec& x = pair.tuple()[0].tuple()[1].bag();
            int64_t tj = pair.tuple()[1].tuple()[0].AsInt();
            const ValueVec& y = pair.tuple()[1].tuple()[1].bag();
            ValueVec z(static_cast<size_t>(t * t), Value::MakeDouble(0.0));
            for (int64_t i = 0; i < t; ++i) {
              for (int64_t k = 0; k < t; ++k) {
                double xv = x[static_cast<size_t>(i * t + k)].ToDouble();
                if (xv == 0.0) continue;
                for (int64_t j = 0; j < t; ++j) {
                  double cur = z[static_cast<size_t>(i * t + j)].AsDouble();
                  z[static_cast<size_t>(i * t + j)] = Value::MakeDouble(
                      cur + xv * y[static_cast<size_t>(k * t + j)].ToDouble());
                }
              }
            }
            return Value::MakePair(runtime::MatrixKey(ti, tj),
                                   Value::MakeBag(std::move(z)));
          },
          "tmm.multiply"));
  // Sum the partial tiles per output coordinate.
  return engine.ReduceByKey(
      partial,
      [t](const Value& x, const Value& y) -> StatusOr<Value> {
        const ValueVec& a_tile = x.bag();
        const ValueVec& b_tile = y.bag();
        ValueVec sum;
        sum.reserve(static_cast<size_t>(t * t));
        for (size_t i = 0; i < a_tile.size(); ++i) {
          sum.push_back(
              Value::MakeDouble(a_tile[i].ToDouble() + b_tile[i].ToDouble()));
        }
        return Value::MakeBag(std::move(sum));
      },
      "tmm.reduce");
}

}  // namespace diablo::tiles
