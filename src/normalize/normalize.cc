#include "normalize/normalize.h"

#include <map>

namespace diablo::normalize {

using comp::CExpr;
using comp::CExprPtr;
using comp::CompPtr;
using comp::Pattern;
using comp::Qualifier;
using runtime::BinOp;

namespace {

// --------------------------- alpha renaming --------------------------------

Pattern RenamePattern(const Pattern& p, comp::NameGen* names,
                      std::map<std::string, CExprPtr>* subst) {
  if (!p.is_tuple) {
    if (p.var == "_") return p;
    std::string fresh = names->Fresh();
    (*subst)[p.var] = comp::MakeVar(fresh);
    return Pattern::Var(fresh);
  }
  std::vector<Pattern> elems;
  for (const Pattern& child : p.elems) {
    elems.push_back(RenamePattern(child, names, subst));
  }
  return Pattern::Tuple(std::move(elems));
}

// --------------------------- simplicity test -------------------------------

/// True for expressions cheap and pure enough to inline freely.
bool IsSimple(const CExprPtr& e) {
  if (e->is<CExpr::Var>() || e->is<CExpr::IntConst>() ||
      e->is<CExpr::DoubleConst>() || e->is<CExpr::BoolConst>() ||
      e->is<CExpr::StringConst>()) {
    return true;
  }
  if (e->is<CExpr::Proj>()) return IsSimple(e->as<CExpr::Proj>().base);
  if (e->is<CExpr::TupleCons>()) {
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      if (!IsSimple(c)) return false;
    }
    return true;
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    return IsSimple(b.lhs) && IsSimple(b.rhs);
  }
  if (e->is<CExpr::Un>()) return IsSimple(e->as<CExpr::Un>().operand);
  if (e->is<CExpr::BagCons>()) {
    for (const auto& c : e->as<CExpr::BagCons>().elems) {
      if (!IsSimple(c)) return false;
    }
    return true;
  }
  return false;
}

bool UsesVar(const CExprPtr& e, const std::string& name) {
  return comp::FreeVars(e).count(name) != 0;
}

/// True if `name` is referenced by any qualifier in [from, end) or by the
/// head.
bool UsedFrom(const std::vector<Qualifier>& quals, size_t from,
              const CExprPtr& head, const std::string& name) {
  for (size_t i = from; i < quals.size(); ++i) {
    if (quals[i].expr != nullptr && UsesVar(quals[i].expr, name)) return true;
  }
  return head != nullptr && UsesVar(head, name);
}

/// True if `name` is used in the *lifted* region after the group-by at
/// `group_at`: by a qualifier past the group-by or by the head, stopping
/// at any rebinding of `name` (including the group-by pattern itself,
/// which rebinds its variables to the key). The group-by key expression
/// does not count: it is evaluated pre-lift.
bool UsedPostGroup(const std::vector<Qualifier>& quals, size_t group_at,
                   const CExprPtr& head, const std::string& name) {
  for (const std::string& v : quals[group_at].pattern.Vars()) {
    if (v == name) return false;  // rebound to the key
  }
  for (size_t i = group_at + 1; i < quals.size(); ++i) {
    if (quals[i].expr != nullptr && UsesVar(quals[i].expr, name)) return true;
    if (quals[i].kind != Qualifier::Kind::kCondition) {
      for (const std::string& v : quals[i].pattern.Vars()) {
        if (v == name) return false;
      }
    }
  }
  return head != nullptr && UsesVar(head, name);
}

bool HasGroupBy(const CompPtr& c) {
  for (const Qualifier& q : c->qualifiers) {
    if (q.kind == Qualifier::Kind::kGroupBy) return true;
  }
  return false;
}

struct NormalizeState {
  comp::NameGen* names;
  bool changed = false;
};

CExprPtr NormalizeExprOnce(const CExprPtr& e, NormalizeState* state);

/// Applies `subst` to all qualifiers from `begin` on, and to the head.
/// A qualifier that rebinds a substituted variable shadows it for the
/// remainder of the comprehension (e.g. Rule 17's `let v = {v}`).
void ApplySubstFrom(std::vector<Qualifier>* quals, size_t begin,
                    CExprPtr* head,
                    std::map<std::string, CExprPtr> subst) {
  for (size_t i = begin; i < quals->size() && !subst.empty(); ++i) {
    Qualifier& q = (*quals)[i];
    if (q.expr != nullptr) q.expr = comp::Substitute(q.expr, subst);
    if (q.kind != Qualifier::Kind::kCondition) {
      for (const std::string& v : q.pattern.Vars()) subst.erase(v);
    }
  }
  if (!subst.empty() && *head != nullptr) {
    *head = comp::Substitute(*head, subst);
  }
}

/// One normalization pass over a comprehension. Returns the rewritten
/// comprehension, or an empty-bag expression when the comprehension is
/// statically empty.
CExprPtr NormalizeCompOnce(const CompPtr& comp, NormalizeState* state) {
  std::vector<Qualifier> quals = comp->qualifiers;
  CExprPtr head = comp->head;

  for (size_t i = 0; i < quals.size(); ++i) {
    Qualifier& q = quals[i];
    if (q.expr != nullptr) q.expr = NormalizeExprOnce(q.expr, state);

    if (q.kind == Qualifier::Kind::kGenerator) {
      // Generator over a bag literal.
      if (q.expr->is<CExpr::BagCons>()) {
        const auto& bag = q.expr->as<CExpr::BagCons>().elems;
        if (bag.empty()) {
          state->changed = true;
          return comp::MakeBag({});
        }
        if (bag.size() == 1) {
          q.kind = Qualifier::Kind::kLet;
          q.expr = bag[0];
          state->changed = true;
          // fall through to let handling on the next pass
          continue;
        }
        continue;  // multi-element literal: keep as a generator
      }
      // Rule (2): generator over a nested comprehension without group-by.
      if (q.expr->is<CExpr::Nested>()) {
        CompPtr inner = q.expr->as<CExpr::Nested>().comp;
        if (!HasGroupBy(inner)) {
          CompPtr renamed = RenameBound(inner, state->names);
          std::vector<Qualifier> spliced;
          spliced.reserve(quals.size() + renamed->qualifiers.size());
          for (size_t j = 0; j < i; ++j) spliced.push_back(quals[j]);
          for (const Qualifier& iq : renamed->qualifiers) {
            spliced.push_back(iq);
          }
          spliced.push_back(Qualifier::Let(q.pattern, renamed->head));
          for (size_t j = i + 1; j < quals.size(); ++j) {
            spliced.push_back(quals[j]);
          }
          state->changed = true;
          return comp::MakeNested(comp::MakeComp(head, std::move(spliced)));
        }
        continue;
      }
      continue;
    }

    if (q.kind == Qualifier::Kind::kLet) {
      // Componentwise split of tuple lets.
      if (q.pattern.is_tuple && q.expr->is<CExpr::TupleCons>() &&
          q.pattern.elems.size() ==
              q.expr->as<CExpr::TupleCons>().elems.size()) {
        std::vector<Qualifier> expanded;
        for (size_t j = 0; j < i; ++j) expanded.push_back(quals[j]);
        for (size_t j = 0; j < q.pattern.elems.size(); ++j) {
          expanded.push_back(Qualifier::Let(
              q.pattern.elems[j], q.expr->as<CExpr::TupleCons>().elems[j]));
        }
        for (size_t j = i + 1; j < quals.size(); ++j) {
          expanded.push_back(quals[j]);
        }
        state->changed = true;
        return comp::MakeNested(comp::MakeComp(head, std::move(expanded)));
      }
      // Dead lets (no later use of any bound variable) are dropped; the
      // right-hand sides are pure.
      {
        bool any_used = false;
        for (const std::string& v : q.pattern.Vars()) {
          if (UsedFrom(quals, i + 1, head, v)) any_used = true;
        }
        if (!any_used) {
          std::vector<Qualifier> rest;
          for (size_t j = 0; j < quals.size(); ++j) {
            if (j != i) rest.push_back(quals[j]);
          }
          state->changed = true;
          return comp::MakeNested(comp::MakeComp(head, std::move(rest)));
        }
      }
      // Inline simple lets, but never across a group-by that still uses
      // the variable afterwards (group-by lifts it to a bag), and never
      // when a later qualifier rebinds a free variable of the right-hand
      // side (that would capture it).
      if (!q.pattern.is_tuple && IsSimple(q.expr)) {
        const std::string& name = q.pattern.var;
        size_t group_at = quals.size();
        for (size_t j = i + 1; j < quals.size(); ++j) {
          if (quals[j].kind == Qualifier::Kind::kGroupBy) {
            group_at = j;
            break;
          }
        }
        bool used_after_group =
            group_at < quals.size() &&
            UsedPostGroup(quals, group_at, head, name);
        bool captured = false;
        std::set<std::string> rhs_free = comp::FreeVars(q.expr);
        for (size_t j = i + 1; j < quals.size() && !captured; ++j) {
          if (quals[j].kind == Qualifier::Kind::kCondition) continue;
          for (const std::string& v : quals[j].pattern.Vars()) {
            if (rhs_free.count(v) != 0) captured = true;
          }
        }
        // The group-by key itself is evaluated pre-lift, so substituting
        // into it is fine; block only post-group uses.
        if (!used_after_group && !captured) {
          std::map<std::string, CExprPtr> subst{{name, q.expr}};
          std::vector<Qualifier> rest;
          for (size_t j = 0; j < quals.size(); ++j) {
            if (j == i) continue;
            rest.push_back(quals[j]);
          }
          CExprPtr new_head = head;
          ApplySubstFrom(&rest, i, &new_head, subst);
          state->changed = true;
          return comp::MakeNested(comp::MakeComp(new_head, std::move(rest)));
        }
      }
      continue;
    }

    if (q.kind == Qualifier::Kind::kCondition) {
      if (q.expr->is<CExpr::BoolConst>()) {
        if (q.expr->as<CExpr::BoolConst>().value) {
          std::vector<Qualifier> rest;
          for (size_t j = 0; j < quals.size(); ++j) {
            if (j != i) rest.push_back(quals[j]);
          }
          state->changed = true;
          return comp::MakeNested(comp::MakeComp(head, std::move(rest)));
        }
        state->changed = true;
        return comp::MakeBag({});
      }
      if (q.expr->is<CExpr::Bin>()) {
        const auto& b = q.expr->as<CExpr::Bin>();
        if (b.op == BinOp::kEq && comp::Equals(b.lhs, b.rhs)) {
          std::vector<Qualifier> rest;
          for (size_t j = 0; j < quals.size(); ++j) {
            if (j != i) rest.push_back(quals[j]);
          }
          state->changed = true;
          return comp::MakeNested(comp::MakeComp(head, std::move(rest)));
        }
      }
      continue;
    }
  }

  head = NormalizeExprOnce(head, state);

  // { h | }  =  {h}.
  if (quals.empty()) {
    state->changed = true;
    return comp::MakeBag({head});
  }
  return comp::MakeNested(comp::MakeComp(head, std::move(quals)));
}

CExprPtr NormalizeExprOnce(const CExprPtr& e, NormalizeState* state) {
  if (e == nullptr) return e;
  if (e->is<CExpr::Nested>()) {
    return NormalizeCompOnce(e->as<CExpr::Nested>().comp, state);
  }
  if (e->is<CExpr::Bin>()) {
    const auto& b = e->as<CExpr::Bin>();
    return comp::MakeBin(b.op, NormalizeExprOnce(b.lhs, state),
                         NormalizeExprOnce(b.rhs, state));
  }
  if (e->is<CExpr::Un>()) {
    const auto& u = e->as<CExpr::Un>();
    return comp::MakeUn(u.op, NormalizeExprOnce(u.operand, state));
  }
  if (e->is<CExpr::TupleCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::TupleCons>().elems) {
      elems.push_back(NormalizeExprOnce(c, state));
    }
    return comp::MakeTuple(std::move(elems));
  }
  if (e->is<CExpr::RecordCons>()) {
    std::vector<std::pair<std::string, CExprPtr>> fields;
    for (const auto& [n, c] : e->as<CExpr::RecordCons>().fields) {
      fields.emplace_back(n, NormalizeExprOnce(c, state));
    }
    return comp::MakeRecord(std::move(fields));
  }
  if (e->is<CExpr::Proj>()) {
    const auto& p = e->as<CExpr::Proj>();
    // (e1,...,en)._i projects statically.
    CExprPtr base = NormalizeExprOnce(p.base, state);
    if (base->is<CExpr::TupleCons>() && p.field.size() >= 2 &&
        p.field[0] == '_') {
      int idx = std::atoi(p.field.c_str() + 1);
      const auto& elems = base->as<CExpr::TupleCons>().elems;
      if (idx >= 1 && static_cast<size_t>(idx) <= elems.size()) {
        state->changed = true;
        return elems[static_cast<size_t>(idx) - 1];
      }
    }
    if (base->is<CExpr::RecordCons>()) {
      for (const auto& [n, c] : base->as<CExpr::RecordCons>().fields) {
        if (n == p.field) {
          state->changed = true;
          return c;
        }
      }
    }
    return comp::MakeProj(base, p.field);
  }
  if (e->is<CExpr::Call>()) {
    const auto& c = e->as<CExpr::Call>();
    std::vector<CExprPtr> args;
    for (const auto& a : c.args) args.push_back(NormalizeExprOnce(a, state));
    return comp::MakeCall(c.function, std::move(args));
  }
  if (e->is<CExpr::Reduce>()) {
    const auto& r = e->as<CExpr::Reduce>();
    CExprPtr arg = NormalizeExprOnce(r.arg, state);
    // ⊕/{e} = e.
    if (arg->is<CExpr::BagCons>() &&
        arg->as<CExpr::BagCons>().elems.size() == 1) {
      state->changed = true;
      return arg->as<CExpr::BagCons>().elems[0];
    }
    return comp::MakeReduce(r.op, arg);
  }
  if (e->is<CExpr::Range>()) {
    const auto& r = e->as<CExpr::Range>();
    return comp::MakeRange(NormalizeExprOnce(r.lo, state),
                           NormalizeExprOnce(r.hi, state));
  }
  if (e->is<CExpr::Merge>()) {
    const auto& m = e->as<CExpr::Merge>();
    CExprPtr left = NormalizeExprOnce(m.left, state);
    CExprPtr right = NormalizeExprOnce(m.right, state);
    return m.has_op ? comp::MakeMergeOp(m.op, left, right)
                    : comp::MakeMerge(left, right);
  }
  if (e->is<CExpr::BagCons>()) {
    std::vector<CExprPtr> elems;
    for (const auto& c : e->as<CExpr::BagCons>().elems) {
      elems.push_back(NormalizeExprOnce(c, state));
    }
    return comp::MakeBag(std::move(elems));
  }
  return e;
}

}  // namespace

CompPtr RenameBound(const CompPtr& c, comp::NameGen* names) {
  std::map<std::string, CExprPtr> subst;
  std::vector<Qualifier> quals;
  for (const Qualifier& q : c->qualifiers) {
    Qualifier nq = q;
    if (q.expr != nullptr) nq.expr = comp::Substitute(q.expr, subst);
    if (q.kind == Qualifier::Kind::kGenerator ||
        q.kind == Qualifier::Kind::kLet ||
        q.kind == Qualifier::Kind::kGroupBy) {
      nq.pattern = RenamePattern(q.pattern, names, &subst);
    }
    quals.push_back(std::move(nq));
  }
  return comp::MakeComp(comp::Substitute(c->head, subst), std::move(quals));
}

CExprPtr NormalizeExpr(const CExprPtr& e, comp::NameGen* names) {
  CExprPtr cur = e;
  for (int iter = 0; iter < 200; ++iter) {
    NormalizeState state{names};
    CExprPtr next = NormalizeExprOnce(cur, &state);
    cur = next;
    if (!state.changed) break;
  }
  return cur;
}

comp::TargetProgram NormalizeTarget(const comp::TargetProgram& program,
                                    comp::NameGen* names) {
  comp::TargetProgram out;
  for (const auto& s : program.stmts) {
    if (s->is<comp::TargetStmt::Assign>()) {
      const auto& a = s->as<comp::TargetStmt::Assign>();
      out.stmts.push_back(comp::MakeAssign(
          a.var, NormalizeExpr(a.value, names), a.is_array, s->loc));
    } else if (s->is<comp::TargetStmt::While>()) {
      const auto& w = s->as<comp::TargetStmt::While>();
      comp::TargetProgram body;
      body.stmts = w.body;
      comp::TargetProgram norm_body = NormalizeTarget(body, names);
      out.stmts.push_back(comp::MakeWhile(NormalizeExpr(w.cond, names),
                                          std::move(norm_body.stmts),
                                          s->loc));
    } else {
      const auto& d = s->as<comp::TargetStmt::Declare>();
      out.stmts.push_back(comp::MakeDeclare(
          d.var, d.is_array,
          d.init != nullptr ? NormalizeExpr(d.init, names) : nullptr,
          s->loc));
    }
  }
  return out;
}

}  // namespace diablo::normalize
