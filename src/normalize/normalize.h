#ifndef DIABLO_NORMALIZE_NORMALIZE_H_
#define DIABLO_NORMALIZE_NORMALIZE_H_

#include "comp/comp.h"

namespace diablo::normalize {

/// Normalizes a comprehension expression to the flat form used by the
/// optimizer and planner:
///
///  * Rule (2): a generator over a nested comprehension is unnested into
///    the outer qualifier list (with alpha-renaming to avoid capture);
///    only applied when the nested comprehension has no group-by.
///  * A generator over a singleton bag {e} becomes `let p = e`; a
///    generator over the empty bag collapses the whole comprehension to
///    the empty bag.
///  * `let v = e` with a simple right-hand side (variable, constant,
///    projection or tuple of simple terms) is inlined into later
///    qualifiers and the head — but never across a group-by that still
///    uses the variable afterwards, since group-by lifts variables to
///    bags.
///  * `let (p1,...,pn) = (e1,...,en)` is split componentwise.
///  * Trivial conditions (`true`, `x == x`) are dropped; a constant
///    `false` condition collapses the comprehension to the empty bag.
///  * `{ h | }` becomes the bag literal {h}; `⊕/{e}` becomes e.
///
/// The function is a fixpoint: it reapplies the rules until nothing
/// changes (bounded by an internal iteration cap).
comp::CExprPtr NormalizeExpr(const comp::CExprPtr& e, comp::NameGen* names);

/// Normalizes every comprehension inside a target program.
comp::TargetProgram NormalizeTarget(const comp::TargetProgram& program,
                                    comp::NameGen* names);

/// Alpha-renames all variables bound inside `c` to fresh names (used
/// before splicing a nested comprehension into an outer one).
comp::CompPtr RenameBound(const comp::CompPtr& c, comp::NameGen* names);

}  // namespace diablo::normalize

#endif  // DIABLO_NORMALIZE_NORMALIZE_H_
