#include "dist/chaos.h"

#include <cstddef>
#include <utility>

namespace diablo::dist {

namespace {

/// splitmix64 finalizer, same mixing discipline as runtime/fault.cc.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t kKillStream = 0xc4a21d05ull;

}  // namespace

ChaosSchedule::ChaosSchedule(ChaosConfig config)
    : config_(std::move(config)), consumed_(config_.kills.size(), false) {}

bool ChaosSchedule::ShouldKill(int stage, int worker, int results) {
  for (std::size_t i = 0; i < config_.kills.size(); ++i) {
    const ChaosKill& k = config_.kills[i];
    if (!consumed_[i] && k.stage == stage && k.worker == worker &&
        k.after_results == results) {
      consumed_[i] = true;
      return true;
    }
  }
  if (config_.kill_rate > 0) {
    uint64_t h = Mix(config_.seed ^ (kKillStream * 0xd6e8feb86659fd93ull));
    h = Mix(h ^ static_cast<uint64_t>(stage));
    h = Mix(h ^ static_cast<uint64_t>(worker));
    h = Mix(h ^ static_cast<uint64_t>(results));
    double draw = static_cast<double>(h >> 11) * 0x1.0p-53;
    return draw < config_.kill_rate;
  }
  return false;
}

}  // namespace diablo::dist
