#ifndef DIABLO_DIST_CHAOS_H_
#define DIABLO_DIST_CHAOS_H_

#include <cstdint>
#include <vector>

namespace diablo::dist {

/// Deterministic SIGKILL schedules for the distributed backend's chaos
/// harness (`diablo_run --chaos-kill`). Kills are decided from pure
/// draws over (seed, stage, worker, results-installed-so-far), the same
/// discipline as runtime/fault.h: re-running with the printed seed
/// reproduces the exact kill schedule because task assignment is static
/// (task i -> worker i mod W at wave start, dead workers' tasks
/// redistributed round-robin over survivors in id order) and the
/// trigger coordinate is the coordinator-side count of installed
/// results per worker — cumulative across respawns, immune to socket
/// timing.

/// Explicit directive: SIGKILL `worker` during stage `stage` right
/// after its `after_results`-th result is installed (0 = on first
/// dispatch of the stage, before any result). Consumed once.
struct ChaosKill {
  int stage = 0;
  int worker = 0;
  int after_results = 0;
};

struct ChaosConfig {
  /// Seed for rate-based draws; also echoed to stderr by diablo_run so
  /// any observed schedule can be replayed.
  uint64_t seed = 0;
  /// Per-(stage, worker, result-count) probability of a SIGKILL.
  double kill_rate = 0.0;
  /// Explicit one-shot kill directives.
  std::vector<ChaosKill> kills;

  bool enabled() const { return kill_rate > 0 || !kills.empty(); }
};

/// Stateful schedule: explicit directives are consumed once (a
/// respawned worker reaching the same result count must not die again
/// forever), rate draws are pure and never repeat a coordinate.
class ChaosSchedule {
 public:
  ChaosSchedule() = default;
  explicit ChaosSchedule(ChaosConfig config);

  const ChaosConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// Should `worker` be SIGKILLed now, given that `results` of its
  /// results have been installed during stage `stage`? Consumes a
  /// matching explicit directive.
  bool ShouldKill(int stage, int worker, int results);

 private:
  ChaosConfig config_;
  std::vector<bool> consumed_;
};

}  // namespace diablo::dist

#endif  // DIABLO_DIST_CHAOS_H_
