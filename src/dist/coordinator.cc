#include "dist/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "runtime/events.h"

namespace diablo::dist {

namespace {

using Clock = std::chrono::steady_clock;

int64_t MsSince(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - then)
      .count();
}

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

/// One forked worker, as the coordinator sees it. Survives its own
/// death bookkeeping: a dead worker keeps its id (chaos coordinates and
/// logs stay stable) and, when respawned, its cumulative per-wave
/// result count.
struct WorkerState {
  pid_t pid = -1;
  int fd = -1;
  bool connected = false;
  bool alive = false;
  FrameReader reader;
  Clock::time_point last_heard;
  int in_flight = -1;
  Clock::time_point dispatched_at;
  std::deque<int> queue;
  /// Worker steady clock minus coordinator steady clock (µs), measured
  /// when the Hello arrived; rebases telemetry span times.
  double clock_offset_us = 0;
  /// Results installed from this worker id during the current wave,
  /// cumulative across respawns — the chaos-kill trigger coordinate.
  int results_in_wave = 0;
  /// Highest result count already tested against the chaos schedule,
  /// so a respawned worker never re-draws an already-survived
  /// coordinate (that would re-kill it forever under a kill rate).
  int chaos_checked_through = -1;
};

struct TaskState {
  bool done = false;
  /// Next simulated attempt number (coordinator-side mirror of the
  /// engine's per-task attempt counter; begin_attempt is only called
  /// for attempts inside the simulated budget so local and distributed
  /// runs charge identical attempt counts).
  int next_sim_attempt = 0;
  /// Simulated attempt currently (or last) dispatched.
  int cur_attempt = -1;
  /// True when the task lost its worker mid-flight and must re-run the
  /// same simulated attempt on a survivor.
  bool redispatch_same = false;
  int real_retries = 0;
  Status failure;  // genuine task failure, reported at wave end
  bool failed = false;
};

/// Accepted connection that has not yet identified itself with Hello.
struct PendingConn {
  int fd = -1;
  FrameReader reader;
};

}  // namespace

Coordinator::Coordinator(DistConfig config)
    : config_(std::move(config)), chaos_(config_.chaos) {
  config_.num_workers = std::max(config_.num_workers, 1);
  config_.heartbeat_ms = std::max(config_.heartbeat_ms, 10);
  config_.missed_beats = std::max(config_.missed_beats, 1);
  config_.task_deadline_ms = std::max(config_.task_deadline_ms, 50);
  config_.max_task_retries = std::max(config_.max_task_retries, 0);
  config_.max_respawns = std::max(config_.max_respawns, 0);
}

Status Coordinator::RunWave(const runtime::RemoteTaskWave& wave,
                            runtime::RemoteWaveStats* stats) {
  const int num_tasks = static_cast<int>(wave.task_work.size());
  if (num_tasks == 0) return Status::OK();
  const int num_workers = config_.num_workers;
  const uint64_t token = next_token_++;

  uint16_t port = 0;
  DIABLO_ASSIGN_OR_RETURN(int listen_fd, ListenLoopback(&port));

  std::vector<WorkerState> workers(num_workers);
  std::vector<TaskState> tasks(num_tasks);
  std::vector<PendingConn> pending;
  std::vector<pid_t> to_reap;
  int tasks_done = 0;

  auto log = [this, &wave](const std::string& line) {
    if (config_.verbose) {
      std::fprintf(stderr, "diablo-dist: stage %d %s\n", wave.stage,
                   line.c_str());
    }
  };

  // Structured event sink; every emission is gated on the null test so
  // runs without --events-out stay byte-identical.
  runtime::EventLog* events = config_.events;

  // Forks one child for worker slot `w`. The child sheds every fd it
  // inherited from the coordinator (listener + peers), then serves the
  // wave closures it got for free via copy-on-write. _exit only: the
  // child must not run the coordinator's atexit/leak machinery.
  auto spawn = [&](int w) -> Status {
    WorkerParams params;
    params.worker_id = w;
    params.port = port;
    params.token = token;
    params.heartbeat_ms = config_.heartbeat_ms;
    params.connect_attempts = config_.connect_attempts;
    params.connect_backoff_ms = config_.connect_backoff_ms;
    params.telemetry = wave.want_telemetry;
    if (w == config_.stall_worker) params.stall_ms = config_.stall_ms;
    pid_t pid = fork();
    if (pid < 0) {
      return Status::DistError(StrCat("fork: ", std::strerror(errno)));
    }
    if (pid == 0) {
      CloseFd(listen_fd);
      for (const WorkerState& other : workers) CloseFd(other.fd);
      for (const PendingConn& conn : pending) CloseFd(conn.fd);
      WorkerMain(params, wave);  // never returns
    }
    WorkerState& ws = workers[w];
    ws.pid = pid;
    ws.fd = -1;
    ws.connected = false;
    ws.alive = true;
    ws.reader = FrameReader();
    ws.last_heard = Clock::now();
    return Status::OK();
  };

  // Static round-robin assignment fixes which worker owns which task
  // before any socket timing can interfere — the foundation of chaos
  // reproducibility.
  for (int p = 0; p < num_tasks; ++p) {
    workers[p % num_workers].queue.push_back(p);
  }

  Status wave_error;  // first backend-level (non-task) failure

  auto fail_wave = [&](Status st) {
    if (wave_error.ok()) wave_error = std::move(st);
  };

  auto record_task_failure = [&](int p, Status st) {
    TaskState& task = tasks[p];
    if (!task.done) {
      task.done = true;
      ++tasks_done;
    }
    task.failed = true;
    task.failure = std::move(st);
  };

  std::function<void(int, const char*)> declare_dead;

  // SIGKILLs `w` per the chaos schedule if its current result count has
  // an unconsumed kill scheduled. Checked when a worker connects
  // (count 0: kill before any result) and after every installed result.
  auto maybe_chaos_kill = [&](int w) {
    WorkerState& ws = workers[w];
    if (!chaos_.enabled() || !ws.alive) return;
    if (ws.results_in_wave <= ws.chaos_checked_through) return;
    ws.chaos_checked_through = ws.results_in_wave;
    if (!chaos_.ShouldKill(wave.stage, w, ws.results_in_wave)) return;
    ++chaos_kills_;
    std::fprintf(stderr,
                 "diablo-dist: chaos kill worker %d pid %ld (stage %d, "
                 "after %d results)\n",
                 w, static_cast<long>(ws.pid), wave.stage,
                 ws.results_in_wave);
    if (events != nullptr) {
      runtime::Event e;
      e.name = "chaos_kill";
      e.stage_id = wave.stage;
      e.ints.emplace_back("worker", w);
      e.ints.emplace_back("after_results", ws.results_in_wave);
      events->Emit(std::move(e));
    }
    kill(ws.pid, SIGKILL);
    declare_dead(w, "chaos kill");
  };

  // Hands the next dispatchable task to `w`, running the simulated
  // fault loop (begin_attempt / sim_kill / charge_failure) exactly as
  // the local scheduler would, so distributed runs charge the same
  // simulated attempts, backoff, and straggler time.
  auto dispatch_next = [&](int w) {
    WorkerState& ws = workers[w];
    while (ws.alive && ws.connected && ws.in_flight < 0 &&
           !ws.queue.empty() && wave_error.ok()) {
      int p = ws.queue.front();
      ws.queue.pop_front();
      TaskState& task = tasks[p];
      if (task.done) continue;
      int attempt = task.cur_attempt;
      if (!task.redispatch_same) {
        // Simulated attempt loop (mirrors the local scheduler).
        bool exhausted = false;
        for (;;) {
          if (task.next_sim_attempt >= wave.max_sim_attempts) {
            record_task_failure(p, wave.sim_budget_exhausted(p));
            exhausted = true;
            break;
          }
          attempt = task.next_sim_attempt++;
          wave.begin_attempt(p);
          if (wave.sim_kill(p, attempt)) {
            wave.charge_failure(p, attempt);
            continue;
          }
          break;
        }
        if (exhausted) continue;
      }
      task.cur_attempt = attempt;
      task.redispatch_same = false;
      Status sent =
          SendFrame(ws.fd, FrameType::kTask, EncodeTaskPayload(p, attempt));
      if (!sent.ok()) {
        // Dead socket: the liveness machinery handles the worker; the
        // task goes back to the front so redistribution picks it up.
        task.redispatch_same = true;
        ws.queue.push_front(p);
        declare_dead(w, "send failed");
        return;
      }
      ws.in_flight = p;
      ws.dispatched_at = Clock::now();
      ++stats->tasks;
      wave.on_dispatch(p, attempt, w);
    }
  };

  declare_dead = [&](int w, const char* reason) {
    WorkerState& ws = workers[w];
    if (!ws.alive) return;
    ws.alive = false;
    ws.connected = false;
    CloseFd(ws.fd);
    ws.fd = -1;
    if (ws.pid > 0) {
      kill(ws.pid, SIGKILL);
      to_reap.push_back(ws.pid);
      ws.pid = -1;
    }
    ++stats->workers_lost;

    // Everything this worker still owed: the in-flight task (re-run on
    // the same simulated attempt) plus its undispatched queue.
    std::vector<int> owed;
    if (ws.in_flight >= 0) {
      int p = ws.in_flight;
      ws.in_flight = -1;
      TaskState& task = tasks[p];
      if (!task.done) {
        ++task.real_retries;
        ++stats->real_retries;
        if (task.real_retries > config_.max_task_retries) {
          fail_wave(Status::DistError(
              StrCat("stage #", wave.stage, " '", wave.label,
                     "': task ", p, " lost its worker ", task.real_retries,
                     " times; real retry budget (", config_.max_task_retries,
                     ") exhausted")));
        } else {
          task.redispatch_same = true;
          owed.push_back(p);
        }
      }
    }
    for (int p : ws.queue) {
      if (!tasks[p].done) owed.push_back(p);
    }
    ws.queue.clear();
    log(StrCat("worker ", w, " lost (", reason, "); ", owed.size(),
               " tasks re-admitted"));
    if (events != nullptr) {
      runtime::Event e;
      e.name = "worker_lost";
      e.stage_id = wave.stage;
      e.ints.emplace_back("worker", w);
      e.ints.emplace_back("tasks_readmitted",
                          static_cast<int64_t>(owed.size()));
      e.strs.emplace_back("reason", reason);
      events->Emit(std::move(e));
      if (std::strcmp(reason, "heartbeat timeout") == 0) {
        runtime::Event hb;
        hb.name = "heartbeat_loss";
        hb.stage_id = wave.stage;
        hb.ints.emplace_back("worker", w);
        events->Emit(std::move(hb));
      }
    }
    wave.on_worker_lost(w, owed, reason);

    // Degrade onto survivors, round-robin in id order; respawn is the
    // last resort when nobody survived.
    std::vector<int> survivors;
    for (int i = 0; i < num_workers; ++i) {
      if (workers[i].alive) survivors.push_back(i);
    }
    if (survivors.empty()) {
      if (!owed.empty() || tasks_done < num_tasks) {
        if (respawns_used_ >= config_.max_respawns) {
          fail_wave(Status::DistError(
              StrCat("stage #", wave.stage, " '", wave.label,
                     "': all workers dead; respawn budget (",
                     config_.max_respawns, ") exhausted")));
          return;
        }
        ++respawns_used_;
        log(StrCat("respawning worker ", w, " (", respawns_used_, "/",
                   config_.max_respawns, " respawns used)"));
        if (events != nullptr) {
          runtime::Event e;
          e.name = "worker_respawn";
          e.stage_id = wave.stage;
          e.ints.emplace_back("worker", w);
          e.ints.emplace_back("respawns_used", respawns_used_);
          events->Emit(std::move(e));
        }
        Status st = spawn(w);
        if (!st.ok()) {
          fail_wave(std::move(st));
          return;
        }
        for (int p : owed) workers[w].queue.push_back(p);
      }
      return;
    }
    size_t next = 0;
    for (int p : owed) {
      workers[survivors[next % survivors.size()]].queue.push_back(p);
      ++next;
    }
    for (int s : survivors) dispatch_next(s);
  };

  auto handle_result = [&](int w, const std::string& payload) {
    WorkerState& ws = workers[w];
    int p = 0;
    int attempt = 0;
    Status task_status;
    std::string slots;
    Status decoded =
        DecodeTaskResultPayload(payload, &p, &attempt, &task_status, &slots);
    if (!decoded.ok() || p < 0 || p >= num_tasks) {
      declare_dead(w, "corrupt task result");
      return;
    }
    if (ws.in_flight != p) {
      // A result for a task this worker no longer owns (e.g. it was
      // re-dispatched after a deadline while the reply was in the
      // pipe). Drop it; the owning dispatch wins.
      return;
    }
    ws.in_flight = -1;
    TaskState& task = tasks[p];
    if (task.done) {
      dispatch_next(w);
      return;
    }
    if (task_status.ok()) {
      Status installed = wave.install(p, slots);
      if (!installed.ok()) {
        declare_dead(w, "corrupt result slots");
        return;
      }
      wave.charge_success(p, attempt);
      task.done = true;
      ++tasks_done;
      stats->result_bytes += static_cast<int64_t>(slots.size());
      ++ws.results_in_wave;
      wave.on_complete(p, attempt, w);
      maybe_chaos_kill(w);
    } else if (task_status.code() == StatusCode::kTaskLost) {
      // Simulated in-task fault (e.g. corrupt shuffle row): retryable,
      // next simulated attempt.
      wave.charge_failure(p, attempt);
      ws.queue.push_front(p);
    } else {
      record_task_failure(p, std::move(task_status));
    }
    if (workers[w].alive) dispatch_next(w);
  };

  auto drain_worker = [&](int w) {
    WorkerState& ws = workers[w];
    char buf[64 * 1024];
    ssize_t n = recv(ws.fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) return;
      declare_dead(w, n == 0 ? "connection closed" : "recv failed");
      return;
    }
    ws.reader.Feed(buf, static_cast<size_t>(n));
    ws.last_heard = Clock::now();
    Frame frame;
    for (;;) {
      auto done_or = ws.reader.Next(&frame);
      if (!done_or.ok()) {
        declare_dead(w, "corrupt frame");
        return;
      }
      if (!*done_or) return;
      switch (frame.type) {
        case FrameType::kHeartbeat:
          break;  // last_heard already refreshed
        case FrameType::kTelemetry: {
          // Arrives just before its task result (same socket, so order
          // is guaranteed); splice it while the task is still in
          // flight so on_complete can see it happened.
          runtime::WorkerTelemetry telemetry;
          if (!DecodeTelemetryPayload(frame.payload, &telemetry).ok()) {
            declare_dead(w, "corrupt telemetry");
            return;
          }
          if (wave.on_telemetry) {
            wave.on_telemetry(w, ws.clock_offset_us, telemetry);
          }
          break;
        }
        case FrameType::kTaskResult:
          handle_result(w, frame.payload);
          if (!workers[w].alive) return;  // reader is gone
          break;
        default:
          declare_dead(w, "unexpected frame type");
          return;
      }
    }
  };

  auto drain_pending = [&](size_t i) -> bool {
    // Returns false when the connection was closed/consumed.
    PendingConn& conn = pending[i];
    char buf[4096];
    ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) return true;
      CloseFd(conn.fd);
      return false;
    }
    conn.reader.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    auto done_or = conn.reader.Next(&frame);
    if (!done_or.ok()) {
      CloseFd(conn.fd);
      return false;
    }
    if (!*done_or) return true;  // Hello not complete yet
    int worker_id = 0;
    int64_t pid = 0;
    uint64_t hello_token = 0;
    double worker_steady_us = 0;
    if (frame.type != FrameType::kHello ||
        !DecodeHelloPayload(frame.payload, &worker_id, &pid, &hello_token,
                            &worker_steady_us)
             .ok() ||
        hello_token != token || worker_id < 0 || worker_id >= num_workers ||
        !workers[worker_id].alive || workers[worker_id].connected) {
      CloseFd(conn.fd);
      return false;
    }
    WorkerState& ws = workers[worker_id];
    // Clock alignment: the worker stamped its steady clock just before
    // sending the Hello; subtracting our reading now measures the
    // offset plus one-way latency. Forked workers on one host share
    // CLOCK_MONOTONIC, so the residual is pure latency — the engine
    // collapses sub-threshold offsets to zero when splicing spans.
    ws.clock_offset_us = worker_steady_us - SteadyNowUs();
    if (!SendFrame(conn.fd, FrameType::kHelloAck, std::string()).ok()) {
      CloseFd(conn.fd);
      return false;
    }
    ws.fd = conn.fd;
    ws.connected = true;
    ws.reader = std::move(conn.reader);
    ws.last_heard = Clock::now();
    log(StrCat("worker ", worker_id, " connected (pid ", pid, ")"));
    maybe_chaos_kill(worker_id);
    if (workers[worker_id].alive) dispatch_next(worker_id);
    return false;  // fd ownership moved to the worker slot
  };

  for (int w = 0; w < num_workers && wave_error.ok(); ++w) {
    Status st = spawn(w);
    if (!st.ok()) fail_wave(std::move(st));
  }

  // Backstop so no chaos schedule, however hostile, can hang the wave:
  // generous enough for every task to burn its full deadline budget.
  const int64_t stall_budget_ms =
      static_cast<int64_t>(config_.task_deadline_ms) *
          (num_tasks + config_.max_task_retries + config_.max_respawns + 2) +
      static_cast<int64_t>(config_.heartbeat_ms) * config_.missed_beats * 4;
  const Clock::time_point wave_start = Clock::now();

  while (wave_error.ok() && tasks_done < num_tasks) {
    // Liveness sweeps: child exits, heartbeat silence, task deadlines.
    const Clock::time_point now = Clock::now();
    for (int w = 0; w < num_workers && wave_error.ok(); ++w) {
      WorkerState& ws = workers[w];
      if (!ws.alive) continue;
      int wstatus = 0;
      pid_t reaped = waitpid(ws.pid, &wstatus, WNOHANG);
      if (reaped == ws.pid) {
        ws.pid = -1;  // already reaped
        declare_dead(w, "process exited");
        continue;
      }
      if (MsSince(ws.last_heard, now) >
          static_cast<int64_t>(config_.heartbeat_ms) * config_.missed_beats) {
        declare_dead(w, "heartbeat timeout");
        continue;
      }
      if (ws.in_flight >= 0 &&
          MsSince(ws.dispatched_at, now) > config_.task_deadline_ms) {
        declare_dead(w, "task deadline exceeded");
        continue;
      }
    }
    if (!wave_error.ok()) break;
    if (MsSince(wave_start, now) > stall_budget_ms) {
      fail_wave(Status::DistError(
          StrCat("stage #", wave.stage, " '", wave.label,
                 "': wave stalled past its ", stall_budget_ms,
                 "ms backstop (", tasks_done, "/", num_tasks,
                 " tasks done)")));
      break;
    }

    std::vector<pollfd> fds;
    std::vector<int> fd_owner;  // -1 = listener, -2-i = pending i, else worker
    fds.push_back({listen_fd, POLLIN, 0});
    fd_owner.push_back(-1);
    for (size_t i = 0; i < pending.size(); ++i) {
      fds.push_back({pending[i].fd, POLLIN, 0});
      fd_owner.push_back(-2 - static_cast<int>(i));
    }
    for (int w = 0; w < num_workers; ++w) {
      if (workers[w].alive && workers[w].connected) {
        fds.push_back({workers[w].fd, POLLIN, 0});
        fd_owner.push_back(w);
      }
    }
    int poll_ms = std::min(config_.heartbeat_ms, 50);
    int ready = poll(fds.data(), fds.size(), poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail_wave(Status::DistError(StrCat("poll: ", std::strerror(errno))));
      break;
    }
    if (ready == 0) continue;

    std::vector<size_t> consumed_pending;
    for (size_t i = 0; i < fds.size() && wave_error.ok(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      int owner = fd_owner[i];
      if (owner == -1) {
        int conn_fd = accept(listen_fd, nullptr, nullptr);
        if (conn_fd >= 0) pending.push_back(PendingConn{conn_fd, {}});
      } else if (owner <= -2) {
        size_t idx = static_cast<size_t>(-owner - 2);
        if (!drain_pending(idx)) consumed_pending.push_back(idx);
      } else {
        if (workers[owner].alive && workers[owner].connected) {
          drain_worker(owner);
        }
      }
    }
    for (auto it = consumed_pending.rbegin(); it != consumed_pending.rend();
         ++it) {
      pending.erase(pending.begin() + static_cast<long>(*it));
    }
  }

  // Teardown: polite shutdown, then SIGKILL, then reap every child so
  // no zombie outlives the wave.
  for (WorkerState& ws : workers) {
    if (ws.alive && ws.connected) {
      SendFrame(ws.fd, FrameType::kShutdown, std::string());
    }
    CloseFd(ws.fd);
    ws.fd = -1;
    if (ws.pid > 0) {
      kill(ws.pid, SIGKILL);
      to_reap.push_back(ws.pid);
      ws.pid = -1;
    }
  }
  for (const PendingConn& conn : pending) CloseFd(conn.fd);
  CloseFd(listen_fd);
  for (pid_t pid : to_reap) {
    int wstatus = 0;
    while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
  }

  if (!wave_error.ok()) return wave_error;
  // Lowest-index genuine failure wins, matching the local scheduler's
  // in-order sweep.
  for (int p = 0; p < num_tasks; ++p) {
    if (tasks[p].failed) return tasks[p].failure;
  }
  return Status::OK();
}

}  // namespace diablo::dist
