#include "dist/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/strings.h"

namespace diablo::dist {

namespace {

Status Errno(const char* what) {
  return Status::DistError(StrCat(what, ": ", std::strerror(errno)));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: heartbeats and small control frames must not sit in
  // Nagle buffers behind a large task-result write.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

StatusOr<int> ListenLoopback(uint16_t* port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(0);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    CloseFd(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    CloseFd(fd);
    return st;
  }
  if (listen(fd, SOMAXCONN) != 0) {
    Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  *port = ntohs(addr.sin_port);
  return fd;
}

StatusOr<int> ConnectWithBackoff(uint16_t port, int attempts,
                                 int backoff_ms) {
  attempts = std::max(attempts, 1);
  int delay_ms = std::max(backoff_ms, 1);
  Status last = Status::DistError("connect: no attempts made");
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      delay_ms = std::min(delay_ms * 2, 2000);
    }
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    sockaddr_in addr = LoopbackAddr(port);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      return fd;
    }
    last = Errno("connect");
    CloseFd(fd);
  }
  return last;
}

Status SendFrame(int fd, FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  EncodeFrame(type, payload, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n =
        send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (n == 0) return Status::DistError("send: peer closed connection");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> RecvFrameBlocking(int fd, FrameReader* reader) {
  Frame frame;
  for (;;) {
    DIABLO_ASSIGN_OR_RETURN(bool done, reader->Next(&frame));
    if (done) return frame;
    char buf[64 * 1024];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::DistError("recv: peer closed connection");
    reader->Feed(buf, static_cast<size_t>(n));
  }
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

}  // namespace diablo::dist
