#ifndef DIABLO_DIST_WORKER_H_
#define DIABLO_DIST_WORKER_H_

#include <cstdint>
#include <string>

#include "runtime/remote.h"

namespace diablo::dist {

/// Parameters a forked worker child needs to join the coordinator.
struct WorkerParams {
  int worker_id = 0;
  /// Coordinator's loopback listen port.
  uint16_t port = 0;
  /// Per-wave session token; the coordinator rejects Hellos from stale
  /// children of earlier waves racing the accept loop.
  uint64_t token = 0;
  int heartbeat_ms = 250;
  int connect_attempts = 10;
  int connect_backoff_ms = 10;
  /// Test hook: sleep this long before running every task, so a
  /// deadline/heartbeat test can make one worker pathologically slow
  /// without real clock dependence in assertions.
  int stall_ms = 0;
  /// Record task spans + process counters and ship them in a kTelemetry
  /// frame before every successful task result.
  bool telemetry = false;
};

/// Body of a forked worker child. Connects back to the coordinator,
/// handshakes, starts a heartbeat thread, then serves kTask frames by
/// running the wave's closures against the child's copy-on-write
/// snapshot of the driver state until kShutdown/EOF. Never returns:
/// ends in _exit() so the child skips atexit handlers and leak checks
/// that belong to the coordinator process.
[[noreturn]] void WorkerMain(const WorkerParams& params,
                             const runtime::RemoteTaskWave& wave);

/// Payload builders/parsers shared by worker and coordinator (and
/// exercised directly in tests). The hello carries the worker's
/// absolute steady-clock reading (µs) taken just before the send; the
/// coordinator subtracts its own reading at receive to measure the
/// clock offset used to rebase telemetry span times.
std::string EncodeHelloPayload(int worker_id, int64_t pid, uint64_t token,
                               double steady_now_us);
Status DecodeHelloPayload(const std::string& payload, int* worker_id,
                          int64_t* pid, uint64_t* token,
                          double* steady_now_us);
std::string EncodeTaskPayload(int p, int attempt);
Status DecodeTaskPayload(const std::string& payload, int* p, int* attempt);
std::string EncodeTaskResultPayload(int p, int attempt, const Status& status,
                                    const std::string& slots);
Status DecodeTaskResultPayload(const std::string& payload, int* p,
                               int* attempt, Status* task_status,
                               std::string* slots);
/// kTelemetry payload: task + attempt it accompanies, worker peak RSS,
/// and the spans recorded while running the task (absolute worker
/// steady-clock times; see runtime::WorkerTelemetry).
std::string EncodeTelemetryPayload(const runtime::WorkerTelemetry& telemetry);
Status DecodeTelemetryPayload(const std::string& payload,
                              runtime::WorkerTelemetry* telemetry);

}  // namespace diablo::dist

#endif  // DIABLO_DIST_WORKER_H_
