#ifndef DIABLO_DIST_TRANSPORT_H_
#define DIABLO_DIST_TRANSPORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dist/wire.h"

namespace diablo::dist {

/// Thin blocking-socket helpers for the loopback coordinator/worker
/// link. All fds are plain ints owned by the caller; CloseFd is
/// idempotent on -1 so teardown paths can be unconditional.

/// Binds a listening TCP socket to 127.0.0.1 on an ephemeral port.
/// Returns the fd and stores the chosen port in `*port`.
StatusOr<int> ListenLoopback(uint16_t* port);

/// Connects to 127.0.0.1:`port`, retrying with exponential backoff
/// (`backoff_ms`, doubling per attempt) up to `attempts` tries. Used by
/// workers racing the coordinator's accept loop right after fork.
StatusOr<int> ConnectWithBackoff(uint16_t port, int attempts,
                                 int backoff_ms);

/// Writes the full frame for (type, payload) to `fd`. Short writes are
/// resumed; EPIPE/ECONNRESET surface as a Status (MSG_NOSIGNAL — a dead
/// peer must never SIGPIPE the coordinator).
Status SendFrame(int fd, FrameType type, const std::string& payload);

/// Blocks until one full frame arrives on `fd` via `reader`, which
/// carries stream state across calls. EOF and corrupt framing are
/// errors.
StatusOr<Frame> RecvFrameBlocking(int fd, FrameReader* reader);

/// close() if `fd` >= 0; ignores errors.
void CloseFd(int fd);

}  // namespace diablo::dist

#endif  // DIABLO_DIST_TRANSPORT_H_
