#ifndef DIABLO_DIST_COORDINATOR_H_
#define DIABLO_DIST_COORDINATOR_H_

#include <cstdint>

#include "common/status.h"
#include "dist/chaos.h"
#include "runtime/remote.h"

namespace diablo::runtime {
class EventLog;
}  // namespace diablo::runtime

namespace diablo::dist {

/// Knobs of the multi-process distributed backend.
struct DistConfig {
  /// Worker processes forked per task wave.
  int num_workers = 2;
  /// Worker heartbeat period.
  int heartbeat_ms = 250;
  /// A worker is declared dead after this many missed heartbeats
  /// (timeout = heartbeat_ms * missed_beats). The budget also covers
  /// the post-fork connect window.
  int missed_beats = 8;
  /// Per-task wall-clock deadline; a worker that holds a task longer is
  /// declared dead and the task is re-dispatched.
  int task_deadline_ms = 30000;
  /// Real-retry budget: how many times one task may be re-dispatched
  /// after losing its worker before the wave fails. Separate from the
  /// simulated retry budget (FaultConfig::max_task_attempts) — a real
  /// re-dispatch re-runs the SAME simulated attempt.
  int max_task_retries = 3;
  /// How many dead workers may be re-forked per job. Respawn is the
  /// last resort, used only when a wave has no surviving worker;
  /// otherwise dead workers' tasks degrade onto survivors.
  int max_respawns = 4;
  /// Worker-side reconnect backoff (doubles per attempt).
  int connect_backoff_ms = 10;
  int connect_attempts = 10;
  /// Test hooks: make one worker sleep before every task, so deadline
  /// and heartbeat recovery can be exercised deterministically.
  int stall_worker = -1;
  int stall_ms = 0;
  /// SIGKILL schedule for the chaos harness.
  ChaosConfig chaos;
  /// Log kills/deaths/respawns to stderr.
  bool verbose = false;
  /// Structured event sink (chaos_kill / worker_lost / heartbeat_loss /
  /// worker_respawn events); null disables emission. Not owned.
  runtime::EventLog* events = nullptr;
};

/// Multi-process wave executor: forks `num_workers` children per wave
/// (copy-on-write gives them the wave closures for free), serves them
/// tasks over loopback TCP with CRC-framed messages, and survives
/// worker death via heartbeats, deadlines, task re-dispatch, and
/// bounded respawn. Plugged into the engine via
/// EngineConfig::remote.
class Coordinator : public runtime::RemoteExecutor {
 public:
  explicit Coordinator(DistConfig config);

  Status RunWave(const runtime::RemoteTaskWave& wave,
                 runtime::RemoteWaveStats* stats) override;

  const DistConfig& config() const { return config_; }
  /// Workers SIGKILLed by the chaos schedule so far (all waves).
  int chaos_kills() const { return chaos_kills_; }
  /// Respawn budget consumed so far (all waves).
  int respawns_used() const { return respawns_used_; }

 private:
  DistConfig config_;
  ChaosSchedule chaos_;
  uint64_t next_token_ = 1;
  int respawns_used_ = 0;
  int chaos_kills_ = 0;
};

}  // namespace diablo::dist

#endif  // DIABLO_DIST_COORDINATOR_H_
