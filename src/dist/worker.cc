#include "dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/strings.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "runtime/metrics_registry.h"
#include "runtime/serialize.h"

namespace diablo::dist {

namespace {

using runtime::GetWireU32;
using runtime::GetWireU64;
using runtime::PutWireU32;
using runtime::PutWireU64;

Status RebuildStatus(uint32_t code, std::string msg) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kRestrictionViolation:
      return Status::RestrictionViolation(std::move(msg));
    case StatusCode::kTranslationError:
      return Status::TranslationError(std::move(msg));
    case StatusCode::kRuntimeError:
      return Status::RuntimeError(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(msg));
    case StatusCode::kTaskLost:
      return Status::TaskLost(std::move(msg));
    case StatusCode::kDistError:
      return Status::DistError(std::move(msg));
  }
  return Status::DistError(StrCat("unknown status code ", code,
                                  " in task result: ", msg));
}

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Heartbeats share the task-result socket, so every send goes through
/// one mutex; interleaving a heartbeat inside a half-written result
/// frame would corrupt the stream.
struct LockedSender {
  int fd;
  std::mutex mu;

  Status Send(FrameType type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    return SendFrame(fd, type, payload);
  }
};

}  // namespace

std::string EncodeHelloPayload(int worker_id, int64_t pid, uint64_t token,
                               double steady_now_us) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(worker_id), &out);
  PutWireU64(static_cast<uint64_t>(pid), &out);
  PutWireU64(token, &out);
  PutWireU64(DoubleBits(steady_now_us), &out);
  return out;
}

Status DecodeHelloPayload(const std::string& payload, int* worker_id,
                          int64_t* pid, uint64_t* token,
                          double* steady_now_us) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t id, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint64_t p, GetWireU64(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint64_t t, GetWireU64(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint64_t now_bits, GetWireU64(payload, &offset));
  if (offset != payload.size()) {
    return Status::DistError("trailing bytes in hello payload");
  }
  *worker_id = static_cast<int>(id);
  *pid = static_cast<int64_t>(p);
  *token = t;
  *steady_now_us = DoubleFromBits(now_bits);
  return Status::OK();
}

std::string EncodeTaskPayload(int p, int attempt) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(p), &out);
  PutWireU32(static_cast<uint32_t>(attempt), &out);
  return out;
}

Status DecodeTaskPayload(const std::string& payload, int* p, int* attempt) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t task, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t att, GetWireU32(payload, &offset));
  if (offset != payload.size()) {
    return Status::DistError("trailing bytes in task payload");
  }
  *p = static_cast<int>(task);
  *attempt = static_cast<int>(att);
  return Status::OK();
}

std::string EncodeTaskResultPayload(int p, int attempt, const Status& status,
                                    const std::string& slots) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(p), &out);
  PutWireU32(static_cast<uint32_t>(attempt), &out);
  PutWireU32(static_cast<uint32_t>(status.code()), &out);
  PutWireU32(static_cast<uint32_t>(status.message().size()), &out);
  out.append(status.message());
  out.append(slots);
  return out;
}

Status DecodeTaskResultPayload(const std::string& payload, int* p,
                               int* attempt, Status* task_status,
                               std::string* slots) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t task, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t att, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t code, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t msg_len, GetWireU32(payload, &offset));
  if (msg_len > payload.size() - offset) {
    return Status::DistError("oversized message length in task result");
  }
  std::string msg = payload.substr(offset, msg_len);
  offset += msg_len;
  *p = static_cast<int>(task);
  *attempt = static_cast<int>(att);
  *task_status = RebuildStatus(code, std::move(msg));
  *slots = payload.substr(offset);
  return Status::OK();
}

std::string EncodeTelemetryPayload(const runtime::WorkerTelemetry& telemetry) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(telemetry.task), &out);
  PutWireU32(static_cast<uint32_t>(telemetry.attempt), &out);
  PutWireU64(static_cast<uint64_t>(telemetry.peak_rss_bytes), &out);
  PutWireU32(static_cast<uint32_t>(telemetry.spans.size()), &out);
  for (const auto& span : telemetry.spans) {
    PutWireU64(DoubleBits(span.start_abs_us), &out);
    PutWireU64(DoubleBits(span.dur_us), &out);
    PutWireU32(static_cast<uint32_t>(span.partition), &out);
    PutWireU32(static_cast<uint32_t>(span.attempt), &out);
    PutWireU32(static_cast<uint32_t>(span.stage_id), &out);
    PutWireU64(static_cast<uint64_t>(span.rows), &out);
  }
  return out;
}

Status DecodeTelemetryPayload(const std::string& payload,
                              runtime::WorkerTelemetry* telemetry) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t task, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t att, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint64_t rss, GetWireU64(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t nspans, GetWireU32(payload, &offset));
  // Each span costs exactly 36 payload bytes; bounding the count
  // against the remaining bytes keeps a corrupt prefix from reserving
  // the machine away.
  if (static_cast<uint64_t>(nspans) * 36 > payload.size() - offset) {
    return Status::DistError("oversized span count in telemetry payload");
  }
  telemetry->task = static_cast<int>(task);
  telemetry->attempt = static_cast<int>(att);
  telemetry->peak_rss_bytes = static_cast<int64_t>(rss);
  telemetry->spans.clear();
  telemetry->spans.reserve(nspans);
  for (uint32_t i = 0; i < nspans; ++i) {
    runtime::WorkerSpan span;
    DIABLO_ASSIGN_OR_RETURN(uint64_t start_bits, GetWireU64(payload, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint64_t dur_bits, GetWireU64(payload, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint32_t partition, GetWireU32(payload, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint32_t span_att, GetWireU32(payload, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint32_t stage, GetWireU32(payload, &offset));
    DIABLO_ASSIGN_OR_RETURN(uint64_t rows, GetWireU64(payload, &offset));
    span.start_abs_us = DoubleFromBits(start_bits);
    span.dur_us = DoubleFromBits(dur_bits);
    span.partition = static_cast<int>(partition);
    span.attempt = static_cast<int>(span_att);
    span.stage_id = static_cast<int>(stage);
    span.rows = static_cast<int64_t>(rows);
    telemetry->spans.push_back(span);
  }
  if (offset != payload.size()) {
    return Status::DistError("trailing bytes in telemetry payload");
  }
  return Status::OK();
}

void WorkerMain(const WorkerParams& params,
                const runtime::RemoteTaskWave& wave) {
  auto fd_or = ConnectWithBackoff(params.port, params.connect_attempts,
                                  params.connect_backoff_ms);
  if (!fd_or.ok()) _exit(3);
  LockedSender sender{*fd_or};

  std::string hello =
      EncodeHelloPayload(params.worker_id, static_cast<int64_t>(getpid()),
                         params.token, SteadyNowUs());
  if (!sender.Send(FrameType::kHello, hello).ok()) _exit(3);

  FrameReader reader;
  auto ack_or = RecvFrameBlocking(sender.fd, &reader);
  if (!ack_or.ok() || ack_or->type != FrameType::kHelloAck) _exit(3);

  // Heartbeat beacon. Detached: the thread dies with the process on
  // _exit, and a send failure means the coordinator is gone — nothing
  // left to do but exit.
  std::thread([&sender, heartbeat_ms = params.heartbeat_ms]() {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(heartbeat_ms));
      if (!sender.Send(FrameType::kHeartbeat, std::string()).ok()) {
        _exit(3);
      }
    }
  }).detach();

  for (;;) {
    auto frame_or = RecvFrameBlocking(sender.fd, &reader);
    if (!frame_or.ok()) _exit(3);
    if (frame_or->type == FrameType::kShutdown) _exit(0);
    if (frame_or->type != FrameType::kTask) _exit(3);

    int p = 0;
    int attempt = 0;
    if (!DecodeTaskPayload(frame_or->payload, &p, &attempt).ok()) _exit(3);
    if (params.stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(params.stall_ms));
    }

    const double task_t0 = SteadyNowUs();
    Status task_status = wave.run(p, attempt);
    std::string slots;
    if (task_status.ok()) {
      auto slots_or = wave.encode(p);
      if (slots_or.ok()) {
        slots = std::move(*slots_or);
      } else {
        task_status = slots_or.status();
      }
    }
    // Telemetry goes out under the same sender lock scheme, immediately
    // before the result frame; TCP ordering then guarantees the
    // coordinator splices the spans before it processes the result.
    // Only successful tasks ship telemetry: failed simulated attempts
    // never produce a coordinator-side task span either.
    if (params.telemetry && task_status.ok()) {
      runtime::WorkerTelemetry telemetry;
      telemetry.task = p;
      telemetry.attempt = attempt;
      telemetry.peak_rss_bytes = runtime::MetricsRegistry::ProcessPeakRssBytes();
      runtime::WorkerSpan span;
      span.start_abs_us = task_t0;
      span.dur_us = SteadyNowUs() - task_t0;
      span.partition = p;
      span.attempt = attempt;
      span.stage_id = wave.stage;
      span.rows = p >= 0 && p < static_cast<int>(wave.task_work.size())
                      ? wave.task_work[static_cast<size_t>(p)]
                      : -1;
      telemetry.spans.push_back(span);
      if (!sender
               .Send(FrameType::kTelemetry, EncodeTelemetryPayload(telemetry))
               .ok()) {
        _exit(3);
      }
    }
    std::string result = EncodeTaskResultPayload(p, attempt, task_status,
                                                 slots);
    if (!sender.Send(FrameType::kTaskResult, result).ok()) _exit(3);
  }
}

}  // namespace diablo::dist
