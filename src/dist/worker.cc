#include "dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "common/strings.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "runtime/serialize.h"

namespace diablo::dist {

namespace {

using runtime::GetWireU32;
using runtime::GetWireU64;
using runtime::PutWireU32;
using runtime::PutWireU64;

Status RebuildStatus(uint32_t code, std::string msg) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kRestrictionViolation:
      return Status::RestrictionViolation(std::move(msg));
    case StatusCode::kTranslationError:
      return Status::TranslationError(std::move(msg));
    case StatusCode::kRuntimeError:
      return Status::RuntimeError(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(msg));
    case StatusCode::kTaskLost:
      return Status::TaskLost(std::move(msg));
    case StatusCode::kDistError:
      return Status::DistError(std::move(msg));
  }
  return Status::DistError(StrCat("unknown status code ", code,
                                  " in task result: ", msg));
}

/// Heartbeats share the task-result socket, so every send goes through
/// one mutex; interleaving a heartbeat inside a half-written result
/// frame would corrupt the stream.
struct LockedSender {
  int fd;
  std::mutex mu;

  Status Send(FrameType type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    return SendFrame(fd, type, payload);
  }
};

}  // namespace

std::string EncodeHelloPayload(int worker_id, int64_t pid, uint64_t token) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(worker_id), &out);
  PutWireU64(static_cast<uint64_t>(pid), &out);
  PutWireU64(token, &out);
  return out;
}

Status DecodeHelloPayload(const std::string& payload, int* worker_id,
                          int64_t* pid, uint64_t* token) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t id, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint64_t p, GetWireU64(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint64_t t, GetWireU64(payload, &offset));
  if (offset != payload.size()) {
    return Status::DistError("trailing bytes in hello payload");
  }
  *worker_id = static_cast<int>(id);
  *pid = static_cast<int64_t>(p);
  *token = t;
  return Status::OK();
}

std::string EncodeTaskPayload(int p, int attempt) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(p), &out);
  PutWireU32(static_cast<uint32_t>(attempt), &out);
  return out;
}

Status DecodeTaskPayload(const std::string& payload, int* p, int* attempt) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t task, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t att, GetWireU32(payload, &offset));
  if (offset != payload.size()) {
    return Status::DistError("trailing bytes in task payload");
  }
  *p = static_cast<int>(task);
  *attempt = static_cast<int>(att);
  return Status::OK();
}

std::string EncodeTaskResultPayload(int p, int attempt, const Status& status,
                                    const std::string& slots) {
  std::string out;
  PutWireU32(static_cast<uint32_t>(p), &out);
  PutWireU32(static_cast<uint32_t>(attempt), &out);
  PutWireU32(static_cast<uint32_t>(status.code()), &out);
  PutWireU32(static_cast<uint32_t>(status.message().size()), &out);
  out.append(status.message());
  out.append(slots);
  return out;
}

Status DecodeTaskResultPayload(const std::string& payload, int* p,
                               int* attempt, Status* task_status,
                               std::string* slots) {
  size_t offset = 0;
  DIABLO_ASSIGN_OR_RETURN(uint32_t task, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t att, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t code, GetWireU32(payload, &offset));
  DIABLO_ASSIGN_OR_RETURN(uint32_t msg_len, GetWireU32(payload, &offset));
  if (msg_len > payload.size() - offset) {
    return Status::DistError("oversized message length in task result");
  }
  std::string msg = payload.substr(offset, msg_len);
  offset += msg_len;
  *p = static_cast<int>(task);
  *attempt = static_cast<int>(att);
  *task_status = RebuildStatus(code, std::move(msg));
  *slots = payload.substr(offset);
  return Status::OK();
}

void WorkerMain(const WorkerParams& params,
                const runtime::RemoteTaskWave& wave) {
  auto fd_or = ConnectWithBackoff(params.port, params.connect_attempts,
                                  params.connect_backoff_ms);
  if (!fd_or.ok()) _exit(3);
  LockedSender sender{*fd_or};

  std::string hello = EncodeHelloPayload(
      params.worker_id, static_cast<int64_t>(getpid()), params.token);
  if (!sender.Send(FrameType::kHello, hello).ok()) _exit(3);

  FrameReader reader;
  auto ack_or = RecvFrameBlocking(sender.fd, &reader);
  if (!ack_or.ok() || ack_or->type != FrameType::kHelloAck) _exit(3);

  // Heartbeat beacon. Detached: the thread dies with the process on
  // _exit, and a send failure means the coordinator is gone — nothing
  // left to do but exit.
  std::thread([&sender, heartbeat_ms = params.heartbeat_ms]() {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(heartbeat_ms));
      if (!sender.Send(FrameType::kHeartbeat, std::string()).ok()) {
        _exit(3);
      }
    }
  }).detach();

  for (;;) {
    auto frame_or = RecvFrameBlocking(sender.fd, &reader);
    if (!frame_or.ok()) _exit(3);
    if (frame_or->type == FrameType::kShutdown) _exit(0);
    if (frame_or->type != FrameType::kTask) _exit(3);

    int p = 0;
    int attempt = 0;
    if (!DecodeTaskPayload(frame_or->payload, &p, &attempt).ok()) _exit(3);
    if (params.stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(params.stall_ms));
    }

    Status task_status = wave.run(p, attempt);
    std::string slots;
    if (task_status.ok()) {
      auto slots_or = wave.encode(p);
      if (slots_or.ok()) {
        slots = std::move(*slots_or);
      } else {
        task_status = slots_or.status();
      }
    }
    std::string result = EncodeTaskResultPayload(p, attempt, task_status,
                                                 slots);
    if (!sender.Send(FrameType::kTaskResult, result).ok()) _exit(3);
  }
}

}  // namespace diablo::dist
