#ifndef DIABLO_DIST_WIRE_H_
#define DIABLO_DIST_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace diablo::dist {

/// CRC-framed message layout for the coordinator/worker TCP link.
///
/// Every frame is a 16-byte header followed by the payload:
///
///   offset  size  field
///   0       4     magic 0x44424C46 ("DBLF", little-endian)
///   4       1     frame type (FrameType)
///   5       3     reserved, must be zero
///   8       4     payload length (little-endian u32)
///   12      4     CRC-32 (IEEE) of the payload folded with the frame
///                 type byte (little-endian u32), so a flipped type
///                 cannot pass as a different valid frame kind
///   16      len   payload bytes
///
/// The reader rejects bad magic, unknown types, nonzero reserved bytes,
/// lengths above its configured bound, and CRC mismatches — each with a
/// Status, never UB — because a half-dead worker can emit arbitrary
/// bytes mid-kill.

enum class FrameType : uint8_t {
  /// Worker -> coordinator: worker_id, pid, session token.
  kHello = 1,
  /// Coordinator -> worker: handshake accepted.
  kHelloAck = 2,
  /// Worker -> coordinator: liveness beacon (empty payload).
  kHeartbeat = 3,
  /// Coordinator -> worker: run task p as simulated attempt a.
  kTask = 4,
  /// Worker -> coordinator: task status + encoded result slots.
  kTaskResult = 5,
  /// Coordinator -> worker: exit cleanly (empty payload).
  kShutdown = 6,
  /// Worker -> coordinator: task telemetry (spans + process counters),
  /// sent immediately before the matching kTaskResult when the
  /// coordinator requested telemetry in the task frame.
  kTelemetry = 7,
};

/// True for the frame types above; anything else on the wire is corrupt.
bool IsKnownFrameType(uint8_t type);

/// Frame header size in bytes.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Frame magic ("DBLF" when read as little-endian bytes F,L,B,D).
inline constexpr uint32_t kFrameMagic = 0x44424C46u;

/// Default per-frame payload bound: far above any test workload, far
/// below anything that could make a corrupt length prefix allocate the
/// machine away.
inline constexpr uint32_t kDefaultMaxFrameBytes = 256u * 1024u * 1024u;

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `data`.
/// Known answer: Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const std::string& data);

/// Appends the frame for (type, payload) to `out`.
void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Incremental frame parser over a byte stream. Feed whatever recv()
/// produced; poll Next() for completed frames. Any malformed input puts
/// the reader into a sticky error state — framing is lost for good once
/// the stream is corrupt, so the connection must be dropped.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw stream bytes.
  void Feed(const char* data, size_t len);

  /// Returns the next completed frame, a RuntimeError once the stream is
  /// corrupt (sticky), or nullopt-like signal via `done=false` when more
  /// bytes are needed.
  StatusOr<bool> Next(Frame* frame);

  /// Bytes buffered but not yet consumed as frames.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;  // sticky
};

/// Decodes a buffer holding exactly one frame (tests and small
/// control-path messages). Rejects trailing bytes.
StatusOr<Frame> DecodeFrame(const std::string& data,
                            uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace diablo::dist

#endif  // DIABLO_DIST_WIRE_H_
