#include "dist/wire.h"

#include <array>

#include "common/strings.h"
#include "runtime/serialize.h"

namespace diablo::dist {

namespace {

using runtime::GetWireU32;
using runtime::PutWireU32;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

Status CorruptFrame(const std::string& what) {
  return Status::RuntimeError(StrCat("corrupt frame: ", what));
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
    case FrameType::kHeartbeat:
    case FrameType::kTask:
    case FrameType::kTaskResult:
    case FrameType::kShutdown:
    case FrameType::kTelemetry:
      return true;
  }
  return false;
}

uint32_t Crc32(const std::string& data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

/// Frame checksum: the CRC covers the type byte as well as the payload,
/// so a corrupted type cannot silently turn one valid frame kind into
/// another (the remaining header fields are structurally validated:
/// magic and reserved bytes are compared against constants, and a
/// corrupt length either overflows the cap or shifts the payload bytes
/// under this CRC). Folding the byte into the running CRC avoids
/// copying the payload just to prefix one byte.
uint32_t FrameCrc(uint8_t type, const std::string& payload) {
  uint32_t crc = Crc32(payload) ^ 0xFFFFFFFFu;  // undo final xor
  // Process the type byte as if it preceded the payload: CRC32 is not
  // order-sensitive in a way we can exploit cheaply, so fold it at the
  // end instead; mixing position keeps (type, payload) pairs distinct.
  crc = crc ^ type;
  for (int bit = 0; bit < 8; ++bit) {
    crc = (crc & 1) ? (0xEDB88320u ^ (crc >> 1)) : (crc >> 1);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  PutWireU32(kFrameMagic, out);
  out->push_back(static_cast<char>(type));
  out->append(3, '\0');
  PutWireU32(static_cast<uint32_t>(payload.size()), out);
  PutWireU32(FrameCrc(static_cast<uint8_t>(type), payload), out);
  out->append(payload);
}

void FrameReader::Feed(const char* data, size_t len) {
  // Drop consumed prefix lazily so steady-state feeding never reallocs
  // more than the frames themselves require.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 64 * 1024 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, len);
}

StatusOr<bool> FrameReader::Next(Frame* frame) {
  if (!error_.ok()) return error_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return false;

  size_t offset = consumed_;
  // GetWireU32 cannot fail here: avail >= header size.
  uint32_t magic = GetWireU32(buffer_, &offset).value();
  if (magic != kFrameMagic) {
    error_ = CorruptFrame("bad magic");
    return error_;
  }
  uint8_t type = static_cast<uint8_t>(buffer_[offset++]);
  if (!IsKnownFrameType(type)) {
    error_ = CorruptFrame(StrCat("unknown type ", static_cast<int>(type)));
    return error_;
  }
  for (int i = 0; i < 3; ++i) {
    if (buffer_[offset++] != '\0') {
      error_ = CorruptFrame("nonzero reserved byte");
      return error_;
    }
  }
  uint32_t len = GetWireU32(buffer_, &offset).value();
  if (len > max_frame_bytes_) {
    error_ = CorruptFrame(StrCat("oversized payload length ", len,
                                 " (max ", max_frame_bytes_, ")"));
    return error_;
  }
  uint32_t crc = GetWireU32(buffer_, &offset).value();
  if (avail < kFrameHeaderBytes + len) return false;  // need more bytes

  std::string payload = buffer_.substr(offset, len);
  if (FrameCrc(type, payload) != crc) {
    error_ = CorruptFrame("CRC mismatch");
    return error_;
  }
  consumed_ = offset + len;
  frame->type = static_cast<FrameType>(type);
  frame->payload = std::move(payload);
  return true;
}

StatusOr<Frame> DecodeFrame(const std::string& data,
                            uint32_t max_frame_bytes) {
  FrameReader reader(max_frame_bytes);
  reader.Feed(data.data(), data.size());
  Frame frame;
  DIABLO_ASSIGN_OR_RETURN(bool done, reader.Next(&frame));
  if (!done) return Status::RuntimeError("corrupt frame: truncated");
  if (reader.buffered() != 0) {
    return Status::RuntimeError("trailing bytes after frame");
  }
  return frame;
}

}  // namespace diablo::dist
