#ifndef DIABLO_DIABLO_DIABLO_H_
#define DIABLO_DIABLO_DIABLO_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "algebra/local.h"
#include "ast/ast.h"
#include "common/status.h"
#include "comp/comp.h"
#include "exec/reference_interpreter.h"
#include "exec/target_executor.h"
#include "opt/optimize.h"
#include "runtime/engine.h"
#include "runtime/profile.h"
#include "tiles/tiles.h"
#include "translate/translate.h"

/// DIABLO-C++ — public API.
///
/// A from-scratch reproduction of Fegaras & Noor, "Translation of
/// Array-Based Loops to Distributed Data-Parallel Programs" (VLDB 2020).
///
/// Quickstart:
///
///   diablo::CompileOptions options;
///   auto program = diablo::Compile(R"(
///     var sum: double = 0.0;
///     for v in V do
///       if (v < 100.0) sum += v;
///   )", options);
///   runtime::Engine engine;
///   auto run = diablo::Run(*program, &engine, {{"V", my_sparse_vector}});
///   double total = run->Scalar("sum")->ToDouble();
namespace diablo {

/// Options controlling the compilation pipeline.
struct CompileOptions {
  /// Verify the restrictions of Definition 3.1 and fail compilation on
  /// violations (on by default; disable only for experiments).
  bool check_restrictions = true;
  /// Comprehension optimizations (§3.6, §4).
  opt::OptimizeOptions optimize;
  /// Skip optimizations entirely (for the ablation benchmarks).
  bool enable_optimizer = true;
};

/// A compiled loop-based program: canonicalized source, translated and
/// optimized target code, and the inferred variable table.
struct CompiledProgram {
  ast::Program source;
  comp::TargetProgram target;
  std::map<std::string, translate::VarInfo> vars;

  /// Printable target code (comprehension syntax).
  std::string TargetToString() const { return target.ToString(); }
};

/// Parses, checks (Definition 3.1), translates (Figure 2), normalizes and
/// optimizes a loop-based program.
StatusOr<CompiledProgram> Compile(const std::string& source,
                                  const CompileOptions& options = {});

/// The results of executing a compiled program.
class ProgramRun {
 public:
  explicit ProgramRun(std::unique_ptr<exec::TargetExecutor> executor)
      : executor_(std::move(executor)) {}

  /// Final value of a driver scalar.
  StatusOr<runtime::Value> Scalar(const std::string& name) const {
    return executor_->GetScalar(name);
  }
  /// Final array contents as a sorted bag of (key, value) pairs.
  StatusOr<runtime::Value> Array(const std::string& name) const {
    return executor_->GetArray(name);
  }
  /// Final array contents as a distributed dataset (no collect).
  StatusOr<runtime::Dataset> ArrayDataset(const std::string& name) const {
    return executor_->GetArrayDataset(name);
  }

 private:
  std::unique_ptr<exec::TargetExecutor> executor_;
};

/// Host inputs: bag values are sparse arrays of (key, value) pairs,
/// everything else binds a scalar.
using Bindings = std::map<std::string, runtime::Value>;

/// Execution-time options.
struct RunOptions {
  /// Packed-array mode (paper §5): the named matrices are stored as
  /// dense tiles; incremental `⊳+` merges run shuffle-free. See
  /// exec::TargetExecutor::EnableTiledStorage for the semantics.
  std::set<std::string> tiled_arrays;
  tiles::TileConfig tile_config;
  /// Source file name stamped into trace spans and stage provenance
  /// ("[pagerank.diablo:12:3]"); empty renders as "<program>".
  std::string program_name;
  /// Prior-run profile (`diablo_run --profile-in`, runtime/profile.h);
  /// must outlive the run. When set, plan-time cost decisions weigh the
  /// measured stage facts of the prior run — broadcast-vs-hash join by
  /// actual shuffled bytes — instead of static estimates alone. Null
  /// keeps every decision static.
  const runtime::ProfileData* profile = nullptr;
};

/// Executes a compiled program on the distributed engine.
StatusOr<ProgramRun> Run(const CompiledProgram& program,
                         runtime::Engine* engine, const Bindings& inputs,
                         const RunOptions& options = {});

/// Convenience: compile and run in one step.
StatusOr<ProgramRun> CompileAndRun(const std::string& source,
                                   runtime::Engine* engine,
                                   const Bindings& inputs,
                                   const CompileOptions& options = {});

/// Runs a program under the sequential reference semantics (ground truth
/// for testing; see exec::ReferenceInterpreter).
StatusOr<std::unique_ptr<exec::ReferenceInterpreter>> RunReference(
    const std::string& source, const Bindings& inputs);

/// Executes a compiled program with the single-process local algebra
/// backend (the paper's "Scala collections" target; see algebra/local.h):
/// same translated bulk plan, no partitioning or shuffles.
StatusOr<std::unique_ptr<algebra::LocalExecutor>> RunLocal(
    const CompiledProgram& program, const Bindings& inputs);

}  // namespace diablo

#endif  // DIABLO_DIABLO_DIABLO_H_
