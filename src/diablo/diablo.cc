#include "diablo/diablo.h"

#include "analysis/restrictions.h"
#include "normalize/normalize.h"
#include "parser/parser.h"

namespace diablo {

StatusOr<CompiledProgram> Compile(const std::string& source,
                                  const CompileOptions& options) {
  DIABLO_ASSIGN_OR_RETURN(ast::Program parsed, parser::ParseProgram(source));
  CompiledProgram out;
  out.source = analysis::CanonicalizeIncrements(parsed);
  if (options.check_restrictions) {
    DIABLO_RETURN_IF_ERROR(analysis::CheckRestrictions(out.source));
  }
  DIABLO_ASSIGN_OR_RETURN(translate::TranslationResult translated,
                          translate::Translate(out.source));
  out.vars = std::move(translated.vars);
  comp::NameGen names("n");
  comp::TargetProgram normalized =
      normalize::NormalizeTarget(translated.program, &names);
  if (options.enable_optimizer) {
    out.target = opt::OptimizeTarget(normalized, &names, options.optimize);
  } else {
    out.target = std::move(normalized);
  }
  return out;
}

StatusOr<ProgramRun> Run(const CompiledProgram& program,
                         runtime::Engine* engine, const Bindings& inputs,
                         const RunOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("Run requires an engine");
  }
  auto executor = std::make_unique<exec::TargetExecutor>(engine);
  executor->SetProgramName(options.program_name);
  executor->SetProfile(options.profile);
  if (!options.tiled_arrays.empty()) {
    executor->EnableTiledStorage(options.tiled_arrays, options.tile_config);
  }
  DIABLO_RETURN_IF_ERROR(executor->Run(program.target, inputs));
  return ProgramRun(std::move(executor));
}

StatusOr<ProgramRun> CompileAndRun(const std::string& source,
                                   runtime::Engine* engine,
                                   const Bindings& inputs,
                                   const CompileOptions& options) {
  DIABLO_ASSIGN_OR_RETURN(CompiledProgram program, Compile(source, options));
  return Run(program, engine, inputs);
}

StatusOr<std::unique_ptr<exec::ReferenceInterpreter>> RunReference(
    const std::string& source, const Bindings& inputs) {
  DIABLO_ASSIGN_OR_RETURN(ast::Program parsed, parser::ParseProgram(source));
  auto interp = std::make_unique<exec::ReferenceInterpreter>();
  DIABLO_RETURN_IF_ERROR(interp->Run(parsed, inputs));
  return interp;
}

StatusOr<std::unique_ptr<algebra::LocalExecutor>> RunLocal(
    const CompiledProgram& program, const Bindings& inputs) {
  auto executor = std::make_unique<algebra::LocalExecutor>();
  DIABLO_RETURN_IF_ERROR(executor->Run(program.target, inputs));
  return executor;
}

}  // namespace diablo
