#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold PCT]
                              [--prefix NAME]

Fails (exit 1) when any benchmark matched by --prefix (default:
BM_ReduceByKeyHot, the hash-aggregation hot path) is more than
--threshold percent (default: 20) slower than the committed baseline,
by real_time per iteration. Benchmarks present on only one side are
reported but never fail the check — CI machines differ, thresholds
guard the tracked hot path only.

Stdlib only; runs on any python3.
"""

import argparse
import json
import sys


class SchemaMismatch(Exception):
    """The JSON is not a google-benchmark report we understand."""


def load_times(path):
    """name -> real_time (ns per iteration) for every benchmark entry."""
    with open(path) as f:
        doc = json.load(f)
    benchmarks = doc.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise SchemaMismatch(f"{path}: 'benchmarks' is not a list")
    times = {}
    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, dict):
            raise SchemaMismatch(f"{path}: benchmarks[{i}] is not an object")
        if bench.get("run_type", "iteration") != "iteration":
            continue
        # Missing/renamed keys mean the producer changed its report
        # format; say so instead of dying with a KeyError traceback.
        if "name" not in bench:
            raise SchemaMismatch(f"{path}: benchmarks[{i}] has no 'name' key")
        if "real_time" not in bench:
            raise SchemaMismatch(
                f"{path}: benchmark '{bench['name']}' has no 'real_time' key "
                "(renamed or non-benchmark entry?)")
        try:
            times[bench["name"]] = float(bench["real_time"])
        except (TypeError, ValueError):
            raise SchemaMismatch(
                f"{path}: benchmark '{bench['name']}' has non-numeric "
                f"real_time {bench['real_time']!r}")
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="max allowed slowdown in percent (default 20)")
    parser.add_argument("--prefix", action="append", default=None,
                        help="benchmark name prefix to gate on; repeatable "
                             "(default: BM_ReduceByKeyHot)")
    args = parser.parse_args()
    prefixes = args.prefix or ["BM_ReduceByKeyHot"]

    try:
        baseline = load_times(args.baseline)
        current = load_times(args.current)
    except SchemaMismatch as e:
        print(f"ERROR: benchmark JSON schema mismatch: {e}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for name, base_ns in sorted(baseline.items()):
        if not any(name.startswith(p) for p in prefixes):
            continue
        if name not in current:
            print(f"NOTE  {name}: in baseline but not in current run")
            continue
        checked += 1
        cur_ns = current[name]
        delta_pct = (cur_ns - base_ns) / base_ns * 100.0
        verdict = "OK"
        if delta_pct > args.threshold:
            verdict = "FAIL"
            failures.append(name)
        print(f"{verdict:5} {name}: baseline {base_ns:.0f} ns, "
              f"current {cur_ns:.0f} ns ({delta_pct:+.1f}%)")
    for name in sorted(current):
        if any(name.startswith(p) for p in prefixes) and name not in baseline:
            print(f"NOTE  {name}: new benchmark, no baseline")

    if checked == 0:
        print(f"ERROR: no benchmarks matched prefixes {prefixes}",
              file=sys.stderr)
        return 1
    if failures:
        print(f"FAILED: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"All {checked} gated benchmark(s) within {args.threshold:.0f}% "
          "of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
