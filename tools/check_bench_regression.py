#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold PCT]
                              [--prefix NAME] [--pair FAST,SLOW,MIN_SPEEDUP]

Fails (exit 1) when any benchmark matched by --prefix (default:
BM_ReduceByKeyHot, the hash-aggregation hot path) is more than
--threshold percent (default: 20) slower than the committed baseline,
by real_time per iteration. A gated benchmark present in the baseline
but missing from the current run is a schema failure (exit 2): dropping
a hot-path benchmark must not pass the gate. New benchmarks with no
baseline are reported but never fail — CI machines differ, thresholds
guard the tracked hot path only.

--pair FAST,SLOW,MIN_SPEEDUP[,NAME] (repeatable) compares two *named*
benchmarks within the CURRENT run — an ablation pair built with
different flags (e.g. columnar vs boxed) — and fails (exit 1) unless
real_time(SLOW) / real_time(FAST) >= MIN_SPEEDUP. The optional NAME
labels the ablation in every verdict line and in the failure summary,
so a red gate says which ablation regressed rather than just a ratio;
without it the label is "FAST vs SLOW". Either benchmark missing from
the current run is a schema failure (exit 2).

Stdlib only; runs on any python3.
"""

import argparse
import json
import sys


class SchemaMismatch(Exception):
    """The JSON is not a google-benchmark report we understand."""


def load_times(path):
    """name -> real_time (ns per iteration) for every benchmark entry."""
    with open(path) as f:
        doc = json.load(f)
    benchmarks = doc.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise SchemaMismatch(f"{path}: 'benchmarks' is not a list")
    times = {}
    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, dict):
            raise SchemaMismatch(f"{path}: benchmarks[{i}] is not an object")
        if bench.get("run_type", "iteration") != "iteration":
            continue
        # Missing/renamed keys mean the producer changed its report
        # format; say so instead of dying with a KeyError traceback.
        if "name" not in bench:
            raise SchemaMismatch(f"{path}: benchmarks[{i}] has no 'name' key")
        if "real_time" not in bench:
            raise SchemaMismatch(
                f"{path}: benchmark '{bench['name']}' has no 'real_time' key "
                "(renamed or non-benchmark entry?)")
        try:
            times[bench["name"]] = float(bench["real_time"])
        except (TypeError, ValueError):
            raise SchemaMismatch(
                f"{path}: benchmark '{bench['name']}' has non-numeric "
                f"real_time {bench['real_time']!r}")
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="max allowed slowdown in percent (default 20)")
    parser.add_argument("--prefix", action="append", default=None,
                        help="benchmark name prefix to gate on; repeatable "
                             "(default: BM_ReduceByKeyHot)")
    parser.add_argument("--pair", action="append", default=[],
                        metavar="FAST,SLOW,MIN_SPEEDUP[,NAME]",
                        help="require real_time(SLOW)/real_time(FAST) >= "
                             "MIN_SPEEDUP in the current run; NAME labels "
                             "the ablation in verdicts; repeatable")
    args = parser.parse_args()
    prefixes = args.prefix or ["BM_ReduceByKeyHot"]

    pairs = []
    for spec in args.pair:
        parts = spec.split(",")
        if len(parts) not in (3, 4):
            print(f"ERROR: --pair expects FAST,SLOW,MIN_SPEEDUP[,NAME], got "
                  f"{spec!r}", file=sys.stderr)
            return 2
        label = parts[3] if len(parts) == 4 else f"{parts[0]} vs {parts[1]}"
        try:
            pairs.append((parts[0], parts[1], float(parts[2]), label))
        except ValueError:
            print(f"ERROR: --pair {spec!r}: MIN_SPEEDUP is not a number",
                  file=sys.stderr)
            return 2

    try:
        baseline = load_times(args.baseline)
        current = load_times(args.current)
    except SchemaMismatch as e:
        print(f"ERROR: benchmark JSON schema mismatch: {e}", file=sys.stderr)
        return 2

    failures = []
    missing = []
    checked = 0
    for name, base_ns in sorted(baseline.items()):
        if not any(name.startswith(p) for p in prefixes):
            continue
        if name not in current:
            # A gated benchmark that vanished is a broken gate, not a
            # pass: the hot path it guarded is now unmeasured.
            print(f"MISSING {name}: in baseline but not in current run")
            missing.append(name)
            continue
        checked += 1
        cur_ns = current[name]
        delta_pct = (cur_ns - base_ns) / base_ns * 100.0
        verdict = "OK"
        if delta_pct > args.threshold:
            verdict = "FAIL"
            failures.append(name)
        print(f"{verdict:5} {name}: baseline {base_ns:.0f} ns, "
              f"current {cur_ns:.0f} ns ({delta_pct:+.1f}%)")
    for name in sorted(current):
        if any(name.startswith(p) for p in prefixes) and name not in baseline:
            print(f"NOTE  {name}: new benchmark, no baseline")

    pair_failures = []
    for fast, slow, min_speedup, label in pairs:
        absent = [n for n in (fast, slow) if n not in current]
        if absent:
            print(f"ERROR: --pair [{label}] benchmark(s) missing from "
                  f"current run: {', '.join(absent)}", file=sys.stderr)
            return 2
        if current[fast] <= 0:
            print(f"ERROR: --pair [{label}]: {fast} has non-positive "
                  f"real_time", file=sys.stderr)
            return 2
        speedup = current[slow] / current[fast]
        verdict = "OK" if speedup >= min_speedup else "FAIL"
        if verdict == "FAIL":
            pair_failures.append(label)
        print(f"{verdict:5} [{label}] {fast} vs {slow}: {speedup:.2f}x "
              f"(need >= {min_speedup:.2f}x)")

    if missing:
        print(f"ERROR: {len(missing)} gated benchmark(s) missing from the "
              f"current run: {', '.join(missing)}", file=sys.stderr)
        return 2
    if checked == 0 and not pairs:
        print(f"ERROR: no benchmarks matched prefixes {prefixes}",
              file=sys.stderr)
        return 1
    if failures:
        print(f"FAILED: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    if pair_failures:
        print(f"FAILED: {len(pair_failures)} ablation pair(s) below their "
              f"minimum speedup: {'; '.join(pair_failures)}",
              file=sys.stderr)
        return 1
    print(f"All {checked} gated benchmark(s) within {args.threshold:.0f}% "
          f"of baseline; {len(pairs)} ablation pair(s) OK.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
