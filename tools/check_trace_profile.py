#!/usr/bin/env python3
"""Validate a profile JSON emitted by diablo_run --profile-out=FILE.

Usage:
    check_trace_profile.py PROFILE.json [--require-tracing]
                           [--require-locations]
                           [--min-worker-processes N]

Checks the schema contract of runtime/trace.cc:WriteProfileJson
(schema_version 4): required top-level keys and totals counters
(including the distributed-run and memory-watermark figures), the
per-process task breakdown, every stage entry carrying label /
location / counters / per-partition histograms, and — when tracing was
on — task stats whose percentiles are ordered (p50 <= p90 <= max),
whose skew ratio is max/mean, and whose straggler partitions exist in
the stage's histogram. --min-worker-processes N additionally demands
that at least N worker lanes (process > 0, i.e. spliced telemetry from
forked workers) appear in the processes array. Fails (exit 1) on the
first structural violation.

Stdlib only; runs on any python3.
"""

import argparse
import json
import sys

TOTALS_KEYS = [
    "stages", "wide_stages", "work", "shuffle_bytes", "attempts",
    "recomputed_partitions", "recovery_seconds", "fused_ops",
    "rows_not_materialized", "bytes_not_materialized", "hash_agg_rows",
    "hash_agg_keys", "pool_tasks", "columnar_batches",
    "columnar_rows_fallback", "salted_keys", "salt_fanout",
    "cost_decisions", "dist_tasks", "dist_retries",
    "dist_workers_lost", "peak_rss_bytes", "accumulator_bytes_peak",
    "simulated_seconds", "simulated_fault_free_seconds",
]
STAGE_KEYS = [
    "index", "label", "wide", "location", "map_work", "reduce_work",
    "shuffle_bytes", "attempts", "recomputed_partitions",
    "recovery_seconds", "fused_ops", "rows_not_materialized",
    "bytes_not_materialized", "hash_agg_rows", "hash_agg_keys",
    "pool_tasks", "columnar_batches", "columnar_rows_fallback",
    "salted_keys", "salt_fanout", "cost_decisions",
    "peak_rss_bytes", "accumulator_bytes_peak",
    "partitions", "tasks",
]
PROCESS_KEYS = ["process", "tasks", "task_time_us", "clock_offset_us"]
TASK_KEYS = [
    "count", "total_us", "mean_us", "p50_us", "p90_us", "max_us",
    "skew_ratio", "stragglers",
]


class SchemaError(Exception):
    pass


def require(cond, what):
    if not cond:
        raise SchemaError(what)


def check_stage(stage, i, require_locations):
    for key in STAGE_KEYS:
        require(key in stage, f"stage {i}: missing key '{key}'")
    require(stage["index"] == i, f"stage {i}: index is {stage['index']}")
    require(isinstance(stage["label"], str) and stage["label"],
            f"stage {i}: empty label")
    loc = stage["location"]
    require(loc is None or (isinstance(loc, dict)
                            and set(loc) == {"file", "line", "column"}),
            f"stage {i}: malformed location {loc!r}")
    if require_locations:
        require(loc is not None and loc["line"] > 0,
                f"stage {i} ({stage['label']}): no source location")
    parts = stage["partitions"]
    require(set(parts) == {"rows", "bytes"},
            f"stage {i}: malformed partitions object")
    require(all(isinstance(x, int) and x >= 0 for x in parts["rows"]),
            f"stage {i}: negative partition row count")
    require(all(isinstance(x, int) and x >= 0 for x in parts["bytes"]),
            f"stage {i}: negative partition byte count")
    tasks = stage["tasks"]
    if tasks is None:
        return
    for key in TASK_KEYS:
        require(key in tasks, f"stage {i}: tasks missing key '{key}'")
    # Driver-side stages (broadcast ship, cartesian product, un-salt
    # merges) record a stage span with no partition tasks: a zero count
    # is legal, but the percentile invariants below only apply to stages
    # that actually ran tasks.
    require(tasks["count"] >= 0, f"stage {i}: tasks.count < 0")
    if tasks["count"] == 0:
        return
    require(tasks["p50_us"] <= tasks["p90_us"] <= tasks["max_us"],
            f"stage {i}: percentiles out of order")
    require(tasks["mean_us"] <= tasks["max_us"] + 1e-9,
            f"stage {i}: mean exceeds max")
    if tasks["mean_us"] > 0:
        skew = tasks["max_us"] / tasks["mean_us"]
        require(abs(skew - tasks["skew_ratio"]) < 1e-3 * max(skew, 1.0),
                f"stage {i}: skew_ratio {tasks['skew_ratio']} != "
                f"max/mean {skew}")
    n_parts = max(len(parts["rows"]), tasks["count"])
    for p in tasks["stragglers"]:
        require(0 <= p < n_parts, f"stage {i}: straggler partition {p} "
                                  f"out of range (have {n_parts})")


def check_processes(doc, min_worker_processes):
    procs = doc["processes"]
    require(isinstance(procs, list), "processes is not a list")
    seen = set()
    workers = 0
    for i, proc in enumerate(procs):
        for key in PROCESS_KEYS:
            require(key in proc, f"processes[{i}]: missing key '{key}'")
        pid = proc["process"]
        require(isinstance(pid, int) and pid >= 0,
                f"processes[{i}]: bad process id {pid!r}")
        require(pid not in seen, f"processes[{i}]: duplicate lane {pid}")
        seen.add(pid)
        require(proc["tasks"] > 0,
                f"processes[{i}]: lane {pid} recorded with no tasks")
        require(proc["task_time_us"] >= 0,
                f"processes[{i}]: negative task_time_us")
        if pid > 0:
            workers += 1
    require(workers >= min_worker_processes,
            f"only {workers} worker lane(s) in processes, "
            f"want >= {min_worker_processes}")
    return workers


def check_profile(doc, require_tracing, require_locations,
                  min_worker_processes):
    require(doc.get("schema_version") == 4,
            f"schema_version is {doc.get('schema_version')!r}, want 4")
    for key in ("program", "tracing", "run_wall_us", "totals", "processes",
                "stages"):
        require(key in doc, f"missing top-level key '{key}'")
    if require_tracing:
        require(doc["tracing"] is True, "tracing is off in this profile")
    totals = doc["totals"]
    for key in TOTALS_KEYS:
        require(key in totals, f"totals: missing key '{key}'")
    require(totals["stages"] == len(doc["stages"]),
            f"totals.stages={totals['stages']} but "
            f"{len(doc['stages'])} stage entries")
    wide = sum(1 for s in doc["stages"] if s.get("wide") is True)
    require(totals["wide_stages"] == wide,
            f"totals.wide_stages={totals['wide_stages']} but "
            f"{wide} stages marked wide")
    check_processes(doc, min_worker_processes)
    with_tasks = 0
    for i, stage in enumerate(doc["stages"]):
        check_stage(stage, i, require_locations)
        if stage["tasks"] is not None:
            with_tasks += 1
    if require_tracing:
        require(with_tasks > 0, "tracing on but no stage has task stats")
        require(doc["run_wall_us"] > 0, "tracing on but run_wall_us == 0")
    return with_tasks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("profile")
    parser.add_argument("--require-tracing", action="store_true",
                        help="fail unless the profile was traced")
    parser.add_argument("--require-locations", action="store_true",
                        help="fail on stages with no source location "
                             "(setup stages have none, so only use on "
                             "profiles known to be fully attributed)")
    parser.add_argument("--min-worker-processes", type=int, default=0,
                        metavar="N",
                        help="fail unless at least N worker lanes "
                             "(process > 0) appear in the processes "
                             "array — i.e. spliced worker telemetry")
    args = parser.parse_args()

    with open(args.profile) as f:
        doc = json.load(f)
    try:
        with_tasks = check_profile(doc, args.require_tracing,
                                   args.require_locations,
                                   args.min_worker_processes)
    except SchemaError as e:
        print(f"FAILED: {args.profile}: {e}", file=sys.stderr)
        return 1
    workers = sum(1 for p in doc["processes"] if p["process"] > 0)
    print(f"OK: {args.profile}: {len(doc['stages'])} stage(s), "
          f"{with_tasks} with task stats, {workers} worker lane(s), "
          f"program '{doc['program']}'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
