#!/usr/bin/env python3
"""Validate a structured event log emitted by diablo_run --events-out=FILE.

Usage:
    check_events.py EVENTS.jsonl [--require-min EVENT=N]...

Checks the schema contract of runtime/events.cc:WriteJsonl
(schema_version 1): every line is a standalone JSON object carrying
schema_version / event / ts_us / stage / location, the event name is in
the published catalog, timestamps are nondecreasing in log order (the
log stamps under its append lock), stage is a nonnegative integer or
null, and location is null or a {file, line, column} object with a
positive line. --require-min EVENT=N (repeatable) additionally demands
at least N occurrences of EVENT — e.g. a chaos run must have logged the
kills it injected.

Stdlib only; runs on any python3.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1

# The published catalog (docs/distributed.md): consumers key dashboards
# off these names, so an unknown name is a producer bug, not forward
# compatibility.
EVENT_NAMES = {
    "task_retry",
    "worker_respawn",
    "heartbeat_loss",
    "lineage_recovery",
    "skew_salting",
    "cost_decision",
    "statement",
    "chaos_kill",
    "worker_lost",
}

REQUIRED_KEYS = ("schema_version", "event", "ts_us", "stage", "location")


class SchemaError(Exception):
    pass


def require(cond, what):
    if not cond:
        raise SchemaError(what)


def check_line(lineno, line, prev_ts):
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as e:
        raise SchemaError(f"line {lineno}: not valid JSON ({e})")
    require(isinstance(doc, dict), f"line {lineno}: not a JSON object")
    for key in REQUIRED_KEYS:
        require(key in doc, f"line {lineno}: missing key '{key}'")
    require(doc["schema_version"] == SCHEMA_VERSION,
            f"line {lineno}: schema_version is "
            f"{doc['schema_version']!r}, want {SCHEMA_VERSION}")
    name = doc["event"]
    require(name in EVENT_NAMES,
            f"line {lineno}: unknown event name {name!r}")
    ts = doc["ts_us"]
    require(isinstance(ts, (int, float)) and ts >= 0,
            f"line {lineno}: bad ts_us {ts!r}")
    require(ts >= prev_ts,
            f"line {lineno}: ts_us {ts} went backwards (prev {prev_ts})")
    stage = doc["stage"]
    require(stage is None or (isinstance(stage, int) and stage >= 0),
            f"line {lineno}: bad stage {stage!r}")
    loc = doc["location"]
    if loc is not None:
        require(isinstance(loc, dict) and set(loc) == {"file", "line",
                                                       "column"},
                f"line {lineno}: malformed location {loc!r}")
        require(isinstance(loc["line"], int) and loc["line"] > 0,
                f"line {lineno}: location without a positive line")
    return name, ts


def parse_require_min(specs):
    mins = {}
    for spec in specs:
        event, sep, count = spec.partition("=")
        if not sep or not count.isdigit():
            raise SystemExit(f"bad --require-min spec {spec!r}, "
                             f"want EVENT=N")
        if event not in EVENT_NAMES:
            raise SystemExit(f"--require-min: unknown event {event!r}")
        mins[event] = int(count)
    return mins


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("events")
    parser.add_argument("--require-min", action="append", default=[],
                        metavar="EVENT=N",
                        help="fail unless EVENT occurs at least N times "
                             "(repeatable)")
    args = parser.parse_args()
    mins = parse_require_min(args.require_min)

    counts = {}
    prev_ts = 0.0
    lineno = 0
    try:
        with open(args.events) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                name, prev_ts = check_line(lineno, line, prev_ts)
                counts[name] = counts.get(name, 0) + 1
        for event, want in sorted(mins.items()):
            have = counts.get(event, 0)
            require(have >= want,
                    f"only {have} '{event}' event(s), want >= {want}")
    except SchemaError as e:
        print(f"FAILED: {args.events}: {e}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    breakdown = ", ".join(f"{name}={n}" for name, n in sorted(counts.items()))
    print(f"OK: {args.events}: {total} event(s)"
          + (f" ({breakdown})" if breakdown else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
